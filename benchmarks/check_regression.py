#!/usr/bin/env python
"""Guard against performance regressions: fresh smoke run vs committed baseline.

Reads the committed ``reports/BENCH_smoke.json``, re-runs ``run_smoke.py``
(unless ``--no-run`` compares an already-fresh report), and gates on two
signals:

* **Kernel counters (the gate).**  The counters run_smoke.py records are
  machine-independent — for a fixed seed the hit/miss/candidate counts are
  deterministic — so "a cache that stopped hitting" or "an accidentally
  repeated walk" shows up exactly, with no CI hardware noise.  Worker
  counter deltas merge back into the parent process and execution-shape
  ``parallel.*`` counters are excluded from the report, so the snapshot is
  comparable across *any* worker config: a baseline recorded at workers=0
  gates a fresh run at workers=2 and vice versa.  A cache regresses when
  its miss count inflates beyond ``--miss-ratio`` (above an absolute
  floor) or its hit rate collapses; ``--exact-counters`` tightens the gate
  to bit-for-bit equality of every counter and value-histogram (the CI
  cross-worker determinism check).
* **Wall-clock ratios (a warning).**  The committed baseline was timed on a
  different machine, and GitHub runner hardware varies enough that >2x on
  sub-second metrics can trip spuriously — so slowdowns beyond ``--ratio``
  above the 100 ms floor print a WARNING but do not fail the check unless
  ``--strict-timing`` is passed (for runs against a same-machine baseline).

Writes ``reports/regression_check.txt`` / ``.json`` (the CI artifact) with
the full comparison either way.

Usage:  PYTHONPATH=src python benchmarks/check_regression.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPORTS = HERE / "reports"

RATIO_LIMIT = 2.0
ABS_FLOOR_S = 0.10
MISS_RATIO_LIMIT = 2.0
MISS_FLOOR = 16  # miss-count inflation below this absolute count is noise
HIT_RATE_DROP = 0.25  # absolute hit-rate loss that counts as a collapse
MIN_LOOKUPS = 16  # rate comparisons need at least this many lookups


def load_report(path: pathlib.Path) -> dict:
    return json.loads(path.read_text())


def compare_timings(baseline: dict, fresh: dict, ratio_limit: float, floor_s: float) -> list[dict]:
    """One comparison row per timed metric present in both reports."""
    rows = []
    for name in sorted(baseline):
        if not name.endswith("_s") or name not in fresh:
            continue
        base, now = float(baseline[name]), float(fresh[name])
        ratio = now / base if base else 0.0
        slow = base > 0 and now > floor_s and ratio > ratio_limit
        rows.append(
            {
                "metric": name,
                "baseline_s": base,
                "fresh_s": now,
                "ratio": ratio,
                "slow": slow,
            }
        )
    return rows


def _cache_names(counters: dict) -> set[str]:
    return {
        name.rsplit(".", 1)[0]
        for name in counters
        if name.endswith(".hit") or name.endswith(".miss")
    }


def compare_counters(
    baseline: dict, fresh: dict, miss_ratio: float
) -> list[dict]:
    """One row per hit/miss cache the baseline knows about."""
    rows = []
    for cache in sorted(_cache_names(baseline) & _cache_names(fresh)):
        base_hit = int(baseline.get(f"{cache}.hit", 0))
        base_miss = int(baseline.get(f"{cache}.miss", 0))
        now_hit = int(fresh.get(f"{cache}.hit", 0))
        now_miss = int(fresh.get(f"{cache}.miss", 0))
        base_total = base_hit + base_miss
        now_total = now_hit + now_miss
        # None (rendered "n/a") for a never-consulted cache: 0.0 would
        # read as a collapse when the cache simply wasn't on the path.
        base_rate = base_hit / base_total if base_total else None
        now_rate = now_hit / now_total if now_total else None
        miss_inflated = now_miss > max(MISS_FLOOR, miss_ratio * base_miss)
        rate_collapsed = (
            base_total >= MIN_LOOKUPS
            and now_total >= MIN_LOOKUPS
            and base_rate - now_rate > HIT_RATE_DROP
        )
        rows.append(
            {
                "cache": cache,
                "baseline_hit": base_hit,
                "baseline_miss": base_miss,
                "fresh_hit": now_hit,
                "fresh_miss": now_miss,
                "baseline_hit_rate": base_rate,
                "fresh_hit_rate": now_rate,
                "regressed": miss_inflated or rate_collapsed,
            }
        )
    return rows


def _fmt_rate(rate: float | None) -> str:
    return "n/a" if rate is None else f"{rate:.2f}"


def render(
    timing_rows: list[dict],
    counter_rows: list[dict],
    ratio_limit: float,
    counters_comparable: bool,
    counter_note: str,
    strict_timing: bool,
) -> str:
    lines = [
        "Smoke benchmark regression check",
        "",
        f"Kernel counters ({counter_note}; gate: miss inflation >"
        f"{MISS_RATIO_LIMIT:.1f}x above {MISS_FLOOR}, hit-rate drop >{HIT_RATE_DROP:.2f})",
        f"{'cache':<24} {'base hit/miss':>14} {'fresh hit/miss':>14} "
        f"{'base rate':>9} {'fresh rate':>10}  verdict",
    ]
    for row in counter_rows:
        verdict = "ok"
        if row["regressed"]:
            verdict = "REGRESSED" if counters_comparable else "changed (info)"
        lines.append(
            f"{row['cache']:<24} "
            f"{row['baseline_hit']:>6}/{row['baseline_miss']:<7} "
            f"{row['fresh_hit']:>6}/{row['fresh_miss']:<7} "
            f"{_fmt_rate(row['baseline_hit_rate']):>8} "
            f"{_fmt_rate(row['fresh_hit_rate']):>9}  {verdict}"
        )
    if not counter_rows:
        lines.append("(no comparable hit/miss counters in both reports)")
    lines += [
        "",
        f"Wall-clock timings (limit {ratio_limit:.1f}x, floor {ABS_FLOOR_S * 1000:.0f} ms; "
        + ("strict: fails the check)" if strict_timing else "cross-machine baseline: warnings only)"),
        f"{'metric':<24} {'baseline':>10} {'fresh':>10} {'ratio':>7}  verdict",
    ]
    for row in timing_rows:
        if row["slow"]:
            verdict = "REGRESSED" if strict_timing else "WARNING: slow"
        else:
            verdict = "ok"
        lines.append(
            f"{row['metric']:<24} {row['baseline_s']:>9.4f}s {row['fresh_s']:>9.4f}s "
            f"{row['ratio']:>6.2f}x  {verdict}"
        )
    return "\n".join(lines)


def chaos_check(baseline_path: pathlib.Path, run: bool) -> int:
    """Exact-equality gate on the chaos smoke counters.

    The fault schedule is a pure function of (profile, seed), and the
    ``chaos.*`` / ``retry.*`` counters are a pure function of the schedule —
    no hardware noise, no tolerance bands.  A fresh run with the baseline's
    recorded seed must reproduce the committed counters bit-for-bit; any
    drift means the transport, retry policy or fault plan changed behaviour
    and the baseline must be regenerated *deliberately*.
    """
    if not baseline_path.exists():
        print(f"no chaos baseline at {baseline_path}; "
              "run run_smoke.py --chaos-seed <seed> and commit the report")
        return 2
    baseline = load_report(baseline_path)
    chaos = baseline.get("chaos", {})
    seed, profile = chaos.get("seed"), chaos.get("profile")
    if seed is None or profile is None:
        print(f"{baseline_path} records no chaos seed/profile; regenerate it")
        return 2

    if run:
        subprocess.run(
            [
                sys.executable,
                str(HERE / "run_smoke.py"),
                "--chaos-seed",
                str(seed),
                "--chaos-profile",
                str(profile),
            ],
            check=True,
        )
    fresh = load_report(REPORTS / "BENCH_chaos.json")

    base_counters = baseline.get("counters", {})
    fresh_counters = fresh.get("counters", {})
    drifted = sorted(
        name
        for name in set(base_counters) | set(fresh_counters)
        if base_counters.get(name) != fresh_counters.get(name)
    )
    lines = [
        f"Chaos smoke determinism check (profile {profile!r}, seed {seed})",
        "",
        f"{'counter':<28} {'baseline':>10} {'fresh':>10}  verdict",
    ]
    for name in sorted(set(base_counters) | set(fresh_counters)):
        verdict = "DRIFTED" if name in drifted else "ok"
        lines.append(
            f"{name:<28} {base_counters.get(name, '-'):>10} "
            f"{fresh_counters.get(name, '-'):>10}  {verdict}"
        )
    text = "\n".join(lines)
    print(text)
    REPORTS.mkdir(exist_ok=True)
    (REPORTS / "chaos_check.txt").write_text(text + "\n")
    (REPORTS / "chaos_check.json").write_text(
        json.dumps(
            {
                "seed": seed,
                "profile": profile,
                "baseline_counters": base_counters,
                "fresh_counters": fresh_counters,
                "drifted": drifted,
                "ok": not drifted,
            },
            indent=2,
        )
        + "\n"
    )
    if drifted:
        print(f"\nFAIL: chaos counters drifted from the committed schedule: "
              f"{', '.join(drifted)}")
        return 1
    print("\nOK: chaos fault schedule and retry behaviour reproduced exactly")
    return 0


def settlement_check(baseline_path: pathlib.Path, run: bool) -> int:
    """Exact-equality gate: block settlement vs the committed sync baseline.

    ``run_smoke.py --settlement sync`` and ``--settlement block`` execute
    the identical protocol flow; block production is a delivery knob, so
    every deterministic counter, every value-histogram and the settlement
    ledger totals (verdicts, gas, escrow moved) must match bit for bit.
    Any drift means block-mode settlement changed *what* settles — not just
    when — and fails the job.
    """
    if not baseline_path.exists():
        print(f"no settlement baseline at {baseline_path}; "
              "run run_smoke.py --settlement sync and commit the report")
        return 2
    baseline = load_report(baseline_path)
    if baseline.get("settlement", {}).get("mode") != "sync":
        print(f"{baseline_path} is not a sync-mode settlement report; regenerate it")
        return 2

    if run:
        subprocess.run(
            [sys.executable, str(HERE / "run_smoke.py"), "--settlement", "block"],
            check=True,
        )
    fresh = load_report(REPORTS / "BENCH_settlement_block.json")

    drifted: list[str] = []
    for section in ("counters", "histograms"):
        base_sec = baseline.get(section, {})
        fresh_sec = fresh.get(section, {})
        drifted += sorted(
            f"{section}.{name}"
            for name in set(base_sec) | set(fresh_sec)
            if base_sec.get(name) != fresh_sec.get(name)
        )
    base_ledger = {
        k: v for k, v in baseline.get("settlement", {}).items() if k != "mode"
    }
    fresh_ledger = {
        k: v for k, v in fresh.get("settlement", {}).items() if k != "mode"
    }
    drifted += sorted(
        f"ledger.{k}"
        for k in set(base_ledger) | set(fresh_ledger)
        if base_ledger.get(k) != fresh_ledger.get(k)
    )

    lines = [
        "Settlement-mode equivalence check (block vs committed sync baseline)",
        "",
        f"counters compared: {len(set(baseline.get('counters', {})) | set(fresh.get('counters', {})))}",
        f"histograms compared: {len(set(baseline.get('histograms', {})) | set(fresh.get('histograms', {})))}",
        f"ledger totals compared: {sorted(base_ledger)}",
    ]
    if drifted:
        lines += ["", "DRIFTED:"] + [f"  {name}" for name in drifted]
    else:
        lines.append(
            "every counter, histogram and ledger total identical across modes"
        )
    text = "\n".join(lines)
    print(text)
    REPORTS.mkdir(exist_ok=True)
    (REPORTS / "settlement_check.txt").write_text(text + "\n")
    (REPORTS / "settlement_check.json").write_text(
        json.dumps(
            {
                "baseline": str(baseline_path),
                "baseline_ledger": base_ledger,
                "fresh_ledger": fresh_ledger,
                "drifted": drifted,
                "ok": not drifted,
            },
            indent=2,
        )
        + "\n"
    )
    if drifted:
        print("\nFAIL: block-mode settlement drifted from the sync baseline: "
              f"{', '.join(drifted)}")
        return 1
    print("\nOK: block settlement reproduces the synchronous baseline exactly")
    return 0


def restart_check(baseline_path: pathlib.Path, run: bool) -> int:
    """Exact-equality gate on the warm-restart smoke counters.

    ``run_smoke.py --restart`` already asserts the hard invariants before
    it reports anything — the reopened cloud's first repeat query must be
    byte-identical to the never-restarted oracle with 0 index probes and
    0 PRF evaluations.  This check adds the regression dimension: the
    deterministic counters and histograms of the whole restart flow, plus
    the per-leg counter deltas, must reproduce the committed baseline bit
    for bit.  Any drift means the segment store, the warm checkpoint or
    the rehydration path changed behaviour and the baseline must be
    regenerated deliberately.
    """
    if not baseline_path.exists():
        print(f"no warm-restart baseline at {baseline_path}; "
              "run run_smoke.py --restart and commit the report")
        return 2
    baseline = load_report(baseline_path)
    if "restart_leg" not in baseline:
        print(f"{baseline_path} records no restart leg; regenerate it")
        return 2

    if run:
        subprocess.run(
            [sys.executable, str(HERE / "run_smoke.py"), "--restart"],
            check=True,
        )
    fresh = load_report(REPORTS / "BENCH_warm_restart.json")

    drifted: list[str] = []
    for section in ("counters", "histograms", "restart_leg"):
        base_sec = baseline.get(section, {})
        fresh_sec = fresh.get(section, {})
        drifted += sorted(
            f"{section}.{name}"
            for name in set(base_sec) | set(fresh_sec)
            if base_sec.get(name) != fresh_sec.get(name)
        )

    leg = fresh.get("restart_leg", {})
    lines = [
        "Warm-restart determinism check (reopen vs committed baseline)",
        "",
        f"restart leg: byte_identical={leg.get('byte_identical')} "
        f"index_probes={leg.get('index_probes')} prf_evals={leg.get('prf_evals')}",
        f"counters compared: {len(set(baseline.get('counters', {})) | set(fresh.get('counters', {})))}",
        f"histograms compared: {len(set(baseline.get('histograms', {})) | set(fresh.get('histograms', {})))}",
    ]
    if drifted:
        lines += ["", "DRIFTED:"] + [f"  {name}" for name in drifted]
    else:
        lines.append(
            "every counter, histogram and per-leg delta identical to baseline"
        )
    text = "\n".join(lines)
    print(text)
    REPORTS.mkdir(exist_ok=True)
    (REPORTS / "restart_check.txt").write_text(text + "\n")
    (REPORTS / "restart_check.json").write_text(
        json.dumps(
            {
                "baseline": str(baseline_path),
                "restart_leg": leg,
                "drifted": drifted,
                "ok": not drifted,
            },
            indent=2,
        )
        + "\n"
    )
    if drifted:
        print("\nFAIL: warm-restart counters drifted from the committed "
              f"baseline: {', '.join(drifted)}")
        return 1
    print("\nOK: warm restart reproduces the committed baseline exactly")
    return 0


def range_check(baseline_path: pathlib.Path, run: bool) -> int:
    """Exact-equality gate on the range-planner smoke counters.

    ``run_smoke.py --range`` already asserts the hard invariants before it
    reports anything — every plan verified, every intersection equal to
    the plaintext oracle, ``planner.dedup_saved > 0``.  This check adds
    the regression dimension: the ``planner.*`` family, the full
    deterministic counter snapshot and the value-histograms must reproduce
    the committed baseline bit for bit.  Planner work is a pure function
    of the query stream (same at any worker count, shard width or
    settlement mode), so any drift means plan compilation, leg dedup or
    the intersection semantics changed and the baseline must be
    regenerated deliberately.
    """
    if not baseline_path.exists():
        print(f"no range-planner baseline at {baseline_path}; "
              "run run_smoke.py --range and commit the report")
        return 2
    baseline = load_report(baseline_path)
    if "planner" not in baseline:
        print(f"{baseline_path} records no planner section; regenerate it")
        return 2

    if run:
        subprocess.run(
            [sys.executable, str(HERE / "run_smoke.py"), "--range"],
            check=True,
        )
    fresh = load_report(REPORTS / "BENCH_range.json")

    drifted: list[str] = []
    for section in ("planner", "counters", "histograms"):
        base_sec = baseline.get(section, {})
        fresh_sec = fresh.get(section, {})
        drifted += sorted(
            f"{section}.{name}"
            for name in set(base_sec) | set(fresh_sec)
            if base_sec.get(name) != fresh_sec.get(name)
        )

    planner = fresh.get("planner", {})
    lines = [
        "Range-planner determinism check (plan stream vs committed baseline)",
        "",
        f"planner: plans={planner.get('planner.plans')} "
        f"legs={planner.get('planner.legs')} "
        f"dedup_saved={planner.get('planner.dedup_saved')} "
        f"intersect_dropped={planner.get('planner.intersect_dropped')}",
        f"counters compared: {len(set(baseline.get('counters', {})) | set(fresh.get('counters', {})))}",
        f"histograms compared: {len(set(baseline.get('histograms', {})) | set(fresh.get('histograms', {})))}",
    ]
    if drifted:
        lines += ["", "DRIFTED:"] + [f"  {name}" for name in drifted]
    else:
        lines.append(
            "every planner counter, kernel counter and histogram identical "
            "to baseline"
        )
    text = "\n".join(lines)
    print(text)
    REPORTS.mkdir(exist_ok=True)
    (REPORTS / "range_check.txt").write_text(text + "\n")
    (REPORTS / "range_check.json").write_text(
        json.dumps(
            {
                "baseline": str(baseline_path),
                "planner": planner,
                "drifted": drifted,
                "ok": not drifted,
            },
            indent=2,
        )
        + "\n"
    )
    if drifted:
        print("\nFAIL: range-planner counters drifted from the committed "
              f"baseline: {', '.join(drifted)}")
        return 1
    print("\nOK: range planner reproduces the committed baseline exactly")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="gate on exact chaos-counter equality vs reports/BENCH_chaos.json",
    )
    parser.add_argument(
        "--settlement",
        action="store_true",
        help="gate block-mode settlement on bit-for-bit counter/ledger "
        "equality vs reports/BENCH_settlement_sync.json",
    )
    parser.add_argument(
        "--restart",
        action="store_true",
        help="gate the warm-restart smoke on bit-for-bit counter/leg "
        "equality vs reports/BENCH_warm_restart.json",
    )
    parser.add_argument(
        "--range",
        action="store_true",
        dest="range_planner",
        help="gate the range-planner smoke on bit-for-bit planner/counter "
        "equality vs reports/BENCH_range.json",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=REPORTS / "BENCH_smoke.json",
        help="committed baseline report (default: reports/BENCH_smoke.json)",
    )
    parser.add_argument(
        "--ratio",
        type=float,
        default=RATIO_LIMIT,
        help=f"wall-clock slowdown factor worth flagging (default {RATIO_LIMIT})",
    )
    parser.add_argument(
        "--miss-ratio",
        type=float,
        default=MISS_RATIO_LIMIT,
        help=f"cache miss-count inflation that fails the check (default {MISS_RATIO_LIMIT})",
    )
    parser.add_argument(
        "--strict-timing",
        action="store_true",
        help="fail on wall-clock regressions too (same-machine baselines only)",
    )
    parser.add_argument(
        "--no-run",
        action="store_true",
        help="skip re-running run_smoke.py; compare the report already on disk",
    )
    parser.add_argument(
        "--exact-counters",
        action="store_true",
        help="fail on ANY counter/histogram difference vs the baseline "
        "(the CI cross-worker determinism gate)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="re-run the smoke through a sharded serving tier of this width; "
        "the counter gate still compares against the (single-cloud) baseline "
        "— the tier must do identical protocol work",
    )
    args = parser.parse_args(argv)

    if args.chaos:
        baseline = args.baseline
        if baseline == REPORTS / "BENCH_smoke.json":  # the non-chaos default
            baseline = REPORTS / "BENCH_chaos.json"
        return chaos_check(baseline, run=not args.no_run)

    if args.settlement:
        baseline = args.baseline
        if baseline == REPORTS / "BENCH_smoke.json":  # the non-settlement default
            baseline = REPORTS / "BENCH_settlement_sync.json"
        return settlement_check(baseline, run=not args.no_run)

    if args.restart:
        baseline = args.baseline
        if baseline == REPORTS / "BENCH_smoke.json":  # the non-restart default
            baseline = REPORTS / "BENCH_warm_restart.json"
        return restart_check(baseline, run=not args.no_run)

    if args.range_planner:
        baseline = args.baseline
        if baseline == REPORTS / "BENCH_smoke.json":  # the non-range default
            baseline = REPORTS / "BENCH_range.json"
        return range_check(baseline, run=not args.no_run)

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run run_smoke.py and commit the report")
        return 2
    baseline = load_report(args.baseline)  # read BEFORE the run overwrites it

    if not args.no_run:
        cmd = [sys.executable, str(HERE / "run_smoke.py")]
        if args.shards > 1:
            cmd += ["--shards", str(args.shards)]
        subprocess.run(cmd, check=True)
    fresh = load_report(REPORTS / "BENCH_smoke.json")

    timing_rows = compare_timings(
        baseline.get("metrics", {}), fresh.get("metrics", {}), args.ratio, ABS_FLOOR_S
    )
    # Worker counter deltas merge into the parent and `parallel.*` shape
    # counters are excluded at the source, so counters compare across any
    # worker config — no "matching workers" caveat anymore.
    counters_comparable = bool(baseline.get("counters")) and bool(fresh.get("counters"))
    if counters_comparable:
        counter_note = "comparable: merged worker deltas, any worker config"
    else:
        counter_note = "informational: baseline predates counter reporting"
    counter_rows = compare_counters(
        baseline.get("counters", {}), fresh.get("counters", {}), args.miss_ratio
    )

    text = render(
        timing_rows, counter_rows, args.ratio, counters_comparable, counter_note,
        args.strict_timing,
    )

    counter_regressions = (
        [r for r in counter_rows if r["regressed"]] if counters_comparable else []
    )
    timing_regressions = [r for r in timing_rows if r["slow"]] if args.strict_timing else []
    timing_warnings = [r for r in timing_rows if r["slow"]]

    exact_drift: list[str] = []
    if args.exact_counters and counters_comparable:
        for section in ("counters", "histograms"):
            base_sec = baseline.get(section, {})
            fresh_sec = fresh.get(section, {})
            exact_drift += sorted(
                f"{section}.{name}"
                for name in set(base_sec) | set(fresh_sec)
                if base_sec.get(name) != fresh_sec.get(name)
            )
        if exact_drift:
            text += (
                "\n\nExact-counter gate: DRIFTED\n  "
                + "\n  ".join(exact_drift)
            )
        else:
            text += (
                "\n\nExact-counter gate: ok "
                "(every counter and value-histogram identical to baseline)"
            )
    print(text)
    REPORTS.mkdir(exist_ok=True)
    (REPORTS / "regression_check.txt").write_text(text + "\n")
    (REPORTS / "regression_check.json").write_text(
        json.dumps(
            {
                "ratio_limit": args.ratio,
                "abs_floor_s": ABS_FLOOR_S,
                "miss_ratio_limit": args.miss_ratio,
                "strict_timing": args.strict_timing,
                "counters_comparable": counters_comparable,
                "counter_note": counter_note,
                "exact_counters": args.exact_counters,
                "exact_drift": exact_drift,
                "timing_rows": timing_rows,
                "counter_rows": counter_rows,
                "regressed": [r["cache"] for r in counter_regressions]
                + [r["metric"] for r in timing_regressions],
                "timing_warnings": [r["metric"] for r in timing_warnings],
                "ok": not (counter_regressions or timing_regressions or exact_drift),
            },
            indent=2,
        )
        + "\n"
    )

    if counter_regressions or timing_regressions or exact_drift:
        names = ", ".join(
            [r["cache"] for r in counter_regressions]
            + [r["metric"] for r in timing_regressions]
            + exact_drift
        )
        print(f"\nFAIL: {names} regressed vs baseline")
        return 1
    if timing_warnings:
        names = ", ".join(r["metric"] for r in timing_warnings)
        print(
            f"\nOK (with warnings): {names} slower than {args.ratio:.1f}x baseline "
            "wall-clock — informational on cross-machine baselines"
        )
        return 0
    print("\nOK: no counter or timing metric regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
