#!/usr/bin/env python
"""Guard against performance regressions: fresh smoke run vs committed baseline.

Reads the committed ``reports/BENCH_smoke.json``, re-runs ``run_smoke.py``
(unless ``--no-run`` compares an already-fresh report), and fails when any
timed phase slowed down by more than ``--ratio`` (default 2x).  The
tolerance is deliberately generous: CI boxes are noisy and the smoke scale
is small, so only genuine order-of-magnitude mistakes — an accidentally
quadratic loop, a cache that stopped hitting — should trip it.  Timings
under an absolute floor (default 100 ms) are never flagged, whatever the
ratio, because at that size the noise *is* the measurement.

Writes ``reports/regression_check.txt`` / ``.json`` (the CI artifact) with
the per-metric comparison either way.

Usage:  PYTHONPATH=src python benchmarks/check_regression.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPORTS = HERE / "reports"

RATIO_LIMIT = 2.0
ABS_FLOOR_S = 0.10


def load_metrics(path: pathlib.Path) -> dict:
    data = json.loads(path.read_text())
    return data["metrics"]


def compare(baseline: dict, fresh: dict, ratio_limit: float, floor_s: float) -> list[dict]:
    """One comparison row per timed metric present in both reports."""
    rows = []
    for name in sorted(baseline):
        if not name.endswith("_s") or name not in fresh:
            continue
        base, now = float(baseline[name]), float(fresh[name])
        ratio = now / base if base else 0.0
        regressed = (
            base > 0
            and now > floor_s
            and ratio > ratio_limit
        )
        rows.append(
            {
                "metric": name,
                "baseline_s": base,
                "fresh_s": now,
                "ratio": ratio,
                "regressed": regressed,
            }
        )
    return rows


def render(rows: list[dict], ratio_limit: float) -> str:
    lines = [
        f"Smoke benchmark regression check (limit {ratio_limit:.1f}x, "
        f"floor {ABS_FLOOR_S * 1000:.0f} ms)",
        f"{'metric':<24} {'baseline':>10} {'fresh':>10} {'ratio':>7}  verdict",
    ]
    for row in rows:
        verdict = "REGRESSED" if row["regressed"] else "ok"
        lines.append(
            f"{row['metric']:<24} {row['baseline_s']:>9.4f}s {row['fresh_s']:>9.4f}s "
            f"{row['ratio']:>6.2f}x  {verdict}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=REPORTS / "BENCH_smoke.json",
        help="committed baseline report (default: reports/BENCH_smoke.json)",
    )
    parser.add_argument(
        "--ratio",
        type=float,
        default=RATIO_LIMIT,
        help=f"slowdown factor that fails the check (default {RATIO_LIMIT})",
    )
    parser.add_argument(
        "--no-run",
        action="store_true",
        help="skip re-running run_smoke.py; compare the report already on disk",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run run_smoke.py and commit the report")
        return 2
    baseline = load_metrics(args.baseline)  # read BEFORE the run overwrites it

    if not args.no_run:
        subprocess.run([sys.executable, str(HERE / "run_smoke.py")], check=True)
    fresh = load_metrics(REPORTS / "BENCH_smoke.json")

    rows = compare(baseline, fresh, args.ratio, ABS_FLOOR_S)
    text = render(rows, args.ratio)
    print(text)

    regressions = [r for r in rows if r["regressed"]]
    REPORTS.mkdir(exist_ok=True)
    (REPORTS / "regression_check.txt").write_text(text + "\n")
    (REPORTS / "regression_check.json").write_text(
        json.dumps(
            {
                "ratio_limit": args.ratio,
                "abs_floor_s": ABS_FLOOR_S,
                "rows": rows,
                "regressed": [r["metric"] for r in regressions],
                "ok": not regressions,
            },
            indent=2,
        )
        + "\n"
    )

    if regressions:
        names = ", ".join(r["metric"] for r in regressions)
        print(f"\nFAIL: {names} slowed down more than {args.ratio:.1f}x vs baseline")
        return 1
    print("\nOK: no metric regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
