"""Fig. 5 — time cost of Search: result generation and VO generation, for
equality search and order search (the paper plots 8-bit and 16-bit).

Paper shapes to reproduce:
* Fig. 5a: equality result-generation time rises faster at 8-bit than 16-bit
  (denser value space -> more qualified results per query).
* Fig. 5b: equality VO-generation stays small and grows when the bit count
  (hence the prime list) grows.
* Fig. 5c: order-search result generation grows with records at both
  settings (similar result counts).
* Fig. 5d: order-search VO generation grows with records and with bits.
"""

from __future__ import annotations

import pytest

from _harness import equality_queries_on_data, touch_benchmark, write_report
from repro.analysis.reporting import FigureReport
from repro.common.rng import default_rng
from repro.workloads.generator import WorkloadGenerator

_FIGS = {
    ("=", "results"): FigureReport("Fig 5a: equality search - result generation", "records", "seconds"),
    ("=", "vo"): FigureReport("Fig 5b: equality search - VO generation", "records", "seconds"),
    ("order", "results"): FigureReport("Fig 5c: order search - result generation", "records", "seconds"),
    ("order", "vo"): FigureReport("Fig 5d: order search - VO generation", "records", "seconds"),
}

BIT_SETTINGS = (8, 16)


def run_queries(deployment, queries):
    """Run a query batch; return (results_seconds, vo_seconds) averaged."""
    cloud = deployment.cloud
    cloud.stopwatch.reset()
    for query in queries:
        tokens = deployment.user.make_tokens(query)
        cloud.search(tokens)
    trials = max(len(queries), 1)
    return cloud.stopwatch.get("results") / trials, cloud.stopwatch.get("vo") / trials


@pytest.mark.parametrize("bits", BIT_SETTINGS)
@pytest.mark.parametrize("query_kind", ["=", "order"])
def test_fig5_search_sweep(benchmark, cache, scale, bits, query_kind):
    if bits not in scale.bit_settings:
        pytest.skip(f"{bits}-bit not in scale preset {scale.name}")
    counts = list(scale.record_counts)
    gen = WorkloadGenerator(default_rng(555 + bits))
    trials = scale.query_trials

    def sweep():
        points = []
        for n in counts:
            deployment = cache.get(n, bits)
            if query_kind == "=":
                queries = equality_queries_on_data(deployment, trials, default_rng(88 + n))
            else:
                queries = gen.order_queries(trials, bits)
            points.append((n, *run_queries(deployment, queries)))
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    res_series = _FIGS[(query_kind, "results")].new_series(f"{bits}-bit")
    vo_series = _FIGS[(query_kind, "vo")].new_series(f"{bits}-bit")
    for n, res_s, vo_s in points:
        res_series.add(n, res_s)
        vo_series.add(n, vo_s)

    # Shape: order-search VO generation grows with the prime-list size.
    # (Equality queries on sparse value spaces often match no keyword at
    # small scale, so their VO timing carries no signal there.)
    if query_kind == "order" and counts[-1] >= 8 * counts[0]:
        vo_times = vo_series.ys()
        assert vo_times[-1] >= vo_times[0]


def test_fig5_report(benchmark, cache, scale):
    touch_benchmark(benchmark)
    rendered = "\n\n".join(fig.render("{:.5f}") for fig in _FIGS.values())
    write_report(
        "fig5_search_time",
        rendered,
        data={"figures": [fig.as_dict() for fig in _FIGS.values()]},
    )
    assert all(fig.series for fig in _FIGS.values())
