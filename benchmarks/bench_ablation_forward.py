"""Ablation — what forward security costs.

The trapdoor-permutation chain is the price of insertion privacy: every
insert into an existing keyword performs one RSA private operation
(pi_sk^{-1}) at the owner, and every search walks the chain with public
operations at the cloud.  This bench isolates those costs against a
hypothetical non-forward-secure variant that reuses the same trapdoor
(epoch never advances).
"""

from __future__ import annotations

import pytest

from _harness import touch_benchmark, write_report
from repro.analysis.reporting import render_kv_table
from repro.common.rng import default_rng
from repro.common.timing import time_call
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle, SlicerParams
from repro.core.query import Query
from repro.core.records import Database, make_database
from repro.core.user import DataUser

PARAMS = SlicerParams.testing(value_bits=8)
KEYS = KeyBundle.generate(default_rng(4444), 1024)
EPOCHS = 10

_RESULTS: dict[str, float] = {}


def deploy_with_epochs(epochs: int):
    owner = DataOwner(PARAMS, keys=KEYS, rng=default_rng(10))
    cloud = CloudServer(PARAMS, KEYS.trapdoor.public)
    out = owner.build(make_database([("seed", 7)], bits=8))
    cloud.install(out.cloud_package)
    for i in range(epochs):
        add = Database(8)
        add.add(f"e{i}", 7)
        out = owner.insert(add)
        cloud.install(out.cloud_package)
    user = DataUser(PARAMS, out.user_package, default_rng(11))
    return owner, cloud, user


def test_ablation_owner_insert_cost(benchmark):
    """Per-insert owner cost: dominated by pi_sk^{-1} on hot keywords."""
    owner = DataOwner(PARAMS, keys=KEYS, rng=default_rng(12))
    owner.build(make_database([("seed", 7)], bits=8))
    counter = [0]

    def one_insert():
        add = Database(8)
        add.add(f"x{counter[0]}", 7)
        counter[0] += 1
        owner.insert(add)

    benchmark.pedantic(one_insert, rounds=5, iterations=1)


def test_ablation_search_walk_cost(benchmark):
    """Search cost grows with epoch depth (one pi_pk per epoch per token)."""
    owner, cloud, user = deploy_with_epochs(EPOCHS)
    tokens = user.make_tokens(Query.parse(7, "="))
    assert tokens[0].epoch == EPOCHS

    response = benchmark(cloud.search, tokens)
    assert len(response.all_entries()) == EPOCHS + 1
    _RESULTS["deep-chain entries"] = len(response.all_entries())


def test_ablation_epoch_depth_scaling(benchmark):
    touch_benchmark(benchmark)
    """Walking 2x the epochs costs measurably more at the cloud."""
    _, cloud_short, user_short = deploy_with_epochs(3)
    _, cloud_long, user_long = deploy_with_epochs(24)

    tokens_short = user_short.make_tokens(Query.parse(7, "="))
    tokens_long = user_long.make_tokens(Query.parse(7, "="))

    short_s = min(time_call(lambda: cloud_short.search(tokens_short))[0] for _ in range(3))
    long_s = min(time_call(lambda: cloud_long.search(tokens_long))[0] for _ in range(3))
    _RESULTS["search 3 epochs (s)"] = short_s
    _RESULTS["search 24 epochs (s)"] = long_s
    assert long_s > short_s


def test_ablation_forward_report(benchmark):
    touch_benchmark(benchmark)
    rows = [("Metric", "value")] + [(k, f"{v:.5f}" if isinstance(v, float) else str(v)) for k, v in _RESULTS.items()]
    write_report(
        "ablation_forward",
        render_kv_table("Ablation: forward security costs", rows),
        data={"metrics": dict(_RESULTS)},
    )
