"""Extension bench — multi-attribute scaling (Section V.F).

The extension indexes each attribute independently (attribute name inside
every tuple), so costs should scale *linearly in the attribute count* with
no cross-attribute interference.  This bench builds 1..4-attribute datasets
of fixed record count and checks index entries, keyword counts and
per-attribute query cost.
"""

from __future__ import annotations

import pytest

from _harness import bench_params, touch_benchmark, write_report
from repro.analysis.reporting import FigureReport
from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle
from repro.core.query import Query
from repro.core.user import DataUser
from repro.core.verify import verify_response
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

BITS = 8
N = 150

_FIG = FigureReport("Extension: multi-attribute scaling", "attributes", "count")
_ENTRIES = _FIG.new_series("index entries")
_PRIMES = _FIG.new_series("keywords")


@pytest.mark.parametrize("attributes", [1, 2, 3, 4])
def test_ext_multiattr_sweep(benchmark, attributes):
    params = bench_params(BITS)
    keys = KeyBundle.generate(default_rng(710), 1024)
    generator = WorkloadGenerator(default_rng(711 + attributes))
    spec = {f"attr{i}": WorkloadSpec(0, BITS) for i in range(attributes)}
    database = generator.attributed_database(N, spec)

    def build():
        owner = DataOwner(params, keys=keys, rng=default_rng(712))
        out = owner.build(database)
        return owner, out

    owner, out = benchmark.pedantic(build, rounds=1, iterations=1)
    entries = len(out.cloud_package.index)
    _ENTRIES.add(attributes, entries)
    _PRIMES.add(attributes, len(out.cloud_package.primes))

    # Exactly (1 + b) entries per attribute per record, no interference.
    assert entries == N * (1 + BITS) * attributes

    # A per-attribute query still verifies and touches only its namespace.
    cloud = CloudServer(params, keys.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(params, out.user_package, default_rng(713))
    query = Query.parse(100, ">", attribute="attr0")
    response = cloud.search(user.make_tokens(query))
    assert verify_response(params, cloud.ads_value, response).ok
    ids = user.decrypt_results(response)
    assert ids == database.ids_matching("attr0", query.predicate())


def test_ext_multiattr_report(benchmark):
    touch_benchmark(benchmark)
    write_report("ext_multiattr", _FIG.render("{:.0f}"), data={"figures": [_FIG.as_dict()]})
    entries = _ENTRIES.ys()
    if len(entries) >= 2:
        # Linear scaling: entries per attribute constant.
        ratios = [e / (i + 1) for i, e in enumerate(entries)]
        assert max(ratios) - min(ratios) < 1e-6
