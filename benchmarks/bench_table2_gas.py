"""Table II — gas cost of the smart contract.

Paper (Rinkeby):   deployment 745,346 | data insertion 29,144 | result
verification 94,531.

We meter the same operation sequence on the simulated chain with Ethereum's
published cost constants (see repro.blockchain.gas).  Absolute agreement
within a few percent for deployment/insertion; verification depends on the
modulus size (the MODEXP precompile term), so the target is the *shape*:

* deployment is a one-off dominated by code deposit + parameter storage,
* insertion is cheap and **independent of the batch size** (one digest
  SSTORE),
* verification sits in between, dominated by cryptographic precompiles.
"""

from __future__ import annotations

import pytest

from _harness import touch_benchmark, write_report
from repro.analysis.reporting import render_kv_table
from repro.common.rng import default_rng
from repro.core.params import SlicerParams
from repro.core.query import Query
from repro.core.records import Database, make_database
from repro.crypto.accumulator import AccumulatorParams
from repro.system import SlicerSystem

PAPER_GAS = {"deployment": 745_346, "insertion": 29_144, "verification": 94_531}


def table2_params() -> SlicerParams:
    """Contract-side sizes for the gas comparison: 1024-bit modulus, 256-bit
    primes.  The paper does not state its accumulator modulus; a 1024-bit
    MODEXP (21,760 gas under EIP-2565) is the size that reproduces the
    reported 94,531-gas verification, while 2048-bit would push the MODEXP
    term alone to 87,040."""
    return SlicerParams(
        value_bits=8, prime_bits=256, accumulator=AccumulatorParams.demo(1024)
    )


@pytest.fixture(scope="module")
def measured():
    system = SlicerSystem(table2_params(), rng=default_rng(2222))
    system.setup(make_database([(f"r{i}", (i * 11) % 256) for i in range(12)], bits=8))

    add_small = Database(8)
    add_small.add("s", 3)
    insert_small = system.insert(add_small).gas_used

    add_big = Database(8)
    for i in range(25):
        add_big.add(f"b{i}", (i * 7) % 256)
    insert_big = system.insert(add_big).gas_used

    outcome = system.search(Query.parse(11, "="))
    assert outcome.verified

    return {
        "deployment": system.deploy_receipt.gas_used,
        "insertion": insert_small,
        "insertion_big_batch": insert_big,
        "verification": outcome.settle_gas,
        "verification_breakdown": outcome.settle_receipt.gas_breakdown,
    }


def test_table2_report(benchmark, measured):
    rows = [
        ("Operation", "measured gas | paper gas"),
        ("Deployment", f"{measured['deployment']:,} | {PAPER_GAS['deployment']:,}"),
        ("Data insertion", f"{measured['insertion']:,} | {PAPER_GAS['insertion']:,}"),
        (
            "Result verification (equality)",
            f"{measured['verification']:,} | {PAPER_GAS['verification']:,}",
        ),
    ]
    write_report(
        "table2_gas",
        render_kv_table("Table II: gas cost of smart contract", rows),
        data={"gas": measured, "paper_gas": PAPER_GAS},
    )
    benchmark.extra_info.update({k: v for k, v in measured.items() if isinstance(v, int)})
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


class TestGasShapes:
    def test_deployment_within_paper_band(self, benchmark, measured):
        touch_benchmark(benchmark)
        assert abs(measured["deployment"] - PAPER_GAS["deployment"]) / PAPER_GAS[
            "deployment"
        ] < 0.10

    def test_insertion_within_paper_band(self, benchmark, measured):
        touch_benchmark(benchmark)
        assert abs(measured["insertion"] - PAPER_GAS["insertion"]) / PAPER_GAS[
            "insertion"
        ] < 0.15

    def test_insertion_batch_independent(self, benchmark, measured):
        touch_benchmark(benchmark)
        assert abs(measured["insertion_big_batch"] - measured["insertion"]) < 200

    def test_verification_order_of_magnitude(self, benchmark, measured):
        touch_benchmark(benchmark)
        """MODEXP pricing differences keep this a factor-level target."""
        assert PAPER_GAS["verification"] / 3 < measured["verification"] < PAPER_GAS[
            "verification"
        ] * 3

    def test_cost_ordering(self, benchmark, measured):
        touch_benchmark(benchmark)
        assert measured["deployment"] > measured["verification"] > measured["insertion"]

    def test_verification_dominated_by_crypto(self, benchmark, measured):
        touch_benchmark(benchmark)
        breakdown = measured["verification_breakdown"]
        crypto = breakdown.get("modexp", 0) + breakdown.get("primality", 0)
        non_crypto = sum(v for k, v in breakdown.items() if k not in ("modexp", "primality"))
        assert crypto > non_crypto - breakdown.get("intrinsic", 0)
