"""Fig. 7 — time cost of Insert, with a preloaded database.

The paper preloads 160K records (scaled by the preset here), inserts batches
of increasing size, and reports index time and ADS time separately.

Paper shapes to reproduce:
* both index and ADS insertion time grow proportionally with the number of
  inserted records;
* at 24-bit the ADS takes much more time than the index part (more distinct
  slices -> more prime representatives to compute).
"""

from __future__ import annotations

import pytest

from _harness import touch_benchmark, Deployment, bench_params, write_report
from repro.analysis.reporting import FigureReport
from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle
from repro.core.user import DataUser
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

_FIG7A = FigureReport("Fig 7a: Insert - index time", "inserted records", "seconds")
_FIG7B = FigureReport("Fig 7b: Insert - ADS time", "inserted records", "seconds")

_ADS_HEAVY: dict[int, tuple[float, float]] = {}


@pytest.mark.parametrize("bits", [8, 16, 24])
def test_fig7_insert_sweep(benchmark, cache, scale, bits):
    if bits not in scale.bit_settings:
        pytest.skip(f"{bits}-bit not in scale preset {scale.name}")

    params = bench_params(bits)
    keys = KeyBundle.generate(default_rng(900 + bits), 1024)
    generator = WorkloadGenerator(default_rng(901 + bits))

    def sweep():
        # Fresh owner preloaded with `scale.preload` records.
        owner = DataOwner(params, keys=keys, rng=default_rng(902 + bits))
        owner.build(generator.database(WorkloadSpec(scale.preload, bits)))
        points = []
        offset = scale.preload
        for count in scale.insert_counts:
            batch = generator.database(WorkloadSpec(count, bits), id_offset=offset)
            offset += count
            owner.stopwatch.reset()
            owner.insert(batch)
            points.append(
                (count, owner.stopwatch.get("index"), owner.stopwatch.get("ads"))
            )
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    index_series = _FIG7A.new_series(f"{bits}-bit")
    ads_series = _FIG7B.new_series(f"{bits}-bit")
    for count, index_s, ads_s in points:
        index_series.add(count, index_s)
        ads_series.add(count, ads_s)

    # Shape: cost grows with the insert batch size (20% noise tolerance).
    index_times = index_series.ys()
    assert all(b >= a * 0.8 for a, b in zip(index_times, index_times[1:]))
    assert index_times[-1] > index_times[0]
    assert ads_series.ys()[-1] >= ads_series.ys()[0]
    _ADS_HEAVY[bits] = (sum(index_series.ys()), sum(ads_series.ys()))


def test_fig7_ads_dominates_at_24bit(benchmark, scale):
    touch_benchmark(benchmark)
    """The paper's observation: at 24 bits the ADS dominates insert cost."""
    if 24 not in _ADS_HEAVY:
        pytest.skip("24-bit sweep not run at this scale")
    index_total, ads_total = _ADS_HEAVY[24]
    assert ads_total > index_total


def test_fig7_report(benchmark, scale):
    touch_benchmark(benchmark)
    write_report(
        "fig7_insert_time",
        _FIG7A.render() + "\n\n" + _FIG7B.render(),
        data={"figures": [_FIG7A.as_dict(), _FIG7B.as_dict()]},
    )
    assert _FIG7A.series
