"""Shared benchmark harness: parameter presets, deployment cache, reports.

The figures all sweep (record count x bit width) over the *same* deployments,
so builds are cached per (n, bits) and reused across benchmark modules.  The
cache also retains the phase timings (index vs ADS; the Fig. 3 / Fig. 7
split) captured by the owner's stopwatch during the one real build.

Crypto parameter sizes default to benchmark-grade (512-bit accumulator,
64-bit prime representatives) so the default sweep finishes in minutes of
pure Python; set ``REPRO_BENCH_PARAMS=paper`` for the paper's 2048-bit /
256-bit sizes (hours).  Either way the *shapes* the paper reports are
preserved; EXPERIMENTS.md records which preset produced the committed
numbers.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass

from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle, SlicerParams
from repro.core.records import Database
from repro.core.user import DataUser
from repro.crypto.accumulator import AccumulatorParams
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

REPORT_DIR = pathlib.Path(__file__).resolve().parent / "reports"


def bench_workers() -> int:
    """Worker count for the sweep: the ``REPRO_BENCH_WORKERS`` dimension.

    ``0`` (the default) defers to the engine's own resolution (the
    ``REPRO_WORKERS`` env / serial); any positive value pins the fan-out.
    """
    raw = os.environ.get("REPRO_BENCH_WORKERS", "0")
    try:
        workers = int(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_BENCH_WORKERS must be an integer, got {raw!r}") from exc
    if workers < 0:
        raise ValueError("REPRO_BENCH_WORKERS must be >= 0")
    return workers


def bench_params(bits: int) -> SlicerParams:
    """Protocol parameters for benchmarking (see module docstring)."""
    if os.environ.get("REPRO_BENCH_PARAMS", "").lower() == "paper":
        return SlicerParams(
            value_bits=bits,
            prime_bits=256,
            accumulator=AccumulatorParams.demo(2048),
            workers=bench_workers(),
        )
    return SlicerParams(
        value_bits=bits,
        prime_bits=64,
        accumulator=AccumulatorParams.demo(512, default_rng(7)),
        workers=bench_workers(),
    )


@dataclass
class Deployment:
    """One built system plus the measurements captured during its build."""

    params: SlicerParams
    owner: DataOwner
    cloud: CloudServer
    user: DataUser
    database: Database
    build_index_s: float
    build_ads_s: float
    index_bytes: int
    ads_bytes: int

    @property
    def n_records(self) -> int:
        return len(self.database)


class DeploymentCache:
    """Builds (n, bits) deployments once and shares them across benches."""

    def __init__(self, trapdoor_bits: int = 1024) -> None:
        self._deployments: dict[tuple[int, int], Deployment] = {}
        self._keys = KeyBundle.generate(default_rng(2026), trapdoor_bits)

    def get(self, n: int, bits: int) -> Deployment:
        key = (n, bits)
        if key not in self._deployments:
            self._deployments[key] = self._build(n, bits)
        return self._deployments[key]

    def _build(self, n: int, bits: int) -> Deployment:
        params = bench_params(bits)
        generator = WorkloadGenerator(default_rng(1000 + n + bits))
        database = generator.database(WorkloadSpec(n, bits))
        owner = DataOwner(params, keys=self._keys, rng=default_rng(n * 31 + bits))
        output = owner.build(database)
        cloud = CloudServer(params, self._keys.trapdoor.public)
        cloud.install(output.cloud_package)
        user = DataUser(params, output.user_package, default_rng(5))
        return Deployment(
            params=params,
            owner=owner,
            cloud=cloud,
            user=user,
            database=database,
            build_index_s=owner.stopwatch.get("index"),
            build_ads_s=owner.stopwatch.get("ads"),
            index_bytes=output.cloud_package.index.size_bytes,
            ads_bytes=output.cloud_package.prime_bytes,
        )


def equality_queries_on_data(deployment: Deployment, count: int, rng) -> list:
    """Equality queries drawn from *stored* values.

    The paper queries uniform random values at 160K records, where most
    values exist; at reduced scale a uniform 16-bit draw nearly always
    misses, which would flatten Fig. 5a/5b to zero.  Sampling stored values
    reproduces the paper-scale hit behaviour: 8-bit queries match many
    duplicates, 16-bit queries match ~1 record.
    """
    from repro.core.query import MatchCondition, Query

    values = deployment.database.values()
    return [
        Query(values[rng.randint_below(len(values))], MatchCondition.EQUAL)
        for _ in range(count)
    ]


def touch_benchmark(benchmark) -> None:
    """Register a no-op measurement so report/shape tests still run under
    ``--benchmark-only`` (which skips tests that never call the fixture)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def write_report(name: str, text: str, data: dict | None = None) -> None:
    """Persist a rendered figure/table and echo it to stdout.

    When ``data`` is given, a machine-readable twin is written next to the
    text report as ``BENCH_<name>.json`` (with the environment knobs that
    produced it stamped in), so downstream tooling never scrapes tables.
    """
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    if data is not None:
        payload = {
            "name": name,
            "env": {
                "bench_params": os.environ.get("REPRO_BENCH_PARAMS", "default"),
                "bench_workers": bench_workers(),
                "scale": os.environ.get("REPRO_SCALE", "default"),
                "cpu_count": os.cpu_count(),
            },
            **data,
        }
        json_path = REPORT_DIR / f"BENCH_{name}.json"
        json_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{text}\n[report written to {path}]")
