"""Ablation — the range-search design space Slicer sits in.

Four ways to answer ``lo <= a <= hi`` over outsourced encrypted data, all
implemented in this repository, measured on one workload:

| scheme | tokens | verifiable | value privacy at verification |
|---|---|---|---|
| keyword SSE + enumeration | O(range width) | no | n/a |
| dyadic range-tree SSE | O(b) | no | n/a |
| ServeDB-style Merkle tree | O(b) nodes | yes | **values leak** |
| Slicer (SORE + accumulator) | O(b) | yes, publicly | preserved |

The bench measures token counts, index blowup, VO sizes and the privacy
leak surface, asserting the qualitative table above.
"""

from __future__ import annotations

import pytest

from _harness import touch_benchmark, write_report
from repro.analysis.reporting import render_kv_table
from repro.baselines.keyword_sse import KeywordSse
from repro.baselines.range_tree_sse import RangeTreeSse
from repro.baselines.servedb import ServeDbIndex, ServeDbVerifier
from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle, SlicerParams
from repro.core.records import Database
from repro.core.user import DataUser, RangeQuery
from repro.core.verify import verify_response

BITS = 8
N = 120
LO, HI = 40, 180

RECORDS = [((7919 * i % 1000).to_bytes(8, "big"), (i * 37) % 256) for i in range(N)]
EXPECTED = {rid for rid, v in RECORDS if LO <= v <= HI}

_ROWS: dict[str, str] = {}


def test_ablation_keyword_enumeration(benchmark):
    sse = KeywordSse(default_rng(1), trapdoor_bits=512)
    sse.insert_values(RECORDS)
    ids, tokens = benchmark.pedantic(
        lambda: sse.range_search_by_enumeration(LO, HI), rounds=1, iterations=1
    )
    assert ids == EXPECTED
    _ROWS["keyword-SSE enumeration tokens"] = str(tokens)
    assert tokens > 4 * BITS  # the infeasibility gap


def test_ablation_range_tree(benchmark):
    tree = RangeTreeSse(BITS, default_rng(2), trapdoor_bits=512)
    tree.insert_values(RECORDS)
    ids, tokens = benchmark.pedantic(
        lambda: tree.range_search(LO, HI), rounds=1, iterations=1
    )
    assert ids == EXPECTED
    _ROWS["range-tree SSE tokens"] = str(tokens)
    _ROWS["range-tree SSE index entries"] = str(tree.index_entries)
    assert tokens <= 2 * BITS


def test_ablation_servedb(benchmark):
    index = ServeDbIndex(RECORDS, BITS, default_rng(3))
    verifier = ServeDbVerifier(index.root, BITS)
    response = benchmark.pedantic(lambda: index.query(LO, HI), rounds=1, iterations=1)
    assert verifier.verify(LO, HI, response)
    got = {index.cipher.decrypt(c) for n in response.nodes for c in n.ciphertexts}
    assert got == EXPECTED
    _ROWS["ServeDB VO bytes"] = str(response.vo_bytes)
    _ROWS["ServeDB values revealed to verifier"] = str(len(response.revealed_values))
    assert response.revealed_values  # the privacy leak


def test_ablation_slicer(benchmark):
    params = SlicerParams.testing(value_bits=BITS)
    keys = KeyBundle.generate(default_rng(4), 512)
    owner = DataOwner(params, keys=keys, rng=default_rng(5))
    db = Database(BITS)
    for rid, v in RECORDS:
        db.add(rid, v)
    out = owner.build(db)
    cloud = CloudServer(params, keys.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(params, out.user_package, default_rng(6))

    def run():
        sides = []
        total_tokens = 0
        vo_bytes = 0
        for _, tokens in user.range_tokens(RangeQuery(LO, HI)):
            total_tokens += len(tokens)
            response = cloud.search(tokens)
            vo_bytes += response.witness_bytes
            assert verify_response(params, cloud.ads_value, response).ok
            sides.append(user.decrypt_results(response))
        return DataUser.intersect_range_results(sides), total_tokens, vo_bytes

    ids, tokens, vo_bytes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ids == EXPECTED
    _ROWS["Slicer tokens (two-sided)"] = str(tokens)
    _ROWS["Slicer VO bytes"] = str(vo_bytes)
    _ROWS["Slicer index entries"] = str(len(out.cloud_package.index))
    _ROWS["Slicer values revealed to verifier"] = "0"
    assert tokens <= 2 * BITS


def test_ablation_rangeschemes_report(benchmark):
    touch_benchmark(benchmark)
    rows = [("Scheme / metric", "value")] + sorted(_ROWS.items())
    write_report(
        "ablation_rangeschemes",
        render_kv_table("Ablation: range-search design space", rows),
        data={"metrics": dict(sorted(_ROWS.items()))},
    )
    # The qualitative claims of the comparison table:
    if "keyword-SSE enumeration tokens" in _ROWS and "Slicer tokens (two-sided)" in _ROWS:
        assert int(_ROWS["keyword-SSE enumeration tokens"]) > int(
            _ROWS["Slicer tokens (two-sided)"]
        )
    if "ServeDB values revealed to verifier" in _ROWS:
        assert int(_ROWS["ServeDB values revealed to verifier"]) > 0
