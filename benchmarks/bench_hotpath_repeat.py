"""Repeat-traffic hot path: the epoch-suffix entry cache under query skew.

Production search traffic is repeat-heavy — a few hot queries dominate (the
Zipf shape of real query logs).  This sweep plays the same deterministic
query stream against one deployment four ways, per popularity shape
(:class:`~repro.workloads.generator.QueryPopularity` UNIFORM vs ZIPF):

* ``reference`` — ``REPRO_KERNELS=0``: the plain primitives, no caches;
* ``cold``  — kernels on, but every cache cleared before *each* query:
  the first-ever-query cost, paid for every query in the stream;
* ``first`` — the stream played once against an initially-empty cache:
  repeats *within* the stream already splice cached epoch suffixes;
* ``warm``  — the same stream replayed fully warm: the steady-state
  repeat cost, which the entry cache makes O(new data) = O(0) here.

Byte-identity is asserted *before* any timing is recorded: every pass —
including a batched ``search_many`` over the whole stream — must reproduce
the kernels-off responses byte for byte.  The JSON twin records the
``cloud.entry_cache.*`` / ``cloud.collect.*`` counter snapshots next to
every timing so the speedups are attributable (spliced entries up, index
probes and PRF evaluations down), not anecdotal.  The ZIPF warm pass must
beat the cold pass by >= 5x or the sweep fails.
"""

from __future__ import annotations

import os

from _harness import bench_params, touch_benchmark, write_report
from repro.analysis.reporting import FigureReport
from repro.common import perfstats
from repro.common.rng import default_rng
from repro.common.timing import time_call
from repro.core import wire
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle
from repro.core.user import DataUser
from repro.crypto import kernels
from repro.workloads.generator import (
    QueryPopularity,
    WorkloadGenerator,
    WorkloadSpec,
)

BITS = 8

#: Queries per stream and the size of the pool they are drawn from.
STREAM = 24
POOL = 8

#: The acceptance bar: ZIPF warm replay vs forced-cold, same stream.
MIN_ZIPF_SPEEDUP = 5.0

_KEYS = KeyBundle.generate(default_rng(2029), 1024)

_FIG = FigureReport(
    "Repeat-traffic search: stream wall-clock by record count",
    "records",
    "seconds",
)
_SERIES = {
    (mode, leg): _FIG.new_series(f"{mode.value}-{leg}")
    for mode in (QueryPopularity.UNIFORM, QueryPopularity.ZIPF)
    for leg in ("cold", "first", "warm")
}

_RESULTS: dict[str, dict] = {}

_COUNTER_PREFIXES = ("cloud.entry_cache.", "cloud.collect.", "batch.")


def _with_kernels(enabled: bool, fn):
    old = os.environ.get(kernels.KERNELS_ENV)
    os.environ[kernels.KERNELS_ENV] = "1" if enabled else "0"
    try:
        return fn()
    finally:
        if old is None:
            del os.environ[kernels.KERNELS_ENV]
        else:
            os.environ[kernels.KERNELS_ENV] = old


def _counters() -> dict[str, int]:
    return {
        k: v
        for k, v in perfstats.snapshot().items()
        if k.startswith(_COUNTER_PREFIXES)
    }


def _run_streams(n: int, popularity: QueryPopularity) -> dict:
    """One deployment, one deterministic skewed stream, four passes."""
    params = bench_params(BITS)
    generator = WorkloadGenerator(default_rng(9000 + n))
    database = generator.database(WorkloadSpec(n, BITS))
    owner = DataOwner(params, keys=_KEYS, rng=default_rng(n))
    out = owner.build(database)
    cloud = CloudServer(params, _KEYS.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(params, out.user_package, default_rng(5))

    # The popularity draws come from their own generator so UNIFORM and
    # ZIPF rank the *same* candidate pool, merely with different skew.
    qgen = WorkloadGenerator(default_rng(77))
    stream = qgen.popular_queries(STREAM, BITS, popularity=popularity, pool_size=POOL)
    token_lists = [user.make_tokens(query) for query in stream]

    # Ground truth: kernels (and thus every cache) disabled outright.
    reference = _with_kernels(
        False, lambda: [wire.dump_response(cloud.search(t)) for t in token_lists]
    )

    def cold_pass() -> list[bytes]:
        dumps = []
        for tokens in token_lists:
            kernels.clear_caches()  # includes the registered entry cache
            dumps.append(wire.dump_response(cloud.search(tokens)))
        return dumps

    kernels.clear_caches()
    perfstats.reset()
    cold_s, cold = time_call(lambda: _with_kernels(True, cold_pass))
    cold_counters = _counters()

    def replay() -> list[bytes]:
        return [wire.dump_response(cloud.search(t)) for t in token_lists]

    kernels.clear_caches()
    perfstats.reset()
    first_s, first = time_call(lambda: _with_kernels(True, replay))
    first_counters = _counters()

    perfstats.reset()
    warm_s, warm = time_call(lambda: _with_kernels(True, replay))
    warm_counters = _counters()

    # Batched collection over the whole stream on a cleared cache: the
    # cross-query dedup alone collapses repeats to one collect each.
    kernels.clear_caches()
    perfstats.reset()
    batch_s, batch = time_call(
        lambda: _with_kernels(True, lambda: cloud.search_many(token_lists))
    )
    batch_counters = _counters()
    batch_dumps = [wire.dump_response(r) for r in batch]

    # Byte-identity gates the timings: every pass reproduces the plain-
    # primitive responses exactly, or the numbers below mean nothing.
    assert cold == reference, "forced-cold pass drifted from kernels-off"
    assert first == reference, "first (filling) pass drifted from kernels-off"
    assert warm == reference, "warm replay drifted from kernels-off"
    assert batch_dumps == reference, "batched search drifted from kernels-off"

    # Counter-verified attribution: the warm replay splices cached epoch
    # suffixes instead of probing the index / evaluating PRFs.
    assert warm_counters.get("cloud.entry_cache.spliced_entries", 0) > 0
    assert warm_counters.get("cloud.entry_cache.miss", 0) == 0
    probes = "cloud.collect.index_probes"
    prf = "cloud.collect.prf_evals"
    assert warm_counters.get(probes, 0) < cold_counters.get(probes, 0)
    assert warm_counters.get(prf, 0) < cold_counters.get(prf, 0)

    return {
        "timings": {
            "cold_s": cold_s,
            "first_s": first_s,
            "warm_s": warm_s,
            "batch_s": batch_s,
        },
        "speedup": {
            "warm_vs_cold": cold_s / warm_s if warm_s else 0.0,
            "first_vs_cold": cold_s / first_s if first_s else 0.0,
            "batch_vs_cold": cold_s / batch_s if batch_s else 0.0,
        },
        "counters": {
            "cold": cold_counters,
            "first": first_counters,
            "warm": warm_counters,
            "batch": batch_counters,
        },
        "stream": {
            "queries": STREAM,
            "pool": POOL,
            "distinct_queries": len({(q.value, q.condition) for q in stream}),
        },
    }


def test_hotpath_repeat_sweep(benchmark, scale):
    def sweep():
        for n in scale.record_counts:
            for mode in (QueryPopularity.UNIFORM, QueryPopularity.ZIPF):
                result = _run_streams(n, mode)
                _RESULTS[f"{mode.value}/{n}"] = result
                for leg in ("cold", "first", "warm"):
                    _SERIES[(mode, leg)].add(n, result["timings"][f"{leg}_s"])
                if mode is QueryPopularity.ZIPF:
                    speedup = result["speedup"]["warm_vs_cold"]
                    assert speedup >= MIN_ZIPF_SPEEDUP, (
                        f"ZIPF warm replay only {speedup:.1f}x faster than "
                        f"cold at n={n} (need >= {MIN_ZIPF_SPEEDUP}x)"
                    )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(_RESULTS) == 2 * len(scale.record_counts)


def test_hotpath_repeat_report(benchmark, scale):
    touch_benchmark(benchmark)
    write_report(
        "hotpath_repeat",
        _FIG.render("{:.4f}"),
        data={
            "figures": [_FIG.as_dict()],
            "records_sweep": list(scale.record_counts),
            "value_bits": BITS,
            "stream_queries": STREAM,
            "pool_size": POOL,
            "min_zipf_speedup": MIN_ZIPF_SPEEDUP,
            "per_stream": dict(sorted(_RESULTS.items())),
            "responses_identical": True,  # asserted during the sweep
        },
    )
    assert all(series.ys() for series in _SERIES.values())
