#!/usr/bin/env python
"""Block settlement bench: batched-verify savings vs per-query settlement.

Settling a block's worth of escrows lets the cloud fold every membership
self-check of the round through the trusted ``batch_verify_membership``
kernel — one multi-exponentiation for N witnesses instead of one full
``pow`` each — and moves amortisation from the transaction (sync mode's
``batch_verify_and_settle``) to the *block*, keeping each verdict
individually provable from the header's settlement root.

Byte-identity is a precondition of every timing this file reports:

* the block-mode batch responses must equal the per-query sync responses
  byte for byte, with equal verdicts and final balances, before either
  flow is timed;
* the batched kernel's verdict must equal the AND of the naive per-item
  ``pow`` checks over the exact same (prime, witness) pairs before the
  kernel loop is timed.

Kernel memo caches are process-global, so each leg starts cold
(``kernels.clear_caches()`` + registry reset) to keep counters comparable.

Usage:  PYTHONPATH=src python benchmarks/bench_block_settlement.py
"""

from __future__ import annotations

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _harness import bench_params, bench_workers, write_report  # noqa: E402
from repro.analysis.reporting import render_kv_table  # noqa: E402
from repro.common.rng import default_rng  # noqa: E402
from repro.common.timing import time_call  # noqa: E402
from repro.core import wire  # noqa: E402
from repro.core.owner import DataOwner  # noqa: E402
from repro.core.params import KeyBundle  # noqa: E402
from repro.core.query import Query  # noqa: E402
from repro.crypto import kernels  # noqa: E402
from repro.crypto import modmath  # noqa: E402
from repro.obs.metrics import REGISTRY  # noqa: E402
from repro.system import SlicerSystem  # noqa: E402
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec  # noqa: E402

N_RECORDS = 120
BITS = 8
KERNEL_REPEATS = 5

#: One block's worth of settlements: equality hits, range scans, a miss.
QUERIES = [
    Query.parse(64, ">"),
    Query.parse(64, "<"),
    Query.parse(200, ">"),
    Query.parse(32, "<"),
    Query.parse(101, "="),
    Query.parse(128, ">"),
]


def fresh_system(keys, mode: str) -> SlicerSystem:
    kernels.clear_caches()
    REGISTRY.reset()
    params = bench_params(BITS)
    owner = DataOwner(params, keys=keys, rng=default_rng(12))
    system = SlicerSystem(
        params, rng=default_rng(5), owner=owner, settlement_mode=mode
    )
    system.setup(WorkloadGenerator(default_rng(404)).database(WorkloadSpec(N_RECORDS, BITS)))
    return system


def main() -> int:
    keys = KeyBundle.generate(default_rng(31337), 1024)

    # Identity pass (untimed): the block-mode batch must produce the same
    # responses and verdicts as per-query sync settlement, and leave the
    # same balances behind.
    sync_probe = fresh_system(keys, "sync")
    sync_ref = [sync_probe.search(q) for q in QUERIES]
    block_probe = fresh_system(keys, "block")
    block_ref = block_probe.batch_search(QUERIES)
    assert [wire.dump_response(o.response) for o in block_ref] == [
        wire.dump_response(o.response) for o in sync_ref
    ], "block-mode batch responses drifted from per-query sync responses"
    assert [o.verified for o in block_ref] == [o.verified for o in sync_ref]
    assert block_probe.balances() == sync_probe.balances(), (
        "block-mode escrow arithmetic drifted from sync"
    )

    # Timed flows on cold caches (the identity pass warmed both equally).
    per_query = fresh_system(keys, "sync")
    sync_height_before = per_query.chain.height
    per_query_s, sync_outcomes = time_call(
        lambda: [per_query.search(q) for q in QUERIES]
    )
    sync_settle_gas = sum(o.settle_receipt.gas_used for o in sync_outcomes)
    sync_blocks = per_query.chain.height - sync_height_before

    batched = fresh_system(keys, "block")
    height_before = batched.chain.height
    batched_s, block_outcomes = time_call(lambda: batched.batch_search(QUERIES))
    counters = REGISTRY.snapshot()["counters"]
    block_settle_gas = sum(o.settle_receipt.gas_used for o in block_outcomes)
    settle_blocks = len({o.settle_height for o in block_outcomes})
    assert settle_blocks == 1, "one block must carry the whole round"

    # Kernel micro-bench: the trusted self-check fold vs naive per-item
    # pows, over the exact (prime, witness) pairs the block round produced.
    modulus = batched.params.accumulator.modulus
    ads = batched.cloud.ads_value
    items: list[tuple[int, int]] = []
    for outcome in block_outcomes:
        items.extend(outcome.response.membership_items)

    def naive() -> bool:
        return all(modmath.powmod(w, p, modulus) == ads for p, w in items)

    def folded() -> bool:
        return kernels.batch_verify_membership(modulus, ads, items)

    assert naive() and folded(), (
        "batched self-check verdict must equal the per-item AND"
    )
    naive_s, _ = time_call(lambda: [naive() for _ in range(KERNEL_REPEATS)])
    folded_s, _ = time_call(lambda: [folded() for _ in range(KERNEL_REPEATS)])

    metrics = {
        "queries": len(QUERIES),
        "records": N_RECORDS,
        "value_bits": BITS,
        "per_query_flow_s": per_query_s,
        "block_flow_s": batched_s,
        "sync_settle_gas": sync_settle_gas,
        "block_settle_gas": block_settle_gas,
        "settle_blocks": settle_blocks,
        "sync_blocks_mined": sync_blocks,
        "block_blocks_mined": batched.chain.height - height_before,
        "selfcheck_items": len(items),
        "kernel_repeats": KERNEL_REPEATS,
        "naive_membership_s": naive_s,
        "batched_membership_s": folded_s,
        "kernel_speedup": naive_s / folded_s if folded_s else 0.0,
        "batch_verify_calls": counters.get("batch_verify.calls", 0),
        "batch_verify_witnesses": counters.get("batch_verify.witnesses", 0),
        "byte_identity_vs_sync": True,
    }
    rows = [("Metric", "value")] + [
        (k, f"{v:.4f}" if isinstance(v, float) else str(v)) for k, v in metrics.items()
    ]
    write_report(
        "block_settlement",
        render_kv_table("Block settlement bench (byte-identity asserted)", rows),
        data={
            "config": {
                "records": N_RECORDS,
                "queries": len(QUERIES),
                "value_bits": BITS,
                "kernel_repeats": KERNEL_REPEATS,
                "workers": bench_workers(),
            },
            "metrics": metrics,
        },
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
