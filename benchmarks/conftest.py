"""Benchmark fixtures: the shared deployment cache and the scale preset."""

from __future__ import annotations

import sys
import pathlib

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _harness import DeploymentCache  # noqa: E402
from repro.workloads.scaling import current_scale  # noqa: E402


@pytest.fixture(scope="session")
def cache() -> DeploymentCache:
    return DeploymentCache()


@pytest.fixture(scope="session")
def scale():
    return current_scale()
