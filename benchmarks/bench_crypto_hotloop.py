"""Crypto hot-loop benchmark: staged primality pipeline + modmath backends.

Two claims this file substantiates, one machine-independent and one timed:

* **Witness-schedule reduction (counter evidence).**  The seed code ran the
  full deterministic Miller-Rabin witness schedule (13 proven bases below
  3.3e24, 40 random rounds above) on every candidate that survived the
  primorial gcd.  The staged pipeline pays one base-2 round per surviving
  candidate and completes with a single strong Lucas test (below 2^64) or
  the remaining schedule only for probable primes.  Both pipelines are
  replayed here over the *same* deterministic ``H_prime`` candidate streams
  and their round counts compared exactly — no clocks involved, so the
  >= 3x reduction gates in CI on any hardware.
* **Cold Build/Insert wall-clock (timed evidence).**  The same deployment
  flow runs once per available modmath backend with the new pipeline and
  once with a legacy-equivalent shim (identical accept/reject decisions,
  seed-code witness schedule), asserting byte-identical outputs before any
  timing is recorded.  The committed JSON records the measured speedup.

The legacy shim is injected by monkeypatching the ``test_candidate``
reference ``hash_to_prime`` holds — the production tree carries no legacy
code path or env knob.
"""

from __future__ import annotations

from _harness import touch_benchmark, write_report
from repro.common.rng import default_rng
from repro.common.timing import time_call
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle, SlicerParams
from repro.core.query import Query
from repro.core.user import DataUser
from repro.core.verify import verify_response
from repro.crypto import hash_to_prime as h2p_module
from repro.crypto import kernels, modmath
from repro.crypto.accumulator import AccumulatorParams
from repro.crypto.hash_to_prime import HashToPrime
from repro.crypto.primes import (
    _DETERMINISTIC_BOUND,
    _DETERMINISTIC_WITNESSES,
    _miller_rabin_round,
    _presieve_ok,
    CandidateVerdict,
)
from repro.crypto.primes import test_candidate as check_candidate
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

BITS = 8
N_RECORDS = 140
N_INSERT = 40

#: Random witness rounds the seed code ran above the proven bound.
LEGACY_RANDOM_ROUNDS = 40

#: The counter leg must show at least this much witness-schedule reduction
#: at smoke scale (64-bit representatives) — the ISSUE acceptance floor.
MIN_ROUND_REDUCTION = 3.0

#: Interleaved repetitions per timing arm; best-of-N is reported.
TIMING_REPS = 3

_KEYS = KeyBundle.generate(default_rng(2026), 1024)

_RESULTS: dict = {}


# ------------------------------------------------- legacy pipeline replay


def _legacy_rounds(n: int, rng) -> int:
    """MR rounds the seed pipeline would execute on candidate ``n``.

    Mirrors the seed ``is_prime``: primorial gcd, then the witness schedule
    run to first failure.  ``rng`` stands in for the seed code's shared RNG
    above the proven bound (witness *values* differ from any historical run,
    but the expected round count does not).
    """
    if n < 2 or not _presieve_ok(n):
        return 0
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < _DETERMINISTIC_BOUND:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n]
    else:
        witnesses = [rng.randrange(2, n - 1) for _ in range(LEGACY_RANDOM_ROUNDS)]
    rounds = 0
    for a in witnesses:
        rounds += 1
        if not _miller_rabin_round(n, a, d, r):
            break
    return rounds


def _legacy_test_candidate(n: int) -> CandidateVerdict:
    """Decision-equivalent legacy pipeline for the wall-clock A/B.

    Runs the seed witness schedule (full deterministic list below 3.3e24)
    and reports its cost through the same verdict type, so the instrumented
    ``H_prime`` walk — and every byte derived from it — is unchanged; only
    the work per candidate differs.  Valid for benchmark representatives
    (64-bit), which sit entirely below the proven bound where both
    pipelines are deterministically correct.
    """
    if n < 2:
        return CandidateVerdict(False, 0, 0, True)
    if not _presieve_ok(n):
        return CandidateVerdict(False, 0, 0, True)
    if n <= 349:
        return check_candidate(n)
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n]
    rounds = 0
    for a in witnesses:
        rounds += 1
        if not _miller_rabin_round(n, a, d, r):
            return CandidateVerdict(False, rounds, 0, rounds == 1)
    return CandidateVerdict(True, rounds, 0, False)


def _candidate_streams(prime_bits: int, walks: int) -> list[int]:
    """Every candidate the deterministic ``H_prime`` walks visit."""
    h = HashToPrime(prime_bits)
    candidates: list[int] = []
    for i in range(walks):
        data = b"hotloop" + i.to_bytes(4, "big")
        counter = 0
        while True:
            candidate = h._candidate(data, counter)
            candidates.append(candidate)
            if check_candidate(candidate).probable_prime:
                break
            counter += 1
    return candidates


def _round_comparison(prime_bits: int, walks: int) -> dict:
    candidates = _candidate_streams(prime_bits, walks)
    rng = default_rng(0xC0FFEE)
    legacy = sum(_legacy_rounds(n, rng) for n in candidates)
    new_mr = 0
    new_lucas = 0
    fast_rejects = 0
    for n in candidates:
        verdict = check_candidate(n)
        new_mr += verdict.mr_rounds
        new_lucas += verdict.lucas_tests
        fast_rejects += verdict.fast_reject
    new_total = new_mr + new_lucas
    return {
        "prime_bits": prime_bits,
        "walks": walks,
        "candidates": len(candidates),
        "fast_rejects": fast_rejects,
        "legacy_mr_rounds": legacy,
        "new_mr_rounds": new_mr,
        "new_lucas_tests": new_lucas,
        "round_reduction_mr_only": legacy / new_mr if new_mr else 0.0,
        "round_reduction_total": legacy / new_total if new_total else 0.0,
    }


# ----------------------------------------------------- timed deployment flow


def _run_flow() -> tuple[dict[str, float], dict]:
    """Cold Build -> search -> Insert -> search, every seed fixed."""
    params = SlicerParams(
        value_bits=BITS,
        prime_bits=64,
        accumulator=AccumulatorParams.demo(512, default_rng(7)),
    )
    generator = WorkloadGenerator(default_rng(6100))
    database = generator.database(WorkloadSpec(N_RECORDS, BITS))
    add = generator.database(WorkloadSpec(N_INSERT, BITS))

    kernels.clear_caches()
    owner = DataOwner(params, keys=_KEYS, rng=default_rng(61))
    build_s, out = time_call(lambda: owner.build(database))
    cloud = CloudServer(params, _KEYS.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(params, out.user_package, default_rng(5))

    tokens = user.make_tokens(Query.parse(64, ">"))
    search_s, response = time_call(lambda: cloud.search(tokens))
    report = verify_response(params, cloud.ads_value, response)
    assert report.ok

    insert_s, out2 = time_call(lambda: owner.insert(add))
    cloud.install(out2.cloud_package)
    user.refresh(out2.user_package)
    tokens2 = user.make_tokens(Query.parse(64, "<"))
    search2_s, response2 = time_call(lambda: cloud.search(tokens2))
    assert verify_response(params, cloud.ads_value, response2).ok

    timings = {
        "build_s": build_s,
        "search_s": search_s,
        "insert_s": insert_s,
        "search_after_insert_s": search2_s,
    }
    outputs = {
        "primes": list(out.cloud_package.primes) + list(out2.cloud_package.primes),
        "ads": (out.chain_ads, out2.chain_ads),
        "final_ads": cloud.ads_value,
        "entries": [r.entries for r in response.results]
        + [r.entries for r in response2.results],
        "witnesses": [r.witness.value for r in response.results]
        + [r.witness.value for r in response2.results],
    }
    return timings, outputs


def _with_legacy_pipeline(fn):
    """Run ``fn`` with the decision-equivalent seed witness schedule."""
    original = h2p_module.test_candidate
    h2p_module.test_candidate = _legacy_test_candidate
    try:
        return fn()
    finally:
        h2p_module.test_candidate = original


# ------------------------------------------------------------------- tests


def test_round_reduction(benchmark):
    """Machine-independent gate: the staged pipeline cuts witness rounds by
    >= 3x at smoke scale (and records the 256-bit figure alongside)."""

    def measure():
        _RESULTS["rounds_64"] = _round_comparison(64, walks=400)
        _RESULTS["rounds_256"] = _round_comparison(256, walks=40)

    benchmark.pedantic(measure, rounds=1, iterations=1)
    reduction = _RESULTS["rounds_64"]["round_reduction_total"]
    assert reduction >= MIN_ROUND_REDUCTION, (
        f"witness-round reduction {reduction:.2f}x below the "
        f"{MIN_ROUND_REDUCTION}x floor"
    )


def test_backend_wallclock(benchmark):
    """Timed legs: new-vs-legacy pipeline A/B per available modmath backend,
    byte-identity asserted before any timing counts."""

    def measure():
        reference = None
        backends = {}
        for name in modmath.available_backends():
            modmath.set_backend(name)
            try:
                # Interleave the arms and keep the per-metric minimum: the
                # flows are sub-second, so best-of-N cancels scheduler and
                # allocator drift that a single A/B pair cannot.
                legacy_t: dict[str, float] = {}
                new_t: dict[str, float] = {}
                legacy_out = new_out = None
                for _ in range(TIMING_REPS):
                    t, legacy_out = _with_legacy_pipeline(_run_flow)
                    legacy_t = {k: min(v, legacy_t.get(k, v)) for k, v in t.items()}
                    t, new_out = _run_flow()
                    new_t = {k: min(v, new_t.get(k, v)) for k, v in t.items()}
            finally:
                modmath.set_backend(None)
            assert new_out == legacy_out, f"{name}: pipeline changed protocol bytes"
            if reference is None:
                reference = new_out
            else:
                assert new_out == reference, f"{name}: backend changed protocol bytes"

            def ratio(a: float, b: float) -> float:
                return a / b if b else 0.0

            backends[name] = {
                "legacy": legacy_t,
                "new": new_t,
                "timing_reps": TIMING_REPS,
                "speedup_vs_legacy": {
                    k: ratio(legacy_t[k], new_t[k]) for k in new_t
                },
            }
        _RESULTS["backends"] = backends
        _RESULTS["outputs_identical"] = True

    benchmark.pedantic(measure, rounds=1, iterations=1)
    build_speedups = [
        b["speedup_vs_legacy"]["build_s"] for b in _RESULTS["backends"].values()
    ]
    # The ISSUE asks for a measured cold Build win on at least one backend;
    # the floor is conservative because CI hardware is noisy.
    assert max(build_speedups) > 1.1, f"no Build speedup measured: {build_speedups}"


def test_hotloop_report(benchmark):
    touch_benchmark(benchmark)
    r64 = _RESULTS["rounds_64"]
    r256 = _RESULTS["rounds_256"]
    lines = [
        "Crypto hot loop: staged primality pipeline vs seed witness schedule",
        "",
        f"64-bit representatives ({r64['walks']} H_prime walks, "
        f"{r64['candidates']} candidates, {r64['fast_rejects']} fast-rejected):",
        f"  legacy MR rounds : {r64['legacy_mr_rounds']}",
        f"  new MR rounds    : {r64['new_mr_rounds']} "
        f"(+{r64['new_lucas_tests']} Lucas completions)",
        f"  reduction        : {r64['round_reduction_total']:.2f}x "
        f"(MR-only {r64['round_reduction_mr_only']:.2f}x)",
        "",
        f"256-bit representatives ({r256['walks']} walks, "
        f"{r256['candidates']} candidates):",
        f"  legacy MR rounds : {r256['legacy_mr_rounds']}",
        f"  new MR rounds    : {r256['new_mr_rounds']} "
        f"(+{r256['new_lucas_tests']} Lucas completions)",
        f"  reduction        : {r256['round_reduction_total']:.2f}x",
        "",
        "Cold deployment wall-clock (new pipeline vs legacy shim):",
    ]
    for name, data in _RESULTS["backends"].items():
        s = data["speedup_vs_legacy"]
        lines.append(
            f"  [{name}] build {data['new']['build_s']:.3f}s "
            f"({s['build_s']:.2f}x), insert {data['new']['insert_s']:.3f}s "
            f"({s['insert_s']:.2f}x), search {data['new']['search_s']:.4f}s"
        )
    write_report(
        "crypto_hotloop",
        "\n".join(lines),
        data={
            "modmath": modmath.backend_info(),
            "round_reduction_floor": MIN_ROUND_REDUCTION,
            **_RESULTS,
        },
    )
    assert _RESULTS["outputs_identical"]
