"""Extension bench — witness precomputation at the cloud.

Quantifies the latency/throughput trade behind ``precompute_witnesses``:
per-query VO generation drops from one full-product exponentiation to a
dictionary lookup, paid for by an O(|X| log |X|) batch at install time.
Break-even is a handful of queries per update cycle.
"""

from __future__ import annotations

import pytest

from _harness import touch_benchmark, write_report
from repro.analysis.reporting import render_kv_table
from repro.common.rng import default_rng
from repro.common.timing import time_call
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle, SlicerParams
from repro.core.user import DataUser
from repro.core.query import MatchCondition, Query
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

N, BITS = 400, 8
_ROWS: dict[str, float] = {}


@pytest.fixture(scope="module")
def deployment():
    params = SlicerParams.testing(value_bits=BITS)
    keys = KeyBundle.generate(default_rng(720), 1024)
    owner = DataOwner(params, keys=keys, rng=default_rng(721))
    db = WorkloadGenerator(default_rng(722)).database(WorkloadSpec(N, BITS))
    out = owner.build(db)
    cloud = CloudServer(params, keys.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(params, out.user_package, default_rng(723))
    return cloud, user


def _queries(user, count=5):
    rng = default_rng(724)
    return [Query(rng.randint_below(1 << BITS), MatchCondition.GREATER) for _ in range(count)]


def test_ext_live_vo_generation(benchmark, deployment):
    cloud, user = deployment
    token_lists = [user.make_tokens(q) for q in _queries(user)]

    def run():
        for tokens in token_lists:
            cloud.search(tokens)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS["live VO: 5 queries (s)"] = min(time_call(run)[0] for _ in range(2))


def test_ext_precompute_cost(benchmark, deployment):
    cloud, _ = deployment
    elapsed, count = time_call(cloud.precompute_witnesses)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _ROWS["precompute witnesses (s)"] = elapsed
    _ROWS["witnesses cached"] = float(count)


def test_ext_cached_vo_generation(benchmark, deployment):
    cloud, user = deployment
    if cloud._witness_cache is None:
        cloud.precompute_witnesses()
    token_lists = [user.make_tokens(q) for q in _queries(user)]

    def run():
        for tokens in token_lists:
            cloud.search(tokens)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS["cached VO: 5 queries (s)"] = min(time_call(run)[0] for _ in range(2))


def test_ext_witness_cache_report(benchmark):
    touch_benchmark(benchmark)
    rows = [("Metric", "value")] + [
        (k, f"{v:.4f}") for k, v in sorted(_ROWS.items())
    ]
    write_report(
        "ext_witness_cache",
        render_kv_table("Extension: witness precomputation", rows),
        data={"metrics": dict(sorted(_ROWS.items()))},
    )
    if {"live VO: 5 queries (s)", "cached VO: 5 queries (s)"} <= _ROWS.keys():
        assert _ROWS["cached VO: 5 queries (s)"] < _ROWS["live VO: 5 queries (s)"]
