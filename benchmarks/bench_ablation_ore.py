"""Ablation — SORE vs. the ORE/OPE family it is built from.

DESIGN.md calls out the SORE design choices: one ciphertext unit per *bit*
(vs. per block), tuple matching (vs. pairwise comparison), and a left/right
split inherited from Lewi-Wu.  This bench quantifies the trade-offs the
paper argues qualitatively in Sections II.B and V.B:

* ciphertext size: SORE ~ b PRF images; CLWW ~ 2 bits/symbol; Lewi-Wu right
  ciphertexts ~ domain-size symbols; OPE ~ one integer.
* comparison model: SORE compares by set intersection (exact-match
  friendly -> usable as SSE keywords); the others need pairwise scans.
* keyword-SSE enumeration: the strawman whose token count explodes with the
  range width.
"""

from __future__ import annotations

import pytest

from _harness import touch_benchmark, write_report
from repro.analysis.reporting import render_kv_table
from repro.baselines.keyword_sse import KeywordSse
from repro.baselines.ope import OpeScheme
from repro.baselines.ore_clww import ClwwOre
from repro.baselines.ore_lewi_wu import LewiWuOre
from repro.common.rng import default_rng
from repro.sore.scheme import SoreScheme
from repro.sore.tuples import OrderCondition

BITS = 8
DOMAIN = 1 << BITS

SORE = SoreScheme(b"ablation-sore-ke", BITS, rng=default_rng(1))
CLWW = ClwwOre(b"ablation-clww-ke", BITS)
LEWI = LewiWuOre(b"ablation-lewi-ke", BITS, default_rng(2))
OPE = OpeScheme(b"ablation-ope-key", BITS)

_SIZES: dict[str, int] = {}


def test_ablation_encrypt_sore(benchmark):
    ct = benchmark(SORE.encrypt, 173)
    _SIZES["SORE"] = sum(len(i) for i in ct.images)


def test_ablation_encrypt_clww(benchmark):
    ct = benchmark(CLWW.encrypt, 173)
    _SIZES["CLWW"] = ct.size_bytes


def test_ablation_encrypt_lewi_wu_right(benchmark):
    ct = benchmark(LEWI.encrypt_right, 173)
    _SIZES["LewiWu-right"] = ct.size_bytes


def test_ablation_encrypt_ope(benchmark):
    ct = benchmark(OPE.encrypt, 173)
    _SIZES["OPE"] = (OPE.range_bits + 7) // 8


def test_ablation_compare_sore(benchmark):
    token = SORE.token(100, OrderCondition.GREATER)
    ct = SORE.encrypt(42)
    assert benchmark(SORE.compare, ct, token)


def test_ablation_compare_clww(benchmark):
    a, b = CLWW.encrypt(100), CLWW.encrypt(42)
    assert benchmark(ClwwOre.compare, a, b) == 1


def test_ablation_compare_lewi_wu(benchmark):
    left, right = LEWI.encrypt_left(100), LEWI.encrypt_right(42)
    assert benchmark(LewiWuOre.compare, left, right) == 1


def test_ablation_range_token_explosion(benchmark):
    """Keyword-SSE range-by-enumeration vs. SORE's b tokens."""
    sse = KeywordSse(default_rng(3), trapdoor_bits=512)
    sse.insert_values([(i.to_bytes(8, "big"), i) for i in range(DOMAIN)])

    def enumerate_range():
        return sse.range_search_by_enumeration(10, 200)[1]

    tokens = benchmark.pedantic(enumerate_range, rounds=1, iterations=1)
    assert tokens == 191  # one token per value in the range
    _SIZES["keyword-sse-range-tokens"] = tokens
    _SIZES["sore-range-tokens"] = BITS  # at most b slices per side


def test_ablation_report(benchmark):
    touch_benchmark(benchmark)
    rows = [("Scheme / metric", "value")]
    rows += [(k, f"{v:,}") for k, v in sorted(_SIZES.items())]
    write_report(
        "ablation_ore",
        render_kv_table("Ablation: ORE family ciphertext sizes (bytes) and range tokens", rows),
        data={"sizes": dict(sorted(_SIZES.items()))},
    )
    # Shapes: CLWW is the most compact (2 bits/symbol); SORE pays b PRF
    # images (linear in b); Lewi-Wu right ciphertexts grow EXPONENTIALLY in
    # b (one symbol per domain element), which is why the paper's SORE keeps
    # only the left/right *idea* and drops the per-domain-element table.
    if {"SORE", "CLWW"} <= _SIZES.keys():
        assert _SIZES["SORE"] > _SIZES["CLWW"]
    small = LewiWuOre(b"ablation-lewi-k2", 4, default_rng(9)).encrypt_right(0).size_bytes
    big = LEWI.encrypt_right(0).size_bytes
    assert big - 16 >= 8 * (small - 16)  # exponential growth beyond the nonce
