"""Fig. 4 — storage cost of Build: encrypted index and ADS (prime list).

Paper shapes to reproduce:
* Fig. 4a: index storage is **proportional** to the record count (each
  record maps to a constant number of index entries).
* Fig. 4b: ADS storage for 8-bit values is **constant** (bounded keyword
  space); 16/24-bit grow linearly but stay practical.
"""

from __future__ import annotations

import pytest

from _harness import touch_benchmark, write_report
from repro.analysis.reporting import FigureReport

_FIG4A = FigureReport("Fig 4a: Build - index storage", "records", "MB")
_FIG4B = FigureReport("Fig 4b: Build - ADS storage", "records", "MB")

MB = 1024.0 * 1024.0


@pytest.mark.parametrize("bits", [8, 16, 24])
def test_fig4_storage_sweep(benchmark, cache, scale, bits):
    if bits not in scale.bit_settings:
        pytest.skip(f"{bits}-bit not in scale preset {scale.name}")
    counts = list(scale.record_counts)

    def sweep():
        return [cache.get(n, bits) for n in counts]

    deployments = benchmark.pedantic(sweep, rounds=1, iterations=1)

    index_series = _FIG4A.new_series(f"{bits}-bit")
    ads_series = _FIG4B.new_series(f"{bits}-bit")
    for d in deployments:
        index_series.add(d.n_records, d.index_bytes / MB)
        ads_series.add(d.n_records, d.ads_bytes / MB)

    # Fig 4a: proportionality — bytes per record constant across the sweep.
    per_record = [d.index_bytes / d.n_records for d in deployments]
    assert max(per_record) / min(per_record) < 1.05

    if bits == 8 and counts[-1] >= 2 * (1 << bits):
        # Fig 4b plateau (needs the value space saturated): doubling the
        # records must grow the ADS by only a few percent.
        last, prev = deployments[-1], deployments[-2]
        assert last.ads_bytes <= prev.ads_bytes * 1.10
    elif bits != 8:
        sizes = [d.ads_bytes for d in deployments]
        assert sizes == sorted(sizes)


def test_fig4_report(benchmark, cache, scale):
    touch_benchmark(benchmark)
    write_report(
        "fig4_build_storage",
        _FIG4A.render() + "\n\n" + _FIG4B.render(),
        data={"figures": [_FIG4A.as_dict(), _FIG4B.as_dict()]},
    )
    assert _FIG4A.series and _FIG4B.series
