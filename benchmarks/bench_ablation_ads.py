"""Ablation — RSA accumulator vs. Merkle Hash Tree as the ADS.

The paper (Section III.B) picks the RSA accumulator because its proof is
constant-size and leaks nothing about neighbours, at the price of bignum
exponentiation.  This bench measures both sides of that trade on the same
set sizes: witness size, witness generation time, verification time.
"""

from __future__ import annotations

import pytest

from _harness import touch_benchmark, write_report
from repro.analysis.reporting import FigureReport
from repro.common.rng import default_rng
from repro.crypto.accumulator import Accumulator, AccumulatorParams, verify_membership
from repro.crypto.hash_to_prime import HashToPrime
from repro.crypto.merkle import MerkleTree, verify_merkle

SIZES = (64, 256, 1024)
PARAMS = AccumulatorParams.demo(512)
H = HashToPrime(64)

_PROOF_SIZES = FigureReport("Ablation: ADS proof size", "set size", "bytes")
_ACC_SERIES = _PROOF_SIZES.new_series("RSA accumulator")
_MHT_SERIES = _PROOF_SIZES.new_series("Merkle tree")


def elements(n: int) -> list[bytes]:
    return [i.to_bytes(8, "big") for i in range(n)]


@pytest.mark.parametrize("n", SIZES)
def test_ablation_accumulator_witness(benchmark, n):
    primes = [H(e) for e in elements(n)]
    acc = Accumulator(PARAMS.public(), primes)

    witness = benchmark.pedantic(acc.witness, args=(primes[n // 2],), rounds=1, iterations=1)
    assert verify_membership(PARAMS, acc.value, primes[n // 2], witness)
    _ACC_SERIES.add(n, (witness.value.bit_length() + 7) // 8)


@pytest.mark.parametrize("n", SIZES)
def test_ablation_merkle_proof(benchmark, n):
    tree = MerkleTree(elements(n))
    proof = benchmark.pedantic(tree.prove, args=(n // 2,), rounds=1, iterations=1)
    assert verify_merkle(tree.root, elements(n)[n // 2], proof)
    _MHT_SERIES.add(n, proof.size_bytes)


@pytest.mark.parametrize("n", [256])
def test_ablation_verify_cost(benchmark, n):
    """Verification side: one modexp vs. log(n) hashes."""
    primes = [H(e) for e in elements(n)]
    acc = Accumulator(PARAMS.public(), primes)
    witness = acc.witness(primes[0])
    benchmark(verify_membership, PARAMS, acc.value, primes[0], witness)


def test_ablation_ads_report(benchmark):
    touch_benchmark(benchmark)
    write_report(
        "ablation_ads",
        _PROOF_SIZES.render("{:.0f}"),
        data={"figures": [_PROOF_SIZES.as_dict()]},
    )
    acc_sizes = _ACC_SERIES.ys()
    mht_sizes = _MHT_SERIES.ys()
    if acc_sizes and mht_sizes:
        # Accumulator witnesses are constant-size; Merkle proofs grow with n.
        assert max(acc_sizes) == min(acc_sizes)
        assert mht_sizes == sorted(mht_sizes) and mht_sizes[-1] > mht_sizes[0]
        # At large n the Merkle proof overtakes the constant witness.
        assert mht_sizes[-1] > 0
