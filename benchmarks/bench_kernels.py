"""Crypto kernel sweep: cold vs warm caches vs kernels disabled.

For each record count (the paper's Fig. 5 x-axis) the same deployment flow
runs three ways on a single core:

* ``off``  — ``REPRO_KERNELS=0``: the plain primitives;
* ``cold`` — kernels on, every process-local cache cleared first: the
  first-query cost (memo misses, table builds);
* ``warm`` — the same query repeated against the now-warm caches: the
  repeat-query cost the memo layer exists for.

Equality is asserted *inside the sweep*: the kernels-on flow must reproduce
the kernels-off flow's search results, witnesses, primes and ADS value
byte-for-byte before any timing is recorded.  The JSON twin records the
perf-counter snapshot (hits/misses per cache) next to every timing, so the
reported speedups are attributable, not anecdotal.
"""

from __future__ import annotations

import os

from _harness import bench_params, touch_benchmark, write_report
from repro.analysis.reporting import FigureReport
from repro.common import perfstats
from repro.common.rng import default_rng
from repro.common.timing import time_call
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle
from repro.core.query import Query
from repro.core.user import DataUser
from repro.core.verify import verify_response
from repro.crypto import kernels
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

BITS = 16

#: Inserts per flow for the insert-heavy phase (each followed by a search).
N_INSERT_ROUNDS = 3

_KEYS = KeyBundle.generate(default_rng(2028), 1024)

_FIG = FigureReport(
    "Crypto kernels: search wall-clock by record count",
    "records",
    "seconds",
)
_OFF = _FIG.new_series("kernels-off")
_COLD = _FIG.new_series("kernels-cold")
_WARM = _FIG.new_series("kernels-warm")

_RESULTS: dict[int, dict] = {}


def _run_flow(n: int) -> tuple[dict[str, float], dict]:
    """One deterministic Build -> search -> repeat -> insert-heavy flow.

    Every RNG is seeded from ``n`` alone, so the kernels-on and kernels-off
    runs see identical bytes end to end and their outputs must match.
    """
    params = bench_params(BITS)
    generator = WorkloadGenerator(default_rng(5000 + n))
    database = generator.database(WorkloadSpec(n, BITS))
    adds = [
        generator.database(WorkloadSpec(max(10, n // 10), BITS))
        for _ in range(N_INSERT_ROUNDS)
    ]
    owner = DataOwner(params, keys=_KEYS, rng=default_rng(n))
    build_s, out = time_call(lambda: owner.build(database))
    cloud = CloudServer(params, _KEYS.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(params, out.user_package, default_rng(5))

    tokens = user.make_tokens(Query.parse(1 << (BITS - 1), ">"))
    search_cold_s, response = time_call(lambda: cloud.search(tokens))
    search_warm_s, repeat = time_call(lambda: cloud.search(tokens))
    verify_s, report = time_call(
        lambda: verify_response(params, cloud.ads_value, response)
    )
    assert report.ok

    def insert_heavy() -> None:
        for add in adds:
            update = owner.insert(add)
            cloud.install(update.cloud_package)
            user.refresh(update.user_package)
            cloud.search(user.make_tokens(Query.parse(1 << (BITS - 1), "<")))

    insert_heavy_s, _ = time_call(insert_heavy)

    timings = {
        "build_s": build_s,
        "search_cold_s": search_cold_s,
        "search_warm_s": search_warm_s,
        "verify_s": verify_s,
        "insert_heavy_s": insert_heavy_s,
    }
    outputs = {
        "primes": list(out.cloud_package.primes),
        "ads": out.chain_ads,
        "entries": [r.entries for r in response.results],
        "witnesses": [r.witness.value for r in response.results],
        "repeat_witnesses": [r.witness.value for r in repeat.results],
        "final_ads": cloud.ads_value,
    }
    return timings, outputs


def _with_kernels(enabled: bool, fn):
    old = os.environ.get(kernels.KERNELS_ENV)
    os.environ[kernels.KERNELS_ENV] = "1" if enabled else "0"
    try:
        return fn()
    finally:
        if old is None:
            del os.environ[kernels.KERNELS_ENV]
        else:
            os.environ[kernels.KERNELS_ENV] = old


def test_kernel_sweep(benchmark, scale):
    def sweep():
        for n in scale.record_counts:
            off_t, off_out = _with_kernels(False, lambda: _run_flow(n))

            kernels.clear_caches()
            perfstats.reset()
            on_t, on_out = _with_kernels(True, lambda: _run_flow(n))
            counters = perfstats.snapshot()
            rates = perfstats.rates()
            sizes = kernels.cache_sizes()

            # Warm repeat must equal the cold pass, and the whole kernels-on
            # flow must equal the kernels-off flow — or the timing is void.
            assert on_out["repeat_witnesses"] == on_out["witnesses"]
            assert on_out == off_out

            def ratio(a: float, b: float) -> float:
                return a / b if b else 0.0

            _RESULTS[n] = {
                "off": off_t,
                "on": on_t,
                "speedup": {
                    "search_warm_vs_off": ratio(off_t["search_cold_s"], on_t["search_warm_s"]),
                    "search_warm_vs_cold": ratio(on_t["search_cold_s"], on_t["search_warm_s"]),
                    "search_cold_vs_off": ratio(off_t["search_cold_s"], on_t["search_cold_s"]),
                    "insert_heavy_vs_off": ratio(off_t["insert_heavy_s"], on_t["insert_heavy_s"]),
                    "build_vs_off": ratio(off_t["build_s"], on_t["build_s"]),
                    "verify_vs_off": ratio(off_t["verify_s"], on_t["verify_s"]),
                },
                "counters": counters,
                "hit_rates": rates,
                "cache_sizes": sizes,
            }
            _OFF.add(n, off_t["search_cold_s"])
            _COLD.add(n, on_t["search_cold_s"])
            _WARM.add(n, on_t["search_warm_s"])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert set(_RESULTS) == set(scale.record_counts)


def test_kernel_report(benchmark, scale):
    touch_benchmark(benchmark)
    write_report(
        "kernels",
        _FIG.render("{:.4f}"),
        data={
            "figures": [_FIG.as_dict()],
            "records_sweep": list(scale.record_counts),
            "value_bits": BITS,
            "insert_rounds": N_INSERT_ROUNDS,
            "per_records": {str(n): r for n, r in sorted(_RESULTS.items())},
            "outputs_identical": True,  # asserted during the sweep
        },
    )
    assert _OFF.ys() and _COLD.ys() and _WARM.ys()
