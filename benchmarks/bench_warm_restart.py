"""Extension bench — durable segment store and warm restart.

Quantifies what the epoch-segment store buys a restarted cloud: reopen
replays the committed segments and rehydrates the witness, trapdoor-chain
and entry caches from the warm checkpoint, so the first repeat query after
a restart runs at cache speed instead of paying a full cold walk plus
witness exponentiation.  Byte-identity against the never-restarted cloud
is asserted *before* any timing is recorded — a fast wrong answer is not a
result.
"""

from __future__ import annotations

import shutil
import tempfile

import pytest

from _harness import touch_benchmark, write_report
from repro.analysis.reporting import render_kv_table
from repro.common import perfstats
from repro.common.rng import default_rng
from repro.common.timing import time_call
from repro.core import wire
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle, SlicerParams
from repro.core.query import MatchCondition, Query
from repro.core.user import DataUser
from repro.crypto import kernels
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

N, N_INSERT, BITS = 400, 40, 8
HOT_REPEATS = 8  # Zipf-ish head: the same hot query dominates the stream
_ROWS: dict[str, float] = {}
_BLOBS: dict[str, bytes] = {}


@pytest.fixture(scope="module")
def deployment():
    params = SlicerParams.testing(value_bits=BITS)
    keys = KeyBundle.generate(default_rng(880), 1024)
    owner = DataOwner(params, keys=keys, rng=default_rng(881))
    generator = WorkloadGenerator(default_rng(882))
    store_dir = tempfile.mkdtemp(prefix="slicer-bench-segstore-")

    cloud = CloudServer(params, keys.trapdoor.public)
    cloud.attach_store(store_dir)
    out = owner.build(generator.database(WorkloadSpec(N, BITS)))
    cloud.install(out.cloud_package)
    delta = owner.insert(generator.database(WorkloadSpec(N_INSERT, BITS)))
    cloud.install(delta.cloud_package)
    cloud.precompute_witnesses()

    user = DataUser(params, delta.user_package, default_rng(883))
    hot = user.make_tokens(Query(170, MatchCondition.GREATER))
    yield params, keys, cloud, store_dir, hot
    shutil.rmtree(store_dir, ignore_errors=True)


def test_restart_cold_first_query(benchmark, deployment):
    _, _, cloud, _, hot = deployment
    kernels.clear_caches()  # the walk every restart would pay without a store

    elapsed, response = time_call(lambda: cloud.search(hot))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _ROWS["cold first query (s)"] = elapsed
    _BLOBS["hot"] = wire.dump_response(response)


def test_restart_live_warm_query(benchmark, deployment):
    _, _, cloud, _, hot = deployment
    for _ in range(HOT_REPEATS):  # warm the repeat-witness and entry caches
        cloud.search(hot)

    elapsed, response = time_call(lambda: cloud.search(hot))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert wire.dump_response(response) == _BLOBS["hot"]
    _ROWS["live warm repeat (s)"] = elapsed


def test_restart_checkpoint_and_reopen(benchmark, deployment):
    params, keys, cloud, store_dir, _ = deployment
    elapsed, _ = time_call(cloud.checkpoint)
    _ROWS["checkpoint (s)"] = elapsed

    kernels.clear_caches()  # a new process starts with empty global memos
    resumed = CloudServer(params, keys.trapdoor.public)
    elapsed, _ = time_call(lambda: (resumed.reopen(store_dir), resumed.prime_count))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _ROWS["reopen + rehydrate (s)"] = elapsed
    deployment_cache["resumed"] = resumed


deployment_cache: dict[str, CloudServer] = {}


def test_restart_reopened_warm_query(benchmark, deployment):
    _, _, _, _, hot = deployment
    resumed = deployment_cache["resumed"]

    # Byte-identity and cache-speed invariants come before the stopwatch.
    base = perfstats.snapshot()
    blob = wire.dump_response(resumed.search(hot))
    delta = perfstats.delta_since(base)
    assert blob == _BLOBS["hot"]
    assert delta.get("cloud.collect.index_probes", 0) == 0
    assert delta.get("cloud.collect.prf_evals", 0) == 0

    elapsed, response = time_call(lambda: resumed.search(hot))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert wire.dump_response(response) == _BLOBS["hot"]
    _ROWS["reopened warm repeat (s)"] = elapsed


def test_restart_report(benchmark):
    touch_benchmark(benchmark)
    cold = _ROWS.get("cold first query (s)", 0.0)
    reopened = _ROWS.get("reopened warm repeat (s)", 0.0)
    if cold and reopened:
        _ROWS["restart speedup (x)"] = cold / reopened
    rows = [("Metric", "value")] + [
        (k, f"{v:.4f}") for k, v in sorted(_ROWS.items())
    ]
    write_report(
        "ext_warm_restart",
        render_kv_table("Extension: segment store warm restart", rows),
        data={"metrics": dict(sorted(_ROWS.items()))},
    )
    if cold and reopened:
        assert reopened < cold
