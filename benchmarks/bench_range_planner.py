#!/usr/bin/env python
"""Range planner sweep: selectivity x strategy, byte-identity before timing.

For every selectivity cell (paper-style 0.1% / 1% / 10% of a 16-bit
domain) a Zipf-hot stream of range plans is compiled and served three
ways, over the SAME token lists (generated once per cell):

* **planner** — every leg of the whole stream in ONE
  :meth:`CloudServer.search_plan` batch: identical tokens across legs and
  plans walk the trapdoor chain once (`collection passes` = the batch-wide
  unique token count);
* **naive per-leg** — a planner-less client looping
  :meth:`CloudServer.search` per leg: dedup only within one leg, so every
  repeat of a hot plan pays its walks again (passes = summed per-leg
  unique counts);
* **per-point / dyadic** — comparison columns only: the legs an
  equality-only client would issue (one per in-range value) and the
  dyadic nodes a range-tree SSE client would touch
  (:func:`~repro.baselines.range_tree_sse.canonical_cover`).

Per-leg responses from the planner batch are asserted byte-identical to
the naive loop — and the decrypted, intersected per-plan ID sets equal
the plaintext oracle — before any timing is reported.  A final
system-level cell runs the same stream through
:meth:`SlicerSystem.search_plans` and asserts the ``planner.*`` counters
(``planner.dedup_saved > 0``) that the CI range gate pins.

Usage:  PYTHONPATH=src python benchmarks/bench_range_planner.py
"""

from __future__ import annotations

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _harness import bench_params, bench_workers, write_report  # noqa: E402
from repro.analysis.reporting import render_kv_table  # noqa: E402
from repro.baselines.range_tree_sse import canonical_cover  # noqa: E402
from repro.common.rng import default_rng  # noqa: E402
from repro.common.timing import time_call  # noqa: E402
from repro.core import wire  # noqa: E402
from repro.core.cloud import CloudServer  # noqa: E402
from repro.core.owner import DataOwner  # noqa: E402
from repro.core.params import KeyBundle  # noqa: E402
from repro.core.user import DataUser  # noqa: E402
from repro.crypto import kernels  # noqa: E402
from repro.obs.metrics import REGISTRY  # noqa: E402
from repro.planner import compile_plans  # noqa: E402
from repro.system import SlicerSystem  # noqa: E402
from repro.workloads import RangeWorkload, WorkloadGenerator, WorkloadSpec  # noqa: E402

BITS = 16
N_RECORDS = 96
N_PLANS = 12
POOL_SIZE = 4
SELECTIVITIES = [0.001, 0.01, 0.1]
CONJUNCTIVE_SELECTIVITY = 0.01
TARGET_SPEEDUP_AT_1PCT = 2.0


def unique_count(token_lists) -> int:
    seen = {}
    for tokens in token_lists:
        for token in tokens:
            seen[token] = None
    return len(seen)


def build_world(params, keys, database):
    owner = DataOwner(params, keys=keys, rng=default_rng(12))
    out = owner.build(database)
    cloud = CloudServer(params, keys.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(params, out.user_package, default_rng(5))
    return cloud, user


def plan_stream(selectivity: float, fan_in: int, attributes):
    generator = WorkloadGenerator(default_rng(777))
    workload = RangeWorkload(
        selectivity=selectivity, fan_in=fan_in, pool_size=POOL_SIZE
    )
    return generator.range_plans(N_PLANS, BITS, workload, attributes=attributes)


def run_cell(params, keys, database, selectivity: float, fan_in: int = 1) -> dict:
    kernels.clear_caches()
    REGISTRY.reset()
    cloud, user = build_world(params, keys, database)

    attributes = ["lat", "lon"] if fan_in > 1 else None
    exprs = plan_stream(selectivity, fan_in, attributes)
    plans = compile_plans(exprs, BITS)
    flat_legs = [leg for plan in plans for leg in plan.legs]
    # Tokens minted ONCE and shared by every strategy: the comparison is
    # about serving, not token generation.
    token_lists = [user.make_tokens(leg) for leg in flat_legs]

    # ---- byte-identity before timing -----------------------------------
    naive_responses = [cloud.search(tokens) for tokens in token_lists]
    planner_responses = cloud.search_plan(token_lists)
    for leg_index, (naive, planned) in enumerate(
        zip(naive_responses, planner_responses)
    ):
        assert wire.dump_response(planned) == wire.dump_response(naive), (
            f"planner leg {leg_index} diverged from the naive per-leg serve"
        )
    # ...and the intersected per-plan answers equal the plaintext oracle.
    cursor = 0
    for plan in plans:
        ids = None
        for response in planner_responses[cursor : cursor + len(plan.legs)]:
            leg_ids = user.decrypt_results(response)
            ids = leg_ids if ids is None else ids & leg_ids
        cursor += len(plan.legs)
        assert ids == plan.oracle_ids(database), (
            f"plan {plan.describe()} answered wrong IDs"
        )

    # ---- collection passes (the dedup claim, deterministic) ------------
    naive_passes = sum(len(dict.fromkeys(tokens)) for tokens in token_lists)
    planner_passes = unique_count(token_lists)

    # ---- timing on the identity-warmed cloud ---------------------------
    naive_s, _ = time_call(
        lambda: [cloud.search(tokens) for tokens in token_lists]
    )
    planner_s, _ = time_call(lambda: cloud.search_plan(token_lists))

    # Comparison columns: what other clients would issue for the same
    # post-merge intervals.
    per_point_legs = sum(
        hi - lo + 1 for plan in plans for _, lo, hi in plan.intervals
    )
    dyadic_nodes = sum(
        len(canonical_cover(lo, hi, BITS))
        for plan in plans
        for _, lo, hi in plan.intervals
    )
    return {
        "selectivity": selectivity,
        "fan_in": fan_in,
        "plans": len(plans),
        "legs": len(flat_legs),
        "merged_away": sum(plan.merged_away for plan in plans),
        "tokens_total": sum(len(t) for t in token_lists),
        "collection_passes_naive": naive_passes,
        "collection_passes_planner": planner_passes,
        "passes_saved": naive_passes - planner_passes,
        "passes_speedup": naive_passes / planner_passes if planner_passes else 0.0,
        "naive_search_s": naive_s,
        "planner_search_s": planner_s,
        "per_point_legs": per_point_legs,
        "dyadic_cover_nodes": dyadic_nodes,
        "byte_identity": True,
    }


def run_system_cell(params, keys, database) -> dict:
    """The 1% stream through the full system: planner counters pinned."""
    kernels.clear_caches()
    REGISTRY.reset()
    owner = DataOwner(params, keys=keys, rng=default_rng(12))
    system = SlicerSystem(params, rng=default_rng(11), owner=owner)
    system.setup(database)
    exprs = plan_stream(0.01, 1, None)
    outcomes = system.search_plans(exprs)
    assert all(out.verified for out in outcomes), "honest plan legs must verify"
    counters = REGISTRY.deterministic_snapshot()["counters"]
    planner = {k: v for k, v in counters.items() if k.startswith("planner.")}
    assert planner["planner.dedup_saved"] > 0, (
        "the Zipf-hot stream must repeat legs for the planner to dedup"
    )
    assert planner["planner.plans"] == len(exprs)
    return planner


def main() -> int:
    params = bench_params(BITS)
    keys = KeyBundle.generate(default_rng(31337), 1024)
    generator = WorkloadGenerator(default_rng(404))
    database = generator.database(WorkloadSpec(N_RECORDS, BITS))
    attributed = WorkloadGenerator(default_rng(404)).attributed_database(
        N_RECORDS,
        {"lat": WorkloadSpec(N_RECORDS, BITS), "lon": WorkloadSpec(N_RECORDS, BITS)},
    )

    cells = [run_cell(params, keys, database, s) for s in SELECTIVITIES]
    cells.append(
        run_cell(params, keys, attributed, CONJUNCTIVE_SELECTIVITY, fan_in=2)
    )
    planner_counters = run_system_cell(params, keys, database)

    one_pct = next(c for c in cells if c["selectivity"] == 0.01 and c["fan_in"] == 1)
    assert one_pct["passes_speedup"] >= TARGET_SPEEDUP_AT_1PCT, (
        f"planner saved only {one_pct['passes_speedup']:.2f}x collection passes "
        f"at 1% selectivity (target {TARGET_SPEEDUP_AT_1PCT}x)"
    )

    rows = [("cell", "passes naive->planner (speedup)  legs  per-point  dyadic")]
    for cell in cells:
        label = f"sel={cell['selectivity']:g}" + (
            f"/fan_in={cell['fan_in']}" if cell["fan_in"] > 1 else ""
        )
        rows.append(
            (
                label,
                f"{cell['collection_passes_naive']}->"
                f"{cell['collection_passes_planner']} "
                f"({cell['passes_speedup']:.2f}x)  {cell['legs']}  "
                f"{cell['per_point_legs']}  {cell['dyadic_cover_nodes']}",
            )
        )
    write_report(
        "range_planner",
        render_kv_table(
            "Range planner sweep (byte-identity asserted per cell)", rows
        ),
        data={
            "config": {
                "records": N_RECORDS,
                "plans": N_PLANS,
                "pool_size": POOL_SIZE,
                "value_bits": BITS,
                "selectivities": SELECTIVITIES,
                "conjunctive_selectivity": CONJUNCTIVE_SELECTIVITY,
                "target_speedup_at_1pct": TARGET_SPEEDUP_AT_1PCT,
                "workers": bench_workers(),
            },
            "cells": cells,
            "planner_counters": planner_counters,
            "byte_identity_vs_naive_legs": True,
        },
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
