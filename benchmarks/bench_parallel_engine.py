"""Parallel engine sweep: Build / witness precompute across worker counts.

Sweeps ``workers`` ∈ {1, 2, 4} (or the single value pinned by
``REPRO_BENCH_WORKERS``) over the same database and records wall-clock
per phase plus the speedup over serial into ``BENCH_parallel.json``.

Equality of outputs is asserted *inside the sweep*: every parallel run
must reproduce the serial run's index entries, prime list, accumulation
value and witness cache byte-for-byte before its timing is recorded —
a fast run that diverges is a bug, not a result.

Honest-numbers note: fork+process fan-out only pays off with real cores;
the JSON records ``cpu_count`` so a 1-core CI box reporting speedup ≈ 1
(or slightly below, from fork overhead) is interpretable, not alarming.
"""

from __future__ import annotations

import os

from _harness import bench_params, bench_workers, touch_benchmark, write_report
from repro.analysis.reporting import FigureReport
from repro.common.rng import default_rng
from repro.common.timing import time_call
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle
from repro.core.user import DataUser
from repro.core.query import Query
from repro.core.verify import verify_response
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.scaling import current_scale

BITS = 16

_pinned = bench_workers()
WORKER_SWEEP = (1, _pinned) if _pinned > 1 else (1, 2, 4)

_KEYS = KeyBundle.generate(default_rng(2027), 1024)

_FIG = FigureReport(
    "Parallel engine: wall-clock by worker count",
    "workers",
    "seconds",
)
_BUILD = _FIG.new_series("build")
_PRECOMPUTE = _FIG.new_series("precompute-witnesses")
_SEARCH = _FIG.new_series("search")

#: Reference (serial) outputs each parallel run must reproduce exactly.
_BASELINE: dict = {}
_TIMINGS: dict[int, dict[str, float]] = {}


def _records(scale) -> int:
    return max(scale.record_counts)


def _deploy(workers: int, scale):
    params = bench_params(BITS).with_workers(workers)
    generator = WorkloadGenerator(default_rng(4242))
    database = generator.database(WorkloadSpec(_records(scale), BITS))
    owner = DataOwner(params, keys=_KEYS, rng=default_rng(99))
    build_s, out = time_call(lambda: owner.build(database))
    cloud = CloudServer(params, _KEYS.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(params, out.user_package, default_rng(5))
    return owner, cloud, user, out, build_s


def test_parallel_engine_sweep(benchmark, scale):
    def sweep():
        for workers in WORKER_SWEEP:
            _, cloud, user, out, build_s = _deploy(workers, scale)
            precompute_s, count = time_call(cloud.precompute_witnesses)
            assert count == cloud.prime_count
            tokens = user.make_tokens(Query.parse(1 << (BITS - 1), ">"))
            search_s, response = time_call(lambda: cloud.search(tokens))
            assert verify_response(cloud.params, cloud.ads_value, response).ok

            outputs = {
                "entries": dict(out.cloud_package.index.entries),
                "primes": list(out.cloud_package.primes),
                "ads": out.chain_ads,
                "witnesses": dict(cloud._witness_cache),
            }
            if workers == 1:
                _BASELINE.update(outputs)
            else:
                # Parallel ≡ serial, byte for byte, or the timing is void.
                assert outputs == _BASELINE

            _TIMINGS[workers] = {
                "build_s": build_s,
                "precompute_s": precompute_s,
                "search_s": search_s,
            }
            _BUILD.add(workers, build_s)
            _PRECOMPUTE.add(workers, precompute_s)
            _SEARCH.add(workers, search_s)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert set(_TIMINGS) == set(WORKER_SWEEP)


def test_parallel_report(benchmark, scale):
    touch_benchmark(benchmark)
    serial = _TIMINGS[1]
    speedups = {
        str(w): {
            phase.removesuffix("_s"): serial[phase] / t[phase] if t[phase] else 0.0
            for phase in ("build_s", "precompute_s", "search_s")
        }
        for w, t in _TIMINGS.items()
        if w != 1
    }
    write_report(
        "parallel",
        _FIG.render("{:.4f}"),
        data={
            "figures": [_FIG.as_dict()],
            "records": _records(scale),
            "value_bits": BITS,
            "worker_sweep": list(WORKER_SWEEP),
            "timings_s": {str(w): t for w, t in _TIMINGS.items()},
            "speedup_vs_serial": speedups,
            "outputs_identical": True,  # asserted during the sweep
            "fork_available": os.name == "posix",
        },
    )
    assert _BUILD.ys() and _PRECOMPUTE.ys()
