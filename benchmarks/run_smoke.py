#!/usr/bin/env python
"""CI smoke benchmark: one small end-to-end deployment, timed and verified.

Runs Build -> Search -> precompute-witnesses -> Insert -> Search on a
smoke-scale database and writes ``reports/BENCH_smoke.json`` (plus the
text twin) via the shared harness.  Honors ``REPRO_BENCH_WORKERS`` so CI
exercises both the serial path and the process fan-out; worker counter
deltas merge back into the parent, so the recorded counter snapshot is
identical at every worker config (CI gates on exactly that).  Each run
also writes a JSONL span trace (``reports/TRACE_smoke.jsonl`` /
``TRACE_chaos.jsonl``) and, for chaos runs, the settlement audit log
(``reports/AUDIT_chaos.jsonl``) — both readable via
``python -m repro report``.

With ``--chaos-seed`` the smoke run instead goes through the full
four-party :class:`~repro.system.SlicerSystem` behind a fault-injecting
:class:`~repro.chaos.ChaosTransport`: every search must still settle paid
(``retry.gave_up == 0``) while faults are demonstrably injected, and the
run writes ``reports/BENCH_chaos.json`` whose ``chaos.*`` / ``retry.*``
counters are exactly reproducible from the recorded seed — the invariant
``check_regression.py --chaos`` gates on.

With ``--settlement {sync,block}`` it runs the full-system settlement
smoke in that mode and writes ``reports/BENCH_settlement_<mode>.json``;
the block-mode counters, histograms and ledger totals must reproduce the
committed sync baseline exactly (``check_regression.py --settlement``).

Usage:  PYTHONPATH=src python benchmarks/run_smoke.py [--chaos-seed N]
"""

from __future__ import annotations

import argparse
import shutil
import sys
import pathlib
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _harness import REPORT_DIR, bench_params, bench_workers, write_report  # noqa: E402
from repro.analysis.reporting import render_kv_table  # noqa: E402
from repro.chaos import ChaosTransport, FaultPlan, profile_named  # noqa: E402
from repro.common import perfstats  # noqa: E402
from repro.common.rng import default_rng  # noqa: E402
from repro.common.timing import time_call  # noqa: E402
from repro.core import wire  # noqa: E402
from repro.core.cloud import CloudServer  # noqa: E402
from repro.core.owner import DataOwner  # noqa: E402
from repro.core.params import KeyBundle  # noqa: E402
from repro.core.query import Query  # noqa: E402
from repro.core.user import DataUser  # noqa: E402
from repro.core.verify import verify_response  # noqa: E402
from repro.crypto import kernels, modmath  # noqa: E402
from repro.obs import audit as obs_audit  # noqa: E402
from repro.obs import trace  # noqa: E402
from repro.obs.metrics import REGISTRY  # noqa: E402
from repro.sharding import HashShardPlan, ShardedCloudFrontend  # noqa: E402
from repro.system import SlicerSystem  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    RangeWorkload,
    WorkloadGenerator,
    WorkloadSpec,
)

N_RECORDS = 120
N_INSERT = 30
BITS = 8


def _fresh_sink(filename: str) -> str:
    """Truncate-and-return a JSONL sink path (sinks append per record)."""
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / filename
    path.write_text("")
    return str(path)


def _reset_observability(trace_file: str, audit_file: str | None = None) -> None:
    """Cold registry/tracer/audit state plus fresh JSONL sinks for this run."""
    REGISTRY.reset()
    trace.TRACER.reset()
    trace.TRACER.set_sink(_fresh_sink(trace_file))
    obs_audit.AUDIT_LOG.reset()
    obs_audit.AUDIT_LOG.set_sink(_fresh_sink(audit_file) if audit_file else None)


def run_chaos(seed: int, profile_name: str) -> int:
    """End-to-end chaos smoke: everything settles despite injected faults."""
    _reset_observability("TRACE_chaos.jsonl", "AUDIT_chaos.jsonl")
    params = bench_params(BITS)
    keys = KeyBundle.generate(default_rng(31337), 1024)
    owner = DataOwner(params, keys=keys, rng=default_rng(12))
    transport = ChaosTransport(FaultPlan(profile_named(profile_name), seed))
    system = SlicerSystem(params, rng=default_rng(5), owner=owner, transport=transport)

    generator = WorkloadGenerator(default_rng(404))
    setup_s, _ = time_call(
        lambda: system.setup(generator.database(WorkloadSpec(N_RECORDS, BITS)))
    )
    queries = [Query.parse(64, ">"), Query.parse(64, "<"), Query.parse(200, ">")]
    outcomes = [system.search(q) for q in queries]
    insert_s, _ = time_call(
        lambda: system.insert(generator.database(WorkloadSpec(N_INSERT, BITS)))
    )
    outcomes += [system.search(q) for q in queries]

    for outcome in outcomes:
        assert outcome.error is None, f"chaos search degraded: {outcome.error}"
        assert outcome.verified, "honest chaos search must settle paid"

    # The audit log must agree with the outcomes, search for search.
    audit_records = obs_audit.AUDIT_LOG.records()
    assert len(audit_records) == len(outcomes), "one audit record per search"
    by_query = {r.query_id: r for r in audit_records}
    for outcome in outcomes:
        record = by_query[str(outcome.query_id)]
        assert record.verdict == "paid", (
            f"audit verdict {record.verdict!r} disagrees with verified outcome"
        )
        assert record.trace_id is not None, "audit entry must link to its trace"

    counters = {
        k: v
        for k, v in REGISTRY.deterministic_snapshot()["counters"].items()
        if k.startswith(("chaos.", "retry.", "audit."))
    }
    injected = sum(v for k, v in counters.items() if k.startswith("chaos.injected."))
    assert injected > 0, f"profile {profile_name!r} seed {seed} injected no faults"
    assert counters.get("retry.gave_up", 0) == 0, "retry budget must suffice"

    metrics = {
        "setup_s": setup_s,
        "insert_s": insert_s,
        "searches": len(outcomes),
        "records": N_RECORDS,
        "inserted": N_INSERT,
        "value_bits": BITS,
        "virtual_time_s": transport.clock,
        "faults_injected": injected,
        "audit_records": len(audit_records),
        "audit_gas_total": obs_audit.AUDIT_LOG.totals()["gas_total"],
        "all_verified": True,
    }
    rows = [("Metric", "value")] + [
        (k, f"{v:.4f}" if isinstance(v, float) else str(v)) for k, v in metrics.items()
    ] + [(k, str(v)) for k, v in sorted(counters.items())]
    write_report(
        "chaos",
        render_kv_table(f"Chaos smoke ({profile_name}, seed {seed})", rows),
        data={
            # Seed + profile pin the whole fault schedule: a re-run with
            # these values must reproduce `counters` exactly.
            "chaos": {"seed": seed, "profile": profile_name},
            "metrics": metrics,
            "counters": counters,
            "artifacts": {
                "trace": "TRACE_chaos.jsonl",
                "audit": "AUDIT_chaos.jsonl",
            },
        },
    )
    return 0


def run_settlement(mode: str) -> int:
    """Full-system settlement smoke, settled synchronously or per-block.

    Both modes run the identical protocol flow — searches, an insert, more
    searches, through the full four-party :class:`SlicerSystem` — so the
    deterministic counter snapshot and the settlement-ledger totals they
    record must be bit-identical: block production moves *when* an escrow
    settles, never what it pays or how much protocol work it takes.
    (Batched searches are deliberately absent: sync batches settle through
    one amortised ``batch_verify_and_settle`` receipt while block batches
    settle per-escrow, a documented receipt-shape difference — see
    ``bench_block_settlement.py`` for that flow.)

    CI runs ``--settlement block`` and gates the recorded snapshot against
    the committed ``BENCH_settlement_sync.json`` baseline via
    ``check_regression.py --settlement``.
    """
    _reset_observability(
        f"TRACE_settlement_{mode}.jsonl", f"AUDIT_settlement_{mode}.jsonl"
    )
    params = bench_params(BITS)
    keys = KeyBundle.generate(default_rng(31337), 1024)
    owner = DataOwner(params, keys=keys, rng=default_rng(12))
    system = SlicerSystem(
        params, rng=default_rng(5), owner=owner, settlement_mode=mode
    )

    generator = WorkloadGenerator(default_rng(404))
    setup_s, _ = time_call(
        lambda: system.setup(generator.database(WorkloadSpec(N_RECORDS, BITS)))
    )
    queries = [Query.parse(64, ">"), Query.parse(64, "<"), Query.parse(200, ">")]
    search_s, outcomes = time_call(lambda: [system.search(q) for q in queries])
    insert_s, _ = time_call(
        lambda: system.insert(generator.database(WorkloadSpec(N_INSERT, BITS)))
    )
    search2_s, more = time_call(lambda: [system.search(q) for q in queries])
    outcomes += more

    for outcome in outcomes:
        assert outcome.error is None, f"settlement smoke degraded: {outcome.error}"
        assert outcome.verified, "honest settlement smoke must settle paid"

    # Block mode additionally makes every verdict light-client provable:
    # header + inclusion proof, no chain replay.
    proofs_checked = 0
    if mode == "block":
        from repro.blockchain import follow

        client = follow(system.chain)
        for outcome in outcomes:
            assert outcome.settle_height is not None, "missing settle height"
            assert client.check_settlement(system.settlement_proof(outcome)), (
                "light client rejected a settlement proof"
            )
            proofs_checked += 1

    totals = obs_audit.AUDIT_LOG.totals()
    assert totals["records"] == len(outcomes), "one audit record per search"
    assert totals["verdicts"]["paid"] == len(outcomes), "all escrows paid"

    deterministic = REGISTRY.deterministic_snapshot()
    metrics = {
        "setup_s": setup_s,
        "search_s": search_s,
        "insert_s": insert_s,
        "search_after_insert_s": search2_s,
        "searches": len(outcomes),
        "records": N_RECORDS,
        "inserted": N_INSERT,
        "value_bits": BITS,
        "chain_height": system.chain.height,
        "light_client_proofs": proofs_checked,
        "all_verified": True,
    }
    # Mode-invariant ledger facts: the settlement gate compares these
    # (minus "mode") exactly against the committed sync baseline, alongside
    # the counter/histogram snapshot.
    settlement = {
        "mode": mode,
        "verdicts": totals["verdicts"],
        "gas_total": totals["gas_total"],
        "paid_out": totals["paid_out"],
        "refunded": totals["refunded"],
    }
    rows = [("Metric", "value")] + [
        (k, f"{v:.4f}" if isinstance(v, float) else str(v)) for k, v in metrics.items()
    ] + [
        ("ledger_gas_total", str(totals["gas_total"])),
        ("ledger_paid_out", str(totals["paid_out"])),
    ]
    write_report(
        f"settlement_{mode}",
        render_kv_table(f"Settlement smoke ({mode} mode)", rows),
        data={
            "settlement": settlement,
            "metrics": metrics,
            "counters": deterministic["counters"],
            "histograms": deterministic["histograms"],
            "artifacts": {
                "trace": f"TRACE_settlement_{mode}.jsonl",
                "audit": f"AUDIT_settlement_{mode}.jsonl",
            },
        },
    )
    return 0


def _deterministic_delta(base: dict) -> dict:
    """Counter delta since ``base``, filtered to the deterministic slice."""
    allowed = set(REGISTRY.deterministic_snapshot()["counters"])
    return {
        k: v for k, v in perfstats.delta_since(base).items() if k in allowed
    }


def run_restart() -> int:
    """Warm-restart smoke: a reopened cloud serves its first repeat query warm.

    Runs the plain smoke flow against a durable segment store (build,
    skewed searches, insert, more searches, witness precompute), records
    the never-restarted cloud's warm repeat of the hot query as the
    **oracle leg**, then checkpoints, clears every process-global kernel
    memo (a cold process), reopens the store into a *fresh* CloudServer and
    serves the same repeat query.  Byte-identity against the oracle leg is
    asserted before any timing is reported, and the restarted leg must
    touch neither the index nor the PRF:
    ``cloud.collect.index_probes == cloud.collect.prf_evals == 0``.
    ``check_regression.py --restart`` gates the recorded counters,
    histograms and both leg deltas bit for bit.
    """
    _reset_observability("TRACE_restart.jsonl")
    params = bench_params(BITS)
    keys = KeyBundle.generate(default_rng(31337), 1024)
    generator = WorkloadGenerator(default_rng(404))
    database = generator.database(WorkloadSpec(N_RECORDS, BITS))
    owner = DataOwner(params, keys=keys, rng=default_rng(12))

    store_dir = tempfile.mkdtemp(prefix="slicer-segstore-")
    try:
        cloud = CloudServer(params, keys.trapdoor.public)
        cloud.attach_store(store_dir)
        build_s, out = time_call(lambda: owner.build(database))
        cloud.install(out.cloud_package)
        user = DataUser(params, out.user_package, default_rng(5))

        queries = [Query.parse(64, ">"), Query.parse(64, "<"), Query.parse(200, ">")]
        for query in queries:
            response = cloud.search(user.make_tokens(query))
            assert verify_response(params, cloud.ads_value, response).ok

        add = generator.database(WorkloadSpec(N_INSERT, BITS))
        insert_s, out2 = time_call(lambda: owner.insert(add))
        cloud.install(out2.cloud_package)
        user.refresh(out2.user_package)

        # Zipf-ish skew: the hot query repeats, the tail runs once — what a
        # production repeat-heavy workload leaves in the caches.
        hot = user.make_tokens(queries[0])
        for tokens in [hot] + [user.make_tokens(q) for q in queries[1:]]:
            cloud.search(tokens)
        precompute_s, count = time_call(cloud.precompute_witnesses)
        assert count == cloud.prime_count

        # Oracle leg: the never-restarted cloud's warm repeat, recorded
        # BEFORE clear_caches() below (which also empties this cloud's
        # entry cache through the kernel registry).
        base = perfstats.snapshot()
        oracle_warm_s, oracle_response = time_call(lambda: cloud.search(hot))
        oracle_delta = _deterministic_delta(base)
        oracle_bytes = wire.dump_response(oracle_response)

        checkpoint_s, _ = time_call(cloud.checkpoint)
        store_bytes = sum(
            p.stat().st_size for p in pathlib.Path(store_dir).iterdir()
        )

        # Process death: fresh server object, cold global kernel memos.
        kernels.clear_caches()
        resumed = CloudServer(params, keys.trapdoor.public)
        # The timed reopen includes full rehydration (prime_count forces the
        # lazy replay + warm-checkpoint load) so the measured leg below is
        # purely the query.
        reopen_s, _ = time_call(
            lambda: (resumed.reopen(store_dir), resumed.prime_count)
        )
        base = perfstats.snapshot()
        restart_warm_s, response = time_call(lambda: resumed.search(hot))
        restart_delta = _deterministic_delta(base)

        # Byte-identity and zero-probe assertions come before any timing
        # is reported: a fast-but-wrong restart must fail the bench.
        assert wire.dump_response(response) == oracle_bytes, (
            "restarted cloud's warm leg drifted from the oracle response"
        )
        assert restart_delta.get("cloud.collect.index_probes", 0) == 0, (
            f"warm restart probed the index: {restart_delta}"
        )
        assert restart_delta.get("cloud.collect.prf_evals", 0) == 0, (
            f"warm restart evaluated the PRF: {restart_delta}"
        )
        assert restart_delta == oracle_delta, (
            "restarted warm leg did different deterministic work than the "
            f"oracle leg: {restart_delta} != {oracle_delta}"
        )
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    metrics = {
        "build_s": build_s,
        "insert_s": insert_s,
        "precompute_s": precompute_s,
        "oracle_warm_search_s": oracle_warm_s,
        "checkpoint_s": checkpoint_s,
        "reopen_s": reopen_s,
        "restart_warm_search_s": restart_warm_s,
        "records": N_RECORDS,
        "inserted": N_INSERT,
        "value_bits": BITS,
        "primes": count,
        "segments": 2,
        "store_bytes": store_bytes,
        "workers": bench_workers(),
        "modmath_backend": modmath.backend_info()["active"],
        "all_verified": True,
    }
    rows = [("Metric", "value")] + [
        (k, f"{v:.4f}" if isinstance(v, float) else str(v)) for k, v in metrics.items()
    ]
    deterministic = REGISTRY.deterministic_snapshot()
    write_report(
        "warm_restart",
        render_kv_table("Warm-restart smoke benchmark", rows),
        data={
            "metrics": metrics,
            "counters": deterministic["counters"],
            "histograms": deterministic["histograms"],
            # The gated heart of the bench: the restarted cloud's first
            # repeat-query leg did exactly the oracle's deterministic work
            # — zero index probes, zero PRF evaluations, byte-identical
            # response — and both deltas are reproduced exactly on re-run.
            "restart_leg": {
                "byte_identical": True,
                "index_probes": restart_delta.get("cloud.collect.index_probes", 0),
                "prf_evals": restart_delta.get("cloud.collect.prf_evals", 0),
                "oracle_counters": oracle_delta,
                "restart_counters": restart_delta,
            },
            "artifacts": {"trace": "TRACE_restart.jsonl"},
        },
    )
    return 0


def run_range() -> int:
    """Range-planner smoke: plan streams through the full system, gated.

    Builds a two-attribute database, draws a Zipf-hot stream of range and
    conjunctive plan expressions, and runs them through
    :meth:`SlicerSystem.search_plans` — compile, one batched collection
    over the leg union, per-leg escrow settlement, user-side intersection.
    Every plan must verify and answer exactly its plaintext oracle, and the
    ``planner.*`` counters (plans/legs compiled, token walks deduped,
    record IDs dropped by intersection) land in the report for
    ``check_regression.py --range`` to pin bit for bit.
    """
    _reset_observability("TRACE_range.jsonl", "AUDIT_range.jsonl")
    params = bench_params(BITS)
    keys = KeyBundle.generate(default_rng(31337), 1024)
    owner = DataOwner(params, keys=keys, rng=default_rng(12))
    system = SlicerSystem(params, rng=default_rng(5), owner=owner)

    generator = WorkloadGenerator(default_rng(404))
    database = generator.attributed_database(
        N_RECORDS,
        {"lat": WorkloadSpec(N_RECORDS, BITS), "lon": WorkloadSpec(N_RECORDS, BITS)},
    )
    setup_s, _ = time_call(lambda: system.setup(database))

    streams = [
        ("range", RangeWorkload(selectivity=0.1, fan_in=1, pool_size=4)),
        ("conjunctive", RangeWorkload(selectivity=0.25, fan_in=2, pool_size=4)),
    ]
    plan_rows = []
    search_s = 0.0
    n_plans = 0
    for label, workload in streams:
        exprs = generator.range_plans(8, BITS, workload, attributes=["lat", "lon"])
        leg_s, outcomes = time_call(lambda exprs=exprs: system.search_plans(exprs))
        search_s += leg_s
        n_plans += len(outcomes)
        for outcome in outcomes:
            assert outcome.verified, f"honest {label} plan must verify"
            assert outcome.record_ids == outcome.plan.oracle_ids(database), (
                f"{label} plan {outcome.plan.describe()} answered wrong IDs"
            )
        plan_rows.append(
            {
                "stream": label,
                "plans": len(outcomes),
                "legs": sum(len(o.plan.legs) for o in outcomes),
                "merged_away": sum(o.plan.merged_away for o in outcomes),
                "results": sum(len(o.record_ids) for o in outcomes),
            }
        )

    deterministic = REGISTRY.deterministic_snapshot()
    planner = {
        k: v
        for k, v in deterministic["counters"].items()
        if k.startswith("planner.")
    }
    assert planner.get("planner.plans") == n_plans
    assert planner.get("planner.dedup_saved", 0) > 0, (
        "the Zipf-hot plan pool must repeat legs for the planner to dedup"
    )

    totals = obs_audit.AUDIT_LOG.totals()
    metrics = {
        "setup_s": setup_s,
        "search_plans_s": search_s,
        "plans": n_plans,
        "records": N_RECORDS,
        "value_bits": BITS,
        "workers": bench_workers(),
        "modmath_backend": modmath.backend_info()["active"],
        "audit_records": totals["records"],
        "all_verified": True,
    }
    rows = [("Metric", "value")] + [
        (k, f"{v:.4f}" if isinstance(v, float) else str(v)) for k, v in metrics.items()
    ] + [(k, str(v)) for k, v in sorted(planner.items())]
    write_report(
        "range",
        render_kv_table("Range-planner smoke benchmark", rows),
        data={
            "metrics": metrics,
            "streams": plan_rows,
            # The gated heart of the bench: planner work is a pure function
            # of the query stream, so these reproduce exactly on re-run at
            # any worker count.
            "planner": planner,
            "counters": deterministic["counters"],
            "histograms": deterministic["histograms"],
            "artifacts": {
                "trace": "TRACE_range.jsonl",
                "audit": "AUDIT_range.jsonl",
            },
        },
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--chaos-seed",
        type=lambda s: int(s, 0),
        default=None,
        help="run the chaos smoke with this fault-schedule seed instead",
    )
    parser.add_argument(
        "--chaos-profile",
        default="lossy",
        help="fault profile for --chaos-seed runs (default: lossy)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="serve through a sharded scatter/gather tier of this width; the "
        "recorded counters must equal the single-cloud baseline (the tier "
        "partitions protocol work, it never changes it)",
    )
    parser.add_argument(
        "--settlement",
        choices=("sync", "block"),
        default=None,
        help="run the full-system settlement smoke in this mode instead; "
        "block mode must reproduce the sync snapshot bit for bit "
        "(check_regression.py --settlement gates on it)",
    )
    parser.add_argument(
        "--restart",
        action="store_true",
        help="run the warm-restart smoke instead: install through a durable "
        "segment store, checkpoint, reopen into a fresh process and serve "
        "the first repeat query warm (0 index probes, 0 PRF evals, "
        "byte-identical to the never-restarted oracle)",
    )
    parser.add_argument(
        "--range",
        dest="range_planner",
        action="store_true",
        help="run the range-planner smoke instead: Zipf-hot range/"
        "conjunctive plan streams through SlicerSystem.search_plans, every "
        "plan verified against the plaintext oracle and the planner.* "
        "counters recorded (check_regression.py --range gates on them)",
    )
    args = parser.parse_args(argv)
    if args.chaos_seed is not None:
        return run_chaos(args.chaos_seed, args.chaos_profile)
    if args.settlement is not None:
        return run_settlement(args.settlement)
    if args.restart:
        return run_restart()
    if args.range_planner:
        return run_range()
    return run_plain(args.shards)


def run_plain(shards: int = 1) -> int:
    _reset_observability("TRACE_smoke.jsonl")  # clean slate for the gate
    params = bench_params(BITS)
    keys = KeyBundle.generate(default_rng(31337), 1024)
    generator = WorkloadGenerator(default_rng(404))
    database = generator.database(WorkloadSpec(N_RECORDS, BITS))

    owner = DataOwner(params, keys=keys, rng=default_rng(12))
    if shards > 1:
        # The sharded serving tier duck-types the CloudServer surface; the
        # rest of this function is width-blind, and the deterministic
        # counter snapshot it records must match the N=1 baseline exactly.
        owner.shard_plan = HashShardPlan(shards)
        build_s, out = time_call(lambda: owner.build(database))
        cloud = ShardedCloudFrontend(params, keys.trapdoor.public, owner.shard_plan)
        cloud.install_shards(out.shard_packages)
    else:
        build_s, out = time_call(lambda: owner.build(database))
        cloud = CloudServer(params, keys.trapdoor.public)
        cloud.install(out.cloud_package)
    user = DataUser(params, out.user_package, default_rng(5))

    tokens = user.make_tokens(Query.parse(64, ">"))
    search_s, response = time_call(lambda: cloud.search(tokens))
    assert verify_response(params, cloud.ads_value, response).ok, "smoke search failed"

    # Warm repeat: the epoch-suffix entry cache must serve the identical
    # response (this is what puts cloud.entry_cache.{hit,spliced_entries}
    # into the gated counter snapshot).
    repeat_s, repeat = time_call(lambda: cloud.search(tokens))
    assert wire.dump_response(repeat) == wire.dump_response(response), (
        "warm repeat search drifted from the cold response"
    )

    precompute_s, count = time_call(cloud.precompute_witnesses)
    assert count == cloud.prime_count

    add = generator.database(WorkloadSpec(N_INSERT, BITS))
    insert_s, out2 = time_call(lambda: owner.insert(add))
    if shards > 1:
        cloud.install_shards(out2.shard_packages)
    else:
        cloud.install(out2.cloud_package)
    user.refresh(out2.user_package)

    tokens2 = user.make_tokens(Query.parse(64, "<"))
    search2_s, response2 = time_call(lambda: cloud.search(tokens2))
    assert verify_response(params, cloud.ads_value, response2).ok, "post-insert smoke search failed"

    # Batched collection over the union of both queries (one duplicated):
    # per-query responses must be byte-identical to sequential post-insert
    # searches, and the batch.{unique_tokens,dedup_saved} counters get gated.
    # (The pre-insert `response` is stale here: inserts change the ADS, so
    # witnesses for the same entries differ — re-derive the reference.)
    reference = cloud.search(tokens)
    batch_s, batch = time_call(lambda: cloud.search_many([tokens, tokens2, tokens]))
    assert [wire.dump_response(r) for r in batch] == [
        wire.dump_response(reference),
        wire.dump_response(response2),
        wire.dump_response(reference),
    ], "batched search drifted from per-query responses"

    metrics = {
        "build_s": build_s,
        "search_s": search_s,
        "repeat_search_s": repeat_s,
        "precompute_s": precompute_s,
        "insert_s": insert_s,
        "search_after_insert_s": search2_s,
        "batch_search_s": batch_s,
        "records": N_RECORDS,
        "inserted": N_INSERT,
        "value_bits": BITS,
        "primes": cloud.prime_count,
        "workers": bench_workers(),
        "shards": shards,
        "modmath_backend": modmath.backend_info()["active"],
        "all_verified": True,
    }
    rows = [("Metric", "value")] + [
        (k, f"{v:.4f}" if isinstance(v, float) else str(v)) for k, v in metrics.items()
    ]
    deterministic = REGISTRY.deterministic_snapshot()
    write_report(
        "smoke",
        render_kv_table("CI smoke benchmark", rows),
        data={
            "metrics": metrics,
            # Machine-independent kernel counters: the regression gate
            # compares these exactly.  Worker counter deltas merge back
            # into the parent and execution-shape `parallel.*` counters
            # are excluded, so the snapshot is identical at any
            # REPRO_BENCH_WORKERS — CI asserts workers=0 == workers=2.
            "counters": deterministic["counters"],
            # Value-deterministic histograms (gas, token/result sizes);
            # wall-clock `*_s` histograms are already excluded.
            "histograms": deterministic["histograms"],
            "hit_rates": perfstats.rates(),
        },
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
