"""Fig. 3 — time cost of Build, split into index building and ADS building.

Paper shapes to reproduce:
* Fig. 3a: index-building time rises **linearly** with record count at every
  bit setting; more bits -> more slices -> more time.
* Fig. 3b: ADS-building time for 8-bit values is **near constant** (the
  value space saturates, so the keyword count stops growing), while 16- and
  24-bit settings grow with the record count.
"""

from __future__ import annotations

import pytest

from _harness import touch_benchmark, write_report
from repro.analysis.reporting import FigureReport

_FIG3A = FigureReport("Fig 3a: Build - index building time", "records", "seconds")
_FIG3B = FigureReport("Fig 3b: Build - ADS building time", "records", "seconds")


@pytest.mark.parametrize("bits", [8, 16, 24])
def test_fig3_build_sweep(benchmark, cache, scale, bits):
    """Builds every (n, bits) point of the sweep; figure data from stopwatches."""
    if bits not in scale.bit_settings:
        pytest.skip(f"{bits}-bit not in scale preset {scale.name}")
    counts = list(scale.record_counts)

    def sweep():
        return [cache.get(n, bits) for n in counts]

    deployments = benchmark.pedantic(sweep, rounds=1, iterations=1)

    index_series = _FIG3A.new_series(f"{bits}-bit")
    ads_series = _FIG3B.new_series(f"{bits}-bit")
    for deployment in deployments:
        index_series.add(deployment.n_records, deployment.build_index_s)
        ads_series.add(deployment.n_records, deployment.build_ads_s)

    benchmark.extra_info["points"] = {
        d.n_records: round(d.build_index_s + d.build_ads_s, 3) for d in deployments
    }

    # Shape assertions (the reproduction targets).  Wall-clock noise at small
    # scale allows a 20% tolerance on per-step monotonicity.
    index_times = index_series.ys()
    assert all(b >= a * 0.8 for a, b in zip(index_times, index_times[1:]))
    assert index_times[-1] > index_times[0], "index build time must grow with n"
    if bits == 8 and counts[-1] >= 2 * (1 << bits):
        # 8-bit plateau (needs the value space saturated): ADS time at k-x
        # records grows far less than k-x.
        ads = ads_series.ys()
        if ads[0] > 0:
            assert ads[-1] / ads[0] < (counts[-1] / counts[0]) / 2


def test_fig3_report(benchmark, cache, scale):
    touch_benchmark(benchmark)
    """Render the figure after the sweeps above populated it."""
    write_report(
        "fig3_build_time",
        _FIG3A.render() + "\n\n" + _FIG3B.render(),
        data={"figures": [_FIG3A.as_dict(), _FIG3B.as_dict()]},
    )
    assert _FIG3A.series and _FIG3B.series
