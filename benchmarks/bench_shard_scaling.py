#!/usr/bin/env python
"""Shard scaling sweep: serving-tier width x workload skew.

For every cell (N shards x workload) the sweep first asserts that the
scatter/gather tier's merged responses are **byte-identical** to a
single-cloud reference serving the same token streams — correctness is a
precondition of every timing this file reports — then times the search
loop and records the per-shard routing counters:

* ``tokens_per_shard`` / ``entries_per_shard`` — how the collect work
  actually split (``shard.route.{tokens,entries}.s<K>``).  Under the
  uniform workload at N=4 the per-shard token share must scale ~1/N
  (asserted within a tolerance band);
* ``imbalance`` — max/mean tokens per shard, the hot-shard number.  The
  ``hot`` workload steers ~80% of queries onto one shard via
  :class:`~repro.workloads.ShardSkew`, so its imbalance approaches N while
  the uniform workload's stays near 1 — the regime where adding shards
  stops paying;
* ``collect_probes`` — total index probes, identical at every N (the tier
  partitions the work, it never repeats it).

Kernel memo caches are process-global, so every cell starts cold
(``kernels.clear_caches()`` + registry reset) to keep counters comparable.

Usage:  PYTHONPATH=src python benchmarks/bench_shard_scaling.py
"""

from __future__ import annotations

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _harness import bench_params, bench_workers, write_report  # noqa: E402
from repro.analysis.reporting import render_kv_table  # noqa: E402
from repro.common.rng import default_rng  # noqa: E402
from repro.common.timing import time_call  # noqa: E402
from repro.core import wire  # noqa: E402
from repro.core.cloud import CloudServer  # noqa: E402
from repro.core.owner import DataOwner  # noqa: E402
from repro.core.params import KeyBundle  # noqa: E402
from repro.core.query import MatchCondition, Query  # noqa: E402
from repro.core.user import DataUser  # noqa: E402
from repro.crypto import kernels  # noqa: E402
from repro.obs.metrics import REGISTRY  # noqa: E402
from repro.sharding import HashShardPlan, ShardedCloudFrontend  # noqa: E402
from repro.sharding.plan import equality_route  # noqa: E402
from repro.workloads import ShardSkew, WorkloadGenerator, WorkloadSpec  # noqa: E402

SHARD_COUNTS = [1, 2, 4, 8]
WORKLOADS = ["uniform", "hot"]
N_RECORDS = 160
N_QUERIES = 32
BITS = 8
HOT_FRACTION = 0.8


def make_queries(workload: str, shards: int, prf_key: bytes, stored: list[int]):
    """The cell's query stream (deterministic per (workload, shards))."""
    rng = default_rng(777)
    if workload == "uniform":
        # Equality on *stored* values: every query does real collect work,
        # and the stream is shard-count independent (byte-identity vs N=1).
        return [
            Query(stored[rng.randint_below(len(stored))], MatchCondition.EQUAL)
            for _ in range(N_QUERIES)
        ]
    # Hot-shard skew: ~HOT_FRACTION of queries steered onto shard 0 by
    # rejection sampling against the real routing function.
    plan = HashShardPlan(shards)
    skew = ShardSkew(shards=shards, hot_shard=0, hot_fraction=HOT_FRACTION)
    generator = WorkloadGenerator(rng)
    return generator.sharded_queries(
        N_QUERIES, BITS, skew, equality_route(prf_key, BITS, plan)
    )


def run_cell(params, keys, database, workload: str, shards: int) -> dict:
    kernels.clear_caches()
    REGISTRY.reset()

    plan = HashShardPlan(shards)
    owner = DataOwner(params, keys=keys, rng=default_rng(12))
    owner.shard_plan = plan
    out = owner.build(database)
    frontend = ShardedCloudFrontend(params, keys.trapdoor.public, plan)
    frontend.install_shards(out.shard_packages)
    reference = CloudServer(params, keys.trapdoor.public)
    reference.install(out.cloud_package)
    user = DataUser(params, out.user_package, default_rng(5))

    queries = make_queries(workload, shards, keys.prf_key, database.values())
    token_lists = [user.make_tokens(q) for q in queries]

    # Byte-identity before timing: every merged response must equal the
    # single-cloud response for the same tokens, at this exact shard count.
    for tokens in token_lists:
        assert wire.dump_response(frontend.search(tokens)) == wire.dump_response(
            reference.search(tokens)
        ), f"shard tier diverged from single cloud at N={shards} ({workload})"

    # Timed serve on a cold-counter tier (the identity pass warmed caches
    # on both sides equally; counters below come from this loop only).
    REGISTRY.reset()
    search_s, _ = time_call(
        lambda: [frontend.search(tokens) for tokens in token_lists]
    )

    counters = REGISTRY.snapshot()["counters"]
    tokens_per_shard = [
        counters.get(f"shard.route.tokens.s{sid}", 0) for sid in range(shards)
    ]
    entries_per_shard = [
        counters.get(f"shard.route.entries.s{sid}", 0) for sid in range(shards)
    ]
    total_tokens = sum(tokens_per_shard)
    mean = total_tokens / shards if shards else 0
    imbalance = max(tokens_per_shard) / mean if mean else 0.0
    return {
        "workload": workload,
        "shards": shards,
        "search_s": search_s,
        "queries": len(queries),
        "tokens_total": total_tokens,
        "tokens_per_shard": tokens_per_shard,
        "entries_per_shard": entries_per_shard,
        "imbalance_max_over_mean": imbalance,
        "collect_probes": counters.get("cloud.collect.index_probes", 0),
        "collect_prf_evals": counters.get("cloud.collect.prf_evals", 0),
    }


def main() -> int:
    params = bench_params(BITS)
    keys = KeyBundle.generate(default_rng(31337), 1024)
    database = WorkloadGenerator(default_rng(404)).database(
        WorkloadSpec(N_RECORDS, BITS)
    )

    cells = [
        run_cell(params, keys, database, workload, shards)
        for workload in WORKLOADS
        for shards in SHARD_COUNTS
    ]

    by_cell = {(c["workload"], c["shards"]): c for c in cells}
    # The tier partitions collect work, it never repeats it: probe totals
    # are shard-count invariant per workload.
    for workload in WORKLOADS:
        probes = {by_cell[(workload, n)]["collect_probes"] for n in SHARD_COUNTS}
        assert len(probes) == 1, f"collect probes drifted across N ({workload})"
    # Uniform routing at N=4 splits tokens ~1/N: the busiest shard may not
    # carry more than twice its fair share on this fixed stream.
    uniform4 = by_cell[("uniform", 4)]
    fair = uniform4["tokens_total"] / 4
    assert max(uniform4["tokens_per_shard"]) <= 2 * fair, (
        f"uniform routing too lopsided at N=4: {uniform4['tokens_per_shard']}"
    )
    # The hot workload must actually concentrate: its N=4 imbalance exceeds
    # the uniform stream's.
    assert (
        by_cell[("hot", 4)]["imbalance_max_over_mean"]
        > uniform4["imbalance_max_over_mean"]
    ), "ShardSkew failed to concentrate traffic on the hot shard"

    rows = [("cell", "search_s  imbalance  tokens/shard")]
    for cell in cells:
        rows.append(
            (
                f"{cell['workload']}/N={cell['shards']}",
                f"{cell['search_s']:.4f}s  "
                f"{cell['imbalance_max_over_mean']:.2f}  "
                f"{cell['tokens_per_shard']}",
            )
        )
    write_report(
        "shard_scaling",
        render_kv_table("Shard scaling sweep (byte-identity asserted per cell)", rows),
        data={
            "config": {
                "records": N_RECORDS,
                "queries": N_QUERIES,
                "value_bits": BITS,
                "shard_counts": SHARD_COUNTS,
                "workloads": WORKLOADS,
                "hot_fraction": HOT_FRACTION,
                "workers": bench_workers(),
            },
            "cells": cells,
            "byte_identity_vs_single_cloud": True,
        },
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
