"""Extension bench — value-distribution sensitivity of Slicer's ADS.

The paper evaluates uniform random values only.  The ADS cost is governed by
the number of *distinct keywords*, which the distribution controls: a
Zipf-skewed workload collapses most records onto few values (and few slice
prefixes), shrinking the prime list and the ADS build time, while uniform
values maximise both.  This bench quantifies that sensitivity — useful for
anyone deploying on realistic (skewed) data — and validates the cost-model
explanation of the 8-bit plateau from a second angle.
"""

from __future__ import annotations

import pytest

from _harness import bench_params, touch_benchmark, write_report
from repro.analysis.reporting import FigureReport
from repro.common.rng import default_rng
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle
from repro.workloads.generator import ValueDistribution, WorkloadGenerator, WorkloadSpec

BITS = 16
N = 600

_FIG = FigureReport("Extension: ADS size by value distribution", "distribution", "primes")
_PRIMES = _FIG.new_series("distinct keywords")
_TIMES = _FIG.new_series("ads seconds x1000")

_RESULTS: dict[str, tuple[int, float]] = {}


@pytest.mark.parametrize(
    "distribution", [ValueDistribution.UNIFORM, ValueDistribution.ZIPF, ValueDistribution.CLUSTERED]
)
def test_ext_distribution_sweep(benchmark, distribution):
    params = bench_params(BITS)
    keys = KeyBundle.generate(default_rng(700), 1024)
    generator = WorkloadGenerator(default_rng(701))
    database = generator.database(WorkloadSpec(N, BITS, distribution))

    def build():
        owner = DataOwner(params, keys=keys, rng=default_rng(702))
        return owner, owner.build(database)

    owner, out = benchmark.pedantic(build, rounds=1, iterations=1)
    _RESULTS[distribution.value] = (
        len(out.cloud_package.primes),
        owner.stopwatch.get("ads"),
    )


def test_ext_distribution_report(benchmark):
    touch_benchmark(benchmark)
    for i, (name, (primes, ads_s)) in enumerate(sorted(_RESULTS.items())):
        _PRIMES.add(i, primes)
        _TIMES.add(i, ads_s * 1000)
    lines = [f"{name}: {primes} keywords, ADS build {ads_s:.3f}s"
             for name, (primes, ads_s) in sorted(_RESULTS.items())]
    write_report(
        "ext_distributions",
        "\n".join(lines),
        data={
            "distributions": {
                name: {"primes": primes, "ads_seconds": ads_s}
                for name, (primes, ads_s) in sorted(_RESULTS.items())
            }
        },
    )
    if {"uniform", "zipf"} <= _RESULTS.keys():
        # Skew collapses the keyword space: fewer primes, cheaper ADS.
        assert _RESULTS["zipf"][0] < _RESULTS["uniform"][0]
        assert _RESULTS["zipf"][1] < _RESULTS["uniform"][1]
