"""Table I — the feature matrix, printed in the paper's shape.

The interesting part is not the (static) table but the behavioural backing:
every claim in the "Ours" row is demonstrated by a live mini-scenario here,
so the table cannot silently drift from the implementation.
"""

from __future__ import annotations

import pytest

from _harness import touch_benchmark, write_report
from repro.analysis.feature_matrix import render_table_i
from repro.common.rng import default_rng
from repro.core.cloud import MaliciousCloud, Misbehavior
from repro.core.params import SlicerParams
from repro.core.query import Query
from repro.core.records import Database, make_database
from repro.system import SlicerSystem


@pytest.fixture(scope="module")
def live_system():
    params = SlicerParams.testing(value_bits=8)
    system = SlicerSystem(params, rng=default_rng(3333))
    system.setup(make_database([("a", 5), ("b", 9), ("c", 30)], bits=8))
    return system


def test_table1_report(benchmark):
    text = render_table_i()
    write_report("table1_features", text, data={"table_text": text})
    benchmark.pedantic(render_table_i, rounds=3, iterations=1)


class TestOursRowIsBacked:
    def test_dynamics(self, benchmark, live_system):
        touch_benchmark(benchmark)
        add = Database(8)
        add.add("d", 9)
        live_system.insert(add)
        assert live_system.search(Query.parse(9, "=")).verified

    def test_numerical_comparison(self, benchmark, live_system):
        touch_benchmark(benchmark)
        outcome = live_system.search(Query.parse(10, ">"))
        assert outcome.verified and len(outcome.record_ids) >= 2

    def test_freshness_anchor_on_chain(self, benchmark, live_system):
        touch_benchmark(benchmark)
        # The ADS digest lives in contract storage, anchored by the chain.
        assert live_system.contract._storage
        assert live_system.chain.verify_integrity()

    def test_forward_security_primitive_wired(self, benchmark, live_system):
        touch_benchmark(benchmark)
        kw_state = live_system.owner.trapdoor_state
        assert len(kw_state) > 0  # trapdoor chains exist per keyword

    def test_public_verifiability(self, benchmark):
        touch_benchmark(benchmark)
        params = SlicerParams.testing(value_bits=8)
        system = SlicerSystem(params, rng=default_rng(3334))
        system.cloud = MaliciousCloud(
            params, system.owner.keys.trapdoor.public, Misbehavior.INJECT_ENTRY, default_rng(1)
        )
        system.setup(make_database([("a", 5), ("b", 9)], bits=8))
        assert not system.search(Query.parse(10, ">")).verified
