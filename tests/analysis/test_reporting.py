"""Figure/table renderers."""

from repro.analysis.reporting import FigureReport, Series, render_kv_table


class TestSeries:
    def test_add_and_ys(self):
        s = Series("8-bit")
        s.add(10, 1.5)
        s.add(20, 3.0)
        assert s.ys() == [1.5, 3.0]


class TestFigureReport:
    def test_render_aligns_series(self):
        fig = FigureReport("Fig X", "records", "seconds")
        a = fig.new_series("8-bit")
        b = fig.new_series("16-bit")
        a.add(10, 1.0)
        a.add(20, 2.0)
        b.add(20, 5.0)
        text = fig.render()
        assert "Fig X" in text and "records" in text
        assert "8-bit" in text and "16-bit" in text
        lines = text.splitlines()
        row10 = next(l for l in lines if l.strip().startswith("10"))
        assert "-" in row10  # missing 16-bit point rendered as dash

    def test_y_format(self):
        fig = FigureReport("F", "x", "y")
        fig.new_series("s").add(1, 0.123456)
        assert "0.123" in fig.render("{:.3f}")


def test_render_kv_table():
    text = render_kv_table("Table II", [("Deployment", "745,346 gas"), ("Insert", "29,144 gas")])
    assert "Table II" in text
    assert "745,346 gas" in text
