"""The analytical cost model against actual protocol measurements."""

import pytest

from repro.analysis.costmodel import (
    estimate_gas,
    expected_ads_bytes,
    expected_distinct_keywords,
    expected_equality_matches,
    expected_index_bytes,
    expected_index_entries,
    expected_order_tokens,
)
from repro.common.rng import default_rng
from repro.core.query import MatchCondition, Query
from repro.core.records import Database
from repro.core.user import DataUser
from repro.core.cloud import CloudServer
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

N = 300
BITS = 8


@pytest.fixture(scope="module")
def measured(tparams, session_keys):
    from repro.core.owner import DataOwner

    owner = DataOwner(tparams, keys=session_keys, rng=default_rng(401))
    db = WorkloadGenerator(default_rng(402)).database(WorkloadSpec(N, BITS))
    out = owner.build(db)
    cloud = CloudServer(tparams, session_keys.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(tparams, out.user_package, default_rng(403))
    return db, out, cloud, user


class TestExactIdentities:
    def test_index_entries_exact(self, measured, tparams):
        _, out, _, _ = measured
        assert len(out.cloud_package.index) == expected_index_entries(N, BITS)

    def test_index_bytes_exact(self, measured, tparams):
        _, out, _, _ = measured
        assert out.cloud_package.index.size_bytes == expected_index_bytes(N, tparams)


class TestStochasticPredictions:
    def test_distinct_keywords_within_5pct(self, measured):
        _, out, _, _ = measured
        predicted = expected_distinct_keywords(N, BITS)
        actual = len(out.cloud_package.primes)
        assert abs(actual - predicted) / predicted < 0.05

    def test_ads_bytes_within_5pct(self, measured, tparams):
        _, out, _, _ = measured
        predicted = expected_ads_bytes(N, tparams)
        assert abs(out.cloud_package.prime_bytes - predicted) / predicted < 0.05

    def test_order_tokens_within_tolerance(self, measured, tparams):
        _, _, cloud, user = measured
        rng = default_rng(404)
        trials = 40
        total = sum(
            len(user.make_tokens(Query(rng.randint_below(256), MatchCondition.GREATER)))
            for _ in range(trials)
        )
        predicted = expected_order_tokens(N, BITS)
        assert abs(total / trials - predicted) / predicted < 0.25

    def test_equality_matches_within_tolerance(self, measured):
        db, _, cloud, user = measured
        values = db.values()
        rng = default_rng(405)
        trials = 40
        total = 0
        for _ in range(trials):
            v = values[rng.randint_below(len(values))]
            tokens = user.make_tokens(Query(v, MatchCondition.EQUAL))
            total += sum(len(r.entries) for r in cloud.search(tokens).results)
        predicted = expected_equality_matches(N, BITS)
        assert abs(total / trials - predicted) / predicted < 0.30


class TestSaturationShape:
    def test_8bit_keywords_saturate(self):
        """The analytic form of the Fig. 3b/4b plateau."""
        at_2x_domain = expected_distinct_keywords(512, 8)
        at_8x_domain = expected_distinct_keywords(2048, 8)
        assert at_8x_domain / at_2x_domain < 1.2

    def test_24bit_keywords_keep_growing(self):
        a = expected_distinct_keywords(512, 24)
        b = expected_distinct_keywords(2048, 24)
        assert b / a > 3.0

    def test_order_tokens_bounded_by_bits(self):
        assert expected_order_tokens(10**6, 8) <= 8
        assert expected_order_tokens(10**6, 16) <= 16


class TestGasPrediction:
    def test_predicts_measured_gas_within_15pct(self):
        """The gas estimator against an actual contract deployment."""
        from repro.core.records import make_database
        from repro.crypto.accumulator import AccumulatorParams
        from repro.core.params import SlicerParams
        from repro.system import SlicerSystem

        params = SlicerParams(
            value_bits=8, prime_bits=256, accumulator=AccumulatorParams.demo(1024)
        )
        system = SlicerSystem(params, rng=default_rng(406))
        system.setup(make_database([("a", 7), ("b", 9)], bits=8))
        add = Database(8)
        add.add("c", 3)
        insert_receipt = system.insert(add)
        outcome = system.search(Query.parse(7, "="))

        estimate = estimate_gas(params, result_entries=1, tokens=1)
        assert abs(system.deploy_receipt.gas_used - estimate.deployment) < 0.15 * estimate.deployment
        assert abs(insert_receipt.gas_used - estimate.insertion) < 0.15 * estimate.insertion
        assert abs(outcome.settle_gas - estimate.verification) < 0.20 * estimate.verification
