"""Table I data: structure plus behavioural backing of the 'Ours' row."""

from repro.analysis.feature_matrix import COLUMNS, TABLE_I, Support, ours, render_table_i


class TestTableShape:
    def test_twelve_rows(self):
        assert len(TABLE_I) == 12

    def test_ours_is_last_and_all_yes(self):
        row = ours()
        assert row.name.startswith("Slicer")
        assert all(
            f is Support.YES
            for f in (
                row.dynamics,
                row.numerical_comparison,
                row.freshness,
                row.forward_security,
                row.public_verifiability,
            )
        )

    def test_only_ours_has_all_features(self):
        for scheme in TABLE_I[:-1]:
            features = (
                scheme.dynamics,
                scheme.numerical_comparison,
                scheme.freshness,
                scheme.forward_security,
                scheme.public_verifiability,
            )
            assert not all(f is Support.YES for f in features), scheme.name

    def test_servedb_is_only_other_numeric(self):
        numeric = [s for s in TABLE_I if s.numerical_comparison is Support.YES]
        assert {s.name for s in numeric} == {"ServeDB", "Slicer (ours)"}

    def test_render_contains_all_rows(self):
        text = render_table_i()
        for scheme in TABLE_I:
            assert scheme.name in text
        for column in COLUMNS:
            assert column in text

    def test_marks(self):
        assert Support.YES.mark == "✓"
        assert Support.NO.mark == "×"
        assert Support.NOT_APPLICABLE.mark == "N/A"
