"""ASCII plot renderers."""

from repro.analysis.plots import bar_chart, line_chart, sparkline
from repro.analysis.reporting import FigureReport


class TestBarChart:
    def test_renders_labels_and_values(self):
        text = bar_chart("T", [("a", 1.0), ("bb", 2.0)])
        assert "T" in text and "a" in text and "bb" in text
        assert "2" in text

    def test_peak_has_longest_bar(self):
        text = bar_chart("T", [("small", 1.0), ("large", 10.0)], width=20)
        lines = text.splitlines()[1:]
        small_line = next(l for l in lines if "small" in l)
        large_line = next(l for l in lines if "large" in l)
        assert large_line.count("█") > small_line.count("█")

    def test_empty(self):
        assert "(no data)" in bar_chart("T", [])

    def test_zero_values(self):
        text = bar_chart("T", [("z", 0.0)])
        assert "z" in text


class TestLineChart:
    def _figure(self):
        fig = FigureReport("F", "x", "y")
        a = fig.new_series("8-bit")
        b = fig.new_series("16-bit")
        for i in range(5):
            a.add(i * 100, i * 1.0)
            b.add(i * 100, i * 2.0)
        return fig

    def test_renders_legend_and_axes(self):
        text = line_chart(self._figure())
        assert "o=8-bit" in text and "x=16-bit" in text
        assert "└" in text

    def test_marks_present(self):
        text = line_chart(self._figure())
        assert "o" in text and "x" in text

    def test_empty(self):
        assert "(no data)" in line_chart(FigureReport("F", "x", "y"))

    def test_flat_series(self):
        fig = FigureReport("F", "x", "y")
        s = fig.new_series("flat")
        s.add(1, 5.0)
        s.add(2, 5.0)
        assert "flat" in line_chart(fig)


class TestSparkline:
    def test_monotone_shape(self):
        line = sparkline([1, 2, 3, 4, 5])
        assert line[0] == "▁" and line[-1] == "█"

    def test_constant(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""
