"""Byte accounting for the storage/overhead figures."""

import pytest

from repro.analysis.sizing import measure_package, measure_search
from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.query import Query
from repro.core.records import make_database
from repro.core.user import DataUser


@pytest.fixture()
def world(tparams, owner_factory):
    owner = owner_factory(tparams, seed=101)
    db = make_database([(f"r{i}", (i * 29) % 256) for i in range(12)], bits=8)
    out = owner.build(db)
    cloud = CloudServer(tparams, owner.keys.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(tparams, out.user_package, default_rng(11))
    return out, cloud, user


class TestBuildSizes:
    def test_package_measurement(self, world, tparams):
        out, _, _ = world
        sizes = measure_package(out.cloud_package)
        assert sizes.entries == len(out.cloud_package.index)
        assert sizes.primes == len(out.cloud_package.primes)
        assert sizes.index_bytes == out.cloud_package.index.size_bytes
        # 64-bit primes in testing params -> 8 bytes each
        assert sizes.ads_bytes == 8 * sizes.primes

    def test_mb_conversion(self, world):
        out, _, _ = world
        sizes = measure_package(out.cloud_package)
        assert sizes.index_mb == pytest.approx(sizes.index_bytes / 2**20)


class TestSearchSizes:
    def test_search_measurement(self, world):
        _, cloud, user = world
        tokens = user.make_tokens(Query.parse(128, ">"))
        response = cloud.search(tokens)
        sizes = measure_search(tokens, response)
        assert sizes.token_count == len(tokens)
        assert sizes.result_entries == len(response.all_entries())
        assert sizes.result_bytes == response.encrypted_result_bytes
        assert sizes.vo_bytes == response.witness_bytes
        assert sizes.token_bytes > 0
