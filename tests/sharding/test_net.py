"""Socket-path tests: the asyncio scatter/gather on a localhost loopback."""

import asyncio

from repro.common.errors import StateError
from repro.common.rng import default_rng
from repro.core import wire
from repro.core.cloud import CloudServer
from repro.core.query import Query
from repro.core.records import make_database
from repro.core.user import DataUser
from repro.sharding import HashShardPlan
from repro.sharding.net import OP_PING, ShardClient, ShardServer
from repro.storage import codec

VALUES = [7, 7, 9, 40, 41, 64, 3, 200]
QUERIES = [Query.parse(7, "="), Query.parse(10, "<"), Query.parse(100, ">")]


def build(tparams, owner_factory, session_keys, shards):
    plan = HashShardPlan(shards)
    owner = owner_factory(tparams)
    owner.shard_plan = plan
    out = owner.build(
        make_database([(f"rec-{i}", v) for i, v in enumerate(VALUES)], bits=8)
    )
    servers = [
        ShardServer(sid, CloudServer(tparams, session_keys.trapdoor.public))
        for sid in range(shards)
    ]
    reference = CloudServer(tparams, session_keys.trapdoor.public)
    reference.install(out.cloud_package)
    user = DataUser(tparams, out.user_package, default_rng(3))
    return plan, out, servers, reference, user


async def serve(plan, servers):
    addresses = [await server.start() for server in servers]
    return ShardClient(plan, addresses)


class TestLoopbackScatterGather:
    def test_install_and_search_match_single_cloud(
        self, tparams, owner_factory, session_keys
    ):
        plan, out, servers, reference, user = build(
            tparams, owner_factory, session_keys, 3
        )

        async def scenario():
            client = await serve(plan, servers)
            try:
                await client.install(out.shard_packages)
                responses = []
                for query in QUERIES:
                    tokens = user.make_tokens(query)
                    responses.append(
                        (tokens, wire.dump_response(await client.search(tokens)))
                    )
                return responses
            finally:
                await client.close()
                for server in servers:
                    await server.stop()

        for tokens, blob in asyncio.run(scenario()):
            assert blob == wire.dump_response(reference.search(tokens))

    def test_ping_and_misrouted_install_error(
        self, tparams, owner_factory, session_keys
    ):
        plan, out, servers, _, _ = build(tparams, owner_factory, session_keys, 2)

        async def scenario():
            client = await serve(plan, servers)
            try:
                pongs = [
                    codec.decode_int(await client._call(sid, OP_PING, b""))
                    for sid in range(2)
                ]
                # A package addressed to shard 1 delivered to shard 0 must be
                # refused with an error reply, and the connection must survive.
                misrouted = next(p for p in out.shard_packages if p.shard_id == 1)
                from repro.sharding.plan import dump_shard_package
                from repro.sharding.net import OP_INSTALL

                try:
                    await client._call(0, OP_INSTALL, dump_shard_package(misrouted))
                    raised = False
                except StateError:
                    raised = True
                pong_after = codec.decode_int(await client._call(0, OP_PING, b""))
                return pongs, raised, pong_after
            finally:
                await client.close()
                for server in servers:
                    await server.stop()

        pongs, raised, pong_after = asyncio.run(scenario())
        assert pongs == [0, 1]
        assert raised, "misrouted install must produce an error reply"
        assert pong_after == 0, "server must keep serving after an error"
