"""Routing plan unit tests: determinism, range, splitting, wire roundtrip."""

import pytest

from repro.common.errors import ParameterError
from repro.common.rng import default_rng
from repro.core.keywords import equality_keyword
from repro.core.query import Query
from repro.core.state import CloudPackage, EncryptedIndex
from repro.core.tokens import derive_g1_g2
from repro.sharding.plan import (
    HashShardPlan,
    ShardPackage,
    dump_shard_package,
    equality_route,
    load_shard_package,
    split_package,
)

RNG = default_rng(404)


class TestHashShardPlan:
    def test_in_range_and_deterministic(self):
        plan = HashShardPlan(5)
        for _ in range(200):
            g1 = RNG.token_bytes(16)
            sid = plan.shard_of(g1)
            assert 0 <= sid < 5
            assert plan.shard_of(g1) == sid

    def test_single_shard_routes_everything_to_zero(self):
        plan = HashShardPlan(1)
        assert all(plan.shard_of(RNG.token_bytes(16)) == 0 for _ in range(50))

    def test_spreads_across_shards(self):
        plan = HashShardPlan(4)
        hit = {plan.shard_of(RNG.token_bytes(16)) for _ in range(200)}
        assert hit == {0, 1, 2, 3}

    def test_invalid_shard_count(self):
        with pytest.raises(ParameterError):
            HashShardPlan(0)

    def test_route_is_independent_of_plan_instance(self):
        g1 = b"\x01" * 16
        assert HashShardPlan(7).shard_of(g1) == HashShardPlan(7).shard_of(g1)


class TestSplitPackage:
    def _routed(self, plan, n_jobs):
        routed = []
        for j in range(n_jobs):
            g1 = RNG.token_bytes(16)
            entries = [
                (bytes([j, k]) + b"label", bytes([j, k]) + b"payload")
                for k in range(3)
            ]
            routed.append((plan.shard_of(g1), entries, 1000 + j))
        return routed

    def test_slices_union_to_flat_index_and_locals_partition(self):
        plan = HashShardPlan(3)
        routed = self._routed(plan, 12)
        all_primes = [prime for _, _, prime in routed]
        packages = split_package(plan, routed, all_primes, accumulation=42)
        assert len(packages) == 3
        merged = {}
        locals_seen = []
        for pkg in packages:
            assert pkg.package.primes == all_primes  # replicated, every shard
            assert pkg.package.accumulation == 42
            merged.update(pkg.package.index.entries)
            locals_seen.extend(pkg.local_primes)
        flat = {
            label: payload for _, entries, _ in routed for label, payload in entries
        }
        assert merged == flat
        assert sorted(locals_seen) == sorted(all_primes)  # a partition

    def test_entries_land_on_their_keyword_shard(self):
        plan = HashShardPlan(4)
        routed = self._routed(plan, 8)
        packages = split_package(
            plan, routed, [p for _, _, p in routed], accumulation=1
        )
        for sid, entries, prime in routed:
            pkg = packages[sid]
            assert prime in pkg.local_primes
            for label, payload in entries:
                assert pkg.package.index.entries[label] == payload


class TestShardPackageWire:
    def test_dump_load_roundtrip(self):
        index = EncryptedIndex()
        index.put(b"label-a", b"payload-a")
        index.put(b"label-b", b"payload-b")
        pkg = ShardPackage(
            shard_id=2,
            package=CloudPackage(index, [101, 103], 7),
            local_primes=[103],
        )
        loaded = load_shard_package(dump_shard_package(pkg))
        assert loaded.shard_id == 2
        assert loaded.package.index.entries == index.entries
        assert loaded.package.primes == [101, 103]
        assert loaded.package.accumulation == 7
        assert loaded.local_primes == [103]


class TestEqualityRoute:
    def test_agrees_with_token_routing(self):
        """The query-side router must predict where real tokens land."""
        plan = HashShardPlan(4)
        prf_key = b"\x05" * 16
        route = equality_route(prf_key, 8, plan)
        for value in [0, 7, 41, 200, 255]:
            query = Query.parse(value, "=")
            keyword = equality_keyword(value, 8, "")
            g1, _ = derive_g1_g2(prf_key, keyword)
            assert route(query) == plan.shard_of(g1)
