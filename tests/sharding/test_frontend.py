"""Scatter/gather frontend unit tests against a single-cloud reference."""

import pytest

from repro.common.errors import ParameterError
from repro.common.rng import default_rng
from repro.core import wire
from repro.core.cloud import CloudServer
from repro.core.query import Query
from repro.core.records import make_database
from repro.core.user import DataUser
from repro.core.verify import verify_response
from repro.sharding import HashShardPlan, ShardedCloudFrontend

VALUES = [7, 7, 9, 40, 41, 64, 3, 200]
QUERIES = [Query.parse(7, "="), Query.parse(40, ">"), Query.parse(64, "<")]


def database(values, start=0):
    return make_database(
        [(f"rec-{start + i}", v) for i, v in enumerate(values)], bits=8
    )


@pytest.fixture()
def deployment(tparams, owner_factory, session_keys):
    plan = HashShardPlan(4)
    owner = owner_factory(tparams)
    owner.shard_plan = plan
    out = owner.build(database(VALUES))
    frontend = ShardedCloudFrontend(tparams, session_keys.trapdoor.public, plan)
    frontend.install_shards(out.shard_packages)
    reference = CloudServer(tparams, session_keys.trapdoor.public)
    reference.install(out.cloud_package)
    user = DataUser(tparams, out.user_package, default_rng(3))
    return owner, frontend, reference, user


class TestMergeIdentity:
    def test_search_byte_identical_to_single_cloud(self, deployment):
        _, frontend, reference, user = deployment
        assert frontend.ads_value == reference.ads_value
        assert frontend.prime_count == reference.prime_count
        for query in QUERIES:
            tokens = user.make_tokens(query)
            assert wire.dump_response(frontend.search(tokens)) == wire.dump_response(
                reference.search(tokens)
            )

    def test_search_many_matches_sequential(self, deployment):
        _, frontend, reference, user = deployment
        token_lists = [user.make_tokens(q) for q in QUERIES]
        batched = frontend.search_many(token_lists)
        assert [wire.dump_response(r) for r in batched] == [
            wire.dump_response(reference.search(t)) for t in token_lists
        ]

    def test_insert_delta_keeps_identity(self, deployment, tparams, session_keys):
        owner, frontend, reference, user = deployment
        out = owner.insert(database([7, 130], start=100))
        frontend.install_shards(out.shard_packages)
        reference.install(out.cloud_package)
        user.refresh(out.user_package)
        for query in QUERIES:
            tokens = user.make_tokens(query)
            assert wire.dump_response(frontend.search(tokens)) == wire.dump_response(
                reference.search(tokens)
            )


class TestWitnessPrecompute:
    def test_per_shard_precompute_partitions_the_work(self, deployment):
        _, frontend, reference, _ = deployment
        assert frontend.precompute_witnesses() == reference.precompute_witnesses()
        assert frontend.precompute_witnesses() == frontend.prime_count
        # Per-shard caches hold only local primes, together covering all.
        sizes = [
            len(server._witness_cache or {}) for server in frontend.shard_servers
        ]
        assert sum(sizes) == frontend.prime_count


class TestDegradedShards:
    def test_killed_shard_serves_detectable_failures(self, deployment, tparams):
        _, frontend, _, user = deployment
        tokens = user.make_tokens(Query.parse(10, "<"))
        shards = frontend.shards_for_tokens(tokens)
        assert len(shards) >= 2, "order query must fan out for this test"
        frontend.kill_shard(shards[0])
        response = frontend.search(tokens)
        report = verify_response(tparams, frontend.ads_value, response)
        assert not report.ok, "dead-shard witnesses must fail verification"
        dead_results = [r for r in response.results if r.witness.value == 1]
        assert dead_results and all(r.entries == [] for r in dead_results)

    def test_restore_revives_a_killed_shard(self, deployment, tparams):
        _, frontend, _, user = deployment
        tokens = user.make_tokens(Query.parse(7, "="))
        reference = wire.dump_response(frontend.search(tokens))
        (victim,) = frontend.shards_for_tokens(tokens)
        snap = frontend.snapshot_shard(victim)
        frontend.kill_shard(victim)
        assert not verify_response(
            tparams, frontend.ads_value, frontend.search(tokens)
        ).ok
        frontend.restore_shard(victim, snap)
        assert wire.dump_response(frontend.search(tokens)) == reference


class TestTierSnapshot:
    def test_roundtrip(self, deployment):
        _, frontend, _, user = deployment
        tokens = user.make_tokens(Query.parse(64, "<"))
        reference = wire.dump_response(frontend.search(tokens))
        frontend.restore(frontend.snapshot())
        assert wire.dump_response(frontend.search(tokens)) == reference

    def test_shape_mismatch_rejected(self, deployment, tparams, session_keys):
        _, frontend, _, _ = deployment
        other = ShardedCloudFrontend(
            tparams, session_keys.trapdoor.public, HashShardPlan(2)
        )
        with pytest.raises(ParameterError):
            other.restore(frontend.snapshot())


class TestInstallValidation:
    def test_wrong_package_count_rejected(self, tparams, owner_factory, session_keys):
        owner = owner_factory(tparams)
        owner.shard_plan = HashShardPlan(2)
        out = owner.build(database(VALUES))
        frontend = ShardedCloudFrontend(
            tparams, session_keys.trapdoor.public, HashShardPlan(4)
        )
        with pytest.raises(ParameterError):
            frontend.install_shards(out.shard_packages)
