"""Shared fixtures.

Heavy cryptographic setup (RSA keygen, accumulator parameters) is done once
per session and shared; protocol state is rebuilt per test from those keys.
All randomness is seeded for reproducibility.
"""

from __future__ import annotations

import pytest

from repro.common.rng import default_rng
from repro.core.params import KeyBundle, SlicerParams
from repro.core.records import Database, make_database


TEST_TRAPDOOR_BITS = 512


@pytest.fixture(scope="session")
def tparams() -> SlicerParams:
    """Small fast protocol parameters: 8-bit values, 512-bit accumulator."""
    return SlicerParams.testing(value_bits=8)


@pytest.fixture(scope="session")
def tparams16() -> SlicerParams:
    return SlicerParams.testing(value_bits=16)


@pytest.fixture(scope="session")
def session_keys() -> KeyBundle:
    """One RSA trapdoor keypair for the whole session (keygen is the slow part)."""
    return KeyBundle.generate(default_rng(1234), trapdoor_bits=TEST_TRAPDOOR_BITS)


@pytest.fixture()
def rng():
    return default_rng(99)


@pytest.fixture()
def small_db() -> Database:
    """A tiny 8-bit database with duplicate values and edge values."""
    return make_database(
        [
            ("r0", 0),
            ("r1", 7),
            ("r2", 7),
            ("r3", 41),
            ("r4", 128),
            ("r5", 255),
            ("r6", 42),
        ],
        bits=8,
    )


@pytest.fixture(scope="session")
def owner_factory(session_keys):
    """Factory for DataOwners reusing the session key bundle (fast setup)."""
    from repro.core.owner import DataOwner

    def make(params: SlicerParams, seed: int = 7) -> DataOwner:
        return DataOwner(params, keys=session_keys, rng=default_rng(seed))

    return make
