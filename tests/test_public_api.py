"""Public API surface: everything advertised in __all__ exists and imports."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.blockchain",
    "repro.common",
    "repro.core",
    "repro.crypto",
    "repro.planner",
    "repro.security",
    "repro.sore",
    "repro.storage",
    "repro.workloads",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_entries_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} must declare __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} in __all__ but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_sorted_and_unique(package):
    module = importlib.import_module(package)
    entries = [n for n in module.__all__ if n != "__version__"]
    assert len(entries) == len(set(entries)), f"duplicates in {package}.__all__"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_quickstart_docstring_is_runnable():
    """The package docstring's example must actually work."""
    from repro import Query, SlicerParams, SlicerSystem, make_database

    params = SlicerParams.testing(value_bits=8)
    system = SlicerSystem(params)
    system.setup(make_database([("r1", 41), ("r2", 7)], bits=8))
    outcome = system.search(Query.parse(10, ">"))
    assert outcome.verified and len(outcome.record_ids) == 1
