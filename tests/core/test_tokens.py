"""Search-token generation (Algorithm 3)."""

from repro.common.rng import default_rng
from repro.core.keywords import equality_keyword, order_keywords_for_query
from repro.core.query import Query
from repro.core.state import TrapdoorState
from repro.core.tokens import (
    SearchToken,
    derive_g1_g2,
    generate_search_tokens,
    tokens_size_bytes,
)
from repro.sore.tuples import OrderCondition

KEY = b"m" * 16


def populated_state(bits: int, values: list[int]) -> TrapdoorState:
    """Simulate the owner having indexed these values."""
    from repro.core.keywords import keywords_for_record

    t = TrapdoorState()
    for v in values:
        for kw in keywords_for_record(v, bits):
            if t.find(kw) is None:
                t.put(kw, bytes([v % 256]) * 8, 0)
    return t


class TestEqualityTokens:
    def test_present_value_yields_one_token(self):
        state = populated_state(8, [5, 9])
        tokens = generate_search_tokens(KEY, state, Query.parse(5, "="), 8)
        assert len(tokens) == 1
        g1, g2 = derive_g1_g2(KEY, equality_keyword(5, 8))
        assert tokens[0].g1 == g1 and tokens[0].g2 == g2

    def test_absent_value_yields_no_tokens(self):
        state = populated_state(8, [5])
        assert generate_search_tokens(KEY, state, Query.parse(6, "="), 8) == []


class TestOrderTokens:
    def test_token_count_bounded_by_bits(self):
        state = populated_state(8, list(range(0, 256, 3)))
        tokens = generate_search_tokens(KEY, state, Query.parse(100, ">"), 8)
        assert 1 <= len(tokens) <= 8

    def test_tokens_only_for_live_slices(self):
        state = populated_state(8, [0])  # only slices of value 0 exist
        query = Query.parse(255, ">")
        tokens = generate_search_tokens(KEY, state, query, 8)
        # 255 > 0: exactly one slice of the query matches value 0's slices.
        live = {
            kw
            for kw in order_keywords_for_query(255, OrderCondition.GREATER, 8)
            if state.find(kw) is not None
        }
        assert len(tokens) == len(live) == 1

    def test_shuffle_reorders_but_preserves_set(self):
        state = populated_state(8, list(range(64)))
        q = Query.parse(40, "<")
        a = generate_search_tokens(KEY, state, q, 8, default_rng(1))
        b = generate_search_tokens(KEY, state, q, 8, default_rng(2))
        key = lambda t: (t.g1, t.g2)
        assert sorted(map(key, a)) == sorted(map(key, b))
        assert len(a) > 1


class TestWireEncoding:
    def test_token_encoding_round_trip_fields(self):
        t = SearchToken(b"\x01" * 8, 3, b"g1" * 8, b"g2" * 8)
        blob = t.encode()
        from repro.common.encoding import decode_parts, decode_uint

        trapdoor, epoch, g1, g2 = decode_parts(blob)
        assert trapdoor == t.trapdoor and decode_uint(epoch) == 3
        assert g1 == t.g1 and g2 == t.g2

    def test_size_accounting(self):
        t = SearchToken(b"\x01" * 8, 0, b"a" * 16, b"b" * 16)
        assert tokens_size_bytes([t, t]) == 2 * t.size_bytes
        assert t.size_bytes == len(t.encode())
