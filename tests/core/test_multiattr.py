"""Multi-attribute extension (Section V.F): per-attribute search isolation."""

import pytest

from repro.common.errors import ParameterError
from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.query import Query
from repro.core.records import AttributedDatabase, encode_record_id
from repro.core.user import DataUser, RangeQuery
from repro.core.verify import verify_response


@pytest.fixture()
def world(tparams, owner_factory):
    owner = owner_factory(tparams, seed=71)
    db = AttributedDatabase(8)
    db.add("p1", {"age": 30, "score": 90})
    db.add("p2", {"age": 60, "score": 40})
    db.add("p3", {"age": 30, "score": 40})
    db.add("p4", {"age": 45, "score": 70})
    out = owner.build(db)
    cloud = CloudServer(tparams, owner.keys.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(tparams, out.user_package, default_rng(9))
    return owner, cloud, user, db


def run(cloud, user, query):
    response = cloud.search(user.make_tokens(query))
    return user.decrypt_results(response), response


class TestAttributeIsolation:
    def test_equality_scoped_to_attribute(self, world):
        _, cloud, user, db = world
        ids, _ = run(cloud, user, Query(30, Query.parse(0, "=").condition, "age"))
        assert ids == db.ids_matching("age", lambda v: v == 30)

    def test_same_value_different_attribute_disjoint(self, world):
        _, cloud, user, db = world
        age_ids, _ = run(cloud, user, Query.parse(40, "=", "age"))
        score_ids, _ = run(cloud, user, Query.parse(40, "=", "score"))
        assert age_ids == set()
        assert score_ids == {encode_record_id("p2"), encode_record_id("p3")}

    def test_order_query_scoped(self, world):
        _, cloud, user, db = world
        ids, response = run(cloud, user, Query.parse(50, ">", "age"))
        assert ids == db.ids_matching("age", lambda v: v < 50)

    def test_unscoped_query_rejected_before_paying(self, world):
        """Records were indexed only under named attributes, so a bare
        ``attribute=""`` query could only ever verify an empty result.
        The user package now carries the index's attribute set and the
        user refuses to mint tokens for it instead of paying to search
        a nonexistent attribute."""
        _, cloud, user, _ = world
        with pytest.raises(ParameterError, match="multi-attribute"):
            user.make_tokens(Query.parse(30, "="))


class TestMultiAttrVerification:
    def test_order_search_verifies(self, world, tparams):
        _, cloud, user, _ = world
        _, response = run(cloud, user, Query.parse(50, ">", "score"))
        assert verify_response(tparams, cloud.ads_value, response).ok

    def test_range_per_attribute(self, world):
        _, cloud, user, db = world
        sides = [
            user.decrypt_results(cloud.search(tokens))
            for _, tokens in user.range_tokens(RangeQuery(35, 75, attribute="score"))
        ]
        combined = DataUser.intersect_range_results(sides)
        assert combined == db.ids_matching("score", lambda v: 35 <= v <= 75)

    def test_insert_multiattr(self, world, tparams):
        owner, cloud, user, db = world
        add = AttributedDatabase(8)
        add.add("p5", {"age": 30, "score": 55})
        out = owner.insert(add)
        cloud.install(out.cloud_package)
        user.refresh(out.user_package)
        ids, response = run(cloud, user, Query.parse(30, "=", "age"))
        assert encode_record_id("p5") in ids
        assert verify_response(tparams, cloud.ads_value, response).ok
