"""Duplicate search tokens: probed once, answered per-token, bytes unchanged.

The *b* boundary tokens of a range query can repeat when slice keywords
collide; the cloud dedupes identical tokens before walking the index, and
the user-side token generator drops duplicate keywords before shuffling.
Neither layer may change the response: one ``TokenResult`` per submitted
token, byte-identical to the undeduplicated walk."""

import pytest

from repro.common import perfstats
from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle, SlicerParams
from repro.core.query import Query
from repro.core.records import Database
from repro.core.keywords import order_keywords_for_query
from repro.core.tokens import SearchToken, derive_g1_g2, generate_search_tokens
from repro.core.user import DataUser
from repro.core.verify import verify_response


@pytest.fixture(scope="module")
def deployment(tparams):
    keys = KeyBundle.generate(default_rng(55), trapdoor_bits=512)
    owner = DataOwner(tparams, keys=keys, rng=default_rng(56))
    db = Database(8)
    for i in range(12):
        db.add(f"r{i}", (i * 11) % 256)
    out = owner.build(db)
    cloud = CloudServer(tparams, keys.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(tparams, out.user_package, default_rng(57))
    return cloud, user


class TestCloudDedup:
    def test_duplicated_list_answers_each_copy(self, tparams, deployment):
        cloud, user = deployment
        tokens = user.make_tokens(Query.parse(99, "<"))
        assert tokens  # the fixture database must make this query non-trivial
        single = cloud.search(tokens)
        doubled = cloud.search(tokens + tokens)
        assert len(doubled.results) == 2 * len(tokens)
        for offset in (0, len(tokens)):
            for a, b in zip(single.results, doubled.results[offset:]):
                assert a.token == b.token
                assert a.entries == b.entries
                assert a.witness.value == b.witness.value
        report = verify_response(tparams, cloud.ads_value, doubled)
        assert report.ok

    def test_result_set_unchanged(self, deployment):
        cloud, user = deployment
        tokens = user.make_tokens(Query.parse(99, "<"))
        ids = user.decrypt_results(cloud.search(tokens))
        assert ids  # fixture holds values up to 121, so "99 < a" matches some
        assert user.decrypt_results(cloud.search(tokens + tokens)) == ids

    def test_dedup_counter_reports_savings(self, deployment):
        cloud, user = deployment
        tokens = user.make_tokens(Query.parse(99, "<"))
        perfstats.reset("cloud.token_dedup.")
        cloud.search(tokens + tokens)
        assert perfstats.get("cloud.token_dedup.saved") == len(tokens)

    def test_unique_tokens_save_nothing(self, deployment):
        cloud, user = deployment
        tokens = user.make_tokens(Query.parse(99, "<"))
        perfstats.reset("cloud.token_dedup.")
        cloud.search(tokens)
        assert perfstats.get("cloud.token_dedup.saved") == 0


class TestTokenGeneratorDedup:
    def test_no_duplicate_tokens_emitted(self, tparams, deployment):
        _, user = deployment
        for value in (0, 50, 255):
            for op in ("<", ">"):
                tokens = user.make_tokens(Query.parse(value, op))
                assert len(tokens) == len(set(tokens))

    def test_dedup_preserves_rng_stream_and_order(self, tparams, deployment):
        """Dedup runs AFTER the shuffle: the shared rng consumes exactly the
        stream the pre-dedup code did (one shuffle of the full keyword
        list), so kill-switch runs (``REPRO_KERNELS=0``) reproduce the
        pre-kernel token order and any later draws from the same rng."""
        _, user = deployment
        query = Query.parse(50, ">")
        rng = default_rng(777)
        tokens = generate_search_tokens(
            user._keys.prf_key, user._trapdoor_state, query, tparams.value_bits, rng
        )
        # Control: what the pre-dedup code consumed — a shuffle of the full
        # (possibly duplicated) keyword list.
        control = default_rng(777)
        keywords = order_keywords_for_query(
            query.value, query.condition.order_condition(), tparams.value_bits, query.attribute
        )
        control.shuffle(keywords)
        # Same stream position afterwards: the next draws agree.
        assert rng.randbits(64) == control.randbits(64)
        # And the emitted tokens follow shuffled order, first occurrence wins.
        expected = []
        for keyword in dict.fromkeys(keywords):
            entry = user._trapdoor_state.find(keyword)
            if entry is None:
                continue
            g1, g2 = derive_g1_g2(user._keys.prf_key, keyword)
            expected.append(SearchToken(entry.trapdoor, entry.epoch, g1, g2))
        assert tokens == expected

    def test_dedup_does_not_change_token_set(self, tparams, deployment):
        """Dropping duplicate keywords before the shuffle must not change
        *which* tokens come out, only how many times."""
        _, user = deployment
        query = Query.parse(50, ">")
        a = set(user.make_tokens(query))
        b = set(
            generate_search_tokens(
                user._keys.prf_key,
                user._trapdoor_state,
                query,
                tparams.value_bits,
                default_rng(123),
            )
        )
        assert a == b
