"""Dual-instance deletion/update (Section V.F)."""

import pytest

from repro.common.errors import ParameterError, StateError
from repro.common.rng import default_rng
from repro.core.deletion import DualInstanceSlicer
from repro.core.query import Query
from repro.core.records import encode_record_id, make_database


@pytest.fixture()
def dual(tparams):
    d = DualInstanceSlicer(tparams, default_rng(61), trapdoor_bits=512)
    d.build(make_database([("a", 10), ("b", 20), ("c", 30), ("d", 20)], bits=8))
    return d


class TestDeletion:
    def test_deleted_record_disappears(self, dual):
        q = Query.parse(25, ">")
        before = dual.search(q)
        assert before.ids == dual.expected_ids(q)
        assert encode_record_id("b") in before.ids

        dual.delete(encode_record_id("b"))
        after = dual.search(q)
        assert encode_record_id("b") not in after.ids
        assert after.ids == dual.expected_ids(q)
        assert after.verified

    def test_delete_requires_live_record(self, dual):
        with pytest.raises(StateError):
            dual.delete(encode_record_id("zz"))

    def test_double_delete_rejected(self, dual):
        dual.delete(encode_record_id("b"))
        with pytest.raises(StateError):
            dual.delete(encode_record_id("b"))

    def test_reinsert_deleted_id_rejected(self, dual):
        dual.delete(encode_record_id("b"))
        with pytest.raises(ParameterError):
            dual.insert(encode_record_id("b"), 42)

    def test_both_instances_verified(self, dual):
        dual.delete(encode_record_id("b"))
        result = dual.search(Query.parse(25, ">"))
        assert result.insert_report.ok and result.delete_report.ok


class TestInsertion:
    def test_insert_appears(self, dual):
        dual.insert(encode_record_id("e"), 22)
        q = Query.parse(25, ">")
        assert encode_record_id("e") in dual.search(q).ids

    def test_duplicate_live_id_rejected(self, dual):
        with pytest.raises(ParameterError):
            dual.insert(encode_record_id("a"), 99)


class TestUpdate:
    def test_update_changes_matching(self, dual):
        q_low = Query.parse(15, ">")  # values below 15
        assert encode_record_id("a") in dual.search(q_low).ids

        dual.update(encode_record_id("a"), 200)
        after_low = dual.search(q_low)
        assert encode_record_id("a") not in after_low.ids
        assert after_low.ids == dual.expected_ids(q_low)

        q_high = Query.parse(150, "<")  # values above 150
        high = dual.search(q_high)
        assert len(high.ids) == 1  # the updated record under its new version ID
        assert high.verified

    def test_search_before_build_rejected(self, tparams):
        d = DualInstanceSlicer(tparams, default_rng(1))
        with pytest.raises(StateError):
            d.search(Query.parse(1, "="))


class TestOracleConsistency:
    @pytest.mark.parametrize("symbol,value", [(">", 25), ("<", 15), ("=", 20)])
    def test_search_matches_oracle_after_churn(self, dual, symbol, value):
        dual.insert(encode_record_id("e"), 18)
        dual.delete(encode_record_id("d"))
        dual.insert(encode_record_id("f"), 20)
        q = Query.parse(value, symbol)
        result = dual.search(q)
        assert result.ids == dual.expected_ids(q)
        assert result.verified
