"""Index/state containers: collision detection, snapshots, sizes."""

import pytest

from repro.common.errors import IndexCorruptionError, StateError
from repro.core.state import (
    CloudPackage,
    EncryptedIndex,
    SetHashState,
    TrapdoorState,
    set_hash_key,
)
from repro.crypto.multiset_hash import MultisetHash


class TestEncryptedIndex:
    def test_put_find(self):
        idx = EncryptedIndex()
        idx.put(b"l1", b"d1")
        assert idx.find(b"l1") == b"d1"
        assert idx.find(b"l2") is None

    def test_label_collision_rejected(self):
        idx = EncryptedIndex()
        idx.put(b"l1", b"d1")
        with pytest.raises(IndexCorruptionError):
            idx.put(b"l1", b"d2")

    def test_size_bytes(self):
        idx = EncryptedIndex()
        idx.put(b"ab", b"cdef")
        assert idx.size_bytes == 6

    def test_merge(self):
        a, b = EncryptedIndex(), EncryptedIndex()
        a.put(b"l1", b"d1")
        b.put(b"l2", b"d2")
        a.merge(b)
        assert len(a) == 2 and a.find(b"l2") == b"d2"

    def test_merge_collision_rejected(self):
        a, b = EncryptedIndex(), EncryptedIndex()
        a.put(b"l1", b"d1")
        b.put(b"l1", b"d2")
        with pytest.raises(IndexCorruptionError):
            a.merge(b)

    def test_contains(self):
        idx = EncryptedIndex()
        idx.put(b"l1", b"d1")
        assert b"l1" in idx and b"x" not in idx


class TestTrapdoorState:
    def test_put_get(self):
        t = TrapdoorState()
        t.put(b"w", b"t0", 0)
        assert t.get(b"w").trapdoor == b"t0"
        assert t.get(b"w").epoch == 0

    def test_find_missing_is_none(self):
        assert TrapdoorState().find(b"w") is None

    def test_get_missing_raises(self):
        with pytest.raises(StateError):
            TrapdoorState().get(b"w")

    def test_snapshot_is_independent(self):
        t = TrapdoorState()
        t.put(b"w", b"t0", 0)
        snap = t.snapshot()
        t.put(b"w", b"t1", 1)
        assert snap.get(b"w").epoch == 0
        assert t.get(b"w").epoch == 1

    def test_keywords_listing(self):
        t = TrapdoorState()
        t.put(b"a", b"t", 0)
        t.put(b"b", b"t", 0)
        assert sorted(t.keywords()) == [b"a", b"b"]


class TestSetHashState:
    def test_put_pop(self):
        s = SetHashState()
        h = MultisetHash.of([b"x"])
        key = set_hash_key(b"t", 0, b"g1", b"g2")
        s.put(key, h)
        assert s.pop(key) == h
        assert len(s) == 0

    def test_pop_missing_raises(self):
        with pytest.raises(StateError):
            SetHashState().pop(b"nope")

    def test_key_injective(self):
        # t||j boundary shifts must not collide.
        assert set_hash_key(b"t1", 0, b"g", b"g") != set_hash_key(b"t", 10, b"g", b"g")


class TestCloudPackage:
    def test_prime_bytes(self):
        pkg = CloudPackage(EncryptedIndex(), primes=[(1 << 63) + 29, 3], accumulation=5)
        assert pkg.prime_bytes == 8 + 1
