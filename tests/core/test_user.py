"""Data user: decryption, state refresh, range composition."""

import pytest

from repro.common.errors import StateError
from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.query import Query
from repro.core.records import Database, encode_record_id, make_database
from repro.core.user import DataUser, RangeQuery


@pytest.fixture()
def world(tparams, owner_factory):
    owner = owner_factory(tparams, seed=51)
    db = make_database([(f"r{i}", (i * 11) % 256) for i in range(40)], bits=8)
    out = owner.build(db)
    cloud = CloudServer(tparams, owner.keys.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(tparams, out.user_package, default_rng(8))
    return owner, cloud, user, db


class TestDecryption:
    def test_round_trip_ids(self, world):
        _, cloud, user, db = world
        query = Query.parse(11, "=")
        ids = user.decrypt_results(cloud.search(user.make_tokens(query)))
        assert ids == db.ids_matching(query.predicate())

    def test_garbage_entry_raises(self, world, tparams):
        from repro.common.errors import ReproError

        _, cloud, user, _ = world
        response = cloud.search(user.make_tokens(Query.parse(11, "=")))
        # Too short to even contain a nonce -> ParameterError from the cipher.
        response.results[0].entries[0] = b"\x00" * 10
        with pytest.raises(ReproError):
            user.decrypt_results(response)

    def test_wrong_length_plaintext_raises(self, world, tparams):
        _, cloud, user, _ = world
        response = cloud.search(user.make_tokens(Query.parse(11, "=")))
        # Valid-looking ciphertext with an over-long body -> StateError.
        response.results[0].entries[0] = b"\x00" * (16 + tparams.record_id_len + 4)
        with pytest.raises(StateError):
            user.decrypt_results(response)

    def test_local_verification_mode(self, world, tparams):
        _, cloud, user, _ = world
        response = cloud.search(user.make_tokens(Query.parse(11, "=")))
        assert user.verify_locally(response).ok


class TestRefresh:
    def test_refresh_tracks_inserts(self, world, tparams):
        owner, cloud, user, _ = world
        add = Database(8)
        add.add("fresh", 11)
        out = owner.insert(add)
        cloud.install(out.cloud_package)

        # Before refresh the user holds a stale trapdoor: finds only old records.
        stale_ids = user.decrypt_results(cloud.search(user.make_tokens(Query.parse(11, "="))))
        assert encode_record_id("fresh") not in stale_ids

        user.refresh(out.user_package)
        fresh_ids = user.decrypt_results(cloud.search(user.make_tokens(Query.parse(11, "="))))
        assert encode_record_id("fresh") in fresh_ids
        assert user.ads_value == out.chain_ads


class TestRangeComposition:
    def test_two_sided_range(self, world):
        _, cloud, user, db = world
        rq = RangeQuery(50, 120)
        sides = []
        for query, tokens in user.range_tokens(rq):
            sides.append(user.decrypt_results(cloud.search(tokens)))
        combined = DataUser.intersect_range_results(sides)
        assert combined == db.ids_matching(lambda v: 50 <= v <= 120)

    def test_point_range(self, world):
        _, cloud, user, db = world
        sides = [
            user.decrypt_results(cloud.search(tokens))
            for _, tokens in user.range_tokens(RangeQuery(11, 11))
        ]
        assert DataUser.intersect_range_results(sides) == db.ids_matching(lambda v: v == 11)

    def test_empty_sides(self):
        assert DataUser.intersect_range_results([]) == set()
