"""Record/database containers and ID normalisation."""

import pytest

from repro.common.errors import ParameterError
from repro.core.records import (
    AttributedDatabase,
    AttributedRecord,
    Database,
    Record,
    encode_record_id,
    make_database,
)


class TestEncodeRecordId:
    def test_int_fixed_width(self):
        assert encode_record_id(5) == b"\x00" * 7 + b"\x05"

    def test_str_padded(self):
        assert encode_record_id("ab") == b"\x00" * 6 + b"ab"

    def test_bytes_passthrough(self):
        assert encode_record_id(b"12345678") == b"12345678"

    def test_overflow_int(self):
        with pytest.raises(ParameterError):
            encode_record_id(2**64)

    def test_overlong_str(self):
        with pytest.raises(ParameterError):
            encode_record_id("123456789")

    def test_negative_int(self):
        with pytest.raises(ParameterError):
            encode_record_id(-1)


class TestDatabase:
    def test_add_and_len(self):
        db = Database(8)
        db.add("a", 1)
        db.add("b", 2)
        assert len(db) == 2

    def test_duplicate_id_rejected(self):
        db = Database(8)
        db.add("a", 1)
        with pytest.raises(ParameterError):
            db.add("a", 2)

    def test_value_domain_enforced(self):
        db = Database(8)
        with pytest.raises(ParameterError):
            db.add("a", 256)

    def test_ids_matching_oracle(self):
        db = make_database([("a", 1), ("b", 200), ("c", 1)], bits=8)
        assert db.ids_matching(lambda v: v == 1) == {
            encode_record_id("a"),
            encode_record_id("c"),
        }

    def test_values(self):
        db = make_database([("a", 1), ("b", 2)], bits=8)
        assert sorted(db.values()) == [1, 2]

    def test_record_validation(self):
        with pytest.raises(ParameterError):
            Record("not-bytes", 1)  # type: ignore[arg-type]
        with pytest.raises(ParameterError):
            Record(b"x" * 8, -1)

    def test_constructor_checks_duplicates(self):
        r = Record(encode_record_id("a"), 1)
        with pytest.raises(ParameterError):
            Database(8, [r, r])


class TestAttributedDatabase:
    def test_add_dict(self):
        db = AttributedDatabase(8)
        rec = db.add("p1", {"age": 30, "score": 99})
        assert rec.value_of("age") == 30
        assert rec.value_of("score") == 99

    def test_missing_attribute(self):
        db = AttributedDatabase(8)
        rec = db.add("p1", {"age": 30})
        with pytest.raises(KeyError):
            rec.value_of("salary")

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(ParameterError):
            AttributedRecord(b"x" * 8, (("age", 1), ("age", 2)))

    def test_oracle_per_attribute(self):
        db = AttributedDatabase(8)
        db.add("p1", {"age": 30, "score": 10})
        db.add("p2", {"age": 60, "score": 20})
        assert db.ids_matching("age", lambda v: v > 40) == {encode_record_id("p2")}

    def test_oracle_skips_absent_attribute(self):
        db = AttributedDatabase(8)
        db.add("p1", {"age": 30})
        db.add("p2", {"score": 5})
        assert db.ids_matching("age", lambda v: True) == {encode_record_id("p1")}

    def test_domain_enforced(self):
        db = AttributedDatabase(8)
        with pytest.raises(ParameterError):
            db.add("p1", {"age": 300})
