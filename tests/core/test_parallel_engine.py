"""The parallel execution engine: chunking, fallback, worker resolution."""

from __future__ import annotations

import pytest

from repro.common.errors import ParameterError
from repro.parallel import WORKERS_ENV, ParallelExecutor, resolve_workers
from repro.parallel.executor import split_chunks
from repro.parallel.tasks import root_factor, witness_map


def _double_chunk(shared, chunk):
    offset = shared or 0
    return [offset + 2 * item for item in chunk]


def _bad_arity_chunk(shared, chunk):
    return [0]  # wrong: not one result per item


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_auto_reads_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(0) == 5
        assert resolve_workers(None) == 5

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(0) == 1

    def test_negative_means_all_cores(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(-1) >= 1

    def test_env_auto_keyword(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "auto")
        assert resolve_workers(0) >= 1

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ParameterError):
            resolve_workers(0)


class TestSplitChunks:
    def test_roundtrip_order(self):
        items = list(range(17))
        for parts in (1, 2, 3, 5, 16, 17, 40):
            chunks = split_chunks(items, parts)
            assert [x for c in chunks for x in c] == items
            assert len(chunks) == min(parts, len(items))
            sizes = [len(c) for c in chunks]
            assert max(sizes) - min(sizes) <= 1

    def test_empty(self):
        assert split_chunks([], 4) == [[]]


class TestMapChunks:
    def test_serial_executor(self):
        ex = ParallelExecutor(workers=1)
        assert ex.map_chunks(_double_chunk, [1, 2, 3], shared=10) == [12, 14, 16]

    def test_parallel_matches_serial(self):
        serial = ParallelExecutor(workers=1)
        parallel = ParallelExecutor(workers=3, min_items=1)
        items = list(range(23))
        assert parallel.map_chunks(_double_chunk, items, shared=1) == serial.map_chunks(
            _double_chunk, items, shared=1
        )

    def test_small_input_stays_serial(self):
        # Below min_items the pool is never spun up; results are identical.
        ex = ParallelExecutor(workers=4)  # min_items defaults to 8
        assert ex.map_chunks(_double_chunk, [1, 2], shared=0) == [2, 4]

    def test_empty_items(self):
        assert ParallelExecutor(workers=2).map_chunks(_double_chunk, []) == []

    @pytest.mark.skipif(
        not ParallelExecutor(workers=2).parallel_available,
        reason="platform cannot fork",
    )
    def test_arity_mismatch_rejected(self):
        ex = ParallelExecutor(workers=2, min_items=1)
        with pytest.raises(ParameterError):
            ex.map_chunks(_bad_arity_chunk, list(range(8)))

    def test_run_jobs_matches_serial(self):
        serial = ParallelExecutor(workers=1)
        parallel = ParallelExecutor(workers=2)
        jobs = [1, 2, 3]
        assert parallel.run_jobs(_double_chunk, jobs, shared=5) == serial.run_jobs(
            _double_chunk, jobs, shared=5
        )


class TestWitnessMap:
    MOD = 0x8F2D5D0E3A7C1F4B66ADF6E52C07E109  # any odd modulus works here

    def test_matches_naive(self):
        primes = [3, 5, 7, 11, 13]
        base = 4
        naive = {
            p: pow(base, 3 * 5 * 7 * 11 * 13 // p, self.MOD) for p in primes
        }
        assert root_factor(base, primes, self.MOD) == naive
        assert witness_map(base, primes, self.MOD) == naive

    def test_parallel_split_identical(self):
        primes = [3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]
        base = 9
        serial = witness_map(base, primes, self.MOD, None)
        for workers in (2, 3, 4):
            ex = ParallelExecutor(workers=workers, min_items=1)
            assert witness_map(base, primes, self.MOD, ex) == serial

    def test_empty(self):
        assert witness_map(5, [], self.MOD, None) == {}

    def test_singleton(self):
        assert witness_map(5, [13], self.MOD, None) == {13: 5}
