"""Third-party auditing: keyless re-verification matches the contract."""

import pytest

from repro.common.rng import default_rng
from repro.core.audit import AuditRecord, ThirdPartyAuditor
from repro.core.cloud import MaliciousCloud, Misbehavior
from repro.core.query import Query
from repro.core.records import make_database
from repro.system import SlicerSystem


@pytest.fixture()
def system(tparams):
    s = SlicerSystem(tparams, rng=default_rng(181))
    s.setup(make_database([(f"r{i}", (i * 31) % 256) for i in range(16)], bits=8))
    return s


class TestAuditor:
    def test_honest_search_audits_clean(self, system, tparams):
        outcome = system.search(Query.parse(120, ">"))
        auditor = ThirdPartyAuditor(tparams)
        record = AuditRecord.from_response(outcome.response, system.cloud.ads_value)
        assert auditor.audit(record).ok
        assert auditor.audit_agrees_with_settlement(record, outcome.verified)

    def test_auditor_holds_no_secrets(self, tparams):
        auditor = ThirdPartyAuditor(tparams)
        assert not auditor.params.accumulator.has_trapdoor

    def test_tampered_search_audits_dirty(self, tparams):
        s = SlicerSystem(tparams, rng=default_rng(182))
        s.cloud = MaliciousCloud(
            tparams, s.owner.keys.trapdoor.public, Misbehavior.DROP_ENTRY, default_rng(1)
        )
        s.setup(make_database([(f"r{i}", (i * 31) % 256) for i in range(16)], bits=8))
        outcome = s.search(Query.parse(120, ">"))
        auditor = ThirdPartyAuditor(tparams)
        record = AuditRecord.from_response(outcome.response, s.cloud.ads_value)
        assert not auditor.audit(record).ok
        assert auditor.audit_agrees_with_settlement(record, outcome.verified)

    def test_audit_from_raw_chain_args(self, system, tparams):
        """The auditor can work from exactly what went over the wire."""
        from repro.blockchain.slicer_contract import response_to_chain_args

        outcome = system.search(Query.parse(31, "="))
        args = response_to_chain_args(outcome.response)
        record = AuditRecord.from_chain_args(args, system.cloud.ads_value)
        assert ThirdPartyAuditor(tparams).audit(record).ok

    def test_audit_against_stale_ads_fails(self, system, tparams):
        from repro.core.records import Database

        outcome = system.search(Query.parse(120, ">"))
        record = AuditRecord.from_response(outcome.response, system.cloud.ads_value)
        add = Database(8)
        add.add("new", 3)
        system.insert(add)
        stale_ok = ThirdPartyAuditor(tparams).audit(record).ok
        fresh_record = AuditRecord.from_response(outcome.response, system.cloud.ads_value)
        fresh_ok = ThirdPartyAuditor(tparams).audit(fresh_record).ok
        assert stale_ok  # the original Ac still validates the original search
        assert not fresh_ok  # but the search does not validate against new Ac
