"""Wire formats: responses survive a round trip and still verify."""

import pytest

from repro.common.errors import ParameterError
from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.query import Query
from repro.core.records import make_database
from repro.core.user import DataUser
from repro.core.verify import verify_response
from repro.core.wire import dump_response, dump_tokens, load_response, load_tokens


@pytest.fixture()
def world(tparams, owner_factory):
    owner = owner_factory(tparams, seed=251)
    db = make_database([(f"r{i}", (i * 41) % 256) for i in range(15)], bits=8)
    out = owner.build(db)
    cloud = CloudServer(tparams, owner.keys.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(tparams, out.user_package, default_rng(7))
    return cloud, user, db


class TestTokenWire:
    def test_round_trip(self, world):
        cloud, user, _ = world
        tokens = user.make_tokens(Query.parse(120, ">"))
        restored = load_tokens(dump_tokens(tokens))
        assert restored == tokens

    def test_empty_list(self):
        assert load_tokens(dump_tokens([])) == []

    def test_garbage_rejected(self):
        with pytest.raises(ParameterError):
            load_tokens(b"nonsense")


class TestResponseWire:
    def test_round_trip_verifies(self, world, tparams):
        cloud, user, db = world
        query = Query.parse(120, ">")
        tokens = user.make_tokens(query)
        response = cloud.search(tokens)
        restored = load_response(dump_response(response))
        assert verify_response(tparams, cloud.ads_value, restored).ok
        assert user.decrypt_results(restored) == db.ids_matching(query.predicate())

    def test_round_trip_preserves_structure(self, world):
        cloud, user, _ = world
        response = cloud.search(user.make_tokens(Query.parse(41, "=")))
        restored = load_response(dump_response(response))
        assert len(restored.results) == len(response.results)
        for a, b in zip(response.results, restored.results):
            assert a.token == b.token
            assert a.entries == b.entries
            assert a.witness.value == b.witness.value

    def test_audit_from_archived_bytes(self, world, tparams, tmp_path):
        """The end-to-end archival story: cloud response -> file -> audit."""
        from repro.core.audit import AuditRecord, ThirdPartyAuditor

        cloud, user, _ = world
        response = cloud.search(user.make_tokens(Query.parse(120, ">")))
        path = tmp_path / "settled-query.bin"
        path.write_bytes(dump_response(response))

        restored = load_response(path.read_bytes())
        record = AuditRecord.from_response(restored, cloud.ads_value)
        assert ThirdPartyAuditor(tparams).audit(record).ok

    def test_tampered_archive_fails_audit(self, world, tparams):
        cloud, user, _ = world
        response = cloud.search(user.make_tokens(Query.parse(120, ">")))
        blob = bytearray(dump_response(response))
        blob[-5] ^= 0xFF  # flip a witness byte
        from repro.core.wire import load_response as lr

        restored = lr(bytes(blob))
        assert not verify_response(tparams, cloud.ads_value, restored).ok
