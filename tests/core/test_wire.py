"""Wire formats: responses survive a round trip and still verify."""

import pytest

from repro.common.errors import ParameterError
from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.query import Query
from repro.core.records import make_database
from repro.core.user import DataUser
from repro.core.verify import verify_response
from repro.core.wire import dump_response, dump_tokens, load_response, load_tokens


@pytest.fixture()
def world(tparams, owner_factory):
    owner = owner_factory(tparams, seed=251)
    db = make_database([(f"r{i}", (i * 41) % 256) for i in range(15)], bits=8)
    out = owner.build(db)
    cloud = CloudServer(tparams, owner.keys.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(tparams, out.user_package, default_rng(7))
    return cloud, user, db


class TestTokenWire:
    def test_round_trip(self, world):
        cloud, user, _ = world
        tokens = user.make_tokens(Query.parse(120, ">"))
        restored = load_tokens(dump_tokens(tokens))
        assert restored == tokens

    def test_empty_list(self):
        assert load_tokens(dump_tokens([])) == []

    def test_garbage_rejected(self):
        with pytest.raises(ParameterError):
            load_tokens(b"nonsense")


class TestResponseWire:
    def test_round_trip_verifies(self, world, tparams):
        cloud, user, db = world
        query = Query.parse(120, ">")
        tokens = user.make_tokens(query)
        response = cloud.search(tokens)
        restored = load_response(dump_response(response))
        assert verify_response(tparams, cloud.ads_value, restored).ok
        assert user.decrypt_results(restored) == db.ids_matching(query.predicate())

    def test_round_trip_preserves_structure(self, world):
        cloud, user, _ = world
        response = cloud.search(user.make_tokens(Query.parse(41, "=")))
        restored = load_response(dump_response(response))
        assert len(restored.results) == len(response.results)
        for a, b in zip(response.results, restored.results):
            assert a.token == b.token
            assert a.entries == b.entries
            assert a.witness.value == b.witness.value

    def test_audit_from_archived_bytes(self, world, tparams, tmp_path):
        """The end-to-end archival story: cloud response -> file -> audit."""
        from repro.core.audit import AuditRecord, ThirdPartyAuditor

        cloud, user, _ = world
        response = cloud.search(user.make_tokens(Query.parse(120, ">")))
        path = tmp_path / "settled-query.bin"
        path.write_bytes(dump_response(response))

        restored = load_response(path.read_bytes())
        record = AuditRecord.from_response(restored, cloud.ads_value)
        assert ThirdPartyAuditor(tparams).audit(record).ok

    def test_bit_rotted_archive_is_rejected_at_load(self, world):
        """Codec v2: a blind bit flip anywhere in the archived blob trips
        the framing digest at load time — it never reaches verification."""
        cloud, user, _ = world
        response = cloud.search(user.make_tokens(Query.parse(120, ">")))
        blob = bytearray(dump_response(response))
        blob[-5] ^= 0xFF
        with pytest.raises(ParameterError, match="integrity"):
            load_response(bytes(blob))

    def test_tampered_archive_fails_audit(self, world, tparams):
        """An adversary who *re-encodes* after tampering parses fine — and
        still fails cryptographic verification (the fairness layer)."""
        from repro.crypto.accumulator import MembershipWitness

        cloud, user, _ = world
        response = cloud.search(user.make_tokens(Query.parse(120, ">")))
        tampered = load_response(dump_response(response))
        first = tampered.results[0]
        first.witness = MembershipWitness(first.witness.value ^ 1)
        re_encoded = load_response(dump_response(tampered))  # parses cleanly
        assert not verify_response(tparams, cloud.ads_value, re_encoded).ok


class TestEntryWireLen:
    """Regression: forged-entry sizing is derived from the codec, not guessed."""

    def test_matches_real_entry_length(self, world, tparams):
        cloud, user, _ = world
        response = cloud.search(user.make_tokens(Query.parse(41, "=")))
        real = [e for r in response.results for e in r.entries]
        assert real, "fixture query must match records"
        from repro.core.wire import entry_wire_len

        assert {len(e) for e in real} == {entry_wire_len(tparams)}

    def test_matches_cipher_layout(self, tparams):
        from repro.core.wire import entry_wire_len
        from repro.crypto.symmetric import NONCE_LEN

        assert entry_wire_len(tparams) == NONCE_LEN + tparams.record_id_len

    def test_injected_entry_on_empty_result_has_real_size_and_is_refused(
        self, tparams, owner_factory
    ):
        """The INJECT_ENTRY bug this fixes: on an *empty* honest result the
        malicious cloud has no entry to copy the size from, so it must
        derive it — and the forgery, correctly sized, is still caught by
        verification (size was never the defence, the accumulator is)."""
        from repro.core.cloud import MaliciousCloud, Misbehavior
        from repro.core.wire import entry_wire_len

        owner = owner_factory(tparams, seed=251)
        db = make_database([(f"r{i}", (i * 41) % 256) for i in range(15)], bits=8)
        out = owner.build(db)
        cheat = MaliciousCloud(
            tparams, owner.keys.trapdoor.public, Misbehavior.INJECT_ENTRY, default_rng(5)
        )
        cheat.install(out.cloud_package)
        user = DataUser(tparams, out.user_package, default_rng(7))

        # An empty-entry TokenResult never arises naturally (unmatched
        # tokens produce no result at all), so hit the fallback directly:
        from repro.core.cloud import CloudServer, TokenResult

        honest = CloudServer.search(cheat, user.make_tokens(Query.parse(41, "="))).results[0]
        empty = TokenResult(honest.token, [], honest.witness)
        forged = cheat._tamper(empty)
        assert len(forged.entries) == 1
        assert len(forged.entries[0]) == entry_wire_len(tparams)

        # And on a real (non-empty) result the correctly-sized forgery is
        # still refused — size was never the defence, the accumulator is.
        response = cheat.search(user.make_tokens(Query.parse(41, "=")))
        assert any(r.entries for r in response.results)
        assert not verify_response(tparams, cheat.ads_value, response).ok
