"""Cloud.Search (Algorithm 4): correctness of result collection across epochs."""

import pytest

from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.query import Query
from repro.core.records import Database, encode_record_id, make_database
from repro.core.user import DataUser
from repro.common.rng import default_rng


@pytest.fixture()
def deployment(tparams, owner_factory, small_db):
    owner = owner_factory(tparams)
    out = owner.build(small_db)
    cloud = CloudServer(tparams, owner.keys.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(tparams, out.user_package, default_rng(42))
    return owner, cloud, user


def run_query(cloud, user, query):
    tokens = user.make_tokens(query)
    response = cloud.search(tokens)
    return user.decrypt_results(response), response


class TestEqualitySearch:
    def test_duplicate_values_all_returned(self, deployment, small_db):
        _, cloud, user = deployment
        ids, _ = run_query(cloud, user, Query.parse(7, "="))
        assert ids == small_db.ids_matching(lambda v: v == 7)
        assert len(ids) == 2

    def test_absent_value_empty(self, deployment):
        _, cloud, user = deployment
        ids, response = run_query(cloud, user, Query.parse(99, "="))
        assert ids == set()
        assert response.results == []  # no token was even issued


class TestOrderSearch:
    @pytest.mark.parametrize("value,symbol", [(50, ">"), (50, "<"), (0, "<"), (255, ">")])
    def test_matches_oracle(self, deployment, small_db, value, symbol):
        _, cloud, user = deployment
        query = Query.parse(value, symbol)
        ids, _ = run_query(cloud, user, query)
        assert ids == small_db.ids_matching(query.predicate())

    def test_no_duplicate_entries_across_tokens(self, deployment):
        """Theorem 1: each matching record appears under exactly one slice."""
        _, cloud, user = deployment
        tokens = user.make_tokens(Query.parse(200, ">"))
        response = cloud.search(tokens)
        entries = response.all_entries()
        decrypted = [user._cipher.decrypt(e) for e in entries]
        assert len(decrypted) == len(set(decrypted))


class TestMultiEpochSearch:
    def test_walks_all_epochs(self, tparams, owner_factory):
        owner = owner_factory(tparams, seed=17)
        cloud = CloudServer(tparams, owner.keys.trapdoor.public)
        out = owner.build(make_database([("a", 7)], bits=8))
        cloud.install(out.cloud_package)

        # Three insert batches touching the same value 7 -> epochs advance.
        for i in range(3):
            add = Database(8)
            add.add(f"n{i}", 7)
            out = owner.insert(add)
            cloud.install(out.cloud_package)

        user = DataUser(tparams, out.user_package, default_rng(1))
        ids, response = run_query(cloud, user, Query.parse(7, "="))
        assert ids == {encode_record_id(x) for x in ["a", "n0", "n1", "n2"]}
        assert response.results[0].token.epoch == 3

    def test_epoch_walk_uses_chain_cache(self, tparams, owner_factory, monkeypatch):
        """The multi-epoch walk must actually consult the kernel trapdoor
        chain (an *empty* cache is still a cache — regression: truthiness of
        the cache object once made the cold path skip it silently), and a
        repeat search must not walk at all: the epoch-suffix entry cache
        serves the whole result from its head node."""
        from repro.common import perfstats
        from repro.crypto import kernels

        monkeypatch.setenv(kernels.KERNELS_ENV, "1")
        owner = owner_factory(tparams, seed=19)
        cloud = CloudServer(tparams, owner.keys.trapdoor.public)
        out = owner.build(make_database([("a", 7)], bits=8))
        cloud.install(out.cloud_package)
        for i in range(3):
            add = Database(8)
            add.add(f"n{i}", 7)
            out = owner.insert(add)
            cloud.install(out.cloud_package)
        user = DataUser(tparams, out.user_package, default_rng(1))
        tokens = user.make_tokens(Query.parse(7, "="))
        assert tokens[0].epoch == 3

        kernels.clear_caches()
        perfstats.reset("trapdoor_chain.")
        perfstats.reset("cloud.entry_cache.")
        first = cloud.search(tokens)
        assert perfstats.get("trapdoor_chain.miss") == 3  # one modexp per step
        assert perfstats.get("trapdoor_chain.hit") == 0
        assert perfstats.get("cloud.entry_cache.miss") == 1
        again = cloud.search(tokens)
        # The repeat walk terminates at the cached head node: zero chain
        # steps (neither misses nor hits) and every entry spliced.
        assert perfstats.get("trapdoor_chain.miss") == 3
        assert perfstats.get("trapdoor_chain.hit") == 0
        assert perfstats.get("cloud.entry_cache.hit") == 1
        assert perfstats.get("cloud.entry_cache.spliced_entries") == 4
        assert [r.entries for r in again.results] == [r.entries for r in first.results]

    def test_epoch_counters_reset(self, tparams, owner_factory):
        """Counters restart at 0 in each epoch; all entries must still be found."""
        owner = owner_factory(tparams, seed=18)
        cloud = CloudServer(tparams, owner.keys.trapdoor.public)
        db = make_database([("a", 9), ("b", 9), ("c", 9)], bits=8)
        out = owner.build(db)
        cloud.install(out.cloud_package)
        add = Database(8)
        add.add("d", 9)
        add.add("e", 9)
        out = owner.insert(add)
        cloud.install(out.cloud_package)

        user = DataUser(tparams, out.user_package, default_rng(1))
        ids, _ = run_query(cloud, user, Query.parse(9, "="))
        assert len(ids) == 5


class TestResponseShape:
    def test_witness_constant_size(self, deployment, tparams):
        _, cloud, user = deployment
        _, response = run_query(cloud, user, Query.parse(100, ">"))
        width = (tparams.accumulator.modulus.bit_length() + 7) // 8
        for result in response.results:
            assert result.witness_bytes <= width

    def test_entry_sizes_uniform(self, deployment, tparams):
        _, cloud, user = deployment
        _, response = run_query(cloud, user, Query.parse(100, ">"))
        for entry in response.all_entries():
            assert len(entry) == 16 + tparams.record_id_len

    def test_size_accounting(self, deployment):
        _, cloud, user = deployment
        _, response = run_query(cloud, user, Query.parse(100, ">"))
        assert response.encrypted_result_bytes == sum(
            len(e) for e in response.all_entries()
        )
