"""Result verification (Algorithm 5) and Theorem 3: every dishonest-cloud
behaviour from the threat model must be caught; honest clouds always pass."""

import pytest

from repro.common.rng import default_rng
from repro.core.cloud import CloudServer, MaliciousCloud, Misbehavior, TokenResult
from repro.core.owner import DataOwner
from repro.core.query import Query
from repro.core.records import Database, make_database
from repro.core.user import DataUser
from repro.core.verify import verify_response, verify_token_result
from repro.crypto.accumulator import MembershipWitness


@pytest.fixture()
def world(tparams, owner_factory):
    owner = owner_factory(tparams, seed=41)
    db = make_database([(f"r{i}", (i * 13) % 256) for i in range(25)], bits=8)
    out = owner.build(db)
    user = DataUser(tparams, out.user_package, default_rng(3))
    return owner, out, user, db


def make_cloud(tparams, owner, out, misbehavior=None):
    if misbehavior is None:
        cloud = CloudServer(tparams, owner.keys.trapdoor.public)
    else:
        cloud = MaliciousCloud(
            tparams, owner.keys.trapdoor.public, misbehavior, default_rng(5)
        )
    cloud.install(out.cloud_package)
    return cloud


QUERIES = [Query.parse(100, ">"), Query.parse(100, "<"), Query.parse(13, "=")]


class TestHonestCloudAlwaysPasses:
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.describe())
    def test_verification_passes(self, tparams, world, query):
        owner, out, user, _ = world
        cloud = make_cloud(tparams, owner, out)
        tokens = user.make_tokens(query)
        report = verify_response(tparams, cloud.ads_value, cloud.search(tokens))
        assert report.ok
        assert report.failed_tokens == []

    def test_empty_token_list_trivially_ok(self, tparams, world):
        owner, out, user, _ = world
        cloud = make_cloud(tparams, owner, out)
        report = verify_response(tparams, cloud.ads_value, cloud.search([]))
        assert report.ok


TAMPERING = [
    Misbehavior.DROP_ENTRY,
    Misbehavior.INJECT_ENTRY,
    Misbehavior.TAMPER_ENTRY,
    Misbehavior.FORGE_WITNESS,
    Misbehavior.EMPTY_RESULT,
]


class TestTheorem3:
    @pytest.mark.parametrize("misbehavior", TAMPERING, ids=lambda m: m.value)
    def test_tampering_always_detected(self, tparams, world, misbehavior):
        owner, out, user, _ = world
        cloud = make_cloud(tparams, owner, out, misbehavior)
        tokens = user.make_tokens(Query.parse(150, ">"))
        report = verify_response(tparams, cloud.ads_value, cloud.search(tokens))
        assert not report.ok
        assert report.failed_tokens != []

    def test_omit_old_epochs_detected_after_insert(self, tparams, owner_factory):
        """Incomplete results across epochs (freshness violation) must fail."""
        owner = owner_factory(tparams, seed=43)
        out = owner.build(make_database([("a", 7)], bits=8))
        cloud = make_cloud(tparams, owner, out, Misbehavior.OMIT_OLD_EPOCHS)
        add = Database(8)
        add.add("b", 7)
        out = owner.insert(add)
        cloud.install(out.cloud_package)

        user = DataUser(tparams, out.user_package, default_rng(7))
        tokens = user.make_tokens(Query.parse(7, "="))
        assert tokens[0].epoch == 1
        report = verify_response(tparams, cloud.ads_value, cloud.search(tokens))
        assert not report.ok

    def test_stale_ads_detected(self, tparams, world):
        """Replaying results against an outdated Ac (freshness) must fail."""
        owner, out, user, _ = world
        cloud = make_cloud(tparams, owner, out)
        tokens = user.make_tokens(Query.parse(13, "="))
        response = cloud.search(tokens)
        stale_ads = tparams.accumulator.generator  # pre-build accumulator
        assert not verify_response(tparams, stale_ads, response).ok

    def test_swapped_results_between_tokens_detected(self, tparams, world):
        owner, out, user, _ = world
        cloud = make_cloud(tparams, owner, out)
        tokens = user.make_tokens(Query.parse(150, ">"))
        response = cloud.search(tokens)
        results = [r for r in response.results if r.entries]
        if len(results) < 2:
            pytest.skip("need two non-empty token results to swap")
        a, b = results[0], results[1]
        swapped = TokenResult(a.token, b.entries, a.witness)
        assert not verify_token_result(tparams, cloud.ads_value, swapped)

    def test_duplicated_entry_detected(self, tparams, world):
        """Multiset semantics: returning a correct record twice is incorrect."""
        owner, out, user, _ = world
        cloud = make_cloud(tparams, owner, out)
        tokens = user.make_tokens(Query.parse(13, "="))
        response = cloud.search(tokens)
        result = response.results[0]
        forged = TokenResult(result.token, result.entries + result.entries[:1], result.witness)
        assert not verify_token_result(tparams, cloud.ads_value, forged)

    def test_negated_witness_pair_detected(self, tparams, world):
        """The ±1 batch-malleability attack: a cloud that returns ``n−w``
        instead of ``w`` for an *even* number of tokens passes any
        random-linear-combination aggregate check in ``Z_n*``, so
        ``verify_response`` must check per token — and flag exactly the
        flipped entries, matching the contract's per-witness verdicts."""
        owner, out, user, _ = world
        cloud = make_cloud(tparams, owner, out)
        tokens = user.make_tokens(Query.parse(150, ">"))
        response = cloud.search(tokens)
        if len(response.results) < 2:
            pytest.skip("need at least two token results to flip a pair")
        n = tparams.accumulator.modulus
        flipped = [0, len(response.results) - 1]
        for i in flipped:
            r = response.results[i]
            response.results[i] = TokenResult(
                r.token, r.entries, MembershipWitness(n - r.witness.value)
            )
        report = verify_response(tparams, cloud.ads_value, response)
        assert not report.ok
        assert report.failed_tokens == flipped

    def test_zero_witness_rejected(self, tparams, world):
        owner, out, user, _ = world
        cloud = make_cloud(tparams, owner, out)
        tokens = user.make_tokens(Query.parse(13, "="))
        result = cloud.search(tokens).results[0]
        for bad in (0, 1):
            forged = TokenResult(result.token, result.entries, MembershipWitness(bad))
            assert not verify_token_result(tparams, cloud.ads_value, forged)


class TestVerificationIsPublic:
    def test_no_secret_material_needed(self, tparams, world):
        """verify_response runs with only public params + on-chain Ac."""
        owner, out, user, _ = world
        cloud = make_cloud(tparams, owner, out)
        tokens = user.make_tokens(Query.parse(13, "="))
        response = cloud.search(tokens)
        public_params = tparams.public()
        assert not public_params.accumulator.has_trapdoor
        assert verify_response(public_params, cloud.ads_value, response).ok

    def test_verification_sees_only_ciphertexts(self, tparams, world):
        """The verifier input never contains a plaintext record ID."""
        owner, out, user, db = world
        cloud = make_cloud(tparams, owner, out)
        tokens = user.make_tokens(Query.parse(13, "="))
        response = cloud.search(tokens)
        plaintext_ids = {r.record_id for r in db}
        for entry in response.all_entries():
            assert entry not in plaintext_ids
            assert not any(rid in entry for rid in plaintext_ids)
