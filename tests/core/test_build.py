"""Build (Algorithm 1): index structure, ADS consistency, owner state."""

import pytest

from repro.common.errors import StateError
from repro.core.keywords import keywords_for_record
from repro.core.owner import DataOwner
from repro.core.records import Database, make_database
from repro.crypto.accumulator import Accumulator


@pytest.fixture()
def owner(tparams, owner_factory):
    return owner_factory(tparams)


class TestBuildStructure:
    def test_index_entry_count(self, owner, small_db):
        """Each record yields one entry per keyword: (1 + b) per attribute value."""
        out = owner.build(small_db)
        expected = sum(len(keywords_for_record(r.value, 8)) for r in small_db)
        assert len(out.cloud_package.index) == expected

    def test_prime_per_keyword(self, owner, small_db):
        out = owner.build(small_db)
        distinct_keywords = {
            kw for r in small_db for kw in keywords_for_record(r.value, 8)
        }
        assert len(out.cloud_package.primes) == len(distinct_keywords)
        assert len(owner.trapdoor_state) == len(distinct_keywords)

    def test_ads_matches_prime_list(self, owner, small_db, tparams):
        out = owner.build(small_db)
        recomputed = Accumulator(tparams.accumulator.public(), out.cloud_package.primes)
        assert recomputed.value == out.chain_ads

    def test_entries_have_uniform_shape(self, owner, small_db, tparams):
        out = owner.build(small_db)
        index = out.cloud_package.index
        payload_len = 16 + tparams.record_id_len  # nonce + record id
        for label in list(index._entries):
            assert len(label) == tparams.label_len
            assert len(index.find(label)) == payload_len

    def test_empty_database(self, owner, tparams):
        out = owner.build(Database(tparams.value_bits))
        assert len(out.cloud_package.index) == 0
        assert out.cloud_package.primes == []
        assert out.chain_ads == tparams.accumulator.generator % tparams.accumulator.modulus

    def test_user_package_contains_state(self, owner, small_db):
        out = owner.build(small_db)
        pkg = out.user_package
        assert len(pkg.trapdoor_state) == len(owner.trapdoor_state)
        assert pkg.ads_value == out.chain_ads
        assert pkg.keys.record_key == owner.keys.record_key


class TestBuildGuards:
    def test_double_build_rejected(self, owner, small_db):
        owner.build(small_db)
        with pytest.raises(StateError):
            owner.build(small_db)

    def test_insert_before_build_rejected(self, owner, small_db):
        with pytest.raises(StateError):
            owner.insert(small_db)

    def test_bit_width_mismatch_rejected(self, tparams, owner_factory):
        owner = owner_factory(tparams)
        with pytest.raises(StateError):
            owner.build(make_database([("a", 1)], bits=16))


class TestBuildDeterminismAndIsolation:
    def test_same_seed_same_output(self, tparams, owner_factory, small_db):
        a = owner_factory(tparams, seed=5).build(small_db)
        b = owner_factory(tparams, seed=5).build(small_db)
        assert a.chain_ads == b.chain_ads
        assert a.cloud_package.primes == b.cloud_package.primes

    def test_different_seeds_differ(self, tparams, owner_factory, small_db):
        a = owner_factory(tparams, seed=5).build(small_db)
        b = owner_factory(tparams, seed=6).build(small_db)
        # Trapdoors are random, so the index labels (and ADS) differ.
        assert a.chain_ads != b.chain_ads

    def test_labels_unlinkable_across_keywords(self, owner, small_db, tparams):
        """No two keywords produce overlapping labels (PRF keys differ)."""
        out = owner.build(small_db)
        assert len(out.cloud_package.index) == len(set(out.cloud_package.index._entries))
