"""Query semantics: v mc a, predicates, range decomposition."""

import pytest

from repro.common.errors import ParameterError
from repro.core.query import MatchCondition, Query
from repro.core.user import RangeQuery


class TestMatchCondition:
    def test_from_symbol(self):
        assert MatchCondition.from_symbol("=") is MatchCondition.EQUAL
        assert MatchCondition.from_symbol(">") is MatchCondition.GREATER
        assert MatchCondition.from_symbol("<") is MatchCondition.LESS

    def test_unknown_symbol(self):
        with pytest.raises(ParameterError):
            MatchCondition.from_symbol(">=")

    def test_is_order(self):
        assert not MatchCondition.EQUAL.is_order
        assert MatchCondition.GREATER.is_order

    def test_equality_has_no_order_condition(self):
        with pytest.raises(ParameterError):
            MatchCondition.EQUAL.order_condition()


class TestQueryPredicate:
    def test_greater_means_value_below_v(self):
        """The paper's convention: Query(6, '>') selects a with 6 > a."""
        p = Query.parse(6, ">").predicate()
        assert p(5) and not p(6) and not p(7)

    def test_less_means_value_above_v(self):
        p = Query.parse(6, "<").predicate()
        assert p(7) and not p(6) and not p(5)

    def test_equality(self):
        p = Query.parse(6, "=").predicate()
        assert p(6) and not p(5)

    def test_validate_domain(self):
        with pytest.raises(ParameterError):
            Query.parse(256, "=").validate(8)

    def test_describe(self):
        assert Query.parse(6, ">", "age").describe() == "age 6 > a"


class TestRangeQuery:
    def test_interior_range_two_sides(self):
        queries = RangeQuery(10, 20).to_queries(8)
        assert len(queries) == 2
        preds = [q.predicate() for q in queries]
        for a in range(0, 256, 7):
            assert all(p(a) for p in preds) == (10 <= a <= 20)

    def test_touching_zero_drops_lower_side(self):
        queries = RangeQuery(0, 20).to_queries(8)
        assert len(queries) == 1
        assert queries[0].condition is MatchCondition.GREATER

    def test_touching_max_drops_upper_side(self):
        queries = RangeQuery(10, 255).to_queries(8)
        assert len(queries) == 1
        assert queries[0].condition is MatchCondition.LESS

    def test_point_range_is_equality(self):
        queries = RangeQuery(7, 7).to_queries(8)
        assert len(queries) == 1
        assert queries[0].condition is MatchCondition.EQUAL

    def test_full_domain_rejected(self):
        with pytest.raises(ParameterError):
            RangeQuery(0, 255).to_queries(8)

    def test_empty_range_rejected(self):
        with pytest.raises(ParameterError):
            RangeQuery(20, 10).to_queries(8)

    def test_out_of_domain_rejected(self):
        with pytest.raises(ParameterError):
            RangeQuery(0, 256).to_queries(8)
