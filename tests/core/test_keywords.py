"""Keyword derivation: namespaces, the {v} ∪ {ct_i} indexing set."""

from repro.core.keywords import (
    equality_keyword,
    keywords_for_record,
    order_keywords_for_query,
    order_keywords_for_value,
)
from repro.sore.tuples import OrderCondition

GT, LT = OrderCondition.GREATER, OrderCondition.LESS


class TestNamespaces:
    def test_equality_vs_order_disjoint(self):
        eq = {equality_keyword(v, 8) for v in range(256)}
        ordw = {w for v in range(256) for w in order_keywords_for_value(v, 8)}
        assert eq & ordw == set()

    def test_attribute_separation(self):
        assert equality_keyword(5, 8, "age") != equality_keyword(5, 8, "pay")
        assert set(order_keywords_for_value(5, 8, "age")) != set(
            order_keywords_for_value(5, 8, "pay")
        )

    def test_value_separation(self):
        assert equality_keyword(5, 8) != equality_keyword(6, 8)


class TestMatchingSemantics:
    """A record matches an order query iff query and record keywords intersect
    in exactly one keyword — the SSE-level restatement of Theorem 1."""

    def test_order_match_iff_condition(self):
        bits = 5
        for x in range(0, 32, 3):
            q = set(order_keywords_for_query(x, GT, bits))
            for y in range(0, 32, 3):
                stored = set(order_keywords_for_value(y, bits))
                assert (len(q & stored) == 1) == (x > y)

    def test_record_keyword_count(self):
        # {v} ∪ {ct_i}: 1 + b keywords
        assert len(keywords_for_record(7, 8)) == 9

    def test_record_keywords_distinct(self):
        kws = keywords_for_record(7, 8)
        assert len(set(kws)) == len(kws)

    def test_equality_keyword_is_first(self):
        kws = keywords_for_record(7, 8)
        assert kws[0] == equality_keyword(7, 8)
