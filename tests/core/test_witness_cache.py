"""Precomputed witness cache: identical outputs, incremental maintenance."""

import pytest

from repro.common import perfstats
from repro.common.errors import AccumulatorError
from repro.common.rng import default_rng
from repro.crypto import kernels
from repro.core.cloud import CloudServer
from repro.core.query import Query
from repro.core.records import Database, make_database
from repro.core.user import DataUser
from repro.core.verify import verify_response
from repro.crypto.accumulator import MembershipWitness, verify_membership


@pytest.fixture()
def world(tparams, owner_factory):
    owner = owner_factory(tparams, seed=211)
    db = make_database([(f"r{i}", (i * 13) % 256) for i in range(20)], bits=8)
    out = owner.build(db)
    cloud = CloudServer(tparams, owner.keys.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(tparams, out.user_package, default_rng(5))
    return owner, cloud, user, db


class TestCache:
    def test_cached_witnesses_identical_to_live(self, world, tparams):
        owner, cloud, user, _ = world
        tokens = user.make_tokens(Query.parse(100, ">"))
        live = cloud.search(tokens)
        cached_count = cloud.precompute_witnesses()
        assert cached_count == cloud.prime_count
        cached = cloud.search(tokens)
        for a, b in zip(live.results, cached.results):
            assert a.witness.value == b.witness.value
        assert verify_response(tparams, cloud.ads_value, cached).ok

    def test_cached_vo_generation_is_faster(self, world):
        from repro.common.timing import time_call

        _, cloud, user, _ = world
        tokens = user.make_tokens(Query.parse(100, ">"))

        def live_once():
            # The kernel repeat-query memo would serve runs 2-3 from cache;
            # clear it so "live" means deriving the witnesses per query.
            cloud._repeat_witness_cache.clear()
            return cloud.search(tokens)

        live_s = min(time_call(live_once)[0] for _ in range(3))
        cloud.precompute_witnesses()
        cached_s = min(time_call(lambda: cloud.search(tokens))[0] for _ in range(3))
        assert cached_s < live_s

    def test_cold_path_and_hit_path_identical(self, world, tparams):
        """Same witnesses whether the cache is cold (live root-factor per
        query) or warm (precomputed): the VO is a deterministic function of
        the prime set."""
        owner, cloud, user, _ = world
        tokens = user.make_tokens(Query.parse(60, "<"))
        cold = cloud.search(tokens)
        cloud.precompute_witnesses()
        warm = cloud.search(tokens)
        assert [r.witness.value for r in cold.results] == [
            r.witness.value for r in warm.results
        ]
        assert verify_response(tparams, cloud.ads_value, warm).ok

    def test_install_updates_cache_incrementally(self, world, tparams):
        """An insert no longer nukes the cache: every cached witness is
        raised to the delta product and the new primes get batch-derived
        witnesses, identical to a full rebuild."""
        owner, cloud, user, _ = world
        cloud.precompute_witnesses()
        add = Database(8)
        add.add("new", 13)
        out = owner.insert(add)
        cloud.install(out.cloud_package)
        incremental = dict(cloud._witness_cache)
        assert len(incremental) == cloud.prime_count  # survived, covers delta
        rebuilt_count = cloud.precompute_witnesses()
        assert rebuilt_count == len(incremental)
        assert cloud._witness_cache == incremental
        # Every incrementally maintained witness verifies against the
        # on-chain accumulation value.
        acc = tparams.accumulator
        for prime, witness_value in incremental.items():
            assert verify_membership(
                acc, cloud.ads_value, prime, MembershipWitness(witness_value)
            )
        user.refresh(out.user_package)
        response = cloud.search(user.make_tokens(Query.parse(13, "=")))
        assert verify_response(tparams, cloud.ads_value, response).ok

    def test_recompute_after_update_verifies(self, world, tparams):
        owner, cloud, user, _ = world
        add = Database(8)
        add.add("new", 13)
        out = owner.insert(add)
        cloud.install(out.cloud_package)
        cloud.precompute_witnesses()
        user.refresh(out.user_package)
        response = cloud.search(user.make_tokens(Query.parse(13, "=")))
        assert verify_response(tparams, cloud.ads_value, response).ok

    @pytest.mark.skipif(
        not kernels.kernels_enabled(), reason="self-check rides the kernel layer"
    )
    def test_selfcheck_runs_on_precompute_and_refresh(self, world):
        """The trusted-batch self-check covers both cache-creation paths —
        its inputs are the cloud's own witnesses, the one place the batch
        kernel's trusted-input precondition holds."""
        owner, cloud, _, _ = world
        perfstats.reset("cloud.witness_cache.")
        cloud.precompute_witnesses()
        assert perfstats.get("cloud.witness_cache.selfcheck") == 1
        add = Database(8)
        add.add("new", 13)
        cloud.install(owner.insert(add).cloud_package)
        assert perfstats.get("cloud.witness_cache.selfcheck") == 2

    @pytest.mark.skipif(
        not kernels.kernels_enabled(), reason="self-check rides the kernel layer"
    )
    def test_selfcheck_catches_corrupt_cache(self, world):
        _, cloud, _, _ = world
        cloud.precompute_witnesses()
        prime = next(iter(cloud._witness_cache))
        cloud._witness_cache[prime] = 4  # not a witness for anything here
        with pytest.raises(AccumulatorError):
            cloud._check_witness_cache()

    def test_cache_miss_produces_invalid_witness(self, world, tparams):
        """A lazy cloud with a cache still cannot fake unknown primes."""
        owner, cloud, user, _ = world
        cloud.precompute_witnesses()
        add = Database(8)
        add.add("new", 13)
        out = owner.insert(add)
        # The cloud deliberately does NOT install the update, so its cache
        # (and index) are stale relative to the fresh token below.
        user.refresh(out.user_package)
        response = cloud.search(user.make_tokens(Query.parse(13, "=")))
        report = verify_response(tparams, owner.accumulator.value, response)
        assert not report.ok
