"""Insert (Algorithm 2): trapdoor advance, delta packages, forward security."""

import pytest

from repro.common.encoding import encode_uint
from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.keywords import equality_keyword
from repro.core.query import Query
from repro.core.records import Database, make_database
from repro.core.tokens import SearchToken, derive_g1_g2
from repro.core.user import DataUser
from repro.crypto.prf import PRF


@pytest.fixture()
def built(tparams, owner_factory):
    owner = owner_factory(tparams, seed=23)
    out = owner.build(make_database([("a", 7), ("b", 20)], bits=8))
    cloud = CloudServer(tparams, owner.keys.trapdoor.public)
    cloud.install(out.cloud_package)
    return owner, cloud, out


class TestEpochAdvance:
    def test_existing_keyword_epoch_increments(self, built, tparams):
        owner, _, _ = built
        kw = equality_keyword(7, 8)
        assert owner.trapdoor_state.get(kw).epoch == 0
        add = Database(8)
        add.add("c", 7)
        owner.insert(add)
        assert owner.trapdoor_state.get(kw).epoch == 1

    def test_new_keyword_starts_at_zero(self, built):
        owner, _, _ = built
        add = Database(8)
        add.add("c", 99)
        owner.insert(add)
        assert owner.trapdoor_state.get(equality_keyword(99, 8)).epoch == 0

    def test_trapdoor_chain_links_via_public_permutation(self, built):
        """pi_pk(t_new) must equal t_old — the cloud's walk direction."""
        owner, _, _ = built
        kw = equality_keyword(7, 8)
        t_old = owner.trapdoor_state.get(kw).trapdoor
        add = Database(8)
        add.add("c", 7)
        owner.insert(add)
        t_new = owner.trapdoor_state.get(kw).trapdoor
        assert owner.keys.trapdoor.public.apply(t_new) == t_old

    def test_delta_package_only_new_entries(self, built):
        owner, _, _ = built
        add = Database(8)
        add.add("c", 7)
        out = owner.insert(add)
        # one record -> 1 + 8 keywords -> 9 new index entries
        assert len(out.cloud_package.index) == 9
        assert len(out.cloud_package.primes) == 9

    def test_ads_grows_monotonically(self, built):
        owner, _, out0 = built
        before = len(owner.accumulator)
        add = Database(8)
        add.add("c", 7)
        owner.insert(add)
        # Old primes are never removed (Algorithm 2: X <- X ∪ X+).
        assert len(owner.accumulator) == before + 9


class TestForwardSecurity:
    """Tokens released before an insert cannot reach entries added after it."""

    def test_old_token_cannot_find_new_entries(self, built, tparams):
        owner, cloud, out0 = built
        kw = equality_keyword(7, 8)
        old_entry = out0.user_package.trapdoor_state.get(kw)
        g1, g2 = derive_g1_g2(owner.keys.prf_key, kw)
        old_token = SearchToken(old_entry.trapdoor, old_entry.epoch, g1, g2)

        add = Database(8)
        add.add("c", 7)
        out1 = owner.insert(add)
        cloud.install(out1.cloud_package)

        # Searching with the STALE token returns only the pre-insert records.
        response = cloud.search([old_token])
        assert len(response.results[0].entries) == 1  # just "a"

        # The fresh token sees both.
        fresh_entry = out1.user_package.trapdoor_state.get(kw)
        fresh_token = SearchToken(fresh_entry.trapdoor, fresh_entry.epoch, g1, g2)
        assert len(cloud.search([fresh_token]).results[0].entries) == 2

    def test_new_labels_not_derivable_from_old_trapdoor(self, built, tparams):
        """Structural check: the new epoch's labels use a trapdoor that is
        not computable from the old one without sk (pi is one-way)."""
        owner, cloud, out0 = built
        kw = equality_keyword(7, 8)
        old_t = out0.user_package.trapdoor_state.get(kw).trapdoor
        g1, _ = derive_g1_g2(owner.keys.prf_key, kw)

        add = Database(8)
        add.add("c", 7)
        out1 = owner.insert(add)

        # Try to predict new labels with the old trapdoor: every counter misses.
        label_prf = PRF(g1, tparams.label_len)
        new_index = out1.cloud_package.index
        for c in range(4):
            assert new_index.find(label_prf.eval(old_t, encode_uint(c))) is None

    def test_insert_leaks_only_sizes(self, built):
        """L^insert: the delta package contains only fixed-shape strings."""
        owner, _, _ = built
        add = Database(8)
        add.add("c", 7)  # an *existing* value
        add.add("d", 123)  # a fresh value
        out = owner.insert(add)
        # Nothing in the package distinguishes the repeated value from the
        # fresh one: labels and payloads are PRF-fresh in both cases.
        lens = {(len(l), len(d)) for l, d in out.cloud_package.index._entries.items()}
        assert len(lens) == 1


class TestInsertSearchIntegration:
    def test_search_after_multiple_inserts_matches_oracle(self, tparams, owner_factory):
        owner = owner_factory(tparams, seed=31)
        cloud = CloudServer(tparams, owner.keys.trapdoor.public)
        all_pairs = [(f"r{i}", (i * 37) % 256) for i in range(30)]
        out = owner.build(make_database(all_pairs[:10], bits=8))
        cloud.install(out.cloud_package)
        for i in range(10, 30, 5):
            batch = Database(8)
            for rid, v in all_pairs[i : i + 5]:
                batch.add(rid, v)
            out = owner.insert(batch)
            cloud.install(out.cloud_package)

        user = DataUser(tparams, out.user_package, default_rng(2))
        oracle = make_database(all_pairs, bits=8)
        for query in [Query.parse(100, ">"), Query.parse(100, "<"), Query.parse(37, "=")]:
            tokens = user.make_tokens(query)
            ids = user.decrypt_results(cloud.search(tokens))
            assert ids == oracle.ids_matching(query.predicate()), query.describe()
