"""Epoch-suffix entry cache: lifecycle, incremental fold, worker export."""

import pytest

from repro.common import perfstats
from repro.common.rng import default_rng
from repro.core import entry_cache, wire
from repro.core.cloud import CloudServer
from repro.core.entry_cache import CacheNode, EntryCache
from repro.core.query import Query
from repro.core.records import Database, make_database
from repro.core.user import DataUser
from repro.crypto import kernels
from repro.crypto.multiset_hash import MultisetHash


def node(tag: bytes, value: int = 7) -> CacheNode:
    return CacheNode((tag,), value, None)


class TestCacheLifecycle:
    def test_install_first_write_wins(self):
        cache = EntryCache(max_nodes=4)
        cache.install(b"k", node(b"first"))
        cache.install(b"k", node(b"second"))
        assert cache.get(b"k").entries == (b"first",)
        assert len(cache) == 1

    def test_fifo_eviction_counts(self):
        perfstats.reset("cloud.entry_cache.")
        cache = EntryCache(max_nodes=2)
        cache.install(b"a", node(b"a"))
        cache.install(b"b", node(b"b"))
        cache.install(b"c", node(b"c"))
        assert len(cache) == 2
        assert cache.get(b"a") is None  # oldest evicted first
        assert cache.get(b"b") is not None
        assert cache.get(b"c") is not None
        assert perfstats.get("cloud.entry_cache.evicted") == 1

    def test_absorb_first_write_wins_and_silent(self):
        perfstats.reset("cloud.entry_cache.")
        cache = EntryCache(max_nodes=2)
        cache.install(b"a", node(b"mine"))
        cache.absorb([(b"a", node(b"theirs")), (b"b", node(b"b")), (b"c", node(b"c"))])
        assert cache.get(b"a") is None or cache.get(b"a").entries == (b"mine",)
        assert len(cache) == 2
        # Worker-side eviction is already in the merged counter delta.
        assert perfstats.get("cloud.entry_cache.evicted") == 0


class TestFamilyExport:
    def test_mark_export_absorb_roundtrip(self):
        cache = EntryCache(max_nodes=8)
        mark = entry_cache._family_mark()
        cache.install(b"a", node(b"a"))
        cache.install(b"b", node(b"b"))
        export = entry_cache._family_export(mark)
        assert [k for k, _ in export[cache.cache_id]] == [b"a", b"b"]
        # Parent half: clear (simulating a cache that never saw the nodes)
        # and fold the export back in.
        cache.clear()
        entry_cache._family_absorb(export)
        assert cache.get(b"a").entries == (b"a",)
        assert cache.get(b"b").entries == (b"b",)

    def test_export_after_rotation_sends_everything(self):
        cache = EntryCache(max_nodes=2)
        cache.install(b"a", node(b"a"))
        cache.install(b"b", node(b"b"))
        mark = entry_cache._family_mark()
        cache.install(b"c", node(b"c"))  # evicts b"a": len stays at the mark
        export = entry_cache._family_export(mark)
        assert sorted(k for k, _ in export.get(cache.cache_id, [])) == [b"b", b"c"]

    def test_absorb_skips_dead_cache_ids(self):
        entry_cache._family_absorb({-1: [(b"x", node(b"x"))]})  # must not raise

    def test_registered_as_kernel_family(self):
        cache = EntryCache()
        cache.install(b"a", node(b"a"))
        assert kernels.cache_sizes()["entry_cache"] >= 1
        assert "entry" in kernels.cache_mark()
        kernels.clear_caches()
        assert len(cache) == 0

    @pytest.mark.parametrize("reserved", ["hash", "trapdoor"])
    def test_builtin_family_names_are_reserved(self, reserved):
        with pytest.raises(ValueError, match="reserved"):
            kernels.register_cache_family(
                reserved, mark=dict, export_since=lambda m: {}, absorb=lambda e: None
            )


@pytest.fixture()
def multi_epoch(tparams, owner_factory, monkeypatch):
    """A 4-epoch deployment for value 7 with kernels pinned on."""
    monkeypatch.setenv(kernels.KERNELS_ENV, "1")
    owner = owner_factory(tparams, seed=23)
    cloud = CloudServer(tparams, owner.keys.trapdoor.public)
    out = owner.build(make_database([("a", 7), ("b", 9)], bits=8))
    cloud.install(out.cloud_package)
    for i in range(3):
        add = Database(8)
        add.add(f"n{i}", 7)
        out = owner.insert(add)
        cloud.install(out.cloud_package)
    user = DataUser(tparams, out.user_package, default_rng(1))
    return owner, cloud, user


class TestCollectFold:
    def test_incremental_fold_matches_scratch_hash(self, multi_epoch, tparams):
        _, cloud, user = multi_epoch
        token = user.make_tokens(Query.parse(7, "="))[0]
        for _ in range(2):  # cold walk, then fully-warm walk
            collected = cloud._collect(token)
            assert collected.hash_value is not None
            scratch = MultisetHash.of(collected.entries, tparams.multiset_field)
            assert collected.hash_value == scratch.value

    def test_truncated_walk_bypasses_cache(self, multi_epoch):
        _, cloud, user = multi_epoch
        token = user.make_tokens(Query.parse(7, "="))[0]
        before = len(cloud._entry_cache)
        collected = cloud._collect(token, max_epochs=1)
        assert collected.hash_value is None
        assert collected.spliced == 0
        assert len(cloud._entry_cache) == before  # nothing installed

    def test_kernels_off_bypasses_cache(self, multi_epoch, monkeypatch):
        _, cloud, user = multi_epoch
        monkeypatch.setenv(kernels.KERNELS_ENV, "0")
        token = user.make_tokens(Query.parse(7, "="))[0]
        collected = cloud._collect(token)
        assert collected.hash_value is None
        assert len(cloud._entry_cache) == 0

    def test_install_and_own_snapshot_restore_keep_cache(self, multi_epoch, tparams):
        owner, cloud, user = multi_epoch
        tokens = user.make_tokens(Query.parse(7, "="))
        cloud.search(tokens)
        cached = len(cloud._entry_cache)
        assert cached > 0

        add = Database(8)
        add.add("later", 9)  # untouched keyword: epoch for 7 unchanged
        out = owner.insert(add)
        cloud.install(out.cloud_package)
        assert len(cloud._entry_cache) == cached  # install leaves it intact
        # Post-insert reference: the insert changed Ac, hence the witnesses.
        reference = cloud.search(tokens)

        # Restoring state identical to the live state keeps the cache (the
        # nodes still describe the stored epochs); restoring *older* state
        # drops it — see test_crash_recovery's stale-restore case.
        cloud.restore(cloud.snapshot())
        assert len(cloud._entry_cache) >= cached
        again = cloud.search(tokens)
        assert wire.dump_response(again) == wire.dump_response(reference)

    def test_hole_repair_after_eviction(self, multi_epoch):
        """Evicting deep-suffix nodes leaves a hole the walk re-probes; the
        repaired walk still returns the full identical response."""
        _, cloud, user = multi_epoch
        tokens = user.make_tokens(Query.parse(7, "="))
        first = cloud.search(tokens)
        # Evict the oldest (deepest-epoch) node only.
        nodes = cloud._entry_cache.nodes
        del nodes[next(iter(nodes))]
        perfstats.reset("cloud.entry_cache.")
        repaired = cloud.search(tokens)
        assert wire.dump_response(repaired) == wire.dump_response(first)
        assert perfstats.get("cloud.entry_cache.hit") == 1  # head still cached
