"""Lewi-Wu left/right ORE: correctness and the right-side security property."""

import pytest

from repro.baselines.ore_lewi_wu import LewiWuOre
from repro.common.errors import ParameterError
from repro.common.rng import default_rng


@pytest.fixture(scope="module")
def ore():
    return LewiWuOre(b"k" * 16, bits=5, rng=default_rng(13))


class TestCompare:
    def test_exhaustive(self, ore):
        rights = {y: ore.encrypt_right(y) for y in range(32)}
        for x in range(32):
            left = ore.encrypt_left(x)
            for y in range(32):
                assert LewiWuOre.compare(left, rights[y]) == (x > y) - (x < y), (x, y)

    def test_right_randomised(self, ore):
        a, b = ore.encrypt_right(7), ore.encrypt_right(7)
        assert a.nonce != b.nonce
        assert a.symbols != b.symbols  # fresh nonce re-masks every symbol

    def test_left_deterministic(self, ore):
        assert ore.encrypt_left(7) == ore.encrypt_left(7)


class TestShapes:
    def test_right_size_scales_with_domain(self):
        small = LewiWuOre(b"k" * 16, 4, default_rng(1))
        large = LewiWuOre(b"k" * 16, 8, default_rng(1))
        assert large.encrypt_right(0).size_bytes > small.encrypt_right(0).size_bytes

    def test_large_domain_rejected(self):
        with pytest.raises(ParameterError):
            LewiWuOre(b"k" * 16, 16)

    def test_out_of_domain(self, ore):
        with pytest.raises(ParameterError):
            ore.encrypt_left(32)
        with pytest.raises(ParameterError):
            ore.encrypt_right(-1)
