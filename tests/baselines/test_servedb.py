"""ServeDB baseline: verifiable ranges, but at the cost of value privacy."""

import pytest

from repro.baselines.servedb import NodeProof, ServeDbIndex, ServeDbResponse, ServeDbVerifier
from repro.common.errors import ParameterError
from repro.common.rng import default_rng

BITS = 6


def records(n=20):
    return [(bytes([i]) * 8, (i * 7) % 64) for i in range(n)]


@pytest.fixture()
def index():
    return ServeDbIndex(records(), BITS, default_rng(61))


@pytest.fixture()
def verifier(index):
    return ServeDbVerifier(index.root, BITS)


class TestHonestQueries:
    @pytest.mark.parametrize("lo,hi", [(0, 63), (10, 30), (5, 5), (1, 4), (33, 62)])
    def test_verifies(self, index, verifier, lo, hi):
        assert verifier.verify(lo, hi, index.query(lo, hi))

    def test_results_decrypt_to_matching_records(self, index):
        response = index.query(10, 30)
        got = {index.cipher.decrypt(c) for n in response.nodes for c in n.ciphertexts}
        expected = {rid for rid, v in records() if 10 <= v <= 30}
        assert got == expected

    def test_empty_range_still_verifiable(self, index, verifier):
        # 1..4 is a gap for (i*7)%64 values... choose genuinely empty: 1..4?
        response = index.query(1, 4)
        assert verifier.verify(1, 4, response)


class TestTampering:
    def test_dropped_record_detected(self, index, verifier):
        response = index.query(0, 63)
        node = response.nodes[0]
        # drop the first occupied leaf entirely
        tampered_node = NodeProof(node.interval, node.leaves[1:], node.path)
        tampered = ServeDbResponse((tampered_node,) + response.nodes[1:])
        assert not verifier.verify(0, 63, tampered)

    def test_swapped_ciphertext_detected(self, index, verifier):
        response = index.query(0, 63)
        node = response.nodes[0]
        value, blobs = node.leaves[0]
        forged_leaves = ((value, (b"\x00" * len(blobs[0]),) + blobs[1:]),) + node.leaves[1:]
        tampered = ServeDbResponse(
            (NodeProof(node.interval, forged_leaves, node.path),) + response.nodes[1:]
        )
        assert not verifier.verify(0, 63, tampered)

    def test_out_of_range_leaf_detected(self, index, verifier):
        response = index.query(8, 15)
        node = response.nodes[0]
        forged_leaves = node.leaves + ((99, (b"\x01" * 24,)),)
        tampered = ServeDbResponse(
            (NodeProof(node.interval, forged_leaves, node.path),)
        )
        assert not verifier.verify(8, 15, tampered)

    def test_wrong_cover_detected(self, index, verifier):
        response = index.query(10, 30)
        assert not verifier.verify(10, 20, response)


class TestThePrivacyGap:
    """The property the paper criticises: verification reveals plaintext."""

    def test_proof_reveals_values(self, index):
        response = index.query(0, 63)
        revealed = response.revealed_values
        assert revealed == {v for _, v in records()}

    def test_verifier_needs_no_key_but_sees_values(self, index, verifier):
        """A third party CAN verify — precisely because values are exposed."""
        response = index.query(10, 30)
        assert verifier.verify(10, 30, response)
        assert response.revealed_values == {
            v for _, v in records() if 10 <= v <= 30
        }

    def test_slicer_reveals_nothing_comparable(self, tparams, owner_factory):
        """Contrast: Slicer's verification input carries no value plaintext."""
        from repro.common.rng import default_rng as drng
        from repro.core.cloud import CloudServer
        from repro.core.query import Query
        from repro.core.records import make_database
        from repro.core.user import DataUser

        owner = owner_factory(tparams, seed=501)
        db = make_database([(f"r{i}", (i * 7) % 64) for i in range(20)], bits=8)
        out = owner.build(db)
        cloud = CloudServer(tparams, owner.keys.trapdoor.public)
        cloud.install(out.cloud_package)
        user = DataUser(tparams, out.user_package, drng(1))
        response = cloud.search(user.make_tokens(Query.parse(30, ">")))
        # Every byte the Slicer verifier touches is a PRF image, a cipher
        # output or a group element — no plaintext value appears anywhere.
        blob = b"".join(response.all_entries())
        values = {r.value for r in db}
        assert all(bytes([v]) * 4 not in blob for v in values)


class TestStructure:
    def test_empty_index_rejected(self):
        with pytest.raises(ParameterError):
            ServeDbIndex([], BITS)

    def test_out_of_domain_rejected(self):
        with pytest.raises(ParameterError):
            ServeDbIndex([(b"x" * 8, 64)], BITS)

    def test_vo_size_scales_with_cover(self, index):
        assert index.query(1, 62).vo_bytes > index.query(8, 15).vo_bytes
