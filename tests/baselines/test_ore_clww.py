"""CLWW ORE: comparison correctness and first-differing-bit leakage."""

import pytest

from repro.baselines.ore_clww import ClwwOre
from repro.common.bitstring import first_differing_bit


@pytest.fixture(scope="module")
def ore():
    return ClwwOre(b"k" * 16, bits=6)


class TestCompare:
    def test_exhaustive(self, ore):
        cts = {v: ore.encrypt(v) for v in range(64)}
        for x in range(64):
            for y in range(64):
                assert ClwwOre.compare(cts[x], cts[y]) == (x > y) - (x < y), (x, y)

    def test_deterministic(self, ore):
        assert ore.encrypt(33).symbols == ore.encrypt(33).symbols


class TestLeakage:
    def test_first_differing_bit_leaked(self, ore):
        for x, y in [(0, 63), (32, 33), (40, 20)]:
            leaked = ClwwOre.first_differing_bit(ore.encrypt(x), ore.encrypt(y))
            assert leaked == first_differing_bit(x, y, 6)

    def test_equal_values_leak_none(self, ore):
        assert ClwwOre.first_differing_bit(ore.encrypt(5), ore.encrypt(5)) is None


class TestSize:
    def test_succinct_encoding(self, ore):
        # 6 symbols at 2 bits = 12 bits -> 2 bytes
        assert ore.encrypt(0).size_bytes == 2
