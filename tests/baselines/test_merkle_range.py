"""Merkle range index: membership + completeness verification."""

import pytest

from repro.baselines.merkle_range import (
    MerkleRangeIndex,
    RangeProof,
    verify_range_proof,
)
from repro.common.errors import ParameterError


def records(n=20):
    return [(bytes([i]) * 8, (i * 7) % 64) for i in range(n)]


@pytest.fixture()
def index():
    return MerkleRangeIndex(records())


class TestHonestProofs:
    @pytest.mark.parametrize("lo,hi", [(0, 63), (10, 30), (0, 0), (63, 63), (31, 33)])
    def test_verifies(self, index, lo, hi):
        proof = index.query(lo, hi)
        assert verify_range_proof(index.root, lo, hi, proof, len(index))

    def test_matched_values_in_range(self, index):
        proof = index.query(10, 30)
        expected = {rid for rid, v in records() if 10 <= v <= 30}
        assert len(proof.matched) == len(expected)

    def test_empty_range_with_boundaries(self, index):
        # A gap: stored values jump from 0 to 5, so 1..4 has no hits.
        proof = index.query(1, 4)
        assert proof.matched == ()
        assert verify_range_proof(index.root, 1, 4, proof, len(index))


class TestTamperedProofs:
    def test_dropped_leaf_detected(self, index):
        proof = index.query(10, 30)
        tampered = RangeProof(proof.matched[1:], proof.left_boundary, proof.right_boundary)
        assert not verify_range_proof(index.root, 10, 30, tampered, len(index))

    def test_out_of_range_leaf_detected(self, index):
        narrow = index.query(10, 20)
        wide = index.query(10, 30)
        forged = RangeProof(wide.matched, narrow.left_boundary, narrow.right_boundary)
        assert not verify_range_proof(index.root, 10, 20, forged, len(index))

    def test_missing_boundary_detected(self, index):
        proof = index.query(10, 30)
        assert proof.right_boundary is not None
        forged = RangeProof(proof.matched, proof.left_boundary, None)
        assert not verify_range_proof(index.root, 10, 30, forged, len(index))

    def test_wrong_root_detected(self, index):
        other = MerkleRangeIndex(records(21))
        proof = index.query(10, 30)
        assert not verify_range_proof(other.root, 10, 30, proof, len(other))


class TestShapes:
    def test_proof_size_grows_with_matches(self, index):
        assert index.query(0, 63).size_bytes > index.query(0, 5).size_bytes

    def test_empty_index_rejected(self):
        with pytest.raises(ParameterError):
            MerkleRangeIndex([])

    def test_empty_range_rejected(self, index):
        with pytest.raises(ParameterError):
            index.query(5, 4)
