"""OPE baseline: order preservation, determinism, leakage surface."""

import pytest

from repro.baselines.ope import OpeScheme
from repro.common.errors import ParameterError


@pytest.fixture(scope="module")
def ope():
    return OpeScheme(b"k" * 16, bits=8)


class TestOrderPreservation:
    def test_exhaustive_monotone_8bit(self, ope):
        cts = [ope.encrypt(v) for v in range(256)]
        assert all(a < b for a, b in zip(cts, cts[1:]))

    def test_deterministic(self, ope):
        assert ope.encrypt(100) == ope.encrypt(100)

    def test_key_changes_mapping(self):
        a = OpeScheme(b"a" * 16, 8)
        b = OpeScheme(b"b" * 16, 8)
        assert [a.encrypt(v) for v in range(16)] != [b.encrypt(v) for v in range(16)]

    def test_ciphertext_in_range(self, ope):
        for v in [0, 128, 255]:
            assert 0 <= ope.encrypt(v) < (1 << ope.range_bits)


class TestCompare:
    def test_compare_signs(self, ope):
        lo, hi = ope.encrypt(3), ope.encrypt(200)
        assert OpeScheme.compare(lo, hi) == -1
        assert OpeScheme.compare(hi, lo) == 1
        assert OpeScheme.compare(lo, lo) == 0


class TestLeakage:
    def test_full_order_leaked(self, ope):
        values = [42, 7, 255, 0, 100]
        cts = [ope.encrypt(v) for v in values]
        leaked = ope.leaked_order(cts)
        true_order = sorted(range(len(values)), key=lambda i: values[i])
        assert leaked == true_order


class TestParams:
    def test_bad_params(self):
        with pytest.raises(ParameterError):
            OpeScheme(b"k" * 16, 0)
        with pytest.raises(ParameterError):
            OpeScheme(b"k" * 16, 8, expansion=0)

    def test_out_of_domain(self, ope):
        with pytest.raises(ParameterError):
            ope.encrypt(256)
