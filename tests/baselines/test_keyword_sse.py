"""Keyword SSE baseline: search correctness and range-by-enumeration cost."""

import pytest

from repro.baselines.keyword_sse import KeywordSse
from repro.common.rng import default_rng


@pytest.fixture()
def sse():
    return KeywordSse(default_rng(21), trapdoor_bits=512)


class TestKeywordSearch:
    def test_basic_search(self, sse):
        sse.insert(b"kw1", [b"doc1" + b"\x00" * 4, b"doc2" + b"\x00" * 4])
        assert sse.search(b"kw1") == {b"doc1" + b"\x00" * 4, b"doc2" + b"\x00" * 4}

    def test_unknown_keyword_empty(self, sse):
        assert sse.search(b"nope") == set()

    def test_forward_secure_epochs(self, sse):
        sse.insert(b"kw", [b"a" * 8])
        old_token = sse.token(b"kw")
        sse.insert(b"kw", [b"b" * 8])
        # Old token reaches only the old epoch.
        assert len(sse.server_search(old_token)) == 1
        assert len(sse.server_search(sse.token(b"kw"))) == 2


class TestRangeStrawman:
    def test_result_correct(self, sse):
        records = [(bytes([i]) * 8, v) for i, v in enumerate([5, 9, 5, 30, 17])]
        sse.insert_values(records)
        ids, tokens = sse.range_search_by_enumeration(5, 20)
        assert ids == {rid for rid, v in records if 5 <= v <= 20}

    def test_token_cost_scales_with_range_width(self, sse):
        """The infeasibility argument: tokens ~ number of distinct values hit."""
        records = [(bytes([i]) * 8, i) for i in range(64)]
        sse.insert_values(records)
        _, narrow = sse.range_search_by_enumeration(10, 19)
        _, wide = sse.range_search_by_enumeration(0, 59)
        assert narrow == 10
        assert wide == 60
        assert wide > narrow

    def test_index_size_counts_entries(self, sse):
        sse.insert_values([(bytes([i]) * 8, i % 4) for i in range(8)])
        assert sse.index_size == 8
