"""Dyadic range-covering SSE baseline."""

import pytest

from repro.baselines.range_tree_sse import (
    DyadicInterval,
    RangeTreeSse,
    canonical_cover,
    intervals_containing,
)
from repro.common.errors import ParameterError
from repro.common.rng import default_rng


class TestDyadicIntervals:
    def test_interval_bounds(self):
        assert (DyadicInterval(0, 5).lo, DyadicInterval(0, 5).hi) == (5, 5)
        assert (DyadicInterval(3, 1).lo, DyadicInterval(3, 1).hi) == (8, 15)

    def test_containing_chain(self):
        chain = intervals_containing(5, 4)
        assert len(chain) == 5  # levels 0..4
        assert all(i.lo <= 5 <= i.hi for i in chain)
        assert (chain[-1].lo, chain[-1].hi) == (0, 15)

    def test_keywords_distinct(self):
        kws = {i.keyword() for v in range(16) for i in intervals_containing(v, 4)}
        distinct = {(i.level, i.prefix) for v in range(16) for i in intervals_containing(v, 4)}
        assert len(kws) == len(distinct)


class TestCanonicalCover:
    @pytest.mark.parametrize("lo,hi", [(0, 15), (3, 11), (5, 5), (0, 0), (1, 14)])
    def test_cover_is_exact_partition(self, lo, hi):
        cover = canonical_cover(lo, hi, 4)
        covered = sorted(v for i in cover for v in range(i.lo, i.hi + 1))
        assert covered == list(range(lo, hi + 1))  # disjoint and complete

    def test_cover_size_bounded(self):
        for lo in range(0, 64, 7):
            for hi in range(lo, 64, 5):
                assert len(canonical_cover(lo, hi, 6)) <= 2 * 6

    def test_whole_domain_is_one_node(self):
        cover = canonical_cover(0, 15, 4)
        assert len(cover) == 1 and cover[0].level == 4

    def test_empty_range_rejected(self):
        with pytest.raises(ParameterError):
            canonical_cover(5, 4, 4)


class TestRangeTreeSse:
    @pytest.fixture()
    def tree(self):
        t = RangeTreeSse(bits=6, rng=default_rng(51))
        t.insert_values([(bytes([i]) * 8, (i * 7) % 64) for i in range(20)])
        return t

    def test_range_search_correct(self, tree):
        ids, _ = tree.range_search(10, 30)
        expected = {bytes([i]) * 8 for i in range(20) if 10 <= (i * 7) % 64 <= 30}
        assert ids == expected

    def test_token_count_logarithmic(self, tree):
        _, tokens_wide = tree.range_search(1, 62)
        assert tokens_wide <= 2 * 6  # vs 62 under naive enumeration

    def test_index_blowup_matches_tree_height(self, tree):
        # every record indexed under b+1 dyadic keywords
        assert tree.index_entries == 20 * 7

    def test_point_query(self, tree):
        ids, tokens = tree.range_search(7, 7)
        assert ids == {bytes([1]) * 8}
        assert tokens == 1
