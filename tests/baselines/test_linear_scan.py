"""Linear-scan baseline: the correct-but-expensive oracle."""

from repro.baselines.linear_scan import LinearScanStore
from repro.common.rng import default_rng
from repro.core.query import Query


def make_store():
    store = LinearScanStore(default_rng(31))
    store.insert_many([(bytes([i]) * 8, (i * 17) % 64) for i in range(20)])
    return store


class TestQueries:
    def test_matches_predicate(self):
        store = make_store()
        for symbol, value in [(">", 30), ("<", 30), ("=", 17)]:
            q = Query.parse(value, symbol)
            expected = {
                bytes([i]) * 8 for i in range(20) if q.predicate()((i * 17) % 64)
            }
            assert store.query(q) == expected

    def test_empty_store(self):
        store = LinearScanStore(default_rng(1))
        assert store.query(Query.parse(5, "=")) == set()


class TestCostModel:
    def test_transfer_is_whole_store(self):
        store = make_store()
        assert store.transfer_bytes == sum(len(b) for b in store.download_all())

    def test_transfer_grows_linearly(self):
        store = make_store()
        before = store.transfer_bytes
        store.insert(b"x" * 8, 1)
        assert store.transfer_bytes > before

    def test_blob_reveals_nothing_structural(self):
        """All blobs are same-size opaque ciphertexts (plus nonce)."""
        store = make_store()
        sizes = {len(b) for b in store.download_all()}
        assert len(sizes) == 1
