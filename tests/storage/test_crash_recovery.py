"""Crash recovery: torn, truncated or bit-rotted snapshots never load.

The chaos layer's crash-restart path restores a cloud from its
``dump_cloud_state`` snapshot, so state loading has a hard contract
(see :mod:`repro.storage.state_io`): every ``load_*`` either returns fully
decoded state or raises :class:`StateError` — a corrupted file must never
produce a silently partial object — and :func:`save` is atomic, so a crash
mid-write leaves the previous snapshot intact.
"""

import os

import pytest

from repro.common.errors import StateError
from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.query import Query
from repro.core.records import make_database
from repro.core.user import DataUser
from repro.core.verify import verify_response
from repro.storage import (
    dump_cloud_state,
    dump_index,
    load,
    load_cloud_state,
    load_index,
    load_primes,
    load_trapdoor_state,
    save,
)


@pytest.fixture()
def world(tparams, owner_factory):
    owner = owner_factory(tparams, seed=201)
    db = make_database([(f"r{i}", (i * 23) % 256) for i in range(15)], bits=8)
    out = owner.build(db)
    cloud = CloudServer(tparams, owner.keys.trapdoor.public)
    cloud.install(out.cloud_package)
    return owner, cloud, out, db


def bit_flipped(blob: bytes, position: int) -> bytes:
    out = bytearray(blob)
    out[position // 8] ^= 1 << (position % 8)
    return bytes(out)


class TestCorruptionIsLoud:
    """The satellite bug: a partial read must raise, never half-load."""

    def test_truncation_raises_state_error(self, world):
        _, cloud, _, _ = world
        blob = dump_index(cloud.index)
        for keep in (0, 1, len(blob) // 4, len(blob) // 2, len(blob) - 1):
            with pytest.raises(StateError, match="cannot load encrypted index"):
                load_index(blob[:keep])

    def test_interior_bit_flip_raises_state_error(self, world):
        """Bit rot *inside* the mapping body — beyond the header checks that
        caught truncation — trips the codec's content digest."""
        _, cloud, _, _ = world
        blob = dump_index(cloud.index)
        for position in (len(blob) * 4, len(blob) * 6, len(blob) * 8 - 3):
            with pytest.raises(StateError):
                load_index(bit_flipped(blob, position))

    def test_every_loader_rejects_garbage(self, world, tparams):
        _, cloud, _, _ = world
        for loader in (load_index, load_primes, load_trapdoor_state, load_cloud_state):
            with pytest.raises(StateError):
                loader(b"not a state blob at all")
            with pytest.raises(StateError):
                loader(b"")

    def test_wrong_kind_rejected(self, world):
        """A primes blob fed to the index loader is corruption, not data."""
        _, cloud, _, _ = world
        from repro.storage import dump_primes

        with pytest.raises(StateError, match="cannot load encrypted index"):
            load_index(dump_primes(sorted(cloud._primes)))


class TestCloudSnapshotRoundTrip:
    def test_round_trip_preserves_state(self, world):
        _, cloud, _, _ = world
        blob = dump_cloud_state(cloud.index, sorted(cloud._primes), cloud.ads_value)
        index, primes, ads_value = load_cloud_state(blob)
        assert len(index) == len(cloud.index)
        assert primes == sorted(cloud._primes)
        assert ads_value == cloud.ads_value

    def test_restored_cloud_serves_verifiable_searches(self, world, tparams):
        owner, cloud, out, db = world
        resumed = CloudServer(tparams, owner.keys.trapdoor.public)
        resumed.restore(cloud.snapshot())
        user = DataUser(tparams, out.user_package, default_rng(9))
        query = Query.parse(100, ">")
        response = resumed.search(user.make_tokens(query))
        assert verify_response(tparams, resumed.ads_value, response).ok
        assert user.decrypt_results(response) == db.ids_matching(query.predicate())

    def test_failed_restore_leaves_current_state_intact(self, world, tparams):
        """Integrity is checked before mutation: a corrupt snapshot raises
        and the running cloud keeps serving from its live state."""
        owner, cloud, out, _ = world
        before = (len(cloud.index), cloud.prime_count, cloud.ads_value)
        snapshot = cloud.snapshot()
        with pytest.raises(StateError):
            cloud.restore(bit_flipped(snapshot, len(snapshot) * 5))
        assert (len(cloud.index), cloud.prime_count, cloud.ads_value) == before
        user = DataUser(tparams, out.user_package, default_rng(9))
        response = cloud.search(user.make_tokens(Query.parse(100, ">")))
        assert verify_response(tparams, cloud.ads_value, response).ok

    def test_restore_from_own_snapshot_keeps_caches(self, world):
        """The cache-amnesia fix: witnesses are a pure function of
        ``(X, Ac)``, so restoring state identical to the live state must not
        throw away a provably-still-exact cache."""
        _, cloud, _, _ = world
        cloud.precompute_witnesses()
        before = dict(cloud._witness_cache)
        entry_cache = cloud._entry_cache
        cloud.restore(cloud.snapshot())
        assert cloud._witness_cache == before
        assert cloud._entry_cache is entry_cache

    def test_restore_of_stale_state_drops_witness_cache(self, world, tparams):
        """Restoring *older* state (different primes/Ac) models rollback: the
        cache would be stale for the restored prime set, so it is dropped
        until explicitly rebuilt (what the chaos restart hook does)."""
        owner, cloud, _, _ = world
        old_snapshot = cloud.snapshot()
        delta = owner.insert(make_database([("z0", 13), ("z1", 77)], bits=8))
        cloud.install(delta.cloud_package)
        cloud.precompute_witnesses()
        assert cloud._witness_cache is not None
        cloud.restore(old_snapshot)
        assert cloud._witness_cache is None
        assert cloud.precompute_witnesses() == cloud.prime_count


class TestAtomicSave:
    def test_save_then_load_round_trips(self, world, tmp_path):
        _, cloud, _, _ = world
        path = tmp_path / "cloud.slcr"
        blob = cloud.snapshot()
        save(path, blob)
        assert load(path) == blob
        assert not path.with_name(path.name + ".tmp").exists()

    def test_crash_mid_write_preserves_previous_snapshot(
        self, world, tmp_path, monkeypatch
    ):
        """Kill the writer before the rename: the old file must survive and
        still load — the property the chaos crash-restart path depends on."""
        _, cloud, _, _ = world
        path = tmp_path / "cloud.slcr"
        old_blob = cloud.snapshot()
        save(path, old_blob)

        def crash(src, dst):
            raise OSError("simulated power loss before rename")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError, match="simulated power loss"):
            save(path, b"newer snapshot that never lands")
        monkeypatch.undo()

        assert load(path) == old_blob
        load_cloud_state(load(path))  # still a valid snapshot

    def test_save_fsyncs_parent_directory(self, world, tmp_path, monkeypatch):
        """The durability half of the satellite fix: ``os.replace`` alone
        leaves the new directory entry in the page cache, so ``save`` must
        fsync the parent directory after the rename or a post-rename crash
        can resurrect the old snapshot."""
        from repro.storage import state_io

        synced: list[object] = []
        real = state_io.fsync_dir

        def recording(path):
            synced.append(os.fspath(path))
            real(path)

        monkeypatch.setattr(state_io, "fsync_dir", recording)
        path = tmp_path / "cloud.slcr"
        save(path, world[1].snapshot())
        assert os.fspath(tmp_path) in synced

    def test_torn_file_on_disk_is_rejected_at_load(self, world, tmp_path):
        """If a non-atomic writer DID tear the file, loading it is loud."""
        _, cloud, _, _ = world
        path = tmp_path / "cloud.slcr"
        blob = cloud.snapshot()
        path.write_bytes(blob[: len(blob) // 3])
        with pytest.raises(StateError, match="cannot load cloud state"):
            load_cloud_state(load(path))
