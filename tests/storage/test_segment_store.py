"""The durable epoch-segment store: append, reopen, torn tails, warm restarts.

Store-level tests exercise the commit protocol directly (manifest as commit
point, torn-tail truncation, interior-corruption refusal); cloud-level tests
assert the contract the bench measures — a reopened cloud serves byte-identical
responses, and a warm checkpoint brings its caches back.
"""

import pytest

from repro.common import perfstats
from repro.common.errors import StateError
from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.query import Query
from repro.core.records import make_database
from repro.core.user import DataUser
from repro.core.verify import verify_response
from repro.storage import SegmentStore
from repro.storage.segment_store import (
    MANIFEST_NAME,
    WARM_NAME,
    index_digest,
    pack_warm_state,
    primes_digest,
    unpack_warm_state,
)


@pytest.fixture()
def world(tparams, owner_factory):
    owner = owner_factory(tparams, seed=201)
    db = make_database([(f"r{i}", (i * 23) % 256) for i in range(15)], bits=8)
    out = owner.build(db)
    return owner, out, db


def sample_segments():
    return [
        ({b"label-a": b"payload-a", b"label-b": b"payload-b"}, [3, 5, 7], 11, None),
        ({b"label-c": b"payload-c"}, [13], 17, [13]),
        ({}, [], 17, []),
    ]


class TestStoreChain:
    def test_append_replay_round_trip(self, tmp_path):
        store = SegmentStore.create(tmp_path / "store")
        for entries, primes, ads, local in sample_segments():
            store.append(entries, primes, ads, local_primes=local)
        reopened = SegmentStore.open(tmp_path / "store")
        assert reopened.ads_value == 17
        assert reopened.segment_count == 3
        replayed = list(reopened.replay())
        for seq, (segment, (entries, primes, ads, local)) in enumerate(
            zip(replayed, sample_segments())
        ):
            assert segment.seq == seq
            assert segment.entries == entries
            assert segment.primes == primes
            assert segment.ads_value == ads
            # None (single-cloud) and [] (shard with no local primes) are
            # distinct on disk — the frontend's bookkeeping needs the split.
            assert segment.local_primes == local

    def test_create_refuses_existing_store(self, tmp_path):
        SegmentStore.create(tmp_path / "store")
        with pytest.raises(StateError, match="already exists"):
            SegmentStore.create(tmp_path / "store")

    def test_open_missing_store_raises(self, tmp_path):
        with pytest.raises(StateError, match="no segment store"):
            SegmentStore.open(tmp_path / "nowhere")

    def test_plan_mismatch_refused(self, tmp_path):
        SegmentStore.create(tmp_path / "store", plan=b"shard-plan-A")
        with pytest.raises(StateError, match="plan mismatch"):
            SegmentStore.open(tmp_path / "store", plan=b"shard-plan-B")
        # The recorded plan still opens (and None skips the check).
        SegmentStore.open(tmp_path / "store", plan=b"shard-plan-A")
        SegmentStore.open(tmp_path / "store")


class TestTornTail:
    def test_orphan_segment_is_truncated(self, tmp_path):
        """A crash between segment write and manifest swap: the orphan file
        is deleted on open and the store continues from the committed tip."""
        store = SegmentStore.create(tmp_path / "store")
        store.append({b"a": b"1"}, [3], 5)
        # Simulate the torn write: the next segment landed, the manifest
        # swap never did.
        torn = tmp_path / "store" / "seg-00001.slcr"
        torn.write_bytes(b"partially written segment that never committed")
        reopened = SegmentStore.open(tmp_path / "store")
        assert not torn.exists()
        assert reopened.segment_count == 1
        assert perfstats.get("segstore.tail_truncated") >= 1
        # The re-sent install reuses the freed sequence number.
        assert reopened.append({b"b": b"2"}, [7], 35) == 1
        assert [s.entries for s in reopened.replay()] == [{b"a": b"1"}, {b"b": b"2"}]

    def test_interior_corruption_is_refused(self, tmp_path):
        store = SegmentStore.create(tmp_path / "store")
        store.append({b"a": b"1"}, [3], 5)
        store.append({b"b": b"2"}, [7], 35)
        target = tmp_path / "store" / "seg-00000.slcr"
        blob = bytearray(target.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        target.write_bytes(bytes(blob))
        reopened = SegmentStore.open(tmp_path / "store")  # open is lazy
        with pytest.raises(StateError, match="interior corruption"):
            list(reopened.replay())

    def test_missing_listed_segment_is_refused(self, tmp_path):
        store = SegmentStore.create(tmp_path / "store")
        store.append({b"a": b"1"}, [3], 5)
        (tmp_path / "store" / "seg-00000.slcr").unlink()
        reopened = SegmentStore.open(tmp_path / "store")
        with pytest.raises(StateError, match="file is missing"):
            list(reopened.replay())

    def test_corrupt_manifest_is_refused(self, tmp_path):
        SegmentStore.create(tmp_path / "store")
        manifest = tmp_path / "store" / MANIFEST_NAME
        blob = bytearray(manifest.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        manifest.write_bytes(bytes(blob))
        with pytest.raises(StateError, match="corrupt segment manifest"):
            SegmentStore.open(tmp_path / "store")


class TestWarmCheckpoint:
    def test_warm_round_trip(self, tmp_path):
        store = SegmentStore.create(tmp_path / "store")
        store.write_warm(b"warm payload")
        assert SegmentStore.open(tmp_path / "store").read_warm() == b"warm payload"

    def test_corrupt_warm_degrades_to_none(self, tmp_path):
        """The checkpoint is an accelerator: corruption means a cold
        rebuild, never a refusal and never wrong caches."""
        store = SegmentStore.create(tmp_path / "store")
        store.write_warm(b"warm payload")
        warm_path = tmp_path / "store" / WARM_NAME
        warm_path.write_bytes(warm_path.read_bytes()[:-2])
        assert SegmentStore.open(tmp_path / "store").read_warm() is None
        assert perfstats.get("segstore.warm.invalid") >= 1

    def test_orphan_warm_file_is_removed(self, tmp_path):
        SegmentStore.create(tmp_path / "store")
        orphan = tmp_path / "store" / WARM_NAME
        orphan.write_bytes(b"checkpoint the manifest never recorded")
        SegmentStore.open(tmp_path / "store")
        assert not orphan.exists()

    def test_warm_state_payload_round_trip(self):
        packed = pack_warm_state(
            42,
            primes_digest([3, 5, 7]),
            index_digest({b"a": b"1"}),
            [(b"node-key", ((b"e1", b"e2"), 12345, b"next-t")),
             (b"other-key", ((), 0, None))],
            {3: 99, 5: 101},
            {(3, 5): {3: 7}, (): {}},
            [(b"t0", b"t1")],
            [(b"data", (1009, 4))],
        )
        warm = unpack_warm_state(packed)
        assert warm.ads_value == 42
        assert warm.primes_digest == primes_digest([7, 5, 3])
        assert warm.entry_nodes == [
            (b"node-key", ((b"e1", b"e2"), 12345, b"next-t")),
            (b"other-key", ((), 0, None)),
        ]
        assert warm.witness_cache == {3: 99, 5: 101}
        assert warm.repeat_cache == {(3, 5): {3: 7}, (): {}}
        assert warm.trapdoor_items == [(b"t0", b"t1")]
        assert warm.hash_items == [(b"data", (1009, 4))]

    def test_warm_state_none_witness_cache_distinct_from_empty(self):
        base = (0, b"\x00" * 32, b"\x01" * 32, [], None, {}, [], [])
        assert unpack_warm_state(pack_warm_state(*base)).witness_cache is None
        filled = (0, b"\x00" * 32, b"\x01" * 32, [], {}, {}, [], [])
        assert unpack_warm_state(pack_warm_state(*filled)).witness_cache == {}


class TestCloudReopen:
    def make_cloud(self, tparams, owner, store_dir=None):
        cloud = CloudServer(tparams, owner.keys.trapdoor.public)
        if store_dir is not None:
            cloud.attach_store(store_dir)
        return cloud

    def test_reopen_serves_byte_identical_state(self, world, tparams, tmp_path):
        owner, out, db = world
        cloud = self.make_cloud(tparams, owner, tmp_path / "store")
        cloud.install(out.cloud_package)
        delta = owner.insert(make_database([("w0", 8), ("w1", 199)], bits=8))
        cloud.install(delta.cloud_package)
        before = cloud.snapshot()

        resumed = self.make_cloud(tparams, owner)
        resumed.reopen(tmp_path / "store")
        assert resumed.snapshot() == before  # snapshot() hydrates first

        user = DataUser(tparams, delta.user_package, default_rng(9))
        query = Query.parse(100, ">")
        response = resumed.search(user.make_tokens(query))
        assert verify_response(tparams, resumed.ads_value, response).ok

    def test_reopen_is_lazy(self, world, tparams, tmp_path):
        owner, out, _ = world
        cloud = self.make_cloud(tparams, owner, tmp_path / "store")
        cloud.install(out.cloud_package)
        resumed = self.make_cloud(tparams, owner)
        base = perfstats.snapshot()
        resumed.reopen(tmp_path / "store")
        # Ac serves straight from the manifest; no segment was read yet.
        assert resumed.ads_value == cloud.ads_value
        assert perfstats.delta_since(base).get("segstore.segments_replayed", 0) == 0
        assert resumed.prime_count == cloud.prime_count  # first state access
        assert perfstats.delta_since(base)["segstore.segments_replayed"] == 1

    def test_warm_reopen_rehydrates_caches(self, world, tparams, tmp_path):
        owner, out, _ = world
        cloud = self.make_cloud(tparams, owner, tmp_path / "store")
        cloud.install(out.cloud_package)
        user = DataUser(tparams, out.user_package, default_rng(9))
        tokens = user.make_tokens(Query.parse(100, ">"))
        cloud.precompute_witnesses()
        warm_response = cloud.search(tokens)
        cloud.checkpoint()
        witness_cache = dict(cloud._witness_cache)
        node_keys = list(cloud._entry_cache.nodes)

        resumed = self.make_cloud(tparams, owner)
        resumed.reopen(tmp_path / "store")
        base = perfstats.snapshot()
        response = resumed.search(tokens)
        delta = perfstats.delta_since(base)
        assert response == warm_response
        assert delta.get("cloud.collect.index_probes", 0) == 0
        assert delta.get("cloud.collect.prf_evals", 0) == 0
        assert resumed._witness_cache == witness_cache
        assert list(resumed._entry_cache.nodes) == node_keys

    def test_stale_checkpoint_degrades_to_cold(self, world, tparams, tmp_path):
        """A checkpoint taken before a later install fails its stamps: the
        reopened cloud rebuilds cold but still answers correctly."""
        owner, out, _ = world
        cloud = self.make_cloud(tparams, owner, tmp_path / "store")
        cloud.install(out.cloud_package)
        cloud.precompute_witnesses()
        cloud.checkpoint()  # stamps the pre-insert state
        delta = owner.insert(make_database([("s0", 64)], bits=8))
        cloud.install(delta.cloud_package)

        resumed = self.make_cloud(tparams, owner)
        resumed.reopen(tmp_path / "store")
        user = DataUser(tparams, delta.user_package, default_rng(9))
        query = Query.parse(100, ">")
        response = resumed.search(user.make_tokens(query))
        assert resumed._witness_cache is None  # stale checkpoint ignored
        assert perfstats.get("segstore.warm.stale") >= 1
        assert verify_response(tparams, resumed.ads_value, response).ok

    def test_attach_store_bootstraps_existing_state(self, world, tparams, tmp_path):
        owner, out, _ = world
        cloud = self.make_cloud(tparams, owner)
        cloud.install(out.cloud_package)
        cloud.attach_store(tmp_path / "store")  # after the fact
        resumed = self.make_cloud(tparams, owner)
        resumed.reopen(tmp_path / "store")
        assert resumed.prime_count == cloud.prime_count
        assert resumed.ads_value == cloud.ads_value

    def test_attach_twice_refused(self, world, tparams, tmp_path):
        owner, _, _ = world
        cloud = self.make_cloud(tparams, owner, tmp_path / "store")
        with pytest.raises(StateError, match="already attached"):
            cloud.attach_store(tmp_path / "other")

    def test_restore_refused_with_store_attached(self, world, tparams, tmp_path):
        """Snapshot restore would fork the store's history — loud refusal."""
        owner, out, _ = world
        cloud = self.make_cloud(tparams, owner, tmp_path / "store")
        cloud.install(out.cloud_package)
        snapshot = cloud.snapshot()
        with pytest.raises(StateError, match="use reopen"):
            cloud.restore(snapshot)
