"""Binary codec: framing, versioning, mapping round trips."""

import pytest

from repro.common.errors import ParameterError
from repro.storage import codec


class TestFraming:
    def test_pack_unpack_round_trip(self):
        blob = codec.pack(b"kind", b"a", b"bb")
        assert codec.unpack(blob, b"kind") == [b"a", b"bb"]

    def test_kind_mismatch_rejected(self):
        blob = codec.pack(b"kind", b"a")
        with pytest.raises(ParameterError):
            codec.unpack(blob, b"other")

    def test_garbage_rejected(self):
        with pytest.raises(ParameterError):
            codec.unpack(b"not a state file", b"kind")

    def test_bad_magic_rejected(self):
        from repro.common.encoding import encode_parts, encode_uint

        blob = encode_parts(b"XXXX", encode_uint(1, 2), b"kind", encode_parts())
        with pytest.raises(ParameterError):
            codec.unpack(blob, b"kind")

    def test_future_version_rejected(self):
        from repro.common.encoding import encode_parts, encode_uint

        blob = encode_parts(codec.MAGIC, encode_uint(99, 2), b"kind", encode_parts())
        with pytest.raises(ParameterError):
            codec.unpack(blob, b"kind")


class TestIntCodec:
    def test_round_trip(self):
        for v in [0, 1, 255, 2**64, 2**2048 - 7]:
            assert codec.decode_int(codec.encode_int(v)) == v

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            codec.encode_int(-5)


class TestMappingCodec:
    def test_round_trip(self):
        mapping = {b"b": b"2", b"a": b"1", b"": b""}
        assert codec.decode_mapping(codec.encode_mapping(mapping)) == mapping

    def test_deterministic_regardless_of_insertion_order(self):
        a = codec.encode_mapping({b"x": b"1", b"y": b"2"})
        b = codec.encode_mapping({b"y": b"2", b"x": b"1"})
        assert a == b

    def test_odd_element_count_rejected(self):
        from repro.common.encoding import encode_parts

        with pytest.raises(ParameterError):
            codec.decode_mapping(encode_parts(b"key-without-value"))
