"""Crash matrix: kill the cloud at every commit-protocol point, at every shape.

Each cell of {workers 0, 2} x {shards 1, 4} kills the serving tier at one of
three points — during a segment append (file written, manifest not), during
the manifest swap itself (tmp written, rename never ran), and mid-rehydrate
(replay dies halfway through a reopen) — then recovers from the store and
re-sends exactly the installs whose commit never landed.  The recovered tier
must equal a never-crashed oracle byte for byte: same state snapshot, same
response bytes, same deterministic counter deltas over the measured workload.
"""

import inspect
import os

import pytest

from repro.common import perfstats
from repro.common.rng import default_rng
from repro.core import wire
from repro.core.cloud import CloudServer
from repro.core.params import SlicerParams
from repro.core.query import Query
from repro.core.records import make_database
from repro.core.user import DataUser
from repro.crypto import kernels
from repro.obs.metrics import MetricsRegistry
from repro.sharding import HashShardPlan, ShardedCloudFrontend
from repro.storage.segment_store import SegmentStore

#: The canonical machine/topology-shaped counter exclusions — the measured
#: deltas are compared over exactly what the CI counter gates compare.
EXCLUDE = inspect.signature(MetricsRegistry.deterministic_snapshot).parameters[
    "exclude_prefixes"
].default

BASE_VALUES = [7, 7, 9, 40, 41, 64, 3, 200, 128, 255]
DELTA_VALUES = [7, 130, 65, 0]
QUERIES = [Query.parse(7, "="), Query.parse(40, ">"), Query.parse(64, "<")]

MATRIX = [(0, 1), (0, 4), (2, 1), (2, 4)]


def database(values, start=0):
    return make_database(
        [(f"rec-{start + i}", v) for i, v in enumerate(values)], bits=8
    )


def make_serving(params, keys, plan, store_dir=None):
    if plan is None:
        serving = CloudServer(params, keys.trapdoor.public)
    else:
        serving = ShardedCloudFrontend(params, keys.trapdoor.public, plan)
    if store_dir is not None:
        serving.attach_store(store_dir)
    return serving


def install(serving, out, plan):
    if plan is None:
        serving.install(out.cloud_package)
    else:
        serving.install_shards(out.shard_packages)


def resend_uncommitted(serving, delta_out, plan):
    """Re-send exactly the installs the torn tail rolled back.

    Committed shards (two segments) must NOT see the delta again — their
    index already holds its labels and a duplicate put is corruption.
    """
    if plan is None:
        if serving._store.segment_count == 1:
            serving.install(delta_out.cloud_package)
    else:
        for sid, server in enumerate(serving.shard_servers):
            if server._store.segment_count == 1:
                serving.install_shard(delta_out.shard_packages[sid])


def measured_workload(serving, token_lists):
    """The post-recovery phase the oracle comparison is scored on."""
    kernels.clear_caches()  # both runs start cold in the global kernel memos
    base = perfstats.snapshot()
    blobs = [wire.dump_response(serving.search(tokens)) for tokens in token_lists]
    delta = {
        k: v
        for k, v in perfstats.delta_since(base).items()
        if not k.startswith(EXCLUDE)
    }
    return blobs, delta


@pytest.fixture(params=MATRIX, ids=lambda wk: f"workers{wk[0]}-shards{wk[1]}")
def cell(request, session_keys, owner_factory):
    workers, shards = request.param
    params = SlicerParams.testing(value_bits=8, workers=workers)
    plan = HashShardPlan(shards) if shards > 1 else None
    owner = owner_factory(params, seed=301)
    if plan is not None:
        owner.shard_plan = plan
    build_out = owner.build(database(BASE_VALUES))
    delta_out = owner.insert(database(DELTA_VALUES, start=100))
    user = DataUser(params, delta_out.user_package, default_rng(3))
    token_lists = [user.make_tokens(q) for q in QUERIES]
    return params, session_keys, plan, build_out, delta_out, token_lists


def oracle_run(cell, tmp_path):
    params, keys, plan, build_out, delta_out, token_lists = cell
    oracle = make_serving(params, keys, plan, tmp_path / "oracle-store")
    install(oracle, build_out, plan)
    install(oracle, delta_out, plan)
    blobs, delta = measured_workload(oracle, token_lists)
    return oracle, blobs, delta


def assert_matches_oracle(cell, tmp_path, recovered):
    _, _, plan, _, _, token_lists = cell
    oracle, oracle_blobs, oracle_delta = oracle_run(cell, tmp_path)
    assert recovered.snapshot() == oracle.snapshot()
    blobs, delta = measured_workload(recovered, token_lists)
    assert blobs == oracle_blobs
    assert delta == oracle_delta


class TestCrashMatrix:
    def test_crash_during_segment_append(self, cell, tmp_path, monkeypatch):
        """Die after the segment file landed but before the manifest swap:
        the tail is truncated on reopen and the lost installs re-sent."""
        params, keys, plan, build_out, delta_out, _ = cell
        serving = make_serving(params, keys, plan, tmp_path / "store")
        install(serving, build_out, plan)

        calls = {"n": 0}
        crash_at = 1 if plan is None else 3  # shards: some commit, one tears
        real = SegmentStore._write_manifest

        def crashing(self):
            calls["n"] += 1
            if calls["n"] == crash_at:
                raise RuntimeError("simulated crash during segment append")
            real(self)

        monkeypatch.setattr(SegmentStore, "_write_manifest", crashing)
        with pytest.raises(RuntimeError, match="simulated crash"):
            install(serving, delta_out, plan)
        monkeypatch.undo()

        recovered = make_serving(params, keys, plan)
        recovered.reopen(tmp_path / "store")
        resend_uncommitted(recovered, delta_out, plan)
        assert_matches_oracle(cell, tmp_path, recovered)

    def test_crash_during_manifest_swap(self, cell, tmp_path, monkeypatch):
        """Die inside the manifest's atomic save (before the rename): the
        old manifest survives, the new segment becomes a torn tail."""
        params, keys, plan, build_out, delta_out, _ = cell
        serving = make_serving(params, keys, plan, tmp_path / "store")
        install(serving, build_out, plan)

        calls = {"n": 0}
        crash_at = 1 if plan is None else 3
        real = os.replace

        def crashing(src, dst):
            calls["n"] += 1
            if calls["n"] == crash_at:
                raise OSError("simulated power loss before rename")
            real(src, dst)

        monkeypatch.setattr(os, "replace", crashing)
        with pytest.raises(OSError, match="simulated power loss"):
            install(serving, delta_out, plan)
        monkeypatch.undo()

        recovered = make_serving(params, keys, plan)
        recovered.reopen(tmp_path / "store")
        resend_uncommitted(recovered, delta_out, plan)
        assert_matches_oracle(cell, tmp_path, recovered)

    def test_crash_mid_rehydrate(self, cell, tmp_path, monkeypatch):
        """Die halfway through replay on restart: rehydration only reads, so
        a second, clean reopen recovers the full committed state."""
        params, keys, plan, build_out, delta_out, _ = cell
        serving = make_serving(params, keys, plan, tmp_path / "store")
        install(serving, build_out, plan)
        install(serving, delta_out, plan)

        real_replay = SegmentStore.replay

        def torn_replay(self):
            yield next(real_replay(self))
            raise RuntimeError("simulated crash mid-rehydrate")

        monkeypatch.setattr(SegmentStore, "replay", torn_replay)
        half = make_serving(params, keys, plan)
        with pytest.raises(RuntimeError, match="mid-rehydrate"):
            half.reopen(tmp_path / "store")
            half.prime_count  # single cloud: hydration is lazy; force it
        monkeypatch.undo()

        recovered = make_serving(params, keys, plan)
        recovered.reopen(tmp_path / "store")
        assert_matches_oracle(cell, tmp_path, recovered)
