"""State persistence: a cloud/owner/user can be stopped and resumed."""

import pytest

from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.query import Query
from repro.core.records import Database, make_database
from repro.core.state import CloudPackage
from repro.core.user import DataUser
from repro.core.verify import verify_response
from repro.storage import (
    dump_index,
    dump_primes,
    dump_set_hash_state,
    dump_trapdoor_state,
    load_index,
    load_primes,
    load_set_hash_state,
    load_trapdoor_state,
)


@pytest.fixture()
def world(tparams, owner_factory):
    owner = owner_factory(tparams, seed=201)
    db = make_database([(f"r{i}", (i * 23) % 256) for i in range(15)], bits=8)
    out = owner.build(db)
    cloud = CloudServer(tparams, owner.keys.trapdoor.public)
    cloud.install(out.cloud_package)
    return owner, cloud, out, db


class TestIndexRoundTrip:
    def test_identical_entries(self, world):
        _, cloud, _, _ = world
        restored = load_index(dump_index(cloud.index))
        assert len(restored) == len(cloud.index)
        assert restored.size_bytes == cloud.index.size_bytes
        for label, payload in cloud.index._entries.items():
            assert restored.find(label) == payload

    def test_file_round_trip(self, world, tmp_path):
        from repro.storage import load, save

        _, cloud, _, _ = world
        path = tmp_path / "index.slcr"
        save(path, dump_index(cloud.index))
        assert len(load_index(load(path))) == len(cloud.index)


class TestTrapdoorStateRoundTrip:
    def test_identical(self, world):
        owner, _, _, _ = world
        restored = load_trapdoor_state(dump_trapdoor_state(owner.trapdoor_state))
        assert len(restored) == len(owner.trapdoor_state)
        for kw in owner.trapdoor_state.keywords():
            assert restored.get(kw) == owner.trapdoor_state.get(kw)


class TestSetHashRoundTrip:
    def test_identical(self, world, tparams):
        owner, _, _, _ = world
        blob = dump_set_hash_state(owner.set_hash_state, tparams.multiset_field)
        restored = load_set_hash_state(blob)
        assert dict(restored.items()) == dict(owner.set_hash_state.items())


class TestPrimesRoundTrip:
    def test_identical(self, world):
        owner, _, _, _ = world
        primes = owner.accumulator.primes
        assert load_primes(dump_primes(primes)) == primes

    def test_empty(self):
        assert load_primes(dump_primes([])) == []


class TestFileErrorsAreStateErrors:
    """The satellite fix: the filesystem boundary honours the module's
    one-exception contract — ``load`` never leaks ``FileNotFoundError`` or
    raw ``OSError`` to crash-recovery callers, and the message names the
    offending path."""

    def test_missing_file_raises_state_error_with_path(self, tmp_path):
        from repro.common.errors import StateError
        from repro.storage import load

        missing = tmp_path / "never-written.slcr"
        with pytest.raises(StateError, match="state file missing") as excinfo:
            load(missing)
        assert str(missing) in str(excinfo.value)

    def test_unreadable_file_raises_state_error_with_path(self, tmp_path):
        """A directory at the snapshot path is an OSError on read — the
        closest portable stand-in for permission/I-O failures."""
        from repro.common.errors import StateError
        from repro.storage import load

        unreadable = tmp_path / "snapshot-dir.slcr"
        unreadable.mkdir()
        with pytest.raises(StateError, match="cannot read state file") as excinfo:
            load(unreadable)
        assert str(unreadable) in str(excinfo.value)

    def test_original_error_is_chained(self, tmp_path):
        from repro.common.errors import StateError
        from repro.storage import load

        with pytest.raises(StateError) as excinfo:
            load(tmp_path / "gone.slcr")
        assert isinstance(excinfo.value.__cause__, FileNotFoundError)


class TestResumedCloudServesSearches:
    def test_search_after_reload(self, world, tparams):
        """A cloud rebuilt from persisted state answers and verifies searches."""
        owner, cloud, out, db = world
        resumed = CloudServer(tparams, owner.keys.trapdoor.public)
        resumed.install(
            CloudPackage(
                load_index(dump_index(cloud.index)),
                load_primes(dump_primes(sorted(cloud._primes))),
                cloud.ads_value,
            )
        )

        user = DataUser(tparams, out.user_package, default_rng(9))
        query = Query.parse(100, ">")
        tokens = user.make_tokens(query)
        response = resumed.search(tokens)
        assert verify_response(tparams, resumed.ads_value, response).ok
        assert user.decrypt_results(response) == db.ids_matching(query.predicate())

    def test_resumed_owner_can_insert(self, world, tparams, owner_factory):
        """Owner state survives a reload: inserts continue the epoch chain."""
        owner, cloud, out, _ = world
        # Simulate restart: round-trip T and S through the codec.
        owner.trapdoor_state = load_trapdoor_state(
            dump_trapdoor_state(owner.trapdoor_state)
        )
        owner.set_hash_state = load_set_hash_state(
            dump_set_hash_state(owner.set_hash_state, tparams.multiset_field)
        )
        add = Database(8)
        add.add("fresh", 23)
        out2 = owner.insert(add)
        cloud.install(out2.cloud_package)
        user = DataUser(tparams, out2.user_package, default_rng(10))
        tokens = user.make_tokens(Query.parse(23, "="))
        response = cloud.search(tokens)
        assert verify_response(tparams, cloud.ads_value, response).ok
        from repro.core.records import encode_record_id

        assert encode_record_id("fresh") in user.decrypt_results(response)
