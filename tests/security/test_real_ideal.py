"""The Real/Ideal experiment: simulator output is structurally identical to
the real protocol and statistically indistinguishable at the byte level."""

import pytest

from repro.common.rng import default_rng
from repro.core.params import KeyBundle, SlicerParams
from repro.core.query import Query
from repro.core.records import Database, make_database
from repro.security.games import (
    IdealGame,
    RealGame,
    looks_uniform,
    structural_view,
)

PARAMS = SlicerParams.testing(value_bits=8)
KEYS = KeyBundle.generate(default_rng(606), trapdoor_bits=512)


def run_both(operations):
    """Drive Real and Ideal games through the same operation script."""
    real = RealGame(PARAMS, KEYS, default_rng(1))
    ideal = IdealGame(PARAMS, trapdoor_len=KEYS.trapdoor.public.byte_len, rng=default_rng(2))
    for op, arg in operations:
        getattr(real, op)(arg)
        getattr(ideal, op)(arg)
    return real, ideal


BASE_DB = make_database([("a", 7), ("b", 7), ("c", 40), ("d", 200)], bits=8)


def script(extra=()):
    return [("build", BASE_DB), *extra]


class TestStructuralEquality:
    def test_build_only(self):
        real, ideal = run_both(script())
        assert structural_view(real.transcript) == structural_view(ideal.transcript)

    def test_build_and_searches(self):
        real, ideal = run_both(
            script(
                [
                    ("search", Query.parse(7, "=")),
                    ("search", Query.parse(100, ">")),
                    ("search", Query.parse(100, "<")),
                ]
            )
        )
        assert structural_view(real.transcript) == structural_view(ideal.transcript)

    def test_build_insert_search(self):
        add = Database(8)
        add.add("e", 7)
        add.add("f", 123)
        real, ideal = run_both(
            script([("insert", add), ("search", Query.parse(7, "="))])
        )
        assert structural_view(real.transcript) == structural_view(ideal.transcript)

    def test_repeated_query_replays_token(self):
        real, ideal = run_both(
            script([("search", Query.parse(7, "=")), ("search", Query.parse(7, "="))])
        )
        # Real: deterministic PRFs reissue the identical token.
        rt = real.transcript.tokens
        it = ideal.transcript.tokens
        assert rt[0].g1 == rt[1].g1 and rt[0].trapdoor == rt[1].trapdoor
        # Ideal: the simulator must replay verbatim per L_repeat.
        assert it[0].g1 == it[1].g1 and it[0].trapdoor == it[1].trapdoor

    def test_epoch_advance_changes_token_in_both(self):
        add = Database(8)
        add.add("e", 7)
        real, ideal = run_both(
            script(
                [
                    ("search", Query.parse(7, "=")),
                    ("insert", add),
                    ("search", Query.parse(7, "=")),
                ]
            )
        )
        for transcript in (real.transcript, ideal.transcript):
            first, second = transcript.tokens[0], transcript.tokens[1]
            assert second.epoch == first.epoch + 1
            assert second.trapdoor != first.trapdoor


class TestStatisticalIndistinguishability:
    """Byte-level smoke tests of Theorem 2: the real view is PRF output, so
    it should look as uniform as the simulator's true randomness."""

    def _views(self):
        return run_both(
            script(
                [
                    ("search", Query.parse(7, "=")),
                    ("search", Query.parse(100, ">")),
                ]
            )
        )

    def test_real_labels_look_uniform(self):
        real, _ = self._views()
        assert looks_uniform(real.transcript.labels)

    def test_real_payloads_look_uniform(self):
        real, _ = self._views()
        assert looks_uniform(real.transcript.payloads)

    def test_ideal_labels_look_uniform(self):
        _, ideal = self._views()
        assert looks_uniform(ideal.transcript.labels)

    def test_no_duplicate_labels_in_either(self):
        real, ideal = self._views()
        for t in (real.transcript, ideal.transcript):
            assert len(set(t.labels)) == len(t.labels)

    def test_structured_data_fails_the_same_check(self):
        """Sanity: the uniformity check has teeth."""
        structured = [b"record-%04d----" % i for i in range(100)]
        assert not looks_uniform(structured)
