"""The leakage functions compute exactly what the real protocol exposes."""

import pytest

from repro.core.cloud import CloudServer
from repro.core.params import SlicerParams
from repro.core.query import Query
from repro.core.records import Database, make_database
from repro.core.user import DataUser
from repro.common.rng import default_rng
from repro.security.leakage_functions import (
    OwnerHistory,
    RepeatLeakage,
    build_leakage,
    insert_leakage,
    search_leakage,
)


@pytest.fixture()
def db():
    return make_database([("a", 7), ("b", 7), ("c", 200)], bits=8)


class TestBuildLeakage:
    def test_counts_match_real_build(self, tparams, owner_factory, db):
        leak = build_leakage(db, tparams)
        owner = owner_factory(tparams, seed=301)
        out = owner.build(db)
        assert leak.entry_count == len(out.cloud_package.index)
        assert leak.prime_count == len(out.cloud_package.primes)

    def test_sizes_match_real_entries(self, tparams, owner_factory, db):
        leak = build_leakage(db, tparams)
        owner = owner_factory(tparams, seed=302)
        out = owner.build(db)
        for label, payload in out.cloud_package.index._entries.items():
            assert len(label) == leak.label_len
            assert len(payload) == leak.payload_len

    def test_identity_independent(self, tparams):
        """Permuting which record holds which value leaves the leakage
        unchanged: L_build sees only shapes, never record identities."""
        a = make_database([("a", 10), ("b", 10), ("c", 30)], bits=8)
        b = make_database([("x", 30), ("y", 10), ("z", 10)], bits=8)
        assert build_leakage(a, tparams) == build_leakage(b, tparams)

    def test_value_structure_is_the_only_content_leak(self, tparams):
        """Different value sets may change the distinct-keyword count q —
        that is the quantity the paper's L_build legitimately reveals."""
        a = make_database([("a", 10), ("b", 10), ("c", 30)], bits=8)
        b = make_database([("a", 99), ("b", 99), ("c", 1)], bits=8)
        la, lb = build_leakage(a, tparams), build_leakage(b, tparams)
        assert la.entry_count == lb.entry_count  # p depends only on record count
        assert la.label_len == lb.label_len and la.payload_len == lb.payload_len


class TestSearchLeakage:
    def test_matches_real_access_pattern(self, tparams, owner_factory, db):
        owner = owner_factory(tparams, seed=303)
        out = owner.build(db)
        cloud = CloudServer(tparams, owner.keys.trapdoor.public)
        cloud.install(out.cloud_package)
        user = DataUser(tparams, out.user_package, default_rng(1))

        history = OwnerHistory(tparams)
        history.record_batch(list(db))

        for query in [Query.parse(7, "="), Query.parse(100, ">"), Query.parse(100, "<")]:
            leak = search_leakage(query, history, tparams)
            tokens = user.make_tokens(query)
            response = cloud.search(tokens)
            assert leak.token_count == len(tokens), query.describe()
            real_counts = sorted(len(r.entries) for r in response.results)
            leaked_counts = sorted(t.total_matches for t in leak.tokens)
            assert real_counts == leaked_counts, query.describe()

    def test_epochs_tracked_across_inserts(self, tparams, owner_factory, db):
        owner = owner_factory(tparams, seed=304)
        out = owner.build(db)
        history = OwnerHistory(tparams)
        history.record_batch(list(db))

        add = Database(8)
        add.add("d", 7)
        owner.insert(add)
        history.record_batch(list(add))

        leak = search_leakage(Query.parse(7, "="), history, tparams)
        assert leak.tokens[0].epoch == 1
        assert leak.tokens[0].matches_per_epoch == (1, 2)  # newest epoch first

    def test_absent_value_leaks_nothing(self, tparams, db):
        history = OwnerHistory(tparams)
        history.record_batch(list(db))
        leak = search_leakage(Query.parse(123, "="), history, tparams)
        assert leak.token_count == 0


class TestInsertLeakage:
    def test_counts_match_real_insert(self, tparams, owner_factory, db):
        owner = owner_factory(tparams, seed=305)
        owner.build(db)
        add = Database(8)
        add.add("d", 7)
        add.add("e", 55)
        leak = insert_leakage(add, tparams)
        out = owner.insert(add)
        assert leak.entry_count == len(out.cloud_package.index)
        assert leak.prime_count == len(out.cloud_package.primes)


class TestRepeatLeakage:
    def test_matrix_symmetric_and_marks_repeats(self):
        repeat = RepeatLeakage()
        assert repeat.observe(b"kw1", 0) is None
        assert repeat.observe(b"kw2", 0) is None
        assert repeat.observe(b"kw1", 0) == 0  # same keyword, same epoch
        assert repeat.matrix[2][0] == 1 and repeat.matrix[0][2] == 1
        assert repeat.matrix[1][0] == 0

    def test_epoch_advance_breaks_repeat(self):
        repeat = RepeatLeakage()
        repeat.observe(b"kw1", 0)
        assert repeat.observe(b"kw1", 1) is None  # trapdoor advanced

    def test_count(self):
        repeat = RepeatLeakage()
        for i in range(4):
            repeat.observe(b"kw", i)
        assert repeat.count == 4
        assert len(repeat.matrix) == 4
