"""Multi-user setting: several authorised users search independently;
freshness holds without the owner being online per search."""

import pytest

from repro.common.errors import StateError
from repro.common.rng import default_rng
from repro.core.query import Query
from repro.core.records import Database, encode_record_id, make_database
from repro.system import DEFAULT_FUNDING, SlicerSystem


@pytest.fixture()
def system(tparams):
    s = SlicerSystem(tparams, rng=default_rng(141))
    s.setup(make_database([("a", 7), ("b", 50), ("c", 7)], bits=8))
    return s


class TestAuthorization:
    def test_second_user_searches(self, system):
        system.authorize_user("carol")
        outcome = system.search(Query.parse(7, "="), as_user="carol")
        assert outcome.verified
        assert outcome.record_ids == {encode_record_id("a"), encode_record_id("c")}

    def test_second_user_pays_own_fee(self, system):
        system.authorize_user("carol", funding=5000)
        carol_addr = system.extra_users["carol"][0]
        system.search(Query.parse(7, "="), payment=100, as_user="carol")
        assert system.chain.balance(carol_addr) == 4900
        assert system.chain.balance(system.user_address) == DEFAULT_FUNDING

    def test_duplicate_label_rejected(self, system):
        system.authorize_user("carol")
        with pytest.raises(StateError):
            system.authorize_user("carol")

    def test_authorize_before_setup_rejected(self, tparams):
        s = SlicerSystem(tparams, rng=default_rng(142))
        with pytest.raises(StateError):
            s.authorize_user("carol")

    def test_unknown_user_rejected(self, system):
        with pytest.raises(KeyError):
            system.search(Query.parse(7, "="), as_user="mallory")


class TestMultiUserFreshness:
    def test_all_users_see_inserts(self, system):
        system.authorize_user("carol")
        system.authorize_user("dan")
        add = Database(8)
        add.add("d", 7)
        system.insert(add)

        for label in (None, "carol", "dan"):
            outcome = system.search(Query.parse(7, "="), as_user=label)
            assert outcome.verified, label
            assert encode_record_id("d") in outcome.record_ids, label

    def test_late_authorized_user_gets_current_state(self, system):
        add = Database(8)
        add.add("d", 7)
        system.insert(add)
        system.authorize_user("late")  # authorised AFTER the insert
        outcome = system.search(Query.parse(7, "="), as_user="late")
        assert outcome.verified
        assert encode_record_id("d") in outcome.record_ids
