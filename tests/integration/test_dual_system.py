"""On-chain dual-instance deployment: deletion with paid verified search."""

import pytest

from repro.common.errors import ParameterError, StateError
from repro.common.rng import default_rng
from repro.core.query import Query
from repro.core.records import encode_record_id, make_database
from repro.dual_system import DualSlicerSystem


@pytest.fixture()
def dual(tparams):
    system = DualSlicerSystem(tparams, default_rng(191))
    system.setup(make_database([("a", 10), ("b", 20), ("c", 30), ("d", 20)], bits=8))
    return system


class TestLifecycle:
    def test_search_matches_oracle(self, dual):
        q = Query.parse(25, ">")
        outcome = dual.search(q)
        assert outcome.verified
        assert outcome.record_ids == dual.expected_ids(q)

    def test_delete_then_search(self, dual):
        dual.delete(encode_record_id("b"))
        q = Query.parse(25, ">")
        outcome = dual.search(q)
        assert outcome.verified
        assert encode_record_id("b") not in outcome.record_ids
        assert outcome.record_ids == dual.expected_ids(q)

    def test_update_then_search(self, dual):
        dual.update(encode_record_id("a"), 200)
        low = dual.search(Query.parse(15, ">"))
        assert low.verified
        assert encode_record_id("a") not in low.record_ids
        high = dual.search(Query.parse(150, "<"))
        assert high.verified and len(high.record_ids) == 1

    def test_insert_after_delete_of_other(self, dual):
        dual.delete(encode_record_id("c"))
        dual.insert(encode_record_id("e"), 30)
        q = Query.parse(25, "<")
        outcome = dual.search(q)
        assert outcome.verified
        assert outcome.record_ids == dual.expected_ids(q)


class TestGuards:
    def test_duplicate_insert_rejected(self, dual):
        with pytest.raises(ParameterError):
            dual.insert(encode_record_id("a"), 1)

    def test_reuse_after_delete_rejected(self, dual):
        dual.delete(encode_record_id("a"))
        with pytest.raises(ParameterError):
            dual.insert(encode_record_id("a"), 5)

    def test_delete_unknown_rejected(self, dual):
        with pytest.raises(StateError):
            dual.delete(encode_record_id("zzz"))


class TestPayments:
    def test_both_instances_get_paid(self, dual):
        dual.delete(encode_record_id("b"))
        before = dual.balances()
        outcome = dual.search(Query.parse(25, ">"), payment=700)
        after = dual.balances()
        assert outcome.verified
        assert after["insert"]["cloud"] - before["insert"]["cloud"] == 700
        assert after["delete"]["cloud"] - before["delete"]["cloud"] == 700

    def test_chain_shared_and_consistent(self, dual):
        dual.search(Query.parse(25, ">"))
        assert dual.chain.verify_integrity()
        assert dual.insert_system.chain is dual.delete_system.chain
