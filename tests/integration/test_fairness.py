"""Fairness: the escrow settles for exactly one party, decided by public
verification — the paper's answer to result-repudiating users and cheating
clouds."""

import pytest

from repro.common.rng import default_rng
from repro.core.cloud import MaliciousCloud, Misbehavior
from repro.core.query import Query
from repro.core.records import make_database
from repro.system import DEFAULT_FUNDING, SlicerSystem

TAMPERING = [
    Misbehavior.DROP_ENTRY,
    Misbehavior.INJECT_ENTRY,
    Misbehavior.TAMPER_ENTRY,
    Misbehavior.FORGE_WITNESS,
    Misbehavior.EMPTY_RESULT,
]


def build_system(tparams, misbehavior=None, seed=120):
    s = SlicerSystem(tparams, rng=default_rng(seed))
    if misbehavior is not None:
        s.cloud = MaliciousCloud(
            tparams, s.owner.keys.trapdoor.public, misbehavior, default_rng(seed + 1)
        )
    s.setup(make_database([(f"r{i}", (i * 19) % 256) for i in range(20)], bits=8))
    return s


class TestCheatingCloudNeverPaid:
    @pytest.mark.parametrize("misbehavior", TAMPERING, ids=lambda m: m.value)
    def test_refund(self, tparams, misbehavior):
        s = build_system(tparams, misbehavior)
        outcome = s.search(Query.parse(130, ">"), payment=5000)
        assert not outcome.verified
        assert s.balances()["user"] == DEFAULT_FUNDING
        assert s.balances()["cloud"] == DEFAULT_FUNDING

    def test_no_results_released_to_user_on_failure(self, tparams):
        s = build_system(tparams, Misbehavior.TAMPER_ENTRY)
        outcome = s.search(Query.parse(130, ">"))
        assert outcome.record_ids == set()


class TestUserCannotRepudiate:
    def test_payment_locked_before_results(self, tparams):
        """The user pays into escrow *before* the cloud answers; once the
        contract verifies, the transfer happens without user consent."""
        s = build_system(tparams)
        outcome = s.search(Query.parse(130, ">"), payment=5000)
        assert outcome.verified
        # The user never signs a release: settlement already moved the funds.
        assert s.balances()["user"] == DEFAULT_FUNDING - 5000
        assert s.balances()["cloud"] == DEFAULT_FUNDING + 5000

    def test_settlement_is_on_chain(self, tparams):
        s = build_system(tparams)
        outcome = s.search(Query.parse(7, "="))
        settled_events = [
            log for log in outcome.settle_receipt.logs if log.name == "QuerySettled"
        ]
        assert len(settled_events) == 1
        assert settled_events[0].get("verified") == b"\x01"


class TestRepeatedQueries:
    def test_multiple_settlements_accumulate(self, tparams):
        s = build_system(tparams)
        for _ in range(3):
            assert s.search(Query.parse(130, ">"), payment=100).verified
        assert s.balances()["cloud"] == DEFAULT_FUNDING + 300
