"""Adversarial conformance matrix: Misbehavior × query shape × fault profile.

The headline chaos claim, asserted cell by cell:

* an **honest** cloud always settles **paid**, under every fault profile;
* a response that differs from what an honest cloud would have sent is
  always **refunded** — and one that is byte-identical to honest output is
  paid, even if produced by a "malicious" cloud whose tampering happened to
  be a no-op (dropping from an empty result, omitting epochs that don't
  exist yet, ``STALE_WITNESS``'s honest fallback);
* **no fault profile flips either outcome** — drops, duplicates, bit rot,
  reordering and cloud crashes change how many retries a search needs,
  never who gets the escrow.

The expected verdict is not hand-coded per cell: every outcome is compared
against an *honest twin* — a fresh ``CloudServer`` restored from the
(actual, possibly malicious) cloud's state snapshot — which makes the
oracle exact for no-op tampering without enumerating the no-op cases.
"""

import pytest

from repro.blockchain.slicer_contract import response_to_chain_args, tokens_digest_input
from repro.chaos import ChaosTransport, FaultPlan, FaultProfile, profile_named
from repro.common import perfstats
from repro.common.rng import default_rng
from repro.core import wire
from repro.core.cloud import CloudServer, MaliciousCloud, Misbehavior
from repro.core.query import Query
from repro.core.records import make_database
from repro.core.user import RangeQuery
from repro.system import DEFAULT_FUNDING, SlicerSystem

PAYMENT = 5000
VALUES = [7, 7, 9, 40, 41, 64, 3, 200]
#: Inserted after setup so the queried keywords gain a second epoch —
#: without this, OMIT_OLD_EPOCHS would be a no-op in every cell.
EXTRA = [7, 41]

BEHAVIORS = [None, *Misbehavior]  # None = honest
PROFILE_NAMES = ["clean", "lossy", "crash_restart"]

#: shape name -> callable running it; returns the per-side outcomes.
SHAPES = [
    ("eq", lambda s: [s.search(Query.parse(7, "="), payment=PAYMENT)]),
    ("one_sided", lambda s: [s.search(Query.parse(40, ">"), payment=PAYMENT)]),
    ("range", lambda s: s.range_search(RangeQuery(5, 64), payment=PAYMENT).sides),
    ("empty", lambda s: [s.search(Query.parse(101, "="), payment=PAYMENT)]),
]

#: Tampering that is *guaranteed* non-trivial on the post-insert ``eq``
#: shape (non-empty results, two epochs) — these cells must refund.
EFFECTIVE_ON_EQ = {
    Misbehavior.DROP_ENTRY,
    Misbehavior.INJECT_ENTRY,
    Misbehavior.TAMPER_ENTRY,
    Misbehavior.OMIT_OLD_EPOCHS,
    Misbehavior.FORGE_WITNESS,
    Misbehavior.EMPTY_RESULT,
}


def database(values, start=0):
    return make_database(
        [(f"rec-{start + i}", v) for i, v in enumerate(values)], bits=8
    )


def build_cell(tparams, owner_factory, behavior, profile, chaos_seed=17):
    owner = owner_factory(tparams, seed=7)
    transport = ChaosTransport(FaultPlan(profile, seed=chaos_seed))
    system = SlicerSystem(
        tparams, rng=default_rng(7), owner=owner, transport=transport
    )
    if behavior is not None:
        system.cloud = MaliciousCloud(
            tparams, owner.keys.trapdoor.public, behavior, default_rng(11)
        )
    system.setup(database(VALUES))
    system.insert(database(EXTRA, start=100))
    return system


def honest_twin(system) -> CloudServer:
    """An honest cloud rebuilt from the actual cloud's state snapshot."""
    twin = CloudServer(system.params, system.owner.keys.trapdoor.public)
    twin.restore(system.cloud.snapshot())
    return twin


class TestConformanceMatrix:
    @pytest.mark.parametrize(
        "behavior", BEHAVIORS, ids=lambda b: "honest" if b is None else b.value
    )
    def test_matrix_cell(self, tparams, owner_factory, behavior):
        verdicts_by_profile = {}
        for profile_name in PROFILE_NAMES:
            perfstats.reset()
            system = build_cell(
                tparams, owner_factory, behavior, profile_named(profile_name)
            )
            twin = honest_twin(system)
            verdicts = {}
            expected_cloud_gain = 0
            for shape_name, run_shape in SHAPES:
                sides = run_shape(system)
                for outcome in sides:
                    # Liveness: bounded fault streaks + the retry budget mean
                    # every search settles — no degraded outcomes, ever.
                    assert outcome.error is None, (shape_name, outcome.error)
                    assert outcome.settled
                    # The fairness oracle: paid iff byte-identical to honest.
                    honest_bytes = wire.dump_response(twin.search(outcome.tokens))
                    got_bytes = wire.dump_response(outcome.response)
                    assert outcome.verified == (got_bytes == honest_bytes), (
                        behavior, shape_name, profile_name,
                    )
                    if outcome.verified:
                        expected_cloud_gain += PAYMENT
                verdicts[shape_name] = tuple(o.verified for o in sides)

            # The escrow moved money for exactly the paid cells: duplicates
            # were deduplicated, refunds returned the full payment.
            balances = system.balances()
            assert balances["cloud"] == DEFAULT_FUNDING + expected_cloud_gain
            assert balances["user"] == DEFAULT_FUNDING - expected_cloud_gain
            assert perfstats.get("retry.gave_up") == 0
            verdicts_by_profile[profile_name] = verdicts

        # No fault profile flips any outcome.
        clean = verdicts_by_profile["clean"]
        for profile_name in PROFILE_NAMES[1:]:
            assert verdicts_by_profile[profile_name] == clean, profile_name

        if behavior is None:
            # Honest cloud: paid in every cell of every profile.
            assert all(all(v) for v in clean.values())
        elif behavior in EFFECTIVE_ON_EQ:
            # Non-trivial tampering on a non-empty, two-epoch result: refund.
            assert clean["eq"] == (False,)

    def test_faults_were_actually_injected(self, tparams, owner_factory):
        """Guards the matrix against vacuity: lossy cells really see faults."""
        perfstats.reset()
        system = build_cell(
            tparams, owner_factory, None, profile_named("lossy"), chaos_seed=17
        )
        for _, run_shape in SHAPES:
            run_shape(system)
        injected = sum(
            v for k, v in perfstats.snapshot().items()
            if k.startswith("chaos.injected.")
        )
        assert injected > 0
        assert perfstats.get("retry.attempts") > 0


class TestWarmCacheColumn:
    """The epoch-suffix entry cache adds a warm column to the matrix: every
    shape runs twice on the same system, and the verdicts must be identical
    cold and warm — a cached walk changes what the cloud *computes*, never
    what the verifier *accepts*.  In particular OMIT_OLD_EPOCHS (whose
    truncated walk bypasses the cache) and TAMPER_ENTRY are caught the same
    way when the honest base response came out of the cache."""

    WARM_BEHAVIORS = [None, Misbehavior.OMIT_OLD_EPOCHS, Misbehavior.TAMPER_ENTRY]

    @pytest.mark.parametrize(
        "behavior",
        WARM_BEHAVIORS,
        ids=lambda b: "honest" if b is None else b.value,
    )
    def test_verdicts_identical_cold_and_warm(
        self, tparams, owner_factory, behavior, monkeypatch
    ):
        from repro.crypto import kernels

        monkeypatch.setenv(kernels.KERNELS_ENV, "1")
        kernels.clear_caches()
        system = build_cell(tparams, owner_factory, behavior, profile_named("clean"))
        runs = []
        for leg in ("cold", "warm"):
            perfstats.reset("cloud.entry_cache.")
            verdicts = {}
            for shape_name, run_shape in SHAPES:
                sides = run_shape(system)
                assert all(o.settled and o.error is None for o in sides)
                verdicts[shape_name] = tuple(o.verified for o in sides)
            runs.append(verdicts)
            if leg == "warm":
                # The warm leg really was warm: repeats hit the cache.
                assert perfstats.get("cloud.entry_cache.hit") > 0
        assert runs[0] == runs[1], behavior
        if behavior is None:
            assert all(all(v) for v in runs[0].values())
        else:
            assert runs[0]["eq"] == (False,)  # tampering caught, both legs


class TestCrashRecoveryInMatrix:
    def test_forced_crashes_rebuild_witness_cache_and_still_pay(
        self, tparams, owner_factory
    ):
        """Every delivery crashes the cloud once; restarts restore the
        snapshot and rebuild the precomputed witness cache, and the search
        still settles paid."""
        profile = FaultProfile(name="forced-crash", crash=1000, force_clean_after=1)
        perfstats.reset()
        system = build_cell(tparams, owner_factory, None, profile)
        system.cloud.precompute_witnesses()
        system._cloud_snapshot = system.cloud.snapshot()
        outcome = system.search(Query.parse(7, "="), payment=PAYMENT)
        assert outcome.verified
        assert perfstats.get("chaos.cloud_restarts") > 0
        # The restart path rebuilt the cache (restore drops it first).
        assert system.cloud._witness_cache is not None
        assert outcome.attempts > 2

    def test_crash_between_install_and_ads_update(self, tparams, owner_factory):
        """A cloud that crashes during an insert restarts into the freshly
        installed state (the snapshot is taken atomically with the install),
        so post-insert searches verify against the new on-chain digest."""
        profile = profile_named("crash_restart")
        system = build_cell(tparams, owner_factory, None, profile, chaos_seed=23)
        for extra_seed in range(3):  # several inserts, several crash windows
            system.insert(database([50 + extra_seed], start=200 + extra_seed))
            outcome = system.search(Query.parse(50 + extra_seed, "="), payment=PAYMENT)
            assert outcome.verified
            assert len(outcome.record_ids) == 1


class TestConcurrentInsertAndSearch:
    """Insert lands between submit and settle — the interleaving cell."""

    def _submit(self, system, tokens):
        receipt = system.chain.call(
            system.user_address,
            system.contract,
            "submit_query",
            (tokens_digest_input(tokens),),
            value=PAYMENT,
        )
        assert receipt.status
        return receipt.return_value

    def _settle(self, system, query_id, tokens):
        response = system.cloud.search(tokens)
        receipt = system.chain.call(
            system.cloud_address,
            system.contract,
            "verify_and_settle",
            (query_id, system.cloud.ads_value, response_to_chain_args(response)),
        )
        assert receipt.status
        return receipt, response

    def test_unrelated_insert_between_submit_and_settle_pays(
        self, tparams, owner_factory
    ):
        system = build_cell(tparams, owner_factory, None, profile_named("lossy"))
        tokens = system.user.make_tokens(Query.parse(7, "="))
        query_id = self._submit(system, tokens)
        system.insert(database([99], start=300))  # untouched keyword
        receipt, _ = self._settle(system, query_id, tokens)
        assert receipt.return_value is True
        assert system.balances()["cloud"] == DEFAULT_FUNDING + PAYMENT

    def test_related_insert_serves_snapshot_of_submission_epoch(
        self, tparams, owner_factory
    ):
        """Tokens fix the epoch they were generated at: a concurrent insert
        to the same keyword doesn't break settlement, and the result is the
        complete pre-insert snapshot — the freshness anchor is the *user's*
        refreshed token, not the settle-time state."""
        system = build_cell(tparams, owner_factory, None, profile_named("lossy"))
        baseline = system.search(Query.parse(7, "="), payment=PAYMENT)
        assert baseline.verified

        tokens = system.user.make_tokens(Query.parse(7, "="))
        query_id = self._submit(system, tokens)
        system.insert(database([7], start=400))  # same keyword, new epoch
        receipt, response = self._settle(system, query_id, tokens)
        assert receipt.return_value is True
        stale_ids = system.user.decrypt_results(response)
        assert stale_ids == baseline.record_ids  # the pre-insert snapshot

        # A refreshed query sees the new record too.
        fresh = system.search(Query.parse(7, "="), payment=PAYMENT)
        assert fresh.verified
        assert len(fresh.record_ids) == len(stale_ids) + 1


class TestShardFaultCells:
    """The sharded serving tier's column of the matrix: one bad shard (dead
    or tampering) is caught and refunded for exactly the queries routed to
    it, while queries served entirely by honest live shards still settle
    paid — a compromised shard cannot poison the rest of the tier's
    settlements."""

    AFFECTED = Query.parse(7, "=")   # routes to the victim shard
    SPARED = Query.parse(200, "=")   # routes elsewhere (asserted per cell)

    def build_tier_cell(self, tparams, owner_factory, profile_name="lossy"):
        from repro.sharding.plan import equality_route

        owner = owner_factory(tparams, seed=7)
        transport = ChaosTransport(FaultPlan(profile_named(profile_name), seed=17))
        system = SlicerSystem(
            tparams, rng=default_rng(7), owner=owner, transport=transport, shards=4
        )
        system.setup(database(VALUES))
        system.insert(database(EXTRA, start=100))
        route = equality_route(owner.keys.prf_key, tparams.value_bits, system.cloud.plan)
        victim = route(self.AFFECTED)
        assert route(self.SPARED) != victim, "fixture queries must split shards"
        return system, victim

    def test_dead_shard_refunds_only_its_queries(self, tparams, owner_factory):
        from repro.obs import audit as obs_audit

        system, victim = self.build_tier_cell(tparams, owner_factory)
        baseline = system.search(self.AFFECTED, payment=PAYMENT)
        assert baseline.verified, "pre-fault tier must settle paid"

        system.cloud.kill_shard(victim)
        refunded = system.search(self.AFFECTED, payment=PAYMENT)
        assert refunded.settled and not refunded.verified
        assert refunded.record_ids == set()
        paid = system.search(self.SPARED, payment=PAYMENT)
        assert paid.settled and paid.verified

        # Escrow moved money for exactly the paid searches.
        balances = system.balances()
        assert balances["cloud"] == DEFAULT_FUNDING + 2 * PAYMENT
        assert balances["user"] == DEFAULT_FUNDING - 2 * PAYMENT
        # The audit log attributes each verdict to the shards it touched.
        last_two = obs_audit.AUDIT_LOG.records()[-2:]
        assert [r.verdict for r in last_two] == ["refunded", "paid"]
        assert victim in last_two[0].extra["shards"]
        assert victim not in last_two[1].extra["shards"]

    def test_tampering_shard_caught_honest_shards_paid(self, tparams, owner_factory):
        system, victim = self.build_tier_cell(tparams, owner_factory)
        frontend = system.cloud
        honest_bytes = wire.dump_response(
            system.search(self.AFFECTED, payment=PAYMENT).response
        )

        # Compromise one shard in place: same state, tampering search path.
        evil = MaliciousCloud(
            tparams,
            system.owner.keys.trapdoor.public,
            Misbehavior.TAMPER_ENTRY,
            default_rng(11),
        )
        evil.restore(frontend.snapshot_shard(victim))
        frontend.shard_servers[victim] = evil

        tampered = system.search(self.AFFECTED, payment=PAYMENT)
        assert tampered.settled and not tampered.verified
        assert wire.dump_response(tampered.response) != honest_bytes
        paid = system.search(self.SPARED, payment=PAYMENT)
        assert paid.settled and paid.verified

        balances = system.balances()
        assert balances["cloud"] == DEFAULT_FUNDING + 2 * PAYMENT
        assert balances["user"] == DEFAULT_FUNDING - 2 * PAYMENT

    def test_recovered_shard_rejoins_the_paid_column(self, tparams, owner_factory):
        system, victim = self.build_tier_cell(tparams, owner_factory)
        frontend = system.cloud
        snap = frontend.snapshot_shard(victim)
        frontend.kill_shard(victim)
        assert not system.search(self.AFFECTED, payment=PAYMENT).verified
        frontend.restore_shard(victim, snap)
        recovered = system.search(self.AFFECTED, payment=PAYMENT)
        assert recovered.verified, "a restored shard must settle paid again"
