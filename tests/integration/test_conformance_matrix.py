"""Adversarial conformance matrix: Misbehavior × query shape × fault profile.

The headline chaos claim, asserted cell by cell:

* an **honest** cloud always settles **paid**, under every fault profile;
* a response that differs from what an honest cloud would have sent is
  always **refunded** — and one that is byte-identical to honest output is
  paid, even if produced by a "malicious" cloud whose tampering happened to
  be a no-op (dropping from an empty result, omitting epochs that don't
  exist yet, ``STALE_WITNESS``'s honest fallback);
* **no fault profile flips either outcome** — drops, duplicates, bit rot,
  reordering and cloud crashes change how many retries a search needs,
  never who gets the escrow.

The expected verdict is not hand-coded per cell: every outcome is compared
against an *honest twin* — a fresh ``CloudServer`` restored from the
(actual, possibly malicious) cloud's state snapshot — which makes the
oracle exact for no-op tampering without enumerating the no-op cases.
"""

import pytest

from repro.blockchain.slicer_contract import response_to_chain_args, tokens_digest_input
from repro.chaos import ChaosTransport, FaultPlan, FaultProfile, profile_named
from repro.common import perfstats
from repro.common.rng import default_rng
from repro.core import wire
from repro.core.cloud import CloudServer, MaliciousCloud, Misbehavior
from repro.core.query import Query
from repro.core.records import make_database
from repro.core.user import RangeQuery
from repro.system import DEFAULT_FUNDING, SlicerSystem

PAYMENT = 5000
VALUES = [7, 7, 9, 40, 41, 64, 3, 200]
#: Inserted after setup so the queried keywords gain a second epoch —
#: without this, OMIT_OLD_EPOCHS would be a no-op in every cell.
EXTRA = [7, 41]

BEHAVIORS = [None, *Misbehavior]  # None = honest
PROFILE_NAMES = ["clean", "lossy", "crash_restart"]

#: shape name -> callable running it; returns the per-side outcomes.
SHAPES = [
    ("eq", lambda s: [s.search(Query.parse(7, "="), payment=PAYMENT)]),
    ("one_sided", lambda s: [s.search(Query.parse(40, ">"), payment=PAYMENT)]),
    ("range", lambda s: s.range_search(RangeQuery(5, 64), payment=PAYMENT).sides),
    ("empty", lambda s: [s.search(Query.parse(101, "="), payment=PAYMENT)]),
]

#: Tampering that is *guaranteed* non-trivial on the post-insert ``eq``
#: shape (non-empty results, two epochs) — these cells must refund.
EFFECTIVE_ON_EQ = {
    Misbehavior.DROP_ENTRY,
    Misbehavior.INJECT_ENTRY,
    Misbehavior.TAMPER_ENTRY,
    Misbehavior.OMIT_OLD_EPOCHS,
    Misbehavior.FORGE_WITNESS,
    Misbehavior.EMPTY_RESULT,
}


def database(values, start=0):
    return make_database(
        [(f"rec-{start + i}", v) for i, v in enumerate(values)], bits=8
    )


def build_cell(tparams, owner_factory, behavior, profile, chaos_seed=17):
    owner = owner_factory(tparams, seed=7)
    transport = ChaosTransport(FaultPlan(profile, seed=chaos_seed))
    system = SlicerSystem(
        tparams, rng=default_rng(7), owner=owner, transport=transport
    )
    if behavior is not None:
        system.cloud = MaliciousCloud(
            tparams, owner.keys.trapdoor.public, behavior, default_rng(11)
        )
    system.setup(database(VALUES))
    system.insert(database(EXTRA, start=100))
    return system


def honest_twin(system) -> CloudServer:
    """An honest cloud rebuilt from the actual cloud's state snapshot."""
    twin = CloudServer(system.params, system.owner.keys.trapdoor.public)
    twin.restore(system.cloud.snapshot())
    return twin


class TestConformanceMatrix:
    @pytest.mark.parametrize(
        "behavior", BEHAVIORS, ids=lambda b: "honest" if b is None else b.value
    )
    def test_matrix_cell(self, tparams, owner_factory, behavior):
        verdicts_by_profile = {}
        for profile_name in PROFILE_NAMES:
            perfstats.reset()
            system = build_cell(
                tparams, owner_factory, behavior, profile_named(profile_name)
            )
            twin = honest_twin(system)
            verdicts = {}
            expected_cloud_gain = 0
            for shape_name, run_shape in SHAPES:
                sides = run_shape(system)
                for outcome in sides:
                    # Liveness: bounded fault streaks + the retry budget mean
                    # every search settles — no degraded outcomes, ever.
                    assert outcome.error is None, (shape_name, outcome.error)
                    assert outcome.settled
                    # The fairness oracle: paid iff byte-identical to honest.
                    honest_bytes = wire.dump_response(twin.search(outcome.tokens))
                    got_bytes = wire.dump_response(outcome.response)
                    assert outcome.verified == (got_bytes == honest_bytes), (
                        behavior, shape_name, profile_name,
                    )
                    if outcome.verified:
                        expected_cloud_gain += PAYMENT
                verdicts[shape_name] = tuple(o.verified for o in sides)

            # The escrow moved money for exactly the paid cells: duplicates
            # were deduplicated, refunds returned the full payment.
            balances = system.balances()
            assert balances["cloud"] == DEFAULT_FUNDING + expected_cloud_gain
            assert balances["user"] == DEFAULT_FUNDING - expected_cloud_gain
            assert perfstats.get("retry.gave_up") == 0
            verdicts_by_profile[profile_name] = verdicts

        # No fault profile flips any outcome.
        clean = verdicts_by_profile["clean"]
        for profile_name in PROFILE_NAMES[1:]:
            assert verdicts_by_profile[profile_name] == clean, profile_name

        if behavior is None:
            # Honest cloud: paid in every cell of every profile.
            assert all(all(v) for v in clean.values())
        elif behavior in EFFECTIVE_ON_EQ:
            # Non-trivial tampering on a non-empty, two-epoch result: refund.
            assert clean["eq"] == (False,)

    def test_faults_were_actually_injected(self, tparams, owner_factory):
        """Guards the matrix against vacuity: lossy cells really see faults."""
        perfstats.reset()
        system = build_cell(
            tparams, owner_factory, None, profile_named("lossy"), chaos_seed=17
        )
        for _, run_shape in SHAPES:
            run_shape(system)
        injected = sum(
            v for k, v in perfstats.snapshot().items()
            if k.startswith("chaos.injected.")
        )
        assert injected > 0
        assert perfstats.get("retry.attempts") > 0


class TestWarmCacheColumn:
    """The epoch-suffix entry cache adds a warm column to the matrix: every
    shape runs twice on the same system, and the verdicts must be identical
    cold and warm — a cached walk changes what the cloud *computes*, never
    what the verifier *accepts*.  In particular OMIT_OLD_EPOCHS (whose
    truncated walk bypasses the cache) and TAMPER_ENTRY are caught the same
    way when the honest base response came out of the cache."""

    WARM_BEHAVIORS = [None, Misbehavior.OMIT_OLD_EPOCHS, Misbehavior.TAMPER_ENTRY]

    @pytest.mark.parametrize(
        "behavior",
        WARM_BEHAVIORS,
        ids=lambda b: "honest" if b is None else b.value,
    )
    def test_verdicts_identical_cold_and_warm(
        self, tparams, owner_factory, behavior, monkeypatch
    ):
        from repro.crypto import kernels

        monkeypatch.setenv(kernels.KERNELS_ENV, "1")
        kernels.clear_caches()
        system = build_cell(tparams, owner_factory, behavior, profile_named("clean"))
        runs = []
        for leg in ("cold", "warm"):
            perfstats.reset("cloud.entry_cache.")
            verdicts = {}
            for shape_name, run_shape in SHAPES:
                sides = run_shape(system)
                assert all(o.settled and o.error is None for o in sides)
                verdicts[shape_name] = tuple(o.verified for o in sides)
            runs.append(verdicts)
            if leg == "warm":
                # The warm leg really was warm: repeats hit the cache.
                assert perfstats.get("cloud.entry_cache.hit") > 0
        assert runs[0] == runs[1], behavior
        if behavior is None:
            assert all(all(v) for v in runs[0].values())
        else:
            assert runs[0]["eq"] == (False,)  # tampering caught, both legs


class TestCrashRecoveryInMatrix:
    def test_forced_crashes_rebuild_witness_cache_and_still_pay(
        self, tparams, owner_factory
    ):
        """Every delivery crashes the cloud once; restarts restore the
        snapshot and rebuild the precomputed witness cache, and the search
        still settles paid."""
        profile = FaultProfile(name="forced-crash", crash=1000, force_clean_after=1)
        perfstats.reset()
        system = build_cell(tparams, owner_factory, None, profile)
        system.cloud.precompute_witnesses()
        system._cloud_snapshot = system.cloud.snapshot()
        outcome = system.search(Query.parse(7, "="), payment=PAYMENT)
        assert outcome.verified
        assert perfstats.get("chaos.cloud_restarts") > 0
        # The restart path rebuilt the cache (restore drops it first).
        assert system.cloud._witness_cache is not None
        assert outcome.attempts > 2

    def test_crash_between_install_and_ads_update(self, tparams, owner_factory):
        """A cloud that crashes during an insert restarts into the freshly
        installed state (the snapshot is taken atomically with the install),
        so post-insert searches verify against the new on-chain digest."""
        profile = profile_named("crash_restart")
        system = build_cell(tparams, owner_factory, None, profile, chaos_seed=23)
        for extra_seed in range(3):  # several inserts, several crash windows
            system.insert(database([50 + extra_seed], start=200 + extra_seed))
            outcome = system.search(Query.parse(50 + extra_seed, "="), payment=PAYMENT)
            assert outcome.verified
            assert len(outcome.record_ids) == 1


class TestConcurrentInsertAndSearch:
    """Insert lands between submit and settle — the interleaving cell."""

    def _submit(self, system, tokens):
        receipt = system.chain.call(
            system.user_address,
            system.contract,
            "submit_query",
            (tokens_digest_input(tokens),),
            value=PAYMENT,
        )
        assert receipt.status
        return receipt.return_value

    def _settle(self, system, query_id, tokens):
        response = system.cloud.search(tokens)
        receipt = system.chain.call(
            system.cloud_address,
            system.contract,
            "verify_and_settle",
            (query_id, system.cloud.ads_value, response_to_chain_args(response)),
        )
        assert receipt.status
        return receipt, response

    def test_unrelated_insert_between_submit_and_settle_pays(
        self, tparams, owner_factory
    ):
        system = build_cell(tparams, owner_factory, None, profile_named("lossy"))
        tokens = system.user.make_tokens(Query.parse(7, "="))
        query_id = self._submit(system, tokens)
        system.insert(database([99], start=300))  # untouched keyword
        receipt, _ = self._settle(system, query_id, tokens)
        assert receipt.return_value is True
        assert system.balances()["cloud"] == DEFAULT_FUNDING + PAYMENT

    def test_related_insert_serves_snapshot_of_submission_epoch(
        self, tparams, owner_factory
    ):
        """Tokens fix the epoch they were generated at: a concurrent insert
        to the same keyword doesn't break settlement, and the result is the
        complete pre-insert snapshot — the freshness anchor is the *user's*
        refreshed token, not the settle-time state."""
        system = build_cell(tparams, owner_factory, None, profile_named("lossy"))
        baseline = system.search(Query.parse(7, "="), payment=PAYMENT)
        assert baseline.verified

        tokens = system.user.make_tokens(Query.parse(7, "="))
        query_id = self._submit(system, tokens)
        system.insert(database([7], start=400))  # same keyword, new epoch
        receipt, response = self._settle(system, query_id, tokens)
        assert receipt.return_value is True
        stale_ids = system.user.decrypt_results(response)
        assert stale_ids == baseline.record_ids  # the pre-insert snapshot

        # A refreshed query sees the new record too.
        fresh = system.search(Query.parse(7, "="), payment=PAYMENT)
        assert fresh.verified
        assert len(fresh.record_ids) == len(stale_ids) + 1


class TestShardFaultCells:
    """The sharded serving tier's column of the matrix: one bad shard (dead
    or tampering) is caught and refunded for exactly the queries routed to
    it, while queries served entirely by honest live shards still settle
    paid — a compromised shard cannot poison the rest of the tier's
    settlements."""

    AFFECTED = Query.parse(7, "=")   # routes to the victim shard
    SPARED = Query.parse(200, "=")   # routes elsewhere (asserted per cell)

    def build_tier_cell(self, tparams, owner_factory, profile_name="lossy"):
        from repro.sharding.plan import equality_route

        owner = owner_factory(tparams, seed=7)
        transport = ChaosTransport(FaultPlan(profile_named(profile_name), seed=17))
        system = SlicerSystem(
            tparams, rng=default_rng(7), owner=owner, transport=transport, shards=4
        )
        system.setup(database(VALUES))
        system.insert(database(EXTRA, start=100))
        route = equality_route(owner.keys.prf_key, tparams.value_bits, system.cloud.plan)
        victim = route(self.AFFECTED)
        assert route(self.SPARED) != victim, "fixture queries must split shards"
        return system, victim

    def test_dead_shard_refunds_only_its_queries(self, tparams, owner_factory):
        from repro.obs import audit as obs_audit

        system, victim = self.build_tier_cell(tparams, owner_factory)
        baseline = system.search(self.AFFECTED, payment=PAYMENT)
        assert baseline.verified, "pre-fault tier must settle paid"

        system.cloud.kill_shard(victim)
        refunded = system.search(self.AFFECTED, payment=PAYMENT)
        assert refunded.settled and not refunded.verified
        assert refunded.record_ids == set()
        paid = system.search(self.SPARED, payment=PAYMENT)
        assert paid.settled and paid.verified

        # Escrow moved money for exactly the paid searches.
        balances = system.balances()
        assert balances["cloud"] == DEFAULT_FUNDING + 2 * PAYMENT
        assert balances["user"] == DEFAULT_FUNDING - 2 * PAYMENT
        # The audit log attributes each verdict to the shards it touched.
        last_two = obs_audit.AUDIT_LOG.records()[-2:]
        assert [r.verdict for r in last_two] == ["refunded", "paid"]
        assert victim in last_two[0].extra["shards"]
        assert victim not in last_two[1].extra["shards"]

    def test_tampering_shard_caught_honest_shards_paid(self, tparams, owner_factory):
        system, victim = self.build_tier_cell(tparams, owner_factory)
        frontend = system.cloud
        honest_bytes = wire.dump_response(
            system.search(self.AFFECTED, payment=PAYMENT).response
        )

        # Compromise one shard in place: same state, tampering search path.
        evil = MaliciousCloud(
            tparams,
            system.owner.keys.trapdoor.public,
            Misbehavior.TAMPER_ENTRY,
            default_rng(11),
        )
        evil.restore(frontend.snapshot_shard(victim))
        frontend.shard_servers[victim] = evil

        tampered = system.search(self.AFFECTED, payment=PAYMENT)
        assert tampered.settled and not tampered.verified
        assert wire.dump_response(tampered.response) != honest_bytes
        paid = system.search(self.SPARED, payment=PAYMENT)
        assert paid.settled and paid.verified

        balances = system.balances()
        assert balances["cloud"] == DEFAULT_FUNDING + 2 * PAYMENT
        assert balances["user"] == DEFAULT_FUNDING - 2 * PAYMENT

    def test_recovered_shard_rejoins_the_paid_column(self, tparams, owner_factory):
        system, victim = self.build_tier_cell(tparams, owner_factory)
        frontend = system.cloud
        snap = frontend.snapshot_shard(victim)
        frontend.kill_shard(victim)
        assert not system.search(self.AFFECTED, payment=PAYMENT).verified
        frontend.restore_shard(victim, snap)
        recovered = system.search(self.AFFECTED, payment=PAYMENT)
        assert recovered.verified, "a restored shard must settle paid again"


class TestBlockSettlementCells:
    """Block settlement's column of the matrix: reorgs, late settlement,
    duplicate re-submission, malicious clouds — none of it moves a verdict
    or an escrowed coin relative to the synchronous reference.

    Chain faults act *below* the protocol (on when blocks carry what), so
    the oracle is double: every outcome must match the honest twin byte-
    oracle AND the verdict the synchronous cell produced for the same seed.
    """

    CHAIN_PROFILES = ["stable", "reorgy", "congested"]

    def build_block_cell(
        self, tparams, owner_factory, behavior, chain_profile, chaos_seed=17
    ):
        from repro.chaos import ChainFaultPlan, chain_profile_named

        owner = owner_factory(tparams, seed=7)
        transport = ChaosTransport(FaultPlan(profile_named("lossy"), seed=chaos_seed))
        system = SlicerSystem(
            tparams,
            rng=default_rng(7),
            owner=owner,
            transport=transport,
            settlement_mode="block",
            chain_faults=ChainFaultPlan(
                chain_profile_named(chain_profile), seed=chaos_seed
            ),
        )
        if behavior is not None:
            system.cloud = MaliciousCloud(
                tparams, owner.keys.trapdoor.public, behavior, default_rng(11)
            )
        system.setup(database(VALUES))
        system.insert(database(EXTRA, start=100))
        return system

    def run_shapes(self, system, twin=None):
        verdicts = {}
        expected_cloud_gain = 0
        for shape_name, run_shape in SHAPES:
            sides = run_shape(system)
            for outcome in sides:
                assert outcome.error is None, (shape_name, outcome.error)
                assert outcome.settled
                if twin is not None:
                    honest_bytes = wire.dump_response(twin.search(outcome.tokens))
                    assert outcome.verified == (
                        wire.dump_response(outcome.response) == honest_bytes
                    ), shape_name
                expected_cloud_gain += PAYMENT if outcome.verified else 0
            verdicts[shape_name] = tuple(o.verified for o in sides)
        return verdicts, expected_cloud_gain

    @pytest.mark.parametrize(
        "behavior",
        [None, Misbehavior.TAMPER_ENTRY, Misbehavior.FORGE_WITNESS],
        ids=lambda b: "honest" if b is None else b.value,
    )
    def test_chain_faults_never_flip_a_verdict(
        self, tparams, owner_factory, behavior
    ):
        # The synchronous reference cell for the same seeds.
        sync_system = build_cell(
            tparams, owner_factory, behavior, profile_named("lossy")
        )
        sync_verdicts, _ = self.run_shapes(sync_system)
        sync_balances = sync_system.balances()

        for chain_profile in self.CHAIN_PROFILES:
            perfstats.reset()
            system = self.build_block_cell(
                tparams, owner_factory, behavior, chain_profile
            )
            # Oracle 1 (inside run_shapes): paid iff byte-identical to the
            # honest twin.
            twin = honest_twin(system)
            verdicts, expected_cloud_gain = self.run_shapes(system, twin=twin)
            # Oracle 2: the sync cell saw the same verdicts.
            assert verdicts == sync_verdicts, (behavior, chain_profile)

            # Exact escrow arithmetic: funds moved for paid cells only, and
            # no reorg or delay leaked a single escrowed coin.
            balances = system.balances()
            assert balances["cloud"] == DEFAULT_FUNDING + expected_cloud_gain
            assert balances["user"] == DEFAULT_FUNDING - expected_cloud_gain
            assert balances == sync_balances, (behavior, chain_profile)
            assert perfstats.get("retry.gave_up") == 0
            system.chain.verify_integrity()

    def test_malicious_cloud_refunded_and_refund_is_provable(
        self, tparams, owner_factory
    ):
        """MaliciousCloud x block settlement: the refund verdict itself is
        anchored in the settlement root — the user can prove they were
        refunded from a header, without replaying the chain."""
        from repro.blockchain import follow

        system = self.build_block_cell(
            tparams, owner_factory, Misbehavior.TAMPER_ENTRY, "reorgy"
        )
        twin = honest_twin(system)
        outcome = system.search(Query.parse(7, "="), payment=PAYMENT)
        honest_bytes = wire.dump_response(twin.search(outcome.tokens))
        assert wire.dump_response(outcome.response) != honest_bytes
        assert outcome.settled and not outcome.verified
        assert outcome.settle_height is not None

        proof = system.settlement_proof(outcome)
        assert proof.verified == b"\x00"
        assert follow(system.chain).check_settlement(proof)
        assert system.balances()["user"] == DEFAULT_FUNDING

    def test_reorg_depths_one_and_two_fire_and_preserve_outcomes(
        self, tparams, owner_factory
    ):
        """Both reorg depths actually occur, replay receipts match, and the
        sealed chain stays internally consistent."""
        from repro.chaos import ChainFaultPlan, ChainFaultProfile

        owner = owner_factory(tparams, seed=7)
        profile = ChainFaultProfile(
            name="churn", reorg=700, reorg_depth_max=2, force_clean_after=2
        )
        system = SlicerSystem(
            tparams,
            rng=default_rng(7),
            owner=owner,
            settlement_mode="block",
            chain_faults=ChainFaultPlan(profile, seed=29),
        )
        system.setup(database(VALUES))
        depths = set()
        for value in (7, 40, 41, 64, 3, 200, 9):
            outcome = system.search(Query.parse(value, "="), payment=PAYMENT)
            assert outcome.settled and outcome.verified
            depths = {
                severity
                for _, leg, out in system.builder.fault_plan.history
                if leg == "reorg" and ":" in out
                for severity in [int(out.split(":")[1])]
            }
        assert {1, 2} <= depths, f"both depths must fire, saw {depths}"
        assert system.builder.reorgs >= 2
        system.chain.verify_integrity()
        paid = 7 * PAYMENT
        assert system.balances()["cloud"] == DEFAULT_FUNDING + paid

    def test_settlement_delayed_past_blocks_lands_late_not_lost(
        self, tparams, owner_factory
    ):
        """Every settlement is held back: it lands d blocks late, the block
        gap is observable, and the verdict + escrow are untouched."""
        from repro.chaos import ChainFaultPlan, ChainFaultProfile

        owner = owner_factory(tparams, seed=7)
        profile = ChainFaultProfile(
            name="always-late",
            delay=1000,
            delay_blocks_max=3,
            force_clean_after=10**6,
        )
        system = SlicerSystem(
            tparams,
            rng=default_rng(7),
            owner=owner,
            settlement_mode="block",
            chain_faults=ChainFaultPlan(profile, seed=31),
        )
        system.setup(database(VALUES))
        submit_height = system.chain.height
        outcome = system.search(Query.parse(7, "="), payment=PAYMENT)
        assert outcome.verified
        assert outcome.settle_height is not None
        # Held past at least one extra sealed block boundary.
        assert outcome.settle_height > submit_height
        assert perfstats.get("chaos.chain.delayed") >= 1
        assert perfstats.get("chaos.chain.delay_blocks") >= 1
        assert system.balances()["cloud"] == DEFAULT_FUNDING + PAYMENT

    def test_duplicate_resubmission_of_settled_escrow_rejected(
        self, tparams, owner_factory
    ):
        """Re-staging an already-settled settlement id is permanently
        rejected by the mempool — the double-settle the escrow state machine
        would also catch never even reaches the chain."""
        from repro.common.errors import MempoolError

        owner = owner_factory(tparams, seed=7)
        system = SlicerSystem(
            tparams, rng=default_rng(7), owner=owner, settlement_mode="block"
        )
        system.setup(database(VALUES))
        outcome = system.search(Query.parse(7, "="), payment=PAYMENT)
        assert outcome.verified
        settled_ids = [
            tx_id for tx_id in system.builder.receipts if tx_id is not None
        ]
        tx_id = settled_ids[-1]
        with pytest.raises(MempoolError):
            system.mempool.stage(
                system.cloud_address,
                system.contract,
                "verify_and_settle",
                (outcome.query_id, system.cloud.ads_value, ()),
                gas_limit=system.settle_gas_limit,
                tx_id=tx_id,
            )
        assert perfstats.get("mempool.rejected.duplicate") >= 1
        # The escrow stayed settled exactly once.
        assert system.balances()["cloud"] == DEFAULT_FUNDING + PAYMENT
