"""SlicerSystem edge paths not covered by the happy-flow suites."""

import pytest

from repro.common.errors import StateError
from repro.common.rng import default_rng
from repro.core.query import Query
from repro.core.records import Database, make_database
from repro.system import RangeOutcome, SlicerSystem
from repro.core.user import RangeQuery


class TestLifecycleGuards:
    def test_insert_before_setup_rejected(self, tparams):
        system = SlicerSystem(tparams, rng=default_rng(231))
        add = Database(8)
        add.add("a", 1)
        with pytest.raises(StateError):
            system.insert(add)

    def test_double_setup_rejected(self, tparams):
        system = SlicerSystem(tparams, rng=default_rng(232))
        db = make_database([("a", 1)], bits=8)
        system.setup(db)
        with pytest.raises(StateError):
            system.setup(db)


class TestRangeOutcome:
    def test_empty_outcome(self):
        outcome = RangeOutcome([])
        assert outcome.verified
        assert outcome.record_ids == set()

    def test_point_range_on_chain(self, tparams):
        system = SlicerSystem(tparams, rng=default_rng(233))
        system.setup(make_database([("a", 7), ("b", 9)], bits=8))
        outcome = system.range_search(RangeQuery(7, 7))
        assert outcome.verified
        assert len(outcome.record_ids) == 1

    def test_edge_touching_range(self, tparams):
        system = SlicerSystem(tparams, rng=default_rng(234))
        system.setup(make_database([("a", 0), ("b", 9), ("c", 255)], bits=8))
        low = system.range_search(RangeQuery(0, 10))
        assert low.verified and len(low.record_ids) == 2
        high = system.range_search(RangeQuery(100, 255))
        assert high.verified and len(high.record_ids) == 1


class TestEmptyResultSearch:
    def test_no_match_query_settles_and_pays(self, tparams):
        """An honestly-empty answer is still a paid, verified service."""
        system = SlicerSystem(tparams, rng=default_rng(235))
        system.setup(make_database([("a", 7)], bits=8))
        cloud0 = system.chain.balance(system.cloud_address)
        outcome = system.search(Query.parse(200, "="), payment=50)
        assert outcome.verified
        assert outcome.record_ids == set()
        assert system.chain.balance(system.cloud_address) == cloud0 + 50

    def test_search_on_empty_database(self, tparams):
        system = SlicerSystem(tparams, rng=default_rng(236))
        system.setup(Database(8))
        outcome = system.search(Query.parse(100, ">"))
        assert outcome.verified
        assert outcome.record_ids == set()
