"""Data freshness: users are convinced results reflect the newest data,
without the owner being online (the on-chain digest is the anchor)."""

import pytest

from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.query import Query
from repro.core.records import Database, encode_record_id, make_database
from repro.core.state import CloudPackage
from repro.core.verify import verify_response
from repro.system import SlicerSystem


@pytest.fixture()
def system(tparams):
    s = SlicerSystem(tparams, rng=default_rng(131))
    s.setup(make_database([("a", 7), ("b", 9)], bits=8))
    return s


class TestFreshness:
    def test_results_reflect_latest_insert(self, system):
        add = Database(8)
        add.add("c", 7)
        system.insert(add)
        outcome = system.search(Query.parse(7, "="))
        assert outcome.verified
        assert encode_record_id("c") in outcome.record_ids

    def test_lazy_cloud_serving_old_index_fails(self, system, tparams):
        """A cloud that skipped installing the latest update package cannot
        settle: its results hash to a prime that matches only the *old* Ac,
        while the contract pins the new digest."""
        # Clone the cloud state before the insert (same package replay an
        # out-of-date replica would install).
        lazy = CloudServer(tparams, system.owner.keys.trapdoor.public)
        lazy.install(
            CloudPackage(
                system.cloud.index, list(system.cloud._primes), system.cloud.ads_value
            )
        )

        add = Database(8)
        add.add("c", 7)
        system.insert(add)  # chain digest moves on; `lazy` misses the package

        tokens = system.user.make_tokens(Query.parse(7, "="))
        # The fresh token's epoch-1 trapdoor finds nothing new at the lazy
        # cloud, so its response is incomplete; verification against the NEW
        # on-chain Ac fails.
        response = lazy.search(tokens)
        report = verify_response(tparams, system.cloud.ads_value, response)
        assert not report.ok

    def test_verification_against_current_ads_passes(self, system, tparams):
        add = Database(8)
        add.add("c", 9)
        system.insert(add)
        tokens = system.user.make_tokens(Query.parse(9, "="))
        response = system.cloud.search(tokens)
        assert verify_response(tparams, system.cloud.ads_value, response).ok

    def test_owner_offline_after_setup(self, system):
        """Verification needs only chain state: no owner interaction."""
        outcome = system.search(Query.parse(7, "="))
        assert outcome.verified
        # The assertion is structural: SlicerContract.verify_and_settle takes
        # tokens/results/VOs and reads the stored digest; the owner address
        # only appears in update_ads.
