"""Full-system integration: the Fig. 1 workflow against the plaintext oracle."""

import pytest

from repro.common.rng import default_rng
from repro.core.query import Query
from repro.core.records import Database, make_database
from repro.core.user import RangeQuery
from repro.system import SlicerSystem
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec


@pytest.fixture(scope="module")
def system(tparams):
    s = SlicerSystem(tparams, rng=default_rng(111))
    gen = WorkloadGenerator(default_rng(7))
    db = gen.database(WorkloadSpec(60, 8))
    s.setup(db)
    s._oracle = db  # stashed for assertions
    return s


class TestSearchMatchesOracle:
    @pytest.mark.parametrize(
        "value,symbol",
        [(100, ">"), (100, "<"), (0, "<"), (255, ">"), (17, "="), (0, "=")],
    )
    def test_queries(self, system, value, symbol):
        query = Query.parse(value, symbol)
        outcome = system.search(query)
        assert outcome.verified
        assert outcome.record_ids == system._oracle.ids_matching(query.predicate())

    def test_range_search(self, system):
        outcome = system.range_search(RangeQuery(60, 180))
        assert outcome.verified
        assert outcome.record_ids == system._oracle.ids_matching(lambda v: 60 <= v <= 180)


class TestLifecycle:
    def test_insert_then_search(self, tparams):
        s = SlicerSystem(tparams, rng=default_rng(112))
        db = make_database([("a", 10), ("b", 200)], bits=8)
        s.setup(db)
        add = Database(8)
        add.add("c", 15)
        add.add("d", 10)
        s.insert(add)
        outcome = s.search(Query.parse(20, ">"))
        assert outcome.verified
        from repro.core.records import encode_record_id

        assert outcome.record_ids == {
            encode_record_id(x) for x in ["a", "c", "d"]
        }

    def test_chain_height_grows(self, system):
        before = system.chain.height
        system.search(Query.parse(42, "="))
        assert system.chain.height == before + 1
        assert system.chain.verify_integrity()

    def test_setup_required(self, tparams):
        from repro.common.errors import StateError

        s = SlicerSystem(tparams, rng=default_rng(113))
        with pytest.raises(StateError):
            s.search(Query.parse(1, "="))

    def test_balances_conserved(self, system):
        """Every search settles fully: no value stuck in the contract."""
        system.search(Query.parse(77, ">"))
        balances = system.balances()
        total = sum(balances.values()) + system.chain.balance(system.contract.address)
        assert system.chain.balance(system.contract.address) == 0
        assert total == 3 * 10**9
