"""RSA accumulator: membership algebra, witnesses, forgery resistance."""

import pytest

from repro.common.errors import AccumulatorError, ParameterError
from repro.common.rng import default_rng
from repro.crypto.accumulator import (
    Accumulator,
    AccumulatorParams,
    MembershipWitness,
    verify_membership,
    verify_membership_batch,
    verify_nonmembership,
)
from repro.crypto.hash_to_prime import HashToPrime


@pytest.fixture(scope="module")
def params():
    return AccumulatorParams.demo(512)


@pytest.fixture(scope="module")
def primes():
    h = HashToPrime(64)
    return [h(i.to_bytes(4, "big")) for i in range(12)]


class TestSetup:
    def test_demo_params_factor(self, params):
        assert params.p * params.q == params.modulus
        assert params.has_trapdoor

    def test_public_strips_trapdoor(self, params):
        pub = params.public()
        assert not pub.has_trapdoor
        with pytest.raises(AccumulatorError):
            pub.phi()

    def test_generator_is_quadratic_residue(self, params):
        from repro.crypto.modmath import is_quadratic_residue

        assert is_quadratic_residue(params.generator % params.p, params.p)
        assert is_quadratic_residue(params.generator % params.q, params.q)

    def test_generate_small(self):
        fresh = AccumulatorParams.generate(64, default_rng(3))
        assert fresh.modulus.bit_length() in (63, 64)
        assert fresh.has_trapdoor

    def test_demo_unknown_size(self):
        with pytest.raises(ParameterError):
            AccumulatorParams.demo(768)

    @pytest.mark.parametrize("bits", [512, 1024, 2048])
    def test_demo_primes_are_safe_primes(self, bits):
        """The committed demo constants really are safe primes of the
        advertised size (guards against typos in the hex literals)."""
        from repro.crypto.primes import is_prime

        demo = AccumulatorParams.demo(bits)
        for p in (demo.p, demo.q):
            assert p is not None
            assert p.bit_length() == bits // 2
            assert is_prime(p, default_rng(1), rounds=8)
            assert is_prime((p - 1) // 2, default_rng(2), rounds=8)


class TestAccumulation:
    def test_add_order_independent(self, params, primes):
        a = Accumulator(params)
        a.add_many(primes)
        b = Accumulator(params)
        for p in reversed(primes):
            b.add(p)
        assert a.value == b.value

    def test_add_idempotent(self, params, primes):
        a = Accumulator(params, primes)
        before = a.value
        a.add(primes[0])
        assert a.value == before

    def test_rejects_composites(self, params):
        with pytest.raises(AccumulatorError):
            Accumulator(params).add(100)

    def test_trapdoorless_matches_trapdoor(self, params, primes):
        with_td = Accumulator(params, primes)
        without = Accumulator(params.public(), primes)
        assert with_td.value == without.value

    def test_remove(self, params, primes):
        acc = Accumulator(params, primes)
        acc.remove(primes[3])
        expected = Accumulator(params, [p for p in primes if p != primes[3]])
        assert acc.value == expected.value

    def test_remove_public_params(self, params, primes):
        acc = Accumulator(params.public(), primes[:5])
        acc.remove(primes[0])
        assert acc.value == Accumulator(params.public(), primes[1:5]).value

    def test_remove_absent_rejected(self, params, primes):
        with pytest.raises(AccumulatorError):
            Accumulator(params, primes[:3]).remove(primes[5])


class TestMembershipWitness:
    def test_witness_verifies(self, params, primes):
        acc = Accumulator(params.public(), primes)
        for x in primes[:4]:
            assert verify_membership(params, acc.value, x, acc.witness(x))

    def test_witness_for_absent_rejected(self, params, primes):
        acc = Accumulator(params, primes[:4])
        with pytest.raises(AccumulatorError):
            acc.witness(primes[7])

    def test_wrong_element_fails(self, params, primes):
        acc = Accumulator(params, primes)
        w = acc.witness(primes[0])
        assert not verify_membership(params, acc.value, primes[1], w)

    def test_forged_witness_fails(self, params, primes):
        acc = Accumulator(params, primes)
        forged = MembershipWitness(acc.witness(primes[0]).value + 1)
        assert not verify_membership(params, acc.value, primes[0], forged)

    def test_stale_accumulator_fails(self, params, primes):
        acc = Accumulator(params, primes[:5])
        w = acc.witness(primes[0])
        acc.add(primes[9])  # accumulator moves on
        assert not verify_membership(params, acc.value, primes[0], w)

    def test_witness_all_matches_individual(self, params, primes):
        acc = Accumulator(params.public(), primes[:7])
        batch = acc.witness_all()
        assert set(batch) == set(primes[:7])
        for x, w in batch.items():
            assert w.value == acc.witness(x).value

    def test_witness_all_empty(self, params):
        assert Accumulator(params).witness_all() == {}

    def test_witness_bytes_constant_size(self, params, primes):
        acc = Accumulator(params, primes)
        width = (params.modulus.bit_length() + 7) // 8
        assert len(acc.witness(primes[0]).to_bytes(params)) == width


class TestNonMembership:
    def test_nonmembership_verifies(self, params, primes):
        acc = Accumulator(params, primes[:6])
        w = acc.nonmembership_witness(primes[8])
        assert verify_nonmembership(params, acc.value, primes[8], w)

    def test_nonmembership_for_member_rejected(self, params, primes):
        acc = Accumulator(params, primes[:6])
        with pytest.raises(AccumulatorError):
            acc.nonmembership_witness(primes[0])

    def test_nonmembership_wrong_element_fails(self, params, primes):
        acc = Accumulator(params, primes[:6])
        w = acc.nonmembership_witness(primes[8])
        assert not verify_nonmembership(params, acc.value, primes[9], w)


class TestVerifyMembershipBatch:
    def _deploy(self, params, primes):
        acc = Accumulator(params.public(), primes)
        witnesses = {p: acc.witness(p) for p in primes}
        return acc.value, [(p, witnesses[p]) for p in primes]

    def test_default_matches_per_item_verdicts(self, params, primes):
        ac, items = self._deploy(params, primes)
        assert verify_membership_batch(params, ac, items) == [True] * len(items)
        items[3] = (items[3][0], MembershipWitness(items[3][1].value + 1))
        verdicts = verify_membership_batch(params, ac, items)
        assert verdicts == [
            verify_membership(params, ac, p, w) for p, w in items
        ]
        assert verdicts[3] is False and sum(verdicts) == len(items) - 1

    def test_default_rejects_even_sign_flips(self, params, primes):
        """The ±1 malleability attack a dishonest cloud can mount: negate an
        even number of witnesses.  Aggregate random-linear-combination checks
        accept such a batch, so the untrusted default must stay per-item and
        flag exactly the flipped entries."""
        n = params.modulus
        ac, items = self._deploy(params, primes)
        for i in (1, 4):
            prime, witness = items[i]
            items[i] = (prime, MembershipWitness(n - witness.value))
        verdicts = verify_membership_batch(params, ac, items)
        assert [i for i, ok in enumerate(verdicts) if not ok] == [1, 4]

    def test_trusted_fast_path_same_verdicts_on_honest_input(self, params, primes):
        ac, items = self._deploy(params, primes)
        assert verify_membership_batch(params, ac, items, trusted=True) == [
            True
        ] * len(items)

    def test_trusted_falls_back_per_item_on_reject(self, params, primes):
        ac, items = self._deploy(params, primes)
        items[0] = (items[0][0], MembershipWitness(items[0][1].value * 2 % params.modulus))
        verdicts = verify_membership_batch(params, ac, items, trusted=True)
        assert verdicts[0] is False and all(verdicts[1:])

    def test_empty_batch(self, params):
        assert verify_membership_batch(params, 1, []) == []
