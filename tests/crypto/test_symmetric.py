"""Record cipher: round trips, nonce handling, error paths."""

import pytest

from repro.common.errors import KeyError_, ParameterError
from repro.common.rng import default_rng
from repro.crypto.symmetric import KEY_LEN, NONCE_LEN, SymmetricCipher


@pytest.fixture()
def cipher():
    return SymmetricCipher(b"k" * KEY_LEN, default_rng(3))


class TestRoundTrip:
    def test_basic(self, cipher):
        for msg in [b"", b"a", b"record-id", b"\x00" * 64]:
            assert cipher.decrypt(cipher.encrypt(msg)) == msg

    def test_ciphertext_layout(self, cipher):
        ct = cipher.encrypt(b"abcdefgh")
        assert len(ct) == NONCE_LEN + 8

    def test_random_nonce_randomises(self, cipher):
        assert cipher.encrypt(b"same") != cipher.encrypt(b"same")

    def test_explicit_nonce_is_deterministic(self, cipher):
        nonce = b"\x01" * NONCE_LEN
        assert cipher.encrypt(b"same", nonce) == cipher.encrypt(b"same", nonce)

    def test_wrong_key_garbles(self):
        a = SymmetricCipher(b"a" * KEY_LEN, default_rng(1))
        b = SymmetricCipher(b"b" * KEY_LEN, default_rng(1))
        assert b.decrypt(a.encrypt(b"secret!")) != b"secret!"


class TestErrors:
    def test_bad_key_length(self):
        with pytest.raises(KeyError_):
            SymmetricCipher(b"short")

    def test_bad_nonce_length(self, cipher):
        with pytest.raises(ParameterError):
            cipher.encrypt(b"x", nonce=b"\x00")

    def test_truncated_ciphertext(self, cipher):
        with pytest.raises(ParameterError):
            cipher.decrypt(b"\x00" * (NONCE_LEN - 1))


def test_generate_draws_fresh_keys():
    rng = default_rng(9)
    assert SymmetricCipher.generate(rng).key != SymmetricCipher.generate(rng).key
