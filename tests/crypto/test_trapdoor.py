"""RSA trapdoor permutation: inversion, chain walking, one-wayness structure."""

import pytest

from repro.common.errors import KeyError_, ParameterError
from repro.common.rng import default_rng
from repro.crypto.trapdoor import TrapdoorKeyPair


@pytest.fixture(scope="module")
def keys():
    return TrapdoorKeyPair.generate(512, default_rng(11))


class TestPermutation:
    def test_round_trip(self, keys):
        t = keys.sample_trapdoor(default_rng(1))
        assert keys.public.apply(keys.invert(t)) == t

    def test_reverse_round_trip(self, keys):
        t = keys.sample_trapdoor(default_rng(2))
        assert keys.invert(keys.public.apply(t)) == t

    def test_chain_walk(self, keys):
        """The owner pulls backwards j times; pi_pk walks forward to t0."""
        t0 = keys.sample_trapdoor(default_rng(3))
        chain = [t0]
        for _ in range(5):
            chain.append(keys.invert(chain[-1]))
        # Cloud side: from t5, apply pi_pk repeatedly to reach t0.
        cursor = chain[-1]
        for expected in reversed(chain[:-1]):
            cursor = keys.public.apply(cursor)
            assert cursor == expected

    def test_fixed_width_encoding(self, keys):
        t = keys.sample_trapdoor(default_rng(4))
        assert len(t) == keys.public.byte_len
        assert len(keys.invert(t)) == keys.public.byte_len

    def test_distinct_trapdoors(self, keys):
        rng = default_rng(5)
        assert keys.sample_trapdoor(rng) != keys.sample_trapdoor(rng)

    def test_permutation_is_injective_on_samples(self, keys):
        rng = default_rng(6)
        samples = [keys.sample_trapdoor(rng) for _ in range(10)]
        images = {keys.public.apply(t) for t in samples}
        assert len(images) == len(samples)


class TestErrors:
    def test_wrong_length_rejected(self, keys):
        with pytest.raises(KeyError_):
            keys.public.apply(b"\x01" * 5)

    def test_zero_rejected(self, keys):
        with pytest.raises(KeyError_):
            keys.public.apply(b"\x00" * keys.public.byte_len)

    def test_odd_bits_rejected(self):
        with pytest.raises(ParameterError):
            TrapdoorKeyPair.generate(513)

    def test_tiny_bits_rejected(self):
        with pytest.raises(ParameterError):
            TrapdoorKeyPair.generate(16)


class TestKeygen:
    def test_modulus_size(self, keys):
        assert keys.public.modulus.bit_length() == 512

    def test_d_inverts_e(self, keys):
        lam_multiple = (keys.p - 1) * (keys.q - 1)
        assert (keys.d * keys.public.exponent) % _lcm(keys.p - 1, keys.q - 1) == 1
        assert lam_multiple % (keys.p - 1) == 0


def _lcm(a: int, b: int) -> int:
    from math import gcd

    return a // gcd(a, b) * b
