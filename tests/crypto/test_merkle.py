"""Merkle Hash Tree: proofs, tampering, odd-width trees."""

import pytest

from repro.common.errors import ParameterError
from repro.crypto.merkle import MerkleTree, verify_merkle


def leaves(n: int) -> list[bytes]:
    return [f"leaf-{i}".encode() for i in range(n)]


class TestProofs:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13])
    def test_all_leaves_verify(self, n):
        data = leaves(n)
        tree = MerkleTree(data)
        for i, leaf in enumerate(data):
            assert verify_merkle(tree.root, leaf, tree.prove(i))

    def test_wrong_leaf_fails(self):
        data = leaves(8)
        tree = MerkleTree(data)
        assert not verify_merkle(tree.root, b"evil", tree.prove(3))

    def test_wrong_index_fails(self):
        data = leaves(8)
        tree = MerkleTree(data)
        proof = tree.prove(3)
        assert not verify_merkle(tree.root, data[4], proof)

    def test_tampered_path_fails(self):
        data = leaves(8)
        tree = MerkleTree(data)
        proof = tree.prove(2)
        bad_path = ((b"\x00" * 32, proof.path[0][1]),) + proof.path[1:]
        from repro.crypto.merkle import MerkleProof

        assert not verify_merkle(tree.root, data[2], MerkleProof(2, bad_path))

    def test_cross_tree_fails(self):
        t1 = MerkleTree(leaves(8))
        t2 = MerkleTree([b"x" + l for l in leaves(8)])
        assert not verify_merkle(t2.root, leaves(8)[0], t1.prove(0))


class TestStructure:
    def test_root_deterministic(self):
        assert MerkleTree(leaves(7)).root == MerkleTree(leaves(7)).root

    def test_root_depends_on_order(self):
        data = leaves(4)
        assert MerkleTree(data).root != MerkleTree(list(reversed(data))).root

    def test_single_leaf_tree(self):
        tree = MerkleTree([b"only"])
        proof = tree.prove(0)
        assert proof.path == ()
        assert verify_merkle(tree.root, b"only", proof)

    def test_proof_size_logarithmic(self):
        big = MerkleTree(leaves(1024))
        assert len(big.prove(0).path) == 10

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            MerkleTree([])

    def test_out_of_range_index(self):
        with pytest.raises(ParameterError):
            MerkleTree(leaves(4)).prove(4)

    def test_second_preimage_guard(self):
        """Leaf and node hashing are domain-separated (no CVE-2012-2459 style
        reinterpretation of an inner node as a leaf)."""
        import hashlib

        data = leaves(2)
        tree = MerkleTree(data)
        inner = hashlib.sha256(b"\x00" + data[0]).digest() + hashlib.sha256(
            b"\x00" + data[1]
        ).digest()
        # Treating the concatenated children as a leaf must not reproduce the root.
        fake = MerkleTree([inner])
        assert fake.root != tree.root
