"""Crypto kernels: every memoized/precomputed path is byte-identical to the
primitive it replaces, caches report hits honestly, and the env knob works."""

import pytest

from repro.common import perfstats
from repro.common.rng import default_rng
from repro.crypto import kernels
from repro.crypto.accumulator import AccumulatorParams
from repro.crypto.hash_to_prime import HashToPrime
from repro.crypto.kernels import (
    FIXED_BASE_MIN_EXP_BITS,
    FixedBaseExp,
    MemoizedHashToPrime,
    TrapdoorChainCache,
    batch_verify_membership,
    fixed_base_pow,
    memoized_hash_to_prime,
    multi_exp,
)
from repro.crypto.modmath import product
from repro.crypto.trapdoor import TrapdoorKeyPair


@pytest.fixture(scope="module")
def acc_params():
    return AccumulatorParams.demo(512)


@pytest.fixture(scope="module")
def primes():
    h = HashToPrime(64)
    return [h(i.to_bytes(4, "big")) for i in range(10)]


class TestMemoizedHashToPrime:
    def test_matches_cold_walk(self):
        cold = HashToPrime(64)
        warm = MemoizedHashToPrime(64)
        for i in range(30):
            data = i.to_bytes(4, "big")
            assert warm.hash_to_prime_with_counter(data) == cold.hash_to_prime_with_counter(data)

    def test_hit_returns_same_pair(self):
        warm = MemoizedHashToPrime(64)
        first = warm.hash_to_prime_with_counter(b"repeat")
        perfstats.reset("hash_to_prime.")
        assert warm.hash_to_prime_with_counter(b"repeat") == first
        assert perfstats.get("hash_to_prime.hit") == 1
        assert perfstats.get("hash_to_prime.miss") == 0

    def test_miss_counts_candidates(self):
        warm = MemoizedHashToPrime(64)
        perfstats.reset("hash_to_prime.")
        _, counter = warm.hash_to_prime_with_counter(b"cold input")
        assert perfstats.get("hash_to_prime.miss") == 1
        assert perfstats.get("hash_to_prime.candidates") == counter

    def test_shared_memo_across_instances(self):
        memo: dict = {}
        a = MemoizedHashToPrime(64, memo=memo)
        b = MemoizedHashToPrime(64, memo=memo)
        a(b"shared")
        perfstats.reset("hash_to_prime.")
        b(b"shared")
        assert perfstats.get("hash_to_prime.hit") == 1

    def test_factory_shares_per_bits_and_domain(self):
        kernels.clear_caches()
        memoized_hash_to_prime(64)(b"payload")
        perfstats.reset("hash_to_prime.")
        memoized_hash_to_prime(64)(b"payload")  # fresh instance, same memo
        assert perfstats.get("hash_to_prime.hit") == 1
        memoized_hash_to_prime(64, domain=b"other")(b"payload")  # separate memo
        assert perfstats.get("hash_to_prime.miss") == 1

    def test_eviction_keeps_results_correct(self, monkeypatch):
        monkeypatch.setattr(kernels, "HASH_MEMO_MAX", 4)
        warm = MemoizedHashToPrime(64)
        cold = HashToPrime(64)
        inputs = [i.to_bytes(4, "big") for i in range(12)]
        for data in inputs + inputs:  # second pass re-derives evicted entries
            assert warm(data) == cold(data)
        assert len(warm._memo) <= 4


class TestFixedBaseExp:
    def test_small_exponents_match_pow(self, acc_params):
        kernel = FixedBaseExp(acc_params.generator, acc_params.modulus)
        for exp in [0, 1, 2, 3, 17, 1 << 64, (1 << 512) - 1]:
            assert kernel.pow(exp) == pow(acc_params.generator, exp, acc_params.modulus)

    @pytest.mark.parametrize(
        "bits",
        [
            FIXED_BASE_MIN_EXP_BITS - 1,  # last builtin-pow exponent
            FIXED_BASE_MIN_EXP_BITS,  # first table exponent (window 4)
            8192,  # window-8 regime
        ],
    )
    def test_table_path_matches_pow_across_threshold(self, acc_params, bits):
        rng = default_rng(bits)
        kernel = FixedBaseExp(acc_params.generator, acc_params.modulus)
        for _ in range(3):
            exp = (1 << (bits - 1)) | rng.randbits(bits - 1)
            assert exp.bit_length() == bits
            assert kernel.pow(exp) == pow(acc_params.generator, exp, acc_params.modulus)

    def test_table_reused_and_extended(self, acc_params):
        kernel = FixedBaseExp(acc_params.generator, acc_params.modulus)
        perfstats.reset("fixed_base.")
        kernel.pow(1 << FIXED_BASE_MIN_EXP_BITS)
        first_extensions = perfstats.get("fixed_base.table_extensions")
        assert first_extensions > 0
        kernel.pow(1 << FIXED_BASE_MIN_EXP_BITS)  # same size: table fully reused
        assert perfstats.get("fixed_base.table_extensions") == first_extensions
        kernel.pow(1 << (2 * FIXED_BASE_MIN_EXP_BITS))  # larger: extend, don't rebuild
        assert perfstats.get("fixed_base.table_extensions") > first_extensions
        assert perfstats.get("fixed_base.table_pow") == 3

    def test_negative_exponent_rejected(self, acc_params):
        kernel = FixedBaseExp(acc_params.generator, acc_params.modulus)
        with pytest.raises(ValueError):
            kernel.pow(-1)

    def test_module_cache_and_disable_knob(self, acc_params, monkeypatch):
        g, n = acc_params.generator, acc_params.modulus
        exp = 3 << FIXED_BASE_MIN_EXP_BITS
        expected = pow(g, exp, n)
        monkeypatch.setenv(kernels.KERNELS_ENV, "1")
        kernels.clear_caches()
        assert fixed_base_pow(g, n, exp) == expected
        assert kernels.cache_sizes()["fixed_base_tables"] > 0
        monkeypatch.setenv(kernels.KERNELS_ENV, "0")
        kernels.clear_caches()
        assert fixed_base_pow(g, n, exp) == expected  # plain pow fallback
        assert kernels.cache_sizes()["fixed_base_tables"] == 0


class TestMultiExp:
    def test_matches_product_of_pows(self, acc_params):
        n = acc_params.modulus
        rng = default_rng(99)
        pairs = [
            (rng.randrange(2, n), rng.randbits(256))
            for _ in range(6)
        ]
        expected = 1
        for base, exp in pairs:
            expected = expected * pow(base, exp, n) % n
        assert multi_exp(pairs, n) == expected

    def test_empty_and_zero_exponents(self, acc_params):
        n = acc_params.modulus
        assert multi_exp([], n) == 1 % n
        assert multi_exp([(12345, 0)], n) == 1 % n
        assert multi_exp([(7, 0), (11, 3)], n) == pow(11, 3, n)

    def test_mixed_exponent_lengths(self, acc_params):
        n = acc_params.modulus
        pairs = [(3, 5), (5, 1 << 300), (7, (1 << 600) + 1)]
        expected = 1
        for base, exp in pairs:
            expected = expected * pow(base, exp, n) % n
        assert multi_exp(pairs, n) == expected

    def test_negative_exponent_rejected(self, acc_params):
        """A negative exponent raises (like FixedBaseExp.pow) instead of
        being silently treated as zero."""
        with pytest.raises(ValueError):
            multi_exp([(3, 5), (5, -1)], acc_params.modulus)


class TestBatchVerifyMembership:
    def _accumulate(self, acc_params, primes):
        n, g = acc_params.modulus, acc_params.generator
        total = product(primes)
        ac = pow(g, total, n)
        witnesses = [(p, pow(g, total // p, n)) for p in primes]
        return ac, witnesses

    def test_accepts_all_valid(self, acc_params, primes):
        ac, items = self._accumulate(acc_params, primes)
        assert batch_verify_membership(acc_params.modulus, ac, items)

    def test_rejects_one_bad_witness(self, acc_params, primes):
        ac, items = self._accumulate(acc_params, primes)
        prime, witness = items[3]
        items[3] = (prime, witness * acc_params.generator % acc_params.modulus)
        assert not batch_verify_membership(acc_params.modulus, ac, items)

    def test_rejects_wrong_prime(self, acc_params, primes):
        ac, items = self._accumulate(acc_params, primes)
        items[0] = (items[0][0] + 2, items[0][1])
        assert not batch_verify_membership(acc_params.modulus, ac, items)

    def test_rejects_degenerate_prime(self, acc_params, primes):
        ac, items = self._accumulate(acc_params, primes)
        items[0] = (1, items[0][1])
        assert not batch_verify_membership(acc_params.modulus, ac, items)

    def test_even_sign_flips_fool_the_batch(self, acc_params, primes):
        """Documents WHY the kernel is trusted-input-only: negating an even
        number of witnesses (w → n−w) cancels the ``(-1)^(x·r)`` factors
        pairwise (primes and forced-odd coefficients are odd), so the
        aggregate accepts while per-item ``VerifyMem`` rejects every flip.
        The adversarial-facing verifier therefore never calls this kernel —
        ``verify_membership_batch`` defaults to per-item checks."""
        n = acc_params.modulus
        ac, items = self._accumulate(acc_params, primes)
        for i in (2, 5):
            prime, witness = items[i]
            items[i] = (prime, n - witness)
            assert pow(n - witness, prime, n) != ac % n  # per-item rejects
        assert batch_verify_membership(n, ac, items)  # the batch is fooled

    def test_odd_sign_flip_rejected(self, acc_params, primes):
        n = acc_params.modulus
        ac, items = self._accumulate(acc_params, primes)
        prime, witness = items[4]
        items[4] = (prime, n - witness)
        assert not batch_verify_membership(n, ac, items)

    def test_empty_batch_is_vacuously_true(self, acc_params):
        assert batch_verify_membership(acc_params.modulus, 1, [])

    def test_deterministic(self, acc_params, primes):
        ac, items = self._accumulate(acc_params, primes)
        runs = {batch_verify_membership(acc_params.modulus, ac, items) for _ in range(3)}
        assert runs == {True}


class TestTrapdoorChainCache:
    @pytest.fixture(scope="class")
    def keys(self):
        return TrapdoorKeyPair.generate(512, default_rng(41))

    def test_step_matches_apply(self, keys):
        cache = TrapdoorChainCache(keys.public)
        trapdoor = b"\x01" * keys.public.byte_len
        assert cache.step(trapdoor) == keys.public.apply(trapdoor)

    def test_repeat_walk_hits(self, keys):
        cache = TrapdoorChainCache(keys.public)
        trapdoor = b"\x02" * keys.public.byte_len
        chain = [trapdoor]
        for _ in range(4):
            chain.append(cache.step(chain[-1]))
        perfstats.reset("trapdoor_chain.")
        replay = [trapdoor]
        for _ in range(4):
            replay.append(cache.step(replay[-1]))
        assert replay == chain
        assert perfstats.get("trapdoor_chain.hit") == 4
        assert perfstats.get("trapdoor_chain.miss") == 0
        assert len(cache) == 4

    def test_new_head_misses_once_then_resumes(self, keys):
        """A forward-secure Insert's new trapdoor costs one miss; its image
        lands on the already-cached chain — the no-invalidation argument."""
        cache = TrapdoorChainCache(keys.public)
        old_head = b"\x03" * keys.public.byte_len
        cache.step(old_head)
        new_head = keys.invert(old_head)  # owner's pull-back: π_pk(new) == old
        perfstats.reset("trapdoor_chain.")
        assert cache.step(new_head) == old_head
        assert cache.step(old_head) == keys.public.apply(old_head)
        assert perfstats.get("trapdoor_chain.miss") == 1
        assert perfstats.get("trapdoor_chain.hit") == 1

    def test_module_cache_keyed_by_public_key(self, keys):
        kernels.clear_caches()
        assert kernels.trapdoor_chain(keys.public) is kernels.trapdoor_chain(keys.public)
        other = TrapdoorKeyPair.generate(512, default_rng(42))
        assert kernels.trapdoor_chain(other.public) is not kernels.trapdoor_chain(keys.public)


class TestLifecycle:
    def test_clear_caches_empties_everything(self, acc_params):
        memoized_hash_to_prime(64)(b"fill")
        fixed_base_pow(acc_params.generator, acc_params.modulus, 1 << FIXED_BASE_MIN_EXP_BITS)
        assert any(kernels.cache_sizes().values())
        kernels.clear_caches()
        sizes = kernels.cache_sizes()
        # Registered cache families (e.g. the cloud's entry cache) append
        # their own keys; everything must read empty after a clear.
        assert sizes["hash_to_prime"] == 0
        assert sizes["fixed_base_tables"] == 0
        assert sizes["trapdoor_chain"] == 0
        assert all(count == 0 for count in sizes.values())

    @pytest.mark.parametrize("value,expected", [
        ("0", False), ("false", False), ("OFF", False), ("no", False),
        ("1", True), ("on", True), ("", True),
    ])
    def test_env_knob(self, monkeypatch, value, expected):
        monkeypatch.setenv(kernels.KERNELS_ENV, value)
        assert kernels.kernels_enabled() is expected

    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNELS_ENV, raising=False)
        assert kernels.kernels_enabled()


class TestWnafDigits:
    def test_zero_exponent_is_empty(self):
        assert kernels.wnaf_digits(0) == []

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            kernels.wnaf_digits(-5)

    @pytest.mark.parametrize("window", [1, 13, 0])
    def test_window_out_of_range_rejected(self, window):
        with pytest.raises(ValueError):
            kernels.wnaf_digits(100, window)

    @pytest.mark.parametrize("window", [2, 3, 6, 12])
    def test_recoding_invariants(self, window):
        """Digits reconstruct the exponent; nonzero digits are odd, bounded
        by 2^(w-1), and separated by at least w-1 zeros."""
        rng = default_rng(17)
        exponents = [1, 2, 3, (1 << window) - 1, 1 << window] + [
            rng.randbits(bits) for bits in (16, 64, 300, 1200) for _ in range(4)
        ]
        half = 1 << (window - 1)
        for e in exponents:
            digits = kernels.wnaf_digits(e, window)
            assert sum(d << i for i, d in enumerate(digits)) == e, (e, window)
            if e:
                assert digits[-1] != 0  # no trailing zeros
            last_nonzero = None
            for i, d in enumerate(digits):
                if d == 0:
                    continue
                assert d % 2 == 1 or d % 2 == -1
                assert -half < d < half
                if last_nonzero is not None:
                    assert i - last_nonzero >= window - 1
                last_nonzero = i


class TestWitnessPow:
    def test_small_exponents_match_pow(self, acc_params):
        n, g = acc_params.modulus, acc_params.generator
        for e in (0, 1, 2, 3, 65537, 1 << 100):
            assert kernels.witness_pow(g, e, n) == pow(g, e, n)

    def test_large_exponent_matches_pow(self, acc_params):
        """Above WNAF_MIN_EXP_BITS the wNAF kernel engages; result must be
        bit-identical to the builtin."""
        n, g = acc_params.modulus, acc_params.generator
        rng = default_rng(23)
        kernels.clear_caches()
        before = perfstats.STATS.get("wnaf.pow")
        for _ in range(3):
            e = rng.randbits(kernels.WNAF_MIN_EXP_BITS + 57) | 1
            assert kernels.witness_pow(g, e, n) == pow(g, e, n)
        from repro.crypto import modmath

        if kernels.kernels_enabled() and not modmath.active_backend().native:
            assert perfstats.STATS.get("wnaf.pow") - before == 3

    def test_negative_exponent_rejected(self, acc_params):
        with pytest.raises(ValueError):
            kernels.witness_pow(2, -1, acc_params.modulus)

    def test_noninvertible_base_falls_back(self):
        """wNAF needs base^-1; a base sharing a factor with the modulus must
        fall back to the builtin, not crash."""
        e = (1 << kernels.WNAF_MIN_EXP_BITS) + 3
        before = perfstats.STATS.get("wnaf.noninvertible_fallback")
        assert kernels.witness_pow(5, e, 15) == pow(5, e, 15)
        if kernels.kernels_enabled():
            assert perfstats.STATS.get("wnaf.noninvertible_fallback") >= before

    def test_wnafexp_pow_matches_builtin(self, acc_params):
        n, g = acc_params.modulus, acc_params.generator
        exp = kernels.WNafExp(g, n)
        rng = default_rng(31)
        for e in (0, 1, 2, rng.randbits(2000), rng.randbits(20000)):
            assert exp.pow(e) == pow(g, e, n)
        # Explicit window override on the same cached tables.
        assert exp.pow(12345, window=3) == pow(g, 12345, n)

    def test_sibling_pair_reuses_table(self, acc_params):
        """root_factor raises one node value to both sibling exponents; the
        single-slot cache must build tables once per node, not per call."""
        if not kernels.kernels_enabled():
            pytest.skip("kernels disabled")
        from repro.crypto import modmath

        if modmath.active_backend().native:
            pytest.skip("wNAF only engages on the python backend")
        n, g = acc_params.modulus, acc_params.generator
        kernels.clear_caches()
        rng = default_rng(37)
        left = rng.randbits(kernels.WNAF_MIN_EXP_BITS + 10) | 1
        right = rng.randbits(kernels.WNAF_MIN_EXP_BITS + 11) | 1
        before = perfstats.STATS.get("wnaf.table_builds")
        kernels.witness_pow(g, left, n)
        kernels.witness_pow(g, right, n)
        assert perfstats.STATS.get("wnaf.table_builds") - before == 1

    def test_clear_caches_drops_wnaf_slot(self, acc_params):
        n, g = acc_params.modulus, acc_params.generator
        kernels.witness_pow(g, (1 << kernels.WNAF_MIN_EXP_BITS) + 5, n)
        kernels.clear_caches()
        assert kernels.cache_sizes()["wnaf_tables"] == 0
