"""H_prime: determinism, primality, fixed size, collision behaviour."""

import pytest

from repro.common.errors import ParameterError
from repro.crypto.hash_to_prime import HashToPrime
from repro.crypto.primes import is_prime


@pytest.fixture(scope="module")
def h64():
    return HashToPrime(prime_bits=64)


class TestOutput:
    def test_prime(self, h64):
        for i in range(20):
            assert is_prime(h64(i.to_bytes(4, "big")))

    def test_exact_bit_length(self, h64):
        for i in range(20):
            assert h64(i.to_bytes(4, "big")).bit_length() == 64

    def test_deterministic(self, h64):
        assert h64(b"slicer") == h64(b"slicer")

    def test_input_sensitivity(self, h64):
        assert h64(b"a") != h64(b"b")

    def test_counter_exposed(self, h64):
        prime, count = h64.hash_to_prime_with_counter(b"slicer")
        assert prime == h64(b"slicer")
        assert count >= 1

    def test_distinct_inputs_rarely_collide(self, h64):
        outputs = {h64(i.to_bytes(4, "big")) for i in range(200)}
        assert len(outputs) == 200


class TestDomainSeparation:
    def test_different_domains_differ(self):
        a = HashToPrime(64, domain=b"A")
        b = HashToPrime(64, domain=b"B")
        assert a(b"x") != b(b"x")


class TestParams:
    def test_too_small(self):
        with pytest.raises(ParameterError):
            HashToPrime(prime_bits=8)

    def test_too_large(self):
        with pytest.raises(ParameterError):
            HashToPrime(prime_bits=1024)

    def test_256_bit_default(self):
        h = HashToPrime()
        p = h(b"x")
        assert p.bit_length() == 256
        assert is_prime(p)
