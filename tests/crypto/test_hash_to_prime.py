"""H_prime: determinism, primality, fixed size, collision behaviour."""

import pytest

from repro.common.errors import ParameterError
from repro.crypto.hash_to_prime import HashToPrime
from repro.crypto.kernels import MemoizedHashToPrime
from repro.crypto.primes import is_prime
from repro.parallel.executor import ParallelExecutor
from repro.parallel.tasks import hash_to_prime_chunk


@pytest.fixture(scope="module")
def h64():
    return HashToPrime(prime_bits=64)


class TestOutput:
    def test_prime(self, h64):
        for i in range(20):
            assert is_prime(h64(i.to_bytes(4, "big")))

    def test_exact_bit_length(self, h64):
        for i in range(20):
            assert h64(i.to_bytes(4, "big")).bit_length() == 64

    def test_deterministic(self, h64):
        assert h64(b"slicer") == h64(b"slicer")

    def test_input_sensitivity(self, h64):
        assert h64(b"a") != h64(b"b")

    def test_counter_exposed(self, h64):
        prime, count = h64.hash_to_prime_with_counter(b"slicer")
        assert prime == h64(b"slicer")
        assert count >= 1

    def test_distinct_inputs_rarely_collide(self, h64):
        outputs = {h64(i.to_bytes(4, "big")) for i in range(200)}
        assert len(outputs) == 200


class TestDomainSeparation:
    def test_different_domains_differ(self):
        a = HashToPrime(64, domain=b"A")
        b = HashToPrime(64, domain=b"B")
        assert a(b"x") != b(b"x")


class TestParams:
    def test_too_small(self):
        with pytest.raises(ParameterError):
            HashToPrime(prime_bits=8)

    def test_too_large(self):
        with pytest.raises(ParameterError):
            HashToPrime(prime_bits=1024)

    def test_256_bit_default(self):
        h = HashToPrime()
        p = h(b"x")
        assert p.bit_length() == 256
        assert is_prime(p)

    @pytest.mark.parametrize("bits", [16, 512])
    def test_boundary_widths_accepted(self, bits):
        """The smallest and largest supported widths produce exact-size
        primes — and the memoized kernel agrees at both extremes."""
        cold = HashToPrime(bits)
        warm = MemoizedHashToPrime(bits)
        for i in range(5):
            data = i.to_bytes(2, "big")
            p = cold(data)
            assert p.bit_length() == bits
            assert is_prime(p)
            assert warm.hash_to_prime_with_counter(data) == cold.hash_to_prime_with_counter(data)


class TestMemoizedParity:
    """The kernel memo must be observationally invisible: same prime AND
    same candidate counter warm as cold, so the simulated contract charges
    identical gas either way."""

    def test_counter_parity_warm_vs_cold(self, h64):
        warm = MemoizedHashToPrime(64)
        inputs = [i.to_bytes(4, "big") for i in range(40)]
        cold_pairs = [h64.hash_to_prime_with_counter(d) for d in inputs]
        first = [warm.hash_to_prime_with_counter(d) for d in inputs]  # misses
        second = [warm.hash_to_prime_with_counter(d) for d in inputs]  # hits
        assert first == cold_pairs
        assert second == cold_pairs

    def test_multibyte_counter_walks_are_cached_exactly(self, h64):
        """Find an input whose walk needs several candidates and check the
        memo reproduces that exact count on a hit."""
        warm = MemoizedHashToPrime(64)
        for i in range(200):
            data = b"walk" + i.to_bytes(2, "big")
            _, counter = h64.hash_to_prime_with_counter(data)
            if counter >= 3:
                assert warm.hash_to_prime_with_counter(data) == (
                    warm.hash_to_prime_with_counter(data)
                ) == h64.hash_to_prime_with_counter(data)
                return
        pytest.fail("no input with a multi-candidate walk in 200 tries")


class TestCrossProcessDeterminism:
    def test_forked_workers_agree_with_parent(self):
        """The memoized walk is pure: forked worker processes (which inherit
        a warm memo and then diverge) return the same primes the parent
        derives serially."""
        executor = ParallelExecutor(workers=2, min_items=1)
        if not executor.parallel_available:
            pytest.skip("fork start method unavailable")
        payloads = [b"proc" + i.to_bytes(4, "big") for i in range(8)]
        serial = hash_to_prime_chunk((64,), payloads)
        parallel = executor.map_chunks(hash_to_prime_chunk, payloads, shared=(64,))
        assert parallel == serial


class TestCounterAccounting:
    """The hprime.* counters must equal a manual replay of the pipeline over
    the exact candidate walk — they feed the exact-counter CI gate."""

    def test_counters_match_manual_replay(self, h64):
        from repro.common import perfstats
        from repro.crypto.primes import test_candidate as check_candidate

        payloads = [b"acct" + i.to_bytes(2, "big") for i in range(25)]
        expected = {"candidates": 0, "mr_rounds": 0, "lucas_tests": 0, "fast_rejects": 0}
        for data in payloads:
            counter = 0
            while True:
                verdict = check_candidate(h64._candidate(data, counter))
                expected["candidates"] += 1
                expected["mr_rounds"] += verdict.mr_rounds
                expected["lucas_tests"] += verdict.lucas_tests
                expected["fast_rejects"] += verdict.fast_reject
                if verdict.probable_prime:
                    break
                counter += 1

        before = perfstats.snapshot("hprime.")
        pairs = [h64.hash_to_prime_with_counter(data) for data in payloads]
        delta = {
            k.removeprefix("hprime."): v - before.get(k, 0)
            for k, v in perfstats.snapshot("hprime.").items()
        }
        assert delta == expected
        # The gas-visible counter walk and the candidate counter agree too.
        assert sum(count for _, count in pairs) == expected["candidates"]

    def test_fast_reject_dominates(self, h64):
        """The point of the pipeline: most candidates die before any real
        witness schedule runs (presieve or the single base-2 round)."""
        from repro.common import perfstats

        before = perfstats.snapshot("hprime.")
        for i in range(60):
            h64(b"dom" + i.to_bytes(2, "big"))
        after = perfstats.snapshot("hprime.")
        candidates = after["hprime.candidates"] - before.get("hprime.candidates", 0)
        fast = after["hprime.fast_rejects"] - before.get("hprime.fast_rejects", 0)
        mr = after["hprime.mr_rounds"] - before.get("hprime.mr_rounds", 0)
        assert fast / candidates > 0.6
        # Legacy pipeline cost was ~13 deterministic MR rounds per surviving
        # 64-bit candidate; the staged pipeline pays ~1 MR round per
        # non-presieved candidate plus one Lucas completion per prime.
        assert mr < candidates
