"""PRF determinism, domain separation, and keystream expansion."""

import pytest

from repro.common.errors import ParameterError
from repro.crypto.prf import PRF, derive_key, prf


class TestPrfBasics:
    def test_deterministic(self):
        f = PRF(b"k" * 16)
        assert f.eval(b"x") == f.eval(b"x")

    def test_key_separation(self):
        assert PRF(b"a" * 16).eval(b"x") != PRF(b"b" * 16).eval(b"x")

    def test_input_separation(self):
        f = PRF(b"k" * 16)
        assert f.eval(b"x") != f.eval(b"y")

    def test_multi_part_injective(self):
        f = PRF(b"k" * 16)
        assert f.eval(b"ab", b"c") != f.eval(b"a", b"bc")

    def test_output_length(self):
        assert len(PRF(b"k" * 16, output_len=16).eval(b"x")) == 16
        assert len(PRF(b"k" * 16, output_len=32).eval(b"x")) == 32

    def test_empty_key_rejected(self):
        with pytest.raises(ParameterError):
            PRF(b"")

    def test_output_len_bounds(self):
        with pytest.raises(ParameterError):
            PRF(b"k" * 16, output_len=0)
        with pytest.raises(ParameterError):
            PRF(b"k" * 16, output_len=33)

    def test_eval_int_matches_eval(self):
        f = PRF(b"k" * 16)
        assert f.eval_int(b"x") == int.from_bytes(f.eval(b"x"), "big")


class TestKeystream:
    def test_arbitrary_lengths(self):
        f = PRF(b"k" * 16)
        for n in [0, 1, 31, 32, 33, 100]:
            assert len(f.eval_stream(n, b"ctx")) == n

    def test_prefix_consistency(self):
        # The first bytes of a longer stream equal the shorter stream.
        f = PRF(b"k" * 16)
        assert f.eval_stream(64, b"ctx")[:16] == f.eval_stream(16, b"ctx")

    def test_context_separation(self):
        f = PRF(b"k" * 16)
        assert f.eval_stream(16, b"a") != f.eval_stream(16, b"b")

    def test_negative_length_rejected(self):
        with pytest.raises(ParameterError):
            PRF(b"k" * 16).eval_stream(-1, b"x")


class TestDeriveKey:
    def test_label_separation(self):
        master = b"m" * 16
        assert derive_key(master, b"w", b"1") != derive_key(master, b"w", b"2")

    def test_keyword_separation(self):
        master = b"m" * 16
        assert derive_key(master, b"w1", b"1") != derive_key(master, b"w2", b"1")

    def test_one_shot_prf_helper(self):
        assert prf(b"k" * 16, b"x") == PRF(b"k" * 16).eval(b"x")
