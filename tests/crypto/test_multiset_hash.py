"""MSet-Mu-Hash: the two defining properties plus incremental/removal algebra."""

import pytest

from repro.common.errors import ParameterError
from repro.crypto.multiset_hash import DEFAULT_FIELD_PRIME, MultisetHash


class TestDefiningProperties:
    def test_equality_on_same_multiset(self):
        m = [b"a", b"b", b"a"]
        assert MultisetHash.of(m) == MultisetHash.of(m)

    def test_union_homomorphism(self):
        m, n = [b"a", b"b"], [b"c", b"a"]
        assert MultisetHash.of(m) + MultisetHash.of(n) == MultisetHash.of(m + n)

    def test_order_independence(self):
        assert MultisetHash.of([b"a", b"b", b"c"]) == MultisetHash.of([b"c", b"a", b"b"])

    def test_multiplicity_matters(self):
        assert MultisetHash.of([b"a"]) != MultisetHash.of([b"a", b"a"])

    def test_distinct_multisets_differ(self):
        assert MultisetHash.of([b"a"]) != MultisetHash.of([b"b"])


class TestIncremental:
    def test_add_matches_batch(self):
        h = MultisetHash.empty()
        for element in [b"x", b"y", b"x"]:
            h = h.add(element)
        assert h == MultisetHash.of([b"x", b"y", b"x"])

    def test_empty_hash_is_identity(self):
        h = MultisetHash.of([b"a"])
        assert h + MultisetHash.empty() == h

    def test_of_one(self):
        assert MultisetHash.of_one(b"a") == MultisetHash.of([b"a"])

    def test_remove_inverts_add(self):
        base = MultisetHash.of([b"a", b"b"])
        assert (base + MultisetHash.of_one(b"c")) - MultisetHash.of_one(b"c") == base

    def test_dual_instance_difference(self):
        # The deletion extension: hash(all) - hash(deleted) == hash(kept).
        all_h = MultisetHash.of([b"a", b"b", b"c"])
        deleted = MultisetHash.of([b"b"])
        kept = MultisetHash.of([b"a", b"c"])
        assert all_h - deleted == kept


class TestValueSemantics:
    def test_immutable(self):
        h = MultisetHash.empty()
        with pytest.raises(AttributeError):
            h.value = 2  # type: ignore[misc]

    def test_field_mismatch_rejected(self):
        a = MultisetHash.empty()
        b = MultisetHash.empty(q=2**127 - 1)
        with pytest.raises(ParameterError):
            a + b

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ParameterError):
            MultisetHash(0)
        with pytest.raises(ParameterError):
            MultisetHash(DEFAULT_FIELD_PRIME)

    def test_to_bytes_fixed_width(self):
        width = (DEFAULT_FIELD_PRIME.bit_length() + 7) // 8
        assert len(MultisetHash.empty().to_bytes()) == width
        assert len(MultisetHash.of([b"a"]).to_bytes()) == width

    def test_hashable(self):
        assert len({MultisetHash.of([b"a"]), MultisetHash.of([b"a"])}) == 1
