"""Modular arithmetic helpers."""

import pytest

from repro.common.errors import ParameterError
from repro.crypto.modmath import (
    ProductTree,
    crt_pair,
    is_quadratic_residue,
    mod_inverse,
    product,
    product_mod,
)


class TestModInverse:
    def test_basic(self):
        assert (3 * mod_inverse(3, 7)) % 7 == 1

    def test_large(self):
        n = 2**127 - 1
        a = 123456789
        assert (a * mod_inverse(a, n)) % n == 1

    def test_non_invertible(self):
        with pytest.raises(ParameterError):
            mod_inverse(6, 9)

    def test_bad_modulus(self):
        with pytest.raises(ParameterError):
            mod_inverse(3, 0)


class TestCrt:
    def test_reconstruction(self):
        p, q = 11, 13
        x = 100
        assert crt_pair(x % p, p, x % q, q) == x

    def test_rsa_style(self):
        p, q = 10007, 10009
        x = 12345678
        assert crt_pair(x % p, p, x % q, q) == x % (p * q)

    def test_non_coprime_rejected(self):
        with pytest.raises(ParameterError):
            crt_pair(1, 6, 1, 9)


class TestQuadraticResidue:
    def test_squares_are_residues(self):
        p = 23
        for a in range(1, p):
            assert is_quadratic_residue((a * a) % p, p)

    def test_known_non_residue(self):
        # 5 is not a QR mod 7 (QRs mod 7: 1, 2, 4)
        assert not is_quadratic_residue(5, 7)

    def test_even_modulus_rejected(self):
        with pytest.raises(ParameterError):
            is_quadratic_residue(3, 8)


class TestProducts:
    def test_product_empty(self):
        assert product([]) == 1

    def test_product_matches_math_prod(self):
        import math

        values = [3, 5, 7, 11, 13, 17]
        assert product(values) == math.prod(values)

    def test_product_odd_count(self):
        assert product([2, 3, 5]) == 30

    def test_product_mod(self):
        assert product_mod([10, 20, 30], 7) == (10 * 20 * 30) % 7


class TestProductTree:
    def test_empty_root_is_one(self):
        assert ProductTree().root == 1
        assert len(ProductTree()) == 0

    def test_root_matches_math_prod(self):
        import math

        values = [3, 5, 7, 11, 13, 17, 19]
        tree = ProductTree()
        tree.extend(values)
        assert tree.root == math.prod(values)
        assert len(tree) == len(values)

    def test_incremental_append_tracks_product(self):
        import math

        tree = ProductTree()
        values = []
        for v in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29):
            values.append(v)
            tree.append(v)
            assert tree.root == math.prod(values)

    def test_append_order_irrelevant_for_root(self):
        a, b = ProductTree(), ProductTree()
        a.extend([3, 5, 7, 11])
        b.extend([11, 7, 5, 3])
        assert a.root == b.root

    def test_forest_stays_logarithmic(self):
        tree = ProductTree()
        tree.extend(range(1, 1001))
        # Binary-counter forest: at most ceil(log2(n)) + 1 subtree roots.
        assert len(tree._forest) <= 11
