"""Modular arithmetic helpers and the pluggable backend registry."""

import pytest

from repro.common.errors import ParameterError
from repro.crypto import modmath
from repro.crypto.modmath import (
    MODMATH_ENV,
    ProductTree,
    crt_pair,
    is_quadratic_residue,
    mod_inverse,
    product,
    product_mod,
)

HAVE_GMPY2 = "gmpy2" in modmath.available_backends()


class TestModInverse:
    def test_basic(self):
        assert (3 * mod_inverse(3, 7)) % 7 == 1

    def test_large(self):
        n = 2**127 - 1
        a = 123456789
        assert (a * mod_inverse(a, n)) % n == 1

    def test_non_invertible(self):
        with pytest.raises(ParameterError):
            mod_inverse(6, 9)

    def test_bad_modulus(self):
        with pytest.raises(ParameterError):
            mod_inverse(3, 0)


class TestCrt:
    def test_reconstruction(self):
        p, q = 11, 13
        x = 100
        assert crt_pair(x % p, p, x % q, q) == x

    def test_rsa_style(self):
        p, q = 10007, 10009
        x = 12345678
        assert crt_pair(x % p, p, x % q, q) == x % (p * q)

    def test_non_coprime_rejected(self):
        with pytest.raises(ParameterError):
            crt_pair(1, 6, 1, 9)


class TestQuadraticResidue:
    def test_squares_are_residues(self):
        p = 23
        for a in range(1, p):
            assert is_quadratic_residue((a * a) % p, p)

    def test_known_non_residue(self):
        # 5 is not a QR mod 7 (QRs mod 7: 1, 2, 4)
        assert not is_quadratic_residue(5, 7)

    def test_even_modulus_rejected(self):
        with pytest.raises(ParameterError):
            is_quadratic_residue(3, 8)


class TestProducts:
    def test_product_empty(self):
        assert product([]) == 1

    def test_product_matches_math_prod(self):
        import math

        values = [3, 5, 7, 11, 13, 17]
        assert product(values) == math.prod(values)

    def test_product_odd_count(self):
        assert product([2, 3, 5]) == 30

    def test_product_mod(self):
        assert product_mod([10, 20, 30], 7) == (10 * 20 * 30) % 7


class TestProductTree:
    def test_empty_root_is_one(self):
        assert ProductTree().root == 1
        assert len(ProductTree()) == 0

    def test_root_matches_math_prod(self):
        import math

        values = [3, 5, 7, 11, 13, 17, 19]
        tree = ProductTree()
        tree.extend(values)
        assert tree.root == math.prod(values)
        assert len(tree) == len(values)

    def test_incremental_append_tracks_product(self):
        import math

        tree = ProductTree()
        values = []
        for v in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29):
            values.append(v)
            tree.append(v)
            assert tree.root == math.prod(values)

    def test_append_order_irrelevant_for_root(self):
        a, b = ProductTree(), ProductTree()
        a.extend([3, 5, 7, 11])
        b.extend([11, 7, 5, 3])
        assert a.root == b.root

    def test_forest_stays_logarithmic(self):
        tree = ProductTree()
        tree.extend(range(1, 1001))
        # Binary-counter forest: at most ceil(log2(n)) + 1 subtree roots.
        assert len(tree._forest) <= 11

    def test_forest_state_stays_plain_int(self):
        """The forest is pickled into workers and cache exports; backend
        types must never leak into it."""
        tree = ProductTree([3, 5, 7, 11, 13])
        assert all(type(prod) is int for _, prod in tree._forest)
        assert type(tree.root) is int


@pytest.fixture()
def clean_backend():
    """Restore env-driven backend resolution after a test that overrides it."""
    yield
    modmath.set_backend(None)


class TestBackendRegistry:
    def test_python_backend_is_default(self, clean_backend, monkeypatch):
        monkeypatch.delenv(MODMATH_ENV, raising=False)
        modmath.set_backend(None)
        assert modmath.active_backend().name == "python"
        info = modmath.backend_info()
        assert info["active"] == "python"
        assert info["fallback_reason"] is None

    def test_available_backends_always_lists_python(self):
        assert "python" in modmath.available_backends()

    def test_set_backend_unknown_name_rejected(self, clean_backend):
        with pytest.raises(ParameterError):
            modmath.set_backend("openssl")

    def test_env_unknown_value_rejected(self, clean_backend, monkeypatch):
        monkeypatch.setenv(MODMATH_ENV, "not-a-backend")
        modmath.set_backend(None)
        with pytest.raises(ParameterError):
            modmath.active_backend()

    @pytest.mark.skipif(HAVE_GMPY2, reason="gmpy2 installed: no fallback to test")
    def test_gmpy2_env_request_falls_back_to_python(self, clean_backend, monkeypatch):
        """REPRO_MODMATH=gmpy2 without gmpy2 must degrade, not crash — the
        repo never requires a native dependency."""
        monkeypatch.setenv(MODMATH_ENV, "gmpy2")
        modmath.set_backend(None)
        backend = modmath.active_backend()
        assert backend.name == "python"
        info = modmath.backend_info()
        assert info["requested"] == "gmpy2"
        assert info["fallback_reason"] == "gmpy2 not installed"

    @pytest.mark.skipif(HAVE_GMPY2, reason="gmpy2 installed: request succeeds")
    def test_set_backend_gmpy2_raises_when_missing(self, clean_backend):
        """Unlike the env path, an explicit set_backend('gmpy2') must raise —
        a test that asks for gmpy2 wants gmpy2, not a silent fallback."""
        with pytest.raises(ParameterError):
            modmath.set_backend("gmpy2")

    def test_operations_match_builtins(self):
        backend = modmath.active_backend()
        assert modmath.powmod(3, 1000, 101) == pow(3, 1000, 101)
        assert modmath.invert(7, 101) == pow(7, -1, 101)
        assert modmath.gcd(84, 126) == 42
        assert backend.mul(1 << 100, 3) == 3 << 100
        assert backend.unwrap(backend.wrap(12345)) == 12345

    def test_invert_non_invertible_raises_valueerror(self):
        """Both backends normalise to ValueError, so mod_inverse's
        ParameterError wrapper works identically everywhere."""
        with pytest.raises(ValueError):
            modmath.invert(6, 9)

    @pytest.mark.skipif(not HAVE_GMPY2, reason="needs gmpy2")
    def test_gmpy2_parity_with_python(self, clean_backend):
        """Every operation returns bit-identical plain ints on both backends."""
        cases = [(3, 10**18 + 9, 2**127 - 1), (2**255 - 19, 65537, (2**61 - 1) ** 2)]
        results = {}
        for name in ("python", "gmpy2"):
            modmath.set_backend(name)
            results[name] = [
                (
                    modmath.powmod(b, e, n),
                    modmath.gcd(b, n),
                    modmath.product([b % 1000 + 2, e % 1000 + 2, 17]),
                    modmath.product_mod([b, e, b + 1], n),
                    modmath.invert(b % n or 2, 2**127 - 1),
                )
                for b, e, n in cases
            ]
            tree = ProductTree([3, 5, 7, 11])
            tree.append(13)
            results[name].append(tree.root)
            assert type(modmath.powmod(b, e, n)) is int
        assert results["python"] == results["gmpy2"]

    def test_env_typo_never_silently_ignored(self, clean_backend, monkeypatch):
        monkeypatch.setenv(MODMATH_ENV, "GMPY2 ")  # case/space-insensitive parse
        modmath.set_backend(None)
        if HAVE_GMPY2:
            assert modmath.active_backend().name == "gmpy2"
        else:
            assert modmath.active_backend().name == "python"
            assert modmath.backend_info()["fallback_reason"] == "gmpy2 not installed"
