"""The primality pipeline: presieve, Baillie-PSW, deterministic witnesses."""

import pytest

from repro.common.errors import ParameterError
from repro.common.rng import default_rng
from repro.crypto.primes import (
    _DETERMINISTIC_BOUND,
    _presieve_ok,
    is_prime,
    next_prime,
    random_prime,
    random_safe_prime,
)
from repro.crypto.primes import test_candidate as check_candidate

#: Strong pseudoprimes to base 2 (OEIS A001262) whose smallest prime factor
#: exceeds 349, so the primorial pre-sieve passes them and the base-2 SPRP
#: round alone declares them probably prime; the Lucas leg of Baillie-PSW
#: must reject every one.
BASE2_STRONG_PSEUDOPRIMES = [
    514447, 580337, 741751, 838861, 873181, 916327, 1082401,
]

#: The classic small base-2 strong pseudoprimes.  These all factor into
#: primes <= 349, so the pre-sieve catches them before any modexp runs —
#: still composite verdicts, just cheaper ones.
SMALL_BASE2_STRONG_PSEUDOPRIMES = [
    2047, 3277, 4033, 4681, 8321, 15841, 29341, 42799, 49141,
    52633, 65281, 74665, 80581, 85489, 88357, 90751,
]

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 7919, 104729, 2**61 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 100, 7917, 2**61 + 1, 561, 41041, 825265]  # incl. Carmichael


class TestIsPrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_known_composites(self, c):
        assert not is_prime(c)

    def test_negative(self):
        assert not is_prime(-7)

    def test_large_prime(self):
        # 2^127 - 1 is a Mersenne prime, above the deterministic threshold? No,
        # but it exercises the randomized path when passed with a large rng.
        assert is_prime(2**127 - 1, default_rng(4))

    def test_large_composite(self):
        assert not is_prime((2**127 - 1) * (2**89 - 1), default_rng(4))


class TestNextPrime:
    def test_small_values(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 3
        assert next_prime(7919) == 7927

    def test_output_is_strictly_greater(self):
        assert next_prime(13) == 17


class TestRandomPrime:
    def test_bit_length_exact(self):
        rng = default_rng(8)
        for bits in [8, 16, 64]:
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_prime(p)

    def test_too_few_bits(self):
        with pytest.raises(ParameterError):
            random_prime(1)


class TestSafePrime:
    def test_structure(self):
        rng = default_rng(8)
        p = random_safe_prime(16, rng)
        assert is_prime(p)
        assert is_prime((p - 1) // 2)
        assert p.bit_length() == 16

    def test_too_few_bits(self):
        with pytest.raises(ParameterError):
            random_safe_prime(2)

    def test_primorial_presieve_matches_trial_division_oracle(self):
        """The joint gcd pre-sieve accepts/rejects exactly the candidates the
        seed code's ~70-iteration trial-division loop did, so seeded
        safe-prime streams are unchanged."""
        from repro.crypto.primes import _SMALL_PRIMES

        def oracle(bits, rng):
            while True:
                q = rng.randbits(bits - 1) | (1 << (bits - 2)) | 1
                p = 2 * q + 1
                if p.bit_length() != bits:
                    continue
                composite = False
                for sp in _SMALL_PRIMES:
                    if p != sp and p % sp == 0:
                        composite = True
                        break
                    if q != sp and q % sp == 0:
                        composite = True
                        break
                if composite:
                    continue
                if is_prime(q) and is_prime(p):
                    return p

        for seed in (1, 8, 77, 2024):
            for bits in (12, 16, 24):
                assert random_safe_prime(bits, default_rng(seed)) == oracle(
                    bits, default_rng(seed)
                ), (seed, bits)


def _trial_division(n: int) -> bool:
    if n < 2:
        return False
    d = 2
    while d * d <= n:
        if n % d == 0:
            return False
        d += 1
    return True


class TestPrimalityPipeline:
    def test_exhaustive_small_range(self):
        for n in range(-3, 5000):
            assert is_prime(n) == _trial_division(n), n

    @pytest.mark.parametrize("n", BASE2_STRONG_PSEUDOPRIMES)
    def test_base2_strong_pseudoprimes_rejected(self, n):
        """These pass the base-2 SPRP early-exit; the Lucas leg must catch
        them (no base-2 strong pseudoprime is also a strong Lucas PRP)."""
        verdict = check_candidate(n)
        assert not verdict.probable_prime
        assert verdict.mr_rounds == 1  # survived base 2, killed by Lucas
        assert verdict.lucas_tests == 1

    @pytest.mark.parametrize("n", SMALL_BASE2_STRONG_PSEUDOPRIMES)
    def test_small_pseudoprimes_presieved(self, n):
        verdict = check_candidate(n)
        assert not verdict.probable_prime
        assert verdict.fast_reject and verdict.mr_rounds == 0

    def test_square_pseudoprime_caught_by_isqrt_guard(self):
        """1093^2 is a base-2 strong pseudoprime AND a perfect square; the
        isqrt guard rejects it without paying for a doomed Lucas D-search."""
        verdict = check_candidate(1093 * 1093)
        assert not verdict.probable_prime
        assert verdict.mr_rounds == 1
        assert verdict.lucas_tests == 0

    def test_presieve_predicate_exact(self):
        """gcd(n, primorial) == n does NOT mean n is a small prime (x=15:
        gcd is 15); the predicate must check set membership."""
        assert not _presieve_ok(15)
        assert not _presieve_ok(25)
        assert _presieve_ok(347)  # small prime itself
        assert _presieve_ok(353 * 359)  # no factor <= 349: survives to MR

    def test_verdict_small_band(self):
        verdict = check_candidate(2**61 - 1)  # < 2^64: Baillie-PSW band
        assert verdict.probable_prime
        assert verdict.mr_rounds == 1
        assert verdict.lucas_tests == 1
        assert not verdict.fast_reject

    def test_verdict_proven_witness_band(self):
        p = next_prime(2**70)  # (2^64, 3.3e24): 13 proven witnesses
        assert 2**64 < p < _DETERMINISTIC_BOUND
        verdict = check_candidate(p)
        assert verdict.probable_prime
        assert verdict.mr_rounds == 13
        assert verdict.lucas_tests == 0

    def test_verdict_hash_witness_band(self):
        verdict = check_candidate(2**89 - 1)  # Mersenne prime > 3.3e24
        assert verdict.probable_prime
        assert verdict.mr_rounds == 25  # base 2 + 24 derived witnesses
        assert verdict.lucas_tests == 0

    def test_verdict_fast_rejects(self):
        gcd_reject = check_candidate(3 * 353)
        assert gcd_reject.fast_reject and gcd_reject.mr_rounds == 0
        base2_reject = check_candidate(353 * 359)
        assert base2_reject.fast_reject and base2_reject.mr_rounds == 1
        assert not base2_reject.probable_prime

    def test_perfect_square_guard(self):
        """Lucas D-search diverges on perfect squares; the isqrt guard must
        reject them before the search."""
        for root in (2**31 - 1, 2**31 + 11, 10**9 + 7):
            assert not is_prime(root * root)

    def test_stream_parity_large_inputs(self):
        """Regression for the shared-RNG witness bug: testing a > 3.3e24
        input must not consume state from a caller-supplied RNG, so later
        draws are identical with and without the primality call in between."""
        probe = default_rng(905).randbits(256)

        rng = default_rng(905)
        is_prime(2**89 - 1, rng)  # hash-witness band: previously 40 draws
        is_prime((2**89 - 1) * (2**107 - 1), rng)
        assert rng.randbits(256) == probe

    def test_hash_witnesses_deterministic(self):
        """Same input, same verdict and same round counts — witnesses are
        derived from n, not sampled."""
        n = (2**127 - 1) * (2**89 - 1)
        assert check_candidate(n) == check_candidate(n)
        assert not check_candidate(n).probable_prime
