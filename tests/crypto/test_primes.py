"""Miller-Rabin and prime generation."""

import pytest

from repro.common.errors import ParameterError
from repro.common.rng import default_rng
from repro.crypto.primes import is_prime, next_prime, random_prime, random_safe_prime

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 7919, 104729, 2**61 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 100, 7917, 2**61 + 1, 561, 41041, 825265]  # incl. Carmichael


class TestIsPrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_known_composites(self, c):
        assert not is_prime(c)

    def test_negative(self):
        assert not is_prime(-7)

    def test_large_prime(self):
        # 2^127 - 1 is a Mersenne prime, above the deterministic threshold? No,
        # but it exercises the randomized path when passed with a large rng.
        assert is_prime(2**127 - 1, default_rng(4))

    def test_large_composite(self):
        assert not is_prime((2**127 - 1) * (2**89 - 1), default_rng(4))


class TestNextPrime:
    def test_small_values(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 3
        assert next_prime(7919) == 7927

    def test_output_is_strictly_greater(self):
        assert next_prime(13) == 17


class TestRandomPrime:
    def test_bit_length_exact(self):
        rng = default_rng(8)
        for bits in [8, 16, 64]:
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_prime(p)

    def test_too_few_bits(self):
        with pytest.raises(ParameterError):
            random_prime(1)


class TestSafePrime:
    def test_structure(self):
        rng = default_rng(8)
        p = random_safe_prime(16, rng)
        assert is_prime(p)
        assert is_prime((p - 1) // 2)
        assert p.bit_length() == 16

    def test_too_few_bits(self):
        with pytest.raises(ParameterError):
            random_safe_prime(2)
