"""Settlement audit log: append/replay semantics and tamper-evidence."""

import pytest

from repro.obs.audit import (
    VERDICT_DEGRADED,
    VERDICT_PAID,
    VERDICT_REFUNDED,
    SettlementAuditLog,
    SettlementRecord,
)
from repro.obs.metrics import set_obs_enabled


@pytest.fixture()
def log():
    return SettlementAuditLog()


def _append_three(log):
    log.append(query_id="0", verdict=VERDICT_PAID, tokens_posted=3, gas=100, amount=5)
    log.append(query_id="1", verdict=VERDICT_REFUNDED, tokens_posted=2, gas=80, amount=5)
    log.append(query_id="2", verdict=VERDICT_DEGRADED, detail="submit gave up", fault_step=7)


class TestAppend:
    def test_sequence_numbers_are_contiguous(self, log):
        _append_three(log)
        assert [r.seq for r in log] == [0, 1, 2]

    def test_unknown_verdict_rejected(self, log):
        with pytest.raises(ValueError):
            log.append(query_id="0", verdict="maybe")

    def test_accumulator_int_stored_as_hex(self, log):
        record = log.append(query_id="0", verdict=VERDICT_PAID, accumulator=0xDEADBEEF)
        assert record.accumulator == "deadbeef"

    def test_extra_kwargs_captured(self, log):
        record = log.append(query_id="0", verdict=VERDICT_DEGRADED, fault_step=12)
        assert record.extra == {"fault_step": 12}

    def test_counter_per_verdict(self, log):
        from repro.common import perfstats

        before = perfstats.get("audit.settlement.paid")
        log.append(query_id="0", verdict=VERDICT_PAID)
        assert perfstats.get("audit.settlement.paid") == before + 1

    def test_disabled_append_is_noop(self, log):
        set_obs_enabled(False)
        assert log.append(query_id="0", verdict=VERDICT_PAID) is None
        assert len(log) == 0


class TestQuery:
    def test_records_filter_by_verdict(self, log):
        _append_three(log)
        assert [r.query_id for r in log.records(VERDICT_PAID)] == ["0"]
        assert len(log.records()) == 3

    def test_totals(self, log):
        _append_three(log)
        totals = log.totals()
        assert totals["records"] == 3
        assert totals["verdicts"] == {"paid": 1, "refunded": 1, "degraded": 1}
        assert totals["gas_total"] == 180
        assert totals["paid_out"] == 5
        assert totals["refunded"] == 5


class TestReplay:
    def test_jsonl_roundtrip(self, log, tmp_path):
        path = tmp_path / "audit.jsonl"
        log.set_sink(str(path))
        _append_three(log)
        replayed = SettlementAuditLog.load(str(path))
        assert replayed.records() == log.records()

    def test_replay_rejects_gaps(self, log, tmp_path):
        path = tmp_path / "audit.jsonl"
        log.set_sink(str(path))
        _append_three(log)
        lines = path.read_text().strip().splitlines()
        truncated = [lines[0], lines[2]]  # drop the middle record
        with pytest.raises(ValueError, match="gap"):
            SettlementAuditLog.replay(truncated)

    def test_replay_skips_blank_and_foreign_lines(self, log):
        record = SettlementRecord(
            seq=0, query_id="0", verdict=VERDICT_PAID, tokens_posted=1,
            result_count=0, accumulator=None, paid_to="cloud", amount=1,
            gas=10, attempts=1, trace_id=None,
        )
        lines = ["", '{"type": "span", "span_id": "x"}', record.to_json()]
        replayed = SettlementAuditLog.replay(lines)
        assert len(replayed) == 1
