"""Settlement audit log: append/replay semantics and tamper-evidence."""

import pytest

from repro.obs.audit import (
    VERDICT_DEGRADED,
    VERDICT_PAID,
    VERDICT_REFUNDED,
    SettlementAuditLog,
    SettlementRecord,
)
from repro.obs.metrics import set_obs_enabled


@pytest.fixture()
def log():
    return SettlementAuditLog()


def _append_three(log):
    log.append(query_id="0", verdict=VERDICT_PAID, tokens_posted=3, gas=100, amount=5)
    log.append(query_id="1", verdict=VERDICT_REFUNDED, tokens_posted=2, gas=80, amount=5)
    log.append(query_id="2", verdict=VERDICT_DEGRADED, detail="submit gave up", fault_step=7)


class TestAppend:
    def test_sequence_numbers_are_contiguous(self, log):
        _append_three(log)
        assert [r.seq for r in log] == [0, 1, 2]

    def test_unknown_verdict_rejected(self, log):
        with pytest.raises(ValueError):
            log.append(query_id="0", verdict="maybe")

    def test_accumulator_int_stored_as_hex(self, log):
        record = log.append(query_id="0", verdict=VERDICT_PAID, accumulator=0xDEADBEEF)
        assert record.accumulator == "deadbeef"

    def test_extra_kwargs_captured(self, log):
        record = log.append(query_id="0", verdict=VERDICT_DEGRADED, fault_step=12)
        assert record.extra == {"fault_step": 12}

    def test_counter_per_verdict(self, log):
        from repro.common import perfstats

        before = perfstats.get("audit.settlement.paid")
        log.append(query_id="0", verdict=VERDICT_PAID)
        assert perfstats.get("audit.settlement.paid") == before + 1

    def test_disabled_append_is_noop(self, log):
        set_obs_enabled(False)
        assert log.append(query_id="0", verdict=VERDICT_PAID) is None
        assert len(log) == 0


class TestQuery:
    def test_records_filter_by_verdict(self, log):
        _append_three(log)
        assert [r.query_id for r in log.records(VERDICT_PAID)] == ["0"]
        assert len(log.records()) == 3

    def test_totals(self, log):
        _append_three(log)
        totals = log.totals()
        assert totals["records"] == 3
        assert totals["verdicts"] == {"paid": 1, "refunded": 1, "degraded": 1}
        assert totals["gas_total"] == 180
        assert totals["paid_out"] == 5
        assert totals["refunded"] == 5


class TestReplay:
    def test_jsonl_roundtrip(self, log, tmp_path):
        path = tmp_path / "audit.jsonl"
        log.set_sink(str(path))
        _append_three(log)
        replayed = SettlementAuditLog.load(str(path))
        assert replayed.records() == log.records()

    def test_replay_rejects_gaps(self, log, tmp_path):
        path = tmp_path / "audit.jsonl"
        log.set_sink(str(path))
        _append_three(log)
        lines = path.read_text().strip().splitlines()
        truncated = [lines[0], lines[2]]  # drop the middle record
        with pytest.raises(ValueError, match="gap"):
            SettlementAuditLog.replay(truncated)

    def test_replay_skips_blank_and_foreign_lines(self, log):
        record = SettlementRecord(
            seq=0, query_id="0", verdict=VERDICT_PAID, tokens_posted=1,
            result_count=0, accumulator=None, paid_to="cloud", amount=1,
            gas=10, attempts=1, trace_id=None,
        )
        lines = ["", '{"type": "span", "span_id": "x"}', record.to_json()]
        replayed = SettlementAuditLog.replay(lines)
        assert len(replayed) == 1


class TestBlockModeLedger:
    """Block settlement's audit contract: contiguous seqs, height-stamped.

    A block settling many escrows appends one record per escrow — the seq
    numbers stay contiguous across the block boundary (replay would reject
    a gap), and every block-settled record carries the height it landed at
    in ``extra["block"]`` so the ledger can be grouped block by block.
    """

    def _block_system(self, tparams, owner_factory):
        from repro.common.rng import default_rng
        from repro.core.records import make_database
        from repro.system import SlicerSystem

        system = SlicerSystem(
            tparams,
            rng=default_rng(7),
            owner=owner_factory(tparams, seed=7),
            settlement_mode="block",
        )
        system.setup(
            make_database([(f"r{i}", v) for i, v in enumerate([7, 7, 9, 40])], bits=8)
        )
        return system

    def test_seq_contiguous_and_height_stamped(
        self, tparams, owner_factory, tmp_path
    ):
        from repro.core.query import Query
        from repro.obs import audit as obs_audit

        obs_audit.AUDIT_LOG.reset()
        sink = tmp_path / "audit.jsonl"
        obs_audit.AUDIT_LOG.set_sink(str(sink))
        try:
            system = self._block_system(tparams, owner_factory)
            system.search(Query.parse(7, "="))
            system.batch_search([Query.parse(9, "="), Query.parse(40, "=")])
        finally:
            obs_audit.AUDIT_LOG.set_sink(None)

        records = obs_audit.AUDIT_LOG.records()
        assert [r.seq for r in records] == list(range(len(records)))
        assert all(isinstance(r.extra["block"], int) for r in records)
        # The batch's two records settled in ONE block, distinct from the
        # single search's.
        batch_heights = {r.extra["block"] for r in records[-2:]}
        assert len(batch_heights) == 1
        assert records[0].extra["block"] not in batch_heights

        # Replay from the JSONL sink enforces the same contiguity and
        # round-trips the height.
        replayed = SettlementAuditLog.load(str(sink))
        assert [r.seq for r in replayed.records()] == [r.seq for r in records]
        assert [r.extra["block"] for r in replayed.records()] == [
            r.extra["block"] for r in records
        ]
        obs_audit.AUDIT_LOG.reset()

    def test_sync_records_carry_no_height(self, tparams, owner_factory):
        from repro.common.rng import default_rng
        from repro.core.query import Query
        from repro.core.records import make_database
        from repro.obs import audit as obs_audit
        from repro.system import SlicerSystem

        obs_audit.AUDIT_LOG.reset()
        system = SlicerSystem(
            tparams, rng=default_rng(7), owner=owner_factory(tparams, seed=7)
        )
        system.setup(make_database([("r0", 7)], bits=8))
        system.search(Query.parse(7, "="))
        (record,) = obs_audit.AUDIT_LOG.records()
        assert "block" not in record.extra
        obs_audit.AUDIT_LOG.reset()
