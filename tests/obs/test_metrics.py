"""Metrics registry: histograms, gauges, kill switch, deterministic slice."""

import pytest

from repro.common.perfstats import PerfStats
from repro.obs.metrics import DEFAULT_BOUNDS, Histogram, MetricsRegistry, set_obs_enabled


@pytest.fixture()
def registry():
    return MetricsRegistry(counters=PerfStats())


class TestHistogram:
    def test_buckets_are_upper_bound_inclusive(self):
        h = Histogram(bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 100.0, 1000.0):
            h.observe(v)
        # <=1, <=10, <=100, overflow
        assert h.buckets == [2, 1, 1, 1]
        assert h.count == 5
        assert h.total == pytest.approx(1106.5)

    def test_mean_and_empty_mean(self):
        h = Histogram(bounds=(10.0,))
        assert h.mean is None
        h.observe(4.0)
        h.observe(8.0)
        assert h.mean == pytest.approx(6.0)

    def test_quantile_returns_bucket_bound(self):
        h = Histogram(bounds=(1.0, 10.0, 100.0))
        for _ in range(9):
            h.observe(0.5)
        h.observe(50.0)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_quantile_empty_and_range_check(self):
        h = Histogram(bounds=(1.0,))
        assert h.quantile(0.5) is None
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_bounds_must_be_sorted_nonempty(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(5.0, 1.0))

    def test_merge_snapshot(self):
        a = Histogram(bounds=(1.0, 10.0))
        b = Histogram(bounds=(1.0, 10.0))
        a.observe(0.5)
        b.observe(5.0)
        b.observe(50.0)
        a.merge_snapshot(b.snapshot())
        assert a.buckets == [1, 1, 1]
        assert a.count == 3

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram(bounds=(1.0,))
        b = Histogram(bounds=(2.0,))
        with pytest.raises(ValueError):
            a.merge_snapshot(b.snapshot())

    def test_default_bounds_ascending(self):
        assert list(DEFAULT_BOUNDS) == sorted(DEFAULT_BOUNDS)


class TestRegistry:
    def test_counters_shared_with_perfstats_store(self):
        store = PerfStats()
        reg = MetricsRegistry(counters=store)
        reg.incr("a.b", 2)
        store.incr("a.b")
        assert reg.get("a.b") == 3

    def test_observe_creates_and_records(self, registry):
        registry.observe("gas.settle", 123.0)
        registry.observe("gas.settle", 456.0)
        hist = registry.histogram("gas.settle")
        assert hist is not None and hist.count == 2

    def test_gauges_last_write_wins(self, registry):
        registry.set_gauge("cache.size", 10)
        registry.set_gauge("cache.size", 20)
        assert registry.gauge("cache.size") == 20

    def test_merge_counter_delta(self, registry):
        registry.incr("x", 1)
        registry.merge_counter_delta({"x": 4, "y": 2})
        assert registry.get("x") == 5
        assert registry.get("y") == 2

    def test_snapshot_shape(self, registry):
        registry.incr("c")
        registry.observe("h", 1.0)
        registry.set_gauge("g", 7)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["gauges"] == {"g": 7}

    def test_deterministic_snapshot_excludes_shape_and_wallclock(self, registry):
        registry.incr("hash_to_prime.miss")
        registry.incr("parallel.dispatch")
        registry.observe("gas.settle", 100.0)
        registry.observe("span.search_s", 0.01)
        det = registry.deterministic_snapshot()
        assert "hash_to_prime.miss" in det["counters"]
        assert "parallel.dispatch" not in det["counters"]
        assert "gas.settle" in det["histograms"]
        assert "span.search_s" not in det["histograms"]

    def test_reset_clears_everything(self, registry):
        registry.incr("c")
        registry.observe("h", 1.0)
        registry.set_gauge("g", 1)
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "histograms": {}, "gauges": {}}


class TestKillSwitch:
    def test_disabled_observe_and_gauge_are_noops(self, registry):
        set_obs_enabled(False)
        registry.observe("h", 1.0)
        registry.set_gauge("g", 1)
        assert registry.histogram("h") is None
        assert registry.gauge("g") is None

    def test_counters_exempt_from_kill_switch(self, registry):
        set_obs_enabled(False)
        registry.incr("c")
        assert registry.get("c") == 1

    def test_env_values(self, monkeypatch):
        from repro.obs.metrics import OBS_ENV, obs_enabled

        set_obs_enabled(None)
        for off in ("0", "false", "off", "no"):
            monkeypatch.setenv(OBS_ENV, off)
            assert not obs_enabled()
        monkeypatch.setenv(OBS_ENV, "1")
        assert obs_enabled()
        monkeypatch.delenv(OBS_ENV)
        assert obs_enabled()
