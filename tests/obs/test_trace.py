"""Tracer: span nesting, ids/parents, events, sinks, kill switch."""

import json

import pytest

from repro.common.errors import TransportTimeout
from repro.obs.metrics import set_obs_enabled
from repro.obs.trace import TRACER, Tracer


@pytest.fixture()
def tracer():
    return Tracer(clock=iter(range(1000)).__next__)


class TestNesting:
    def test_root_span_has_no_parent(self, tracer):
        with tracer.span("search"):
            pass
        (span,) = tracer.export()
        assert span["parent_id"] is None
        assert span["trace_id"] != span["span_id"]

    def test_child_inherits_trace_id_and_parent(self, tracer):
        with tracer.span("search") as root:
            with tracer.span("submit") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id

    def test_children_finish_before_parent_in_export(self, tracer):
        with tracer.span("search"):
            with tracer.span("submit"):
                pass
            with tracer.span("verify_settle"):
                pass
        names = [s["name"] for s in tracer.export()]
        assert names == ["submit", "verify_settle", "search"]

    def test_sibling_roots_get_distinct_traces(self, tracer):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.export()
        assert a["trace_id"] != b["trace_id"]

    def test_ids_are_deterministic_sequence(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        fresh = Tracer(clock=iter(range(1000)).__next__)
        with fresh.span("a"):
            with fresh.span("b"):
                pass
        assert [s["span_id"] for s in tracer.export()] == [
            s["span_id"] for s in fresh.export()
        ]


class TestEventsAndStatus:
    def test_event_attaches_to_innermost_span(self, tracer):
        with tracer.span("search"):
            with tracer.span("submit"):
                tracer.event("fault", kind="drop", step=3)
        submit = tracer.export()[0]
        assert submit["events"] == [{"event": "fault", "kind": "drop", "step": 3}]

    def test_event_without_open_span_is_dropped(self, tracer):
        tracer.event("orphan")
        assert tracer.export() == []

    def test_set_attr(self, tracer):
        with tracer.span("search"):
            tracer.set_attr("query_id", 7)
        assert tracer.export()[0]["attrs"]["query_id"] == 7

    def test_exception_marks_status_and_propagates(self, tracer):
        with pytest.raises(TransportTimeout):
            with tracer.span("submit"):
                raise TransportTimeout("dropped")
        assert tracer.export()[0]["status"] == "error:TransportTimeout"

    def test_duration_from_injected_clock(self, tracer):
        with tracer.span("a"):
            pass
        span = tracer.export()[0]
        assert span["end_s"] - span["start_s"] == 1


class TestSinkAndLifecycle:
    def test_jsonl_sink_appends_records(self, tracer, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer.set_sink(str(path))
        with tracer.span("search"):
            with tracer.span("submit"):
                pass
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["type"] == "span" for line in lines)

    def test_reset_clears_buffer_and_restarts_ids(self, tracer):
        with tracer.span("a"):
            pass
        first_id = tracer.export()[0]["span_id"]
        tracer.reset()
        assert tracer.export() == []
        with tracer.span("a"):
            pass
        assert tracer.export()[0]["span_id"] == first_id

    def test_span_durations_reach_metrics(self):
        from repro.obs.metrics import REGISTRY

        with TRACER.span("unit_test_span"):
            pass
        hist = REGISTRY.histogram("span.unit_test_span_s")
        assert hist is not None and hist.count >= 1


class TestKillSwitch:
    def test_disabled_spans_yield_none_and_record_nothing(self, tracer):
        set_obs_enabled(False)
        with tracer.span("search") as span:
            assert span is None
            tracer.event("fault")
            tracer.set_attr("k", 1)
        assert tracer.export() == []

    def test_reenable_mid_session(self, tracer):
        set_obs_enabled(False)
        with tracer.span("off"):
            pass
        set_obs_enabled(True)
        with tracer.span("on"):
            pass
        assert [s["name"] for s in tracer.export()] == ["on"]
