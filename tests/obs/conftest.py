"""Shared hygiene for the observability suite.

The obs layer keeps process-wide globals (the tracer's span buffer, the
audit ledger, the registry's histograms, the kill-switch override).  Every
test here starts and ends clean so ordering never matters.
"""

import pytest

from repro.obs import audit, metrics, trace


@pytest.fixture(autouse=True)
def clean_obs_state():
    metrics.set_obs_enabled(None)
    trace.TRACER.reset()
    trace.TRACER.set_sink(None)
    audit.AUDIT_LOG.reset()
    audit.AUDIT_LOG.set_sink(None)
    yield
    metrics.set_obs_enabled(None)
    trace.TRACER.reset()
    trace.TRACER.set_sink(None)
    audit.AUDIT_LOG.reset()
    audit.AUDIT_LOG.set_sink(None)
