"""The ``python -m repro report`` command over real JSONL artifacts."""

import json

import pytest

from repro.cli import main
from repro.obs.audit import VERDICT_PAID, VERDICT_REFUNDED, SettlementAuditLog
from repro.obs.trace import Tracer


@pytest.fixture()
def audit_file(tmp_path):
    log = SettlementAuditLog()
    log.set_sink(str(tmp_path / "audit.jsonl"))
    log.append(query_id="0", verdict=VERDICT_PAID, tokens_posted=3, gas=120, amount=9)
    log.append(query_id="1", verdict=VERDICT_REFUNDED, tokens_posted=2, gas=90, amount=9)
    return str(tmp_path / "audit.jsonl")


@pytest.fixture()
def trace_file(tmp_path):
    tracer = Tracer(clock=iter(range(100)).__next__)
    tracer.set_sink(str(tmp_path / "trace.jsonl"))
    with tracer.span("search"):
        with tracer.span("submit"):
            tracer.event("fault", kind="drop", step=2)
        with tracer.span("verify_settle"):
            pass
    return str(tmp_path / "trace.jsonl")


class TestReportCommand:
    def test_audit_table_and_totals(self, audit_file, capsys):
        assert main(["report", "--audit", audit_file]) == 0
        out = capsys.readouterr().out
        assert "paid" in out and "refunded" in out
        assert "2 records" in out
        assert "gas 210" in out

    def test_verdict_filter(self, audit_file, capsys):
        assert main(["report", "--audit", audit_file, "--verdict", "paid"]) == 0
        out = capsys.readouterr().out
        rows = [line for line in out.splitlines() if line.lstrip().startswith(("0", "1"))]
        assert len(rows) == 1

    def test_trace_tree_rendering(self, trace_file, capsys):
        assert main(["report", "--trace", trace_file]) == 0
        out = capsys.readouterr().out
        assert "search" in out
        # children indented under the root
        assert "  submit" in out and "  verify_settle" in out
        # fault events rendered inline
        assert "fault" in out and "kind=drop" in out

    def test_combined_json_summary(self, audit_file, trace_file, capsys):
        assert main(["report", "--audit", audit_file, "--trace", trace_file, "--json"]) == 0
        out = capsys.readouterr().out
        decoder = json.JSONDecoder()
        chunks, pos = [], 0
        while pos < len(out.rstrip()):
            obj, end = decoder.raw_decode(out, pos)
            chunks.append(obj)
            pos = end + 1  # skip the newline joining the summaries
        audit_summary, trace_summary = chunks
        assert audit_summary["records"] == 2
        assert trace_summary["spans"] == 3 and trace_summary["traces"] == 1

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["report", "--audit", missing]) == 1
        assert "cannot render report" in capsys.readouterr().err

    def test_truncated_audit_fails_loudly(self, audit_file, capsys):
        lines = open(audit_file).read().strip().splitlines()
        with open(audit_file, "w") as handle:
            handle.write(lines[1] + "\n")  # drop seq 0: a gap
        assert main(["report", "--audit", audit_file]) == 1
        assert "gap" in capsys.readouterr().err

    def test_no_inputs_prints_hint(self, capsys):
        assert main(["report"]) == 0
        assert "nothing to report" in capsys.readouterr().out
