"""The ``python -m repro report`` command over real JSONL artifacts."""

import json

import pytest

from repro.cli import main
from repro.obs.audit import VERDICT_PAID, VERDICT_REFUNDED, SettlementAuditLog
from repro.obs.trace import Tracer


@pytest.fixture()
def audit_file(tmp_path):
    log = SettlementAuditLog()
    log.set_sink(str(tmp_path / "audit.jsonl"))
    log.append(query_id="0", verdict=VERDICT_PAID, tokens_posted=3, gas=120, amount=9)
    log.append(query_id="1", verdict=VERDICT_REFUNDED, tokens_posted=2, gas=90, amount=9)
    return str(tmp_path / "audit.jsonl")


@pytest.fixture()
def trace_file(tmp_path):
    tracer = Tracer(clock=iter(range(100)).__next__)
    tracer.set_sink(str(tmp_path / "trace.jsonl"))
    with tracer.span("search"):
        with tracer.span("submit"):
            tracer.event("fault", kind="drop", step=2)
        with tracer.span("verify_settle"):
            pass
    return str(tmp_path / "trace.jsonl")


class TestReportCommand:
    def test_audit_table_and_totals(self, audit_file, capsys):
        assert main(["report", "--audit", audit_file]) == 0
        out = capsys.readouterr().out
        assert "paid" in out and "refunded" in out
        assert "2 records" in out
        assert "gas 210" in out

    def test_verdict_filter(self, audit_file, capsys):
        assert main(["report", "--audit", audit_file, "--verdict", "paid"]) == 0
        out = capsys.readouterr().out
        rows = [line for line in out.splitlines() if line.lstrip().startswith(("0", "1"))]
        assert len(rows) == 1

    def test_trace_tree_rendering(self, trace_file, capsys):
        assert main(["report", "--trace", trace_file]) == 0
        out = capsys.readouterr().out
        assert "search" in out
        # children indented under the root
        assert "  submit" in out and "  verify_settle" in out
        # fault events rendered inline
        assert "fault" in out and "kind=drop" in out

    def test_combined_json_summary(self, audit_file, trace_file, capsys):
        assert main(["report", "--audit", audit_file, "--trace", trace_file, "--json"]) == 0
        out = capsys.readouterr().out
        decoder = json.JSONDecoder()
        chunks, pos = [], 0
        while pos < len(out.rstrip()):
            obj, end = decoder.raw_decode(out, pos)
            chunks.append(obj)
            pos = end + 1  # skip the newline joining the summaries
        audit_summary, trace_summary = chunks
        assert audit_summary["records"] == 2
        assert trace_summary["spans"] == 3 and trace_summary["traces"] == 1

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["report", "--audit", missing]) == 1
        assert "cannot render report" in capsys.readouterr().err

    def test_truncated_audit_fails_loudly(self, audit_file, capsys):
        lines = open(audit_file).read().strip().splitlines()
        with open(audit_file, "w") as handle:
            handle.write(lines[1] + "\n")  # drop seq 0: a gap
        assert main(["report", "--audit", audit_file]) == 1
        assert "gap" in capsys.readouterr().err

    def test_no_inputs_prints_hint(self, capsys):
        assert main(["report"]) == 0
        assert "nothing to report" in capsys.readouterr().out


@pytest.fixture()
def metrics_file(tmp_path):
    path = tmp_path / "BENCH_fake.json"
    path.write_text(json.dumps({
        "counters": {
            "cloud.entry_cache.hit": 9,
            "cloud.entry_cache.miss": 3,
            "cloud.entry_cache.spliced_entries": 42,
            "cloud.entry_cache.evicted": 1,
            "cloud.collect.index_probes": 17,
            "batch.unique_tokens": 5,
            "batch.dedup_saved": 7,
            "hash_to_prime.hit": 2,
            "hash_to_prime.miss": 8,
        }
    }))
    return str(path)


class TestMetricsSection:
    def test_cache_table_and_savings(self, metrics_file, capsys):
        assert main(["report", "--metrics", metrics_file]) == 0
        out = capsys.readouterr().out
        assert "cloud.entry_cache" in out and "0.75" in out
        assert "spliced 42 entries" in out
        assert "17 index probes" in out
        assert "5 unique tokens" in out and "7 duplicate collections" in out

    def test_never_consulted_cache_shows_na(self, metrics_file, capsys):
        """A known cache with zero hits and misses renders as n/a, not 0.00 —
        never-asked is a different finding than always-missing."""
        assert main(["report", "--metrics", metrics_file]) == 0
        out = capsys.readouterr().out
        trapdoor_row = next(
            line for line in out.splitlines() if line.startswith("trapdoor_chain")
        )
        assert "n/a" in trapdoor_row

    def test_json_stats(self, metrics_file, capsys):
        assert main(["report", "--metrics", metrics_file, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["cloud.entry_cache"]["hits"] == 9
        assert stats["cloud.entry_cache"]["hit_rate"] == 0.75
        assert stats["cloud.entry_cache"]["evicted"] == 1
        assert stats["trapdoor_chain"]["hit_rate"] is None

    def test_raw_counter_dict_accepted(self, tmp_path, capsys):
        path = tmp_path / "counters.json"
        path.write_text(json.dumps({"cloud.entry_cache.hit": 1, "cloud.entry_cache.miss": 1}))
        assert main(["report", "--metrics", str(path)]) == 0
        assert "0.50" in capsys.readouterr().out

    def test_non_counter_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"counters": {"x": "not-an-int"}}))
        assert main(["report", "--metrics", str(path)]) == 1
        assert "not a counter snapshot" in capsys.readouterr().err


class TestBlockSettlementTable:
    def test_per_block_table_rendered_for_block_ledgers(self, tmp_path, capsys):
        log = SettlementAuditLog()
        log.set_sink(str(tmp_path / "blocks.jsonl"))
        log.append(query_id="0", verdict=VERDICT_PAID, gas=100, amount=9, block=3)
        log.append(query_id="1", verdict=VERDICT_REFUNDED, gas=90, amount=9, block=3)
        log.append(query_id="2", verdict=VERDICT_PAID, gas=110, amount=9, block=5)
        assert main(["report", "--audit", str(tmp_path / "blocks.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "settlements by block:" in out
        lines = [l for l in out.splitlines() if l.strip().startswith(("3", "5"))]
        # block 3: two settlements (one paid, one refunded), block 5: one.
        row3 = next(l for l in lines if l.split()[0] == "3")
        assert row3.split()[1:5] == ["2", "1", "1", "190"]
        row5 = next(l for l in lines if l.split()[0] == "5")
        assert row5.split()[1:5] == ["1", "1", "0", "110"]

    def test_sync_ledger_gets_no_block_section(self, audit_file, capsys):
        assert main(["report", "--audit", audit_file]) == 0
        assert "settlements by block:" not in capsys.readouterr().out
