"""CLI commands exercised end to end (each returns 0 and prints sanely)."""

import pytest

from repro.cli import main


class TestDemo:
    def test_order_query(self, capsys):
        assert main(["demo", "--records", "20", "--query", "100>"]) == 0
        out = capsys.readouterr().out
        assert "contract deployed" in out
        assert "verified=True" in out

    def test_equality_query(self, capsys):
        assert main(["demo", "--records", "20", "--query", "42="]) == 0
        assert "verified=True" in capsys.readouterr().out

    def test_less_query(self, capsys):
        assert main(["demo", "--records", "15", "--query", "7<"]) == 0


class TestFeatures:
    def test_prints_table(self, capsys):
        assert main(["features"]) == 0
        out = capsys.readouterr().out
        assert "Slicer (ours)" in out
        assert "Public verifiability" in out


class TestGas:
    def test_measures_costs(self, capsys):
        assert main(["gas", "--modulus-bits", "512"]) == 0
        out = capsys.readouterr().out
        assert "Deployment" in out
        assert "gas" in out
        assert "relative cost" in out


class TestLeakage:
    def test_differing_values(self, capsys):
        assert main(["leakage", "5", "8", "--bits", "4"]) == 0
        out = capsys.readouterr().out
        assert "first differing bit: 1" in out

    def test_equal_values(self, capsys):
        assert main(["leakage", "9", "9"]) == 0
        assert "values are equal" in capsys.readouterr().out


class TestBenchReport:
    def test_reads_report(self, capsys, tmp_path):
        path = tmp_path / "fig.txt"
        path.write_text("records  8-bit\nx 1 2 3\n100 1.0 2.0 4.0\n")
        assert main(["bench-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "records" in out
        assert "trend" in out

    def test_missing_file(self, capsys):
        assert main(["bench-report", "/nonexistent/report.txt"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestSoreDemo:
    def test_fig2_example(self, capsys):
        assert main(["sore-demo"]) == 0
        out = capsys.readouterr().out
        # The paper's Fig. 2 outcomes:
        assert "vs 5: MATCH at bit 3" in out  # 6 > 5 at first differing bit 3
        assert "vs 8: no match" in out  # 6 > 8 false
        assert "vs 8: MATCH at bit 1" in out  # 4 < 8 at bit 1

    def test_custom_values(self, capsys):
        assert main(["sore-demo", "--bits", "6", "--values", "10,50", "--queries", "30>"]) == 0
        out = capsys.readouterr().out
        assert "vs 10: MATCH" in out
        assert "vs 50: no match" in out
