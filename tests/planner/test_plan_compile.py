"""Plan compilation: leg decomposition, interval merging, rejection cases."""

import pytest

from repro.common.errors import ParameterError
from repro.core.query import And, MatchCondition, Query, Range
from repro.core.records import AttributedDatabase, Database
from repro.planner import compile_plan, compile_plans

BITS = 8
DOMAIN_HI = (1 << BITS) - 1


def legs_of(expr):
    return compile_plan(expr, BITS).legs


class TestLegDecomposition:
    def test_interior_range_is_two_order_legs(self):
        legs = legs_of(Range(10, 50))
        assert legs == (
            Query(9, MatchCondition.LESS),
            Query(51, MatchCondition.GREATER),
        )

    def test_left_edge_range_is_one_greater_leg(self):
        assert legs_of(Range(0, 20)) == (Query(21, MatchCondition.GREATER),)

    def test_right_edge_range_is_one_less_leg(self):
        assert legs_of(Range(200, DOMAIN_HI)) == (Query(199, MatchCondition.LESS),)

    def test_point_range_is_one_equality_leg(self):
        assert legs_of(Range(42, 42)) == (Query(42, MatchCondition.EQUAL),)

    def test_bare_query_passes_through_as_interval(self):
        plan = compile_plan(Query(42, MatchCondition.EQUAL), BITS)
        assert plan.legs == (Query(42, MatchCondition.EQUAL),)
        assert plan.intervals == (("", 42, 42),)

    def test_order_query_normalises_to_edge_range(self):
        # Query(50, ">") selects a < 50, i.e. [0, 49] -> one GREATER leg.
        plan = compile_plan(Query(50, MatchCondition.GREATER), BITS)
        assert plan.intervals == (("", 0, 49),)
        assert plan.legs == (Query(50, MatchCondition.GREATER),)

    def test_less_query_normalises_to_right_edge(self):
        # Query(200, "<") selects a > 200, i.e. [201, 255] -> one LESS leg.
        plan = compile_plan(Query(200, MatchCondition.LESS), BITS)
        assert plan.intervals == (("", 201, DOMAIN_HI),)
        assert plan.legs == (Query(200, MatchCondition.LESS),)

    def test_leg_order_is_less_then_greater(self):
        legs = legs_of(Range(100, 120))
        assert [leg.condition for leg in legs] == [
            MatchCondition.LESS,
            MatchCondition.GREATER,
        ]

    def test_attributes_emit_in_first_appearance_order(self):
        plan = compile_plan(
            And(Range(10, 20, "b"), Range(30, 40, "a")), BITS
        )
        assert [attr for attr, _, _ in plan.intervals] == ["b", "a"]
        assert [leg.attribute for leg in plan.legs] == ["b", "b", "a", "a"]


class TestIntervalMerging:
    def test_same_attribute_ranges_intersect(self):
        plan = compile_plan(And(Range(10, 50), Range(20, 80)), BITS)
        assert plan.intervals == (("", 20, 50),)
        assert len(plan.legs) == 2
        assert plan.naive_legs == 4
        assert plan.merged_away == 2

    def test_range_and_query_merge(self):
        # a in [30, 120] AND a == 99  ->  point interval [99, 99].
        plan = compile_plan(
            And(Range(30, 120), Query(99, MatchCondition.EQUAL)), BITS
        )
        assert plan.intervals == (("", 99, 99),)
        assert plan.legs == (Query(99, MatchCondition.EQUAL),)

    def test_repeated_atom_dedups_to_one_leg(self):
        plan = compile_plan(
            And(Query(7, MatchCondition.EQUAL), Query(7, MatchCondition.EQUAL)), BITS
        )
        assert plan.legs == (Query(7, MatchCondition.EQUAL),)

    def test_distinct_attributes_do_not_merge(self):
        plan = compile_plan(And(Range(10, 50, "x"), Range(10, 50, "y")), BITS)
        assert len(plan.intervals) == 2
        assert len(plan.legs) == 4

    def test_vacuous_full_domain_interval_dropped_when_others_constrain(self):
        plan = compile_plan(
            And(Range(0, DOMAIN_HI, "x"), Range(10, 20, "y")), BITS
        )
        assert plan.intervals == (("y", 10, 20),)

    def test_atoms_counts_flattened_terms(self):
        plan = compile_plan(And(Range(10, 50), And(Range(20, 80), Range(30, 90))), BITS)
        assert plan.atoms == 3


class TestRejection:
    def test_unsatisfiable_conjunction_raises_at_compile(self):
        with pytest.raises(ParameterError, match="unsatisfiable conjunction"):
            compile_plan(And(Range(10, 20), Range(30, 40)), BITS)

    def test_unsatisfiable_term_raises(self):
        # Query(0, ">") selects a < 0 — nothing.
        with pytest.raises(ParameterError, match="unsatisfiable plan term"):
            compile_plan(Query(0, MatchCondition.GREATER), BITS)

    def test_whole_domain_range_raises(self):
        with pytest.raises(ParameterError, match="whole domain"):
            compile_plan(Range(0, DOMAIN_HI), BITS)

    def test_all_vacuous_conjunction_raises(self):
        with pytest.raises(ParameterError, match="whole domain"):
            compile_plan(
                And(Range(0, DOMAIN_HI, "x"), Range(0, DOMAIN_HI, "y")), BITS
            )

    def test_empty_range_rejected(self):
        with pytest.raises(ParameterError, match="empty range"):
            compile_plan(Range(50, 10), BITS)

    def test_out_of_domain_bounds_rejected(self):
        with pytest.raises(ParameterError, match="outside the value domain"):
            compile_plan(Range(0, 1 << BITS), BITS)

    def test_unsupported_expression_rejected(self):
        with pytest.raises(ParameterError, match="unsupported plan expression"):
            compile_plan("not a plan", BITS)


class TestOracle:
    def test_oracle_matches_predicates_exhaustively(self):
        db = Database(4)
        for value in range(16):
            db.add(value, value)
        for lo in range(16):
            for hi in range(lo, 16):
                if lo == 0 and hi == 15:
                    continue  # whole-domain plans are rejected
                plan = compile_plan(Range(lo, hi), 4)
                expected = {
                    record.record_id for record in db if lo <= record.value <= hi
                }
                assert plan.oracle_ids(db) == expected

    def test_oracle_intersects_across_attributes(self):
        db = AttributedDatabase(BITS)
        db.add(1, {"x": 10, "y": 200})
        db.add(2, {"x": 10, "y": 5})
        db.add(3, {"x": 100, "y": 200})
        plan = compile_plan(And(Range(0, 50, "x"), Range(100, 255, "y")), BITS)
        assert plan.oracle_ids(db) == {
            record.record_id for record in db if record.record_id.endswith(b"\x01")
        }

    def test_compile_plans_batches(self):
        plans = compile_plans([Range(10, 50), Range(42, 42)], BITS)
        assert [len(p.legs) for p in plans] == [2, 1]


class TestDslAtoms:
    def test_and_flattens_nested(self):
        inner = And(Range(1, 2), Range(3, 4))
        outer = And(Range(0, 0), inner)
        assert len(outer.terms) == 3

    def test_and_rejects_empty(self):
        with pytest.raises(ParameterError, match="at least one term"):
            And()

    def test_and_rejects_junk_terms(self):
        with pytest.raises(ParameterError, match="unsupported plan term"):
            And(Range(1, 2), 17)

    def test_query_range_helper(self):
        rng = Query.range(5, 9, "lat")
        assert rng == Range(5, 9, "lat")

    def test_range_predicate(self):
        pred = Range(10, 20).predicate()
        assert pred(10) and pred(20) and not pred(9) and not pred(21)

    def test_describe_strings(self):
        assert Range(3, 9, "lat").describe() == "lat 3 <= a <= 9"
        assert "AND" in And(Range(1, 2), Range(3, 4)).describe()


class TestAttributeValidation:
    def test_parse_rejects_bare_attribute_on_multi_index(self):
        with pytest.raises(ParameterError, match="multi-attribute"):
            Query.parse(5, "=", attributes=("lat", "city"))

    def test_parse_rejects_unknown_attribute(self):
        with pytest.raises(ParameterError, match="unknown attribute"):
            Query.parse(5, "=", "lon", attributes=("lat", "city"))

    def test_parse_accepts_known_attribute(self):
        query = Query.parse(5, "=", "lat", attributes=("lat", "city"))
        assert query.attribute == "lat"

    def test_parse_accepts_bare_attribute_on_plain_index(self):
        query = Query.parse(5, "=", attributes=("",))
        assert query.attribute == ""

    def test_check_attribute_noop_on_empty_set(self):
        Query(5, MatchCondition.EQUAL).check_attribute(())
