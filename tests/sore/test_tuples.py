"""SORE tuple construction, including the paper's Fig. 2 worked example."""

import pytest

from repro.common.errors import ParameterError
from repro.sore.tuples import (
    OrderCondition,
    SoreTuple,
    ciphertext_tuples,
    cmp_bits,
    common_tuples,
    token_tuples,
)

GT, LT = OrderCondition.GREATER, OrderCondition.LESS


class TestOrderCondition:
    def test_holds(self):
        assert GT.holds(6, 5)
        assert not GT.holds(5, 6)
        assert LT.holds(5, 6)
        assert not LT.holds(6, 6)

    def test_flipped(self):
        assert GT.flipped() is LT
        assert LT.flipped() is GT

    def test_from_symbol(self):
        assert OrderCondition.from_symbol(">") is GT
        assert OrderCondition.from_symbol("<") is LT
        with pytest.raises(ParameterError):
            OrderCondition.from_symbol("=")


class TestCmpBits:
    def test_values(self):
        assert cmp_bits(1, 0) is GT
        assert cmp_bits(0, 1) is LT

    def test_equal_bits_rejected(self):
        with pytest.raises(ParameterError):
            cmp_bits(1, 1)


class TestTupleShapes:
    def test_count_equals_bits(self):
        assert len(token_tuples(5, GT, 4)) == 4
        assert len(ciphertext_tuples(5, 4)) == 4

    def test_prefix_lengths_increase(self):
        tuples = token_tuples(5, GT, 4)
        assert [len(t.prefix) for t in tuples] == [0, 1, 2, 3]
        assert [t.index for t in tuples] == [1, 2, 3, 4]

    def test_token_carries_value_bits(self):
        # 5 = 0101
        tuples = token_tuples(5, GT, 4)
        assert [t.bit for t in tuples] == [0, 1, 0, 1]
        assert all(t.flag is GT for t in tuples)

    def test_ciphertext_inverts_bits(self):
        # ct carries !v_i with cmp(!v_i, v_i)
        tuples = ciphertext_tuples(5, 4)
        assert [t.bit for t in tuples] == [1, 0, 1, 0]
        assert [t.flag for t in tuples] == [GT, LT, GT, LT]

    def test_out_of_domain_rejected(self):
        with pytest.raises(ParameterError):
            token_tuples(16, GT, 4)
        with pytest.raises(ParameterError):
            ciphertext_tuples(-1, 4)


class TestFig2Example:
    """The paper's illustrative example: plaintexts 5=(0101), 8=(1000);
    queries 6=(0110) and 4=(0100)."""

    def test_query6_gt_matches_5(self):
        # 6 > 5 holds: exactly one common tuple.
        common = common_tuples(token_tuples(6, GT, 4), ciphertext_tuples(5, 4))
        assert len(common) == 1
        # The match is at bit index 3 (first differing bit of 6 and 5).
        assert common[0].index == 3

    def test_query6_gt_not_match_8(self):
        # 6 > 8 is false: no common tuple.
        assert common_tuples(token_tuples(6, GT, 4), ciphertext_tuples(8, 4)) == []

    def test_query4_lt_matches_8(self):
        # 4 < 8 holds: common tuple at the first bit.
        common = common_tuples(token_tuples(4, LT, 4), ciphertext_tuples(8, 4))
        assert len(common) == 1
        assert common[0].index == 1

    def test_query4_lt_not_match_5(self):
        # 4 < 5 holds! (paper queries 4<a; 5 qualifies)
        common = common_tuples(token_tuples(4, LT, 4), ciphertext_tuples(5, 4))
        assert len(common) == 1

    def test_equal_values_never_match_order(self):
        assert common_tuples(token_tuples(5, GT, 4), ciphertext_tuples(5, 4)) == []
        assert common_tuples(token_tuples(5, LT, 4), ciphertext_tuples(5, 4)) == []


class TestEncoding:
    def test_injective(self):
        seen = set()
        for v in range(16):
            for t in ciphertext_tuples(v, 4):
                seen.add(t.encode())
        # distinct tuples encode distinctly
        distinct = {t for v in range(16) for t in ciphertext_tuples(v, 4)}
        assert len(seen) == len(distinct)

    def test_attribute_separates_namespaces(self):
        a = token_tuples(5, GT, 4, attribute="age")[0]
        b = token_tuples(5, GT, 4, attribute="salary")[0]
        assert a.encode() != b.encode()

    def test_flag_in_encoding(self):
        a = SoreTuple("", "01", 1, GT)
        b = SoreTuple("", "01", 1, LT)
        assert a.encode() != b.encode()
