"""SORE Token/Encrypt/Compare — exhaustive Theorem 1 check on a small domain."""

import pytest

from repro.common.rng import default_rng
from repro.sore.scheme import SoreScheme
from repro.sore.tuples import OrderCondition

GT, LT = OrderCondition.GREATER, OrderCondition.LESS


@pytest.fixture()
def scheme():
    return SoreScheme(b"k" * 16, bits=4, rng=default_rng(1))


class TestTheorem1Exhaustive:
    """x oc y  <=>  Compare(Encrypt(y), Token(x, oc)), over the whole 4-bit domain."""

    def test_greater_exhaustive(self, scheme):
        for x in range(16):
            token = scheme.token(x, GT)
            for y in range(16):
                ct = scheme.encrypt(y)
                assert SoreScheme.compare(ct, token) == (x > y), (x, y)

    def test_less_exhaustive(self, scheme):
        for x in range(16):
            token = scheme.token(x, LT)
            for y in range(16):
                ct = scheme.encrypt(y)
                assert SoreScheme.compare(ct, token) == (x < y), (x, y)

    def test_common_count_never_exceeds_one(self, scheme):
        for x in range(16):
            for oc in (GT, LT):
                token = scheme.token(x, oc)
                for y in range(16):
                    assert scheme.common_image_count(scheme.encrypt(y), token) <= 1


class TestCiphertextShape:
    def test_sizes(self, scheme):
        assert len(scheme.encrypt(5)) == 4
        assert len(scheme.token(5, GT)) == 4

    def test_shuffle_hides_position_but_not_content(self):
        # Same value, two scheme instances with different shuffle RNGs:
        # the image *sets* agree, the orders may differ.
        a = SoreScheme(b"k" * 16, 8, rng=default_rng(1))
        b = SoreScheme(b"k" * 16, 8, rng=default_rng(2))
        ct_a, ct_b = a.encrypt(77), b.encrypt(77)
        assert set(ct_a.images) == set(ct_b.images)

    def test_key_separation(self):
        a = SoreScheme(b"a" * 16, 4, rng=default_rng(1))
        b = SoreScheme(b"b" * 16, 4, rng=default_rng(1))
        assert set(a.encrypt(5).images) != set(b.encrypt(5).images)

    def test_attribute_separation(self):
        base = SoreScheme(b"k" * 16, 4, rng=default_rng(1))
        attr = SoreScheme(b"k" * 16, 4, rng=default_rng(1), attribute="age")
        assert set(base.encrypt(5).images) != set(attr.encrypt(5).images)

    def test_cross_attribute_never_compares(self):
        age = SoreScheme(b"k" * 16, 4, rng=default_rng(1), attribute="age")
        pay = SoreScheme(b"k" * 16, 4, rng=default_rng(2), attribute="pay")
        token = age.token(15, GT)
        for y in range(16):
            assert not SoreScheme.compare(pay.encrypt(y), token)


class TestEdgeValues:
    def test_zero_greater_matches_nothing(self, scheme):
        token = scheme.token(0, GT)
        assert all(not SoreScheme.compare(scheme.encrypt(y), token) for y in range(16))

    def test_max_less_matches_nothing(self, scheme):
        token = scheme.token(15, LT)
        assert all(not SoreScheme.compare(scheme.encrypt(y), token) for y in range(16))

    def test_max_greater_matches_all_but_self(self, scheme):
        token = scheme.token(15, GT)
        matches = [y for y in range(16) if SoreScheme.compare(scheme.encrypt(y), token)]
        assert matches == list(range(15))

    def test_tuple_images_introspection(self, scheme):
        images = scheme.tuple_images(5)
        assert len(images) == 4
        assert set(images) == set(scheme.encrypt(5).images)
