"""Leakage profile: SORE leaks the first differing bit, and nothing more."""

import pytest

from repro.common.bitstring import first_differing_bit
from repro.sore.leakage import (
    ciphertext_side_leakage,
    matched_tuple,
    predicted_leakage,
    recovered_first_differing_bit,
    token_side_leakage,
)
from repro.sore.tuples import OrderCondition

GT, LT = OrderCondition.GREATER, OrderCondition.LESS
BITS = 6


class TestLeakageEqualsPrediction:
    def test_token_side_exhaustive(self):
        for x in range(0, 64, 3):
            for y in range(0, 64, 5):
                assert token_side_leakage(x, y, GT, BITS) == predicted_leakage(x, y, BITS)

    def test_ciphertext_side_exhaustive(self):
        for x in range(0, 64, 3):
            for y in range(0, 64, 5):
                assert ciphertext_side_leakage(x, y, BITS) == predicted_leakage(x, y, BITS)

    def test_equal_values_leak_full_agreement(self):
        assert token_side_leakage(42, 42, GT, BITS) == BITS
        assert ciphertext_side_leakage(42, 42, BITS) == BITS

    def test_opposite_conditions_share_no_tuples(self):
        # Same value, different oc: flags differ on every tuple.
        assert token_side_leakage(42, 42, GT, BITS) == BITS
        from repro.sore.tuples import token_tuples

        gt = set(token_tuples(42, GT, BITS))
        lt = set(token_tuples(42, LT, BITS))
        assert gt & lt == set()


class TestAdversaryRecovery:
    def test_recover_first_differing_bit(self):
        for x, y in [(0, 63), (32, 33), (5, 4)]:
            count = token_side_leakage(x, y, GT, BITS)
            assert recovered_first_differing_bit(count, BITS, True) == first_differing_bit(
                x, y, BITS
            )

    def test_equal_values_recover_none(self):
        assert recovered_first_differing_bit(BITS, BITS, False) is None

    def test_impossible_count_rejected(self):
        with pytest.raises(ValueError):
            recovered_first_differing_bit(BITS, BITS, True)


class TestMatchedTuple:
    def test_match_position_is_first_differing_bit(self):
        for x, y in [(40, 10), (63, 0), (33, 32)]:
            t = matched_tuple(x, y, GT, BITS)
            assert t is not None
            assert t.index == first_differing_bit(x, y, BITS)

    def test_no_match_when_condition_fails(self):
        assert matched_tuple(10, 40, GT, BITS) is None
        assert matched_tuple(40, 10, LT, BITS) is None
        assert matched_tuple(7, 7, GT, BITS) is None
