"""Observability invariants (ISSUE 4 acceptance properties).

Three pillars:

* **No worker-blind counters** — the registry's deterministic snapshot
  (counters + histogram bucket counts, minus execution-shape ``parallel.*``
  counters and wall-clock ``*_s`` histograms) is byte-identical at
  ``workers ∈ {0, 2}``, for the direct path and for a fixed-seed chaos run
  alike.  This is the headline bugfix: before the executor merged worker
  counter deltas (and warmed the parent's kernel caches back), every
  fanned-out run under-reported and diverged.
* **Connected traces** — a full chaos search yields one span tree: a
  ``search`` root whose trace contains submit → cloud.search →
  verify_settle, with transport fault injections and retries attached as
  events, so a failed search is diagnosable from its trace alone.
* **Audit ≡ outcome** — every search appends exactly one settlement record
  whose verdict mirrors its :class:`~repro.system.SearchOutcome`, and a
  degraded outcome carries structured attribution (exception class, retried
  label, FaultPlan step) that matches the audit entry.
"""

import json

from repro.chaos import ChaosTransport, FaultPlan, profile_named
from repro.chaos.faults import FaultProfile
from repro.common.rng import default_rng
from repro.core.query import Query
from repro.core.records import make_database
from repro.crypto import kernels
from repro.obs import audit as obs_audit
from repro.obs import trace
from repro.obs.metrics import REGISTRY
from repro.system import SlicerSystem

VALUES = [7, 7, 9, 40, 41, 64, 3, 200]
EXTRA = [7, 41]
QUERIES = [
    Query.parse(7, "="),
    Query.parse(40, ">"),
    Query.parse(41, "<"),
]


def database(values, start=0):
    return make_database(
        [(f"rec-{start + i}", v) for i, v in enumerate(values)], bits=8
    )


def build_system(tparams, owner_factory, workers, seed, transport=None):
    params = tparams.with_workers(workers)
    system = SlicerSystem(
        params,
        rng=default_rng(seed),
        owner=owner_factory(params, seed=seed),
        transport=transport,
    )
    system.setup(database(VALUES))
    return system


def run_scenario(system):
    """Search x3, insert, search x3 — repeats exercise every cache layer."""
    outcomes = [system.search(q) for q in QUERIES]
    system.insert(database(EXTRA, start=100))
    outcomes.extend(system.search(q) for q in QUERIES)
    return outcomes


def fresh_run(tparams, owner_factory, workers, transport=None, seed=7):
    """One cold, self-contained run: every process-wide store reset first.

    Cold kernel caches matter: the warm-back fix is only observable when
    both legs start from the same cache state — a pre-warmed parent would
    mask a worker that failed to ship its entries home.
    """
    REGISTRY.reset()
    kernels.clear_caches()
    trace.TRACER.reset()
    obs_audit.AUDIT_LOG.reset()
    system = build_system(tparams, owner_factory, workers, seed=seed, transport=transport)
    outcomes = run_scenario(system)
    return system, outcomes


def canonical(snapshot) -> str:
    """Byte-identity is asserted on the JSON encoding, not dict equality."""
    return json.dumps(snapshot, sort_keys=True)


class TestCrossWorkerSnapshotEquality:
    def test_direct_snapshots_identical_at_workers_0_and_2(
        self, tparams, owner_factory
    ):
        legs = {}
        for workers in (0, 2):
            fresh_run(tparams, owner_factory, workers)
            legs[workers] = REGISTRY.deterministic_snapshot()
            if workers == 2:
                # the leg must actually have fanned out, or this proves nothing
                assert REGISTRY.get("parallel.dispatch") > 0
        assert canonical(legs[0]) == canonical(legs[2])
        # and the snapshot is not trivially empty (contract counters fire
        # regardless of the kernel layer; kernel counters only with it on)
        assert legs[0]["counters"].get("contract.settle.paid", 0) > 0
        if kernels.kernels_enabled():
            assert legs[0]["counters"].get("hash_to_prime.miss", 0) > 0
        assert legs[0]["histograms"]

    def test_chaos_snapshots_identical_at_workers_0_and_2(
        self, tparams, owner_factory
    ):
        legs = {}
        for workers in (0, 2):
            transport = ChaosTransport(FaultPlan(profile_named("lossy"), seed=9))
            fresh_run(tparams, owner_factory, workers, transport=transport)
            legs[workers] = REGISTRY.deterministic_snapshot()
            if workers == 2:
                assert REGISTRY.get("parallel.dispatch") > 0
            # the chaos schedule actually fired
            assert any(
                k.startswith("chaos.injected.") for k in legs[workers]["counters"]
            )
        assert canonical(legs[0]) == canonical(legs[2])

    def test_parallel_shape_counters_exist_but_are_excluded(
        self, tparams, owner_factory
    ):
        fresh_run(tparams, owner_factory, 2)
        assert REGISTRY.get("parallel.dispatch") > 0
        det = REGISTRY.deterministic_snapshot()
        assert not any(k.startswith("parallel.") for k in det["counters"])


def spans_by_trace(records):
    trees = {}
    for span in records:
        trees.setdefault(span["trace_id"], []).append(span)
    return trees


class TestConnectedChaosTrace:
    def test_full_search_yields_single_connected_trace_with_fault_events(
        self, tparams, owner_factory
    ):
        transport = ChaosTransport(FaultPlan(profile_named("lossy"), seed=9))
        system, outcomes = fresh_run(tparams, owner_factory, 0, transport=transport)
        settled = [o for o in outcomes if o.error is None]
        assert settled, "lossy profile with liveness bound must settle searches"

        trees = spans_by_trace(trace.TRACER.export())
        search_roots = [
            s
            for spans in trees.values()
            for s in spans
            if s["name"] == "search" and s["parent_id"] is None
        ]
        assert len(search_roots) == len(outcomes)

        for root in search_roots:
            spans = trees[root["trace_id"]]
            names = {s["name"] for s in spans}
            if root["attrs"].get("verified"):
                assert {"search", "submit", "cloud.search", "verify_settle"} <= names
            # single connected tree: every non-root hangs off a span in-trace
            ids = {s["span_id"] for s in spans}
            for span in spans:
                if span["span_id"] != root["span_id"]:
                    assert span["parent_id"] in ids

        # the fault schedule fired and was attached to spans as events
        events = [
            e
            for spans in trees.values()
            for s in spans
            for e in s["events"]
        ]
        kinds = {e["event"] for e in events}
        assert "fault" in kinds
        fault_events = [e for e in events if e["event"] == "fault"]
        assert all(isinstance(e["step"], int) for e in fault_events)
        # retries happened and were recorded alongside the faults
        assert "retry" in kinds

    def test_audit_verdicts_match_outcomes(self, tparams, owner_factory):
        transport = ChaosTransport(FaultPlan(profile_named("lossy"), seed=9))
        system, outcomes = fresh_run(tparams, owner_factory, 0, transport=transport)
        records = obs_audit.AUDIT_LOG.records()
        assert len(records) == len(outcomes)
        by_query = {r.query_id: r for r in records}
        trees = spans_by_trace(trace.TRACER.export())
        for outcome in outcomes:
            record = by_query[str(outcome.query_id)]
            if outcome.error is not None:
                assert record.verdict == "degraded"
            elif outcome.verified:
                assert record.verdict == "paid" and record.paid_to == "cloud"
            else:
                assert record.verdict == "refunded" and record.paid_to == "user"
            assert record.tokens_posted == len(outcome.tokens)
            assert record.attempts == outcome.attempts
            # the audit entry points at the search's span tree
            assert record.trace_id in trees
            assert any(s["name"] == "search" for s in trees[record.trace_id])


class TestDegradedAttribution:
    def test_degraded_outcome_preserves_class_and_fault_step(
        self, tparams, owner_factory
    ):
        # Every request-leg delivery drops: the submit retries must exhaust.
        profile = FaultProfile(name="black_hole", drop=1000, force_clean_after=1000)
        transport = ChaosTransport(FaultPlan(profile, seed=3))
        system = build_system(tparams, owner_factory, 0, seed=7, transport=transport)
        trace.TRACER.reset()
        obs_audit.AUDIT_LOG.reset()

        outcome = system.search(QUERIES[0])
        assert not outcome.verified
        assert outcome.error is not None and "submit_query" in outcome.error
        failure = outcome.failure
        assert failure is not None
        assert failure.error_type == "TransportTimeout"
        assert failure.label == "submit_query"
        assert failure.attempts == system.retry.max_attempts
        # the FaultPlan step that exhausted the budget, resolvable offline
        assert isinstance(failure.fault_step, int)
        step, _leg, kind = transport.plan.history[failure.fault_step]
        assert step == failure.fault_step and kind == "drop"

        (record,) = obs_audit.AUDIT_LOG.records()
        assert record.verdict == "degraded"
        assert record.extra["fault_step"] == failure.fault_step
        assert record.detail == outcome.error

    def test_direct_outcomes_have_no_failure(self, tparams, owner_factory):
        system = build_system(tparams, owner_factory, 0, seed=7)
        outcome = system.search(QUERIES[0])
        assert outcome.error is None and outcome.failure is None
