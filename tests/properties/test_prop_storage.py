"""Property tests for the persistence codec (round trips never lose data)."""

from hypothesis import given, settings, strategies as st

from repro.storage import codec

blobs = st.binary(max_size=60)


class TestCodecProperties:
    @given(parts=st.lists(blobs, max_size=10))
    @settings(max_examples=150, deadline=None)
    def test_pack_unpack_round_trip(self, parts):
        packed = codec.pack(b"kind", *parts)
        assert codec.unpack(packed, b"kind") == parts

    @given(value=st.integers(min_value=0, max_value=2**512))
    @settings(max_examples=150, deadline=None)
    def test_int_round_trip(self, value):
        assert codec.decode_int(codec.encode_int(value)) == value

    @given(mapping=st.dictionaries(blobs, blobs, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_mapping_round_trip(self, mapping):
        assert codec.decode_mapping(codec.encode_mapping(mapping)) == mapping

    @given(a=st.dictionaries(blobs, blobs, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_mapping_encoding_canonical(self, a):
        """Encoding is a pure function of the mapping, not insertion order."""
        reordered = dict(sorted(a.items(), reverse=True))
        assert codec.encode_mapping(a) == codec.encode_mapping(reordered)


class TestStateRoundTripProperties:
    @given(
        entries=st.dictionaries(
            st.binary(min_size=16, max_size=16),
            st.binary(min_size=24, max_size=24),
            max_size=10,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_index_round_trip(self, entries):
        from repro.core.state import EncryptedIndex
        from repro.storage import dump_index, load_index

        index = EncryptedIndex()
        for label, payload in entries.items():
            index.put(label, payload)
        restored = load_index(dump_index(index))
        assert {l: restored.find(l) for l in entries} == entries

    @given(
        entries=st.dictionaries(
            st.binary(min_size=4, max_size=30),
            st.tuples(st.binary(min_size=8, max_size=64), st.integers(0, 50)),
            max_size=10,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_trapdoor_state_round_trip(self, entries):
        from repro.core.state import TrapdoorState
        from repro.storage import dump_trapdoor_state, load_trapdoor_state

        state = TrapdoorState()
        for keyword, (trapdoor, epoch) in entries.items():
            state.put(keyword, trapdoor, epoch)
        restored = load_trapdoor_state(dump_trapdoor_state(state))
        for keyword, (trapdoor, epoch) in entries.items():
            assert restored.get(keyword).trapdoor == trapdoor
            assert restored.get(keyword).epoch == epoch
