"""Backend ≡ backend: the modmath layer is an execution knob, never a
protocol input.  For any database, query and configuration, every modmath
backend available in this interpreter — crossed with kernels on/off and
worker counts — must produce byte-identical primes, H_prime counters,
packages, witnesses, search results, gas and settlement verdicts.

The matrix degrades gracefully: without gmpy2 installed the backend axis is
just ``python`` and the suite still pins kernels × workers identity; the CI
gmpy2 leg runs the full cross."""

import os
from contextlib import contextmanager

import pytest

from repro.common.rng import default_rng
from repro.core.cloud import CloudServer, MaliciousCloud, Misbehavior
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle, SlicerParams
from repro.core.query import Query
from repro.core.records import Database, make_database
from repro.core.user import DataUser
from repro.core.verify import verify_response
from repro.crypto import kernels, modmath
from repro.system import SlicerSystem

PARAMS = SlicerParams.testing(value_bits=8)
KEYS = KeyBundle.generate(default_rng(888), trapdoor_bits=512)

BACKENDS = modmath.available_backends()
VALUES = [0, 7, 7, 41, 128, 255, 42, 200, 13, 99]
QUERIES = [Query.parse(41, "="), Query.parse(100, ">"), Query.parse(50, "<")]


@contextmanager
def backend(name):
    modmath.set_backend(name)
    try:
        yield
    finally:
        modmath.set_backend(None)


@contextmanager
def kernels_off():
    old = os.environ.get(kernels.KERNELS_ENV)
    os.environ[kernels.KERNELS_ENV] = "0"
    try:
        yield
    finally:
        if old is None:
            del os.environ[kernels.KERNELS_ENV]
        else:
            os.environ[kernels.KERNELS_ENV] = old


def configurations():
    """(backend, kernels_on, workers) — every run must agree with every other."""
    return [
        (name, kernels_on, workers)
        for name in BACKENDS
        for kernels_on in (True, False)
        for workers in (1, 2)
    ]


def run_protocol(workers: int) -> dict:
    """One full Build + search + verify, returning every protocol byte."""
    params = PARAMS.with_workers(workers)
    owner = DataOwner(params, keys=KEYS, rng=default_rng(41))
    owner._executor.min_items = 1
    db = Database(8)
    for i, v in enumerate(VALUES):
        db.add(i, v)
    out = owner.build(db)
    cloud = CloudServer(params, KEYS.trapdoor.public)
    cloud._executor.min_items = 1
    cloud.install(out.cloud_package)
    user = DataUser(PARAMS, out.user_package, default_rng(3))
    from repro.crypto.accumulator import Accumulator

    acc = Accumulator(PARAMS.accumulator.public(), list(out.cloud_package.primes))
    artifacts = {
        "entries": out.cloud_package.index.entries,
        "primes": tuple(out.cloud_package.primes),
        "accumulation": out.cloud_package.accumulation,
        "chain_ads": out.chain_ads,
        "witness_all": tuple(
            sorted((p, w.value) for p, w in acc.witness_all().items())
        ),
    }
    for i, query in enumerate(QUERIES):
        tokens = user.make_tokens(query)
        resp = cloud.search(tokens)
        report = verify_response(PARAMS, cloud.ads_value, resp)
        artifacts[f"q{i}.results"] = tuple(tuple(r.entries) for r in resp.results)
        artifacts[f"q{i}.witnesses"] = tuple(r.witness.value for r in resp.results)
        artifacts[f"q{i}.verified"] = report.ok
        artifacts[f"q{i}.ids"] = tuple(sorted(user.decrypt_results(resp)))
    return artifacts


def run_settlement(seed: int, misbehavior=None) -> dict:
    """One escrowed search through the full system, honest or tampering."""
    s = SlicerSystem(PARAMS, rng=default_rng(seed))
    if misbehavior is not None:
        s.cloud = MaliciousCloud(
            PARAMS, s.owner.keys.trapdoor.public, misbehavior, default_rng(seed + 1)
        )
    s.setup(make_database([(f"r{i}", (i * 19) % 256) for i in range(14)], bits=8))
    outcome = s.search(Query.parse(100, ">"), payment=5000)
    return {
        "verified": outcome.verified,
        "record_ids": tuple(sorted(outcome.record_ids)),
        "submit_gas": outcome.submit_receipt.gas_used if outcome.submit_receipt else 0,
        "settle_gas": outcome.settle_receipt.gas_used if outcome.settle_receipt else 0,
        "balances": tuple(sorted(s.balances().items())),
    }


class TestProtocolByteIdentity:
    def test_full_matrix_agrees(self):
        """Primes, packages, witnesses, results and verification verdicts are
        bit-identical across backend × kernels × workers."""
        reference = None
        reference_config = None
        for name, kernels_on, workers in configurations():
            kernels.clear_caches()
            with backend(name):
                if kernels_on:
                    got = run_protocol(workers)
                else:
                    with kernels_off():
                        got = run_protocol(workers)
            if reference is None:
                reference = got
                reference_config = (name, kernels_on, workers)
                continue
            for key, value in reference.items():
                assert got[key] == value, (
                    f"{key} diverged: {(name, kernels_on, workers)} "
                    f"vs reference {reference_config}"
                )

    def test_hprime_counters_backend_independent(self):
        """The (prime, counter) pairs the contract charges gas on — and the
        hprime.* pipeline counters — are functions of the candidate integers
        alone, identical on every backend."""
        from repro.common import perfstats

        payloads = [b"gas" + i.to_bytes(2, "big") for i in range(12)]
        reference_pairs = None
        reference_counters = None
        for name in BACKENDS:
            with backend(name), kernels_off():
                before = perfstats.snapshot("hprime.")
                pairs = [
                    PARAMS.hash_to_prime().hash_to_prime_with_counter(d) for d in payloads
                ]
                delta = {
                    k: v - before.get(k, 0)
                    for k, v in perfstats.snapshot("hprime.").items()
                }
            if reference_pairs is None:
                reference_pairs, reference_counters = pairs, delta
            else:
                assert pairs == reference_pairs, name
                assert delta == reference_counters, name


class TestSettlementVerdicts:
    def test_honest_search_settles_identically(self):
        reference = None
        for name, kernels_on, _ in configurations():
            kernels.clear_caches()
            with backend(name):
                if kernels_on:
                    got = run_settlement(2024)
                else:
                    with kernels_off():
                        got = run_settlement(2024)
            assert got["verified"]
            if reference is None:
                reference = got
            else:
                assert got == reference, (name, kernels_on)

    @pytest.mark.parametrize(
        "misbehavior", [Misbehavior.DROP_ENTRY, Misbehavior.FORGE_WITNESS]
    )
    def test_refund_verdicts_backend_independent(self, misbehavior):
        reference = None
        for name in BACKENDS:
            kernels.clear_caches()
            with backend(name):
                got = run_settlement(2025, misbehavior)
            assert not got["verified"]
            if reference is None:
                reference = got
            else:
                assert got == reference, name
