"""Property-based tests for the RSA accumulator and trapdoor permutation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.rng import default_rng
from repro.crypto.accumulator import Accumulator, AccumulatorParams, verify_membership
from repro.crypto.hash_to_prime import HashToPrime
from repro.crypto.trapdoor import TrapdoorKeyPair

PARAMS = AccumulatorParams.demo(512)
H = HashToPrime(64)
PRIME_POOL = [H(i.to_bytes(4, "big")) for i in range(40)]

subsets = st.lists(st.sampled_from(PRIME_POOL), min_size=1, max_size=12, unique=True)


class TestAccumulatorProperties:
    @given(xs=subsets)
    @settings(max_examples=40, deadline=None)
    def test_every_member_has_valid_witness(self, xs):
        acc = Accumulator(PARAMS, xs)
        for x in xs:
            assert verify_membership(PARAMS, acc.value, x, acc.witness(x))

    @given(xs=subsets)
    @settings(max_examples=30, deadline=None)
    def test_order_independence(self, xs):
        assert Accumulator(PARAMS, xs).value == Accumulator(PARAMS, list(reversed(xs))).value

    @given(xs=subsets, extra=st.sampled_from(PRIME_POOL))
    @settings(max_examples=30, deadline=None)
    def test_witness_never_validates_nonmember(self, xs, extra):
        if extra in xs:
            return
        acc = Accumulator(PARAMS, xs)
        for x in xs[:3]:
            assert not verify_membership(PARAMS, acc.value, extra, acc.witness(x))

    @given(xs=subsets)
    @settings(max_examples=20, deadline=None)
    def test_batch_witnesses_agree(self, xs):
        acc = Accumulator(PARAMS.public(), xs)
        batch = acc.witness_all()
        for x in xs:
            assert batch[x].value == acc.witness(x).value

    @given(xs=subsets, removed=st.data())
    @settings(max_examples=20, deadline=None)
    def test_add_remove_round_trip(self, xs, removed):
        x = removed.draw(st.sampled_from(xs))
        acc = Accumulator(PARAMS, xs)
        before = acc.value
        acc.remove(x)
        acc.add(x)
        assert acc.value == before


KEYS = TrapdoorKeyPair.generate(512, default_rng(17))


class TestTrapdoorProperties:
    @given(seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_invert_apply_identity(self, seed):
        t = KEYS.sample_trapdoor(default_rng(seed))
        assert KEYS.public.apply(KEYS.invert(t)) == t
        assert KEYS.invert(KEYS.public.apply(t)) == t

    @given(seed=st.integers(min_value=0, max_value=2**32), depth=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_chain_depth_round_trip(self, seed, depth):
        t = KEYS.sample_trapdoor(default_rng(seed))
        cursor = t
        for _ in range(depth):
            cursor = KEYS.invert(cursor)
        for _ in range(depth):
            cursor = KEYS.public.apply(cursor)
        assert cursor == t
