"""Property tests for the dyadic-cover machinery and ServeDB baseline."""

from hypothesis import given, settings, strategies as st

from repro.baselines.range_tree_sse import canonical_cover, intervals_containing
from repro.baselines.servedb import ServeDbIndex, ServeDbVerifier
from repro.common.rng import default_rng

BITS = 7
DOMAIN = 1 << BITS
values = st.integers(0, DOMAIN - 1)


class TestCanonicalCoverProperties:
    @given(lo=values, hi=values)
    @settings(max_examples=200, deadline=None)
    def test_partition(self, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        cover = canonical_cover(lo, hi, BITS)
        covered = sorted(v for i in cover for v in range(i.lo, i.hi + 1))
        assert covered == list(range(lo, hi + 1))

    @given(lo=values, hi=values)
    @settings(max_examples=200, deadline=None)
    def test_size_bound(self, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        assert len(canonical_cover(lo, hi, BITS)) <= 2 * BITS

    @given(v=values, lo=values, hi=values)
    @settings(max_examples=200, deadline=None)
    def test_membership_via_intervals(self, v, lo, hi):
        """v in [lo, hi] iff one of v's containing intervals is in the cover."""
        if lo > hi:
            lo, hi = hi, lo
        cover = {(i.level, i.prefix) for i in canonical_cover(lo, hi, BITS)}
        containing = {(i.level, i.prefix) for i in intervals_containing(v, BITS)}
        assert bool(cover & containing) == (lo <= v <= hi)
        assert len(cover & containing) <= 1  # covers are disjoint


class TestServeDbProperties:
    @given(
        vals=st.lists(values, min_size=1, max_size=15),
        lo=values,
        hi=values,
    )
    @settings(max_examples=40, deadline=None)
    def test_honest_proofs_verify_and_match_oracle(self, vals, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        records = [(i.to_bytes(8, "big"), v) for i, v in enumerate(vals)]
        index = ServeDbIndex(records, BITS, default_rng(1))
        verifier = ServeDbVerifier(index.root, BITS)
        response = index.query(lo, hi)
        assert verifier.verify(lo, hi, response)
        got = {index.cipher.decrypt(c) for n in response.nodes for c in n.ciphertexts}
        assert got == {rid for rid, v in records if lo <= v <= hi}

    @given(vals=st.lists(values, min_size=2, max_size=10), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_dropping_any_leaf_is_detected(self, vals, data):
        from repro.baselines.servedb import NodeProof, ServeDbResponse

        records = [(i.to_bytes(8, "big"), v) for i, v in enumerate(vals)]
        index = ServeDbIndex(records, BITS, default_rng(2))
        verifier = ServeDbVerifier(index.root, BITS)
        response = index.query(0, DOMAIN - 1)
        node = response.nodes[0]
        if not node.leaves:
            return
        drop = data.draw(st.integers(0, len(node.leaves) - 1))
        tampered = ServeDbResponse(
            (
                NodeProof(
                    node.interval,
                    node.leaves[:drop] + node.leaves[drop + 1 :],
                    node.path,
                ),
            )
        )
        assert not verifier.verify(0, DOMAIN - 1, tampered)
