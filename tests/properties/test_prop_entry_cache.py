"""Warm ≡ cold: the epoch-suffix result cache is an execution knob, never a
protocol input.  For any database, insert sequence, query and worker count,
a repeat search served from the cache must be byte-identical (full wire
``SearchResponse``, witnesses included) to a cold search, to a fresh-cloud
cold oracle, and to the plain ``REPRO_KERNELS=0`` loop — and the batched
``search_many`` must reproduce per-query ``search`` exactly."""

import os
from contextlib import contextmanager

from hypothesis import given, settings, strategies as st

from repro.common.rng import default_rng
from repro.core import wire
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle, SlicerParams
from repro.core.query import MatchCondition, Query
from repro.core.records import Database
from repro.core.user import DataUser
from repro.crypto import kernels

PARAMS = SlicerParams.testing(value_bits=8)
KEYS = KeyBundle.generate(default_rng(778), trapdoor_bits=512)

value_lists = st.lists(st.integers(0, 255), min_size=1, max_size=8)
insert_batches = st.lists(
    st.lists(st.integers(0, 255), min_size=1, max_size=3), min_size=1, max_size=3
)
queries = st.tuples(
    st.integers(0, 255),
    st.sampled_from([MatchCondition.EQUAL, MatchCondition.GREATER, MatchCondition.LESS]),
)
worker_counts = st.sampled_from([1, 2])


@contextmanager
def kernels_set(enabled: bool):
    old = os.environ.get(kernels.KERNELS_ENV)
    os.environ[kernels.KERNELS_ENV] = "1" if enabled else "0"
    try:
        yield
    finally:
        if old is None:
            del os.environ[kernels.KERNELS_ENV]
        else:
            os.environ[kernels.KERNELS_ENV] = old


def deploy(values, batches, workers, seed):
    """Build + the insert sequence; returns (owner, cloud, last output)."""
    params = PARAMS.with_workers(workers)
    owner = DataOwner(params, keys=KEYS, rng=default_rng(seed))
    owner._executor.min_items = 1
    db = Database(8)
    for i, v in enumerate(values):
        db.add(i, v)
    out = owner.build(db)
    cloud = CloudServer(params, KEYS.trapdoor.public)
    cloud._executor.min_items = 1  # fan out even on tiny fixtures
    cloud.install(out.cloud_package)
    for b, extra in enumerate(batches):
        add = Database(8)
        for i, v in enumerate(extra):
            add.add(f"x{b}-{i}", v)
        out = owner.insert(add)
        cloud.install(out.cloud_package)
    return owner, cloud, out


class TestWarmColdEquivalence:
    @given(values=value_lists, batches=insert_batches, q=queries, workers=worker_counts)
    @settings(max_examples=8, deadline=None)
    def test_warm_cold_plain_byte_identical(self, values, batches, q, workers):
        seed = hash((tuple(values), tuple(map(tuple, batches)))) & 0xFFFF
        with kernels_set(True):
            kernels.clear_caches()
            _, cloud, out = deploy(values, batches, workers, seed)
            user = DataUser(PARAMS, out.user_package, default_rng(3))
            tokens = user.make_tokens(Query(*q))
            cold = wire.dump_response(cloud.search(tokens))
            warm = wire.dump_response(cloud.search(tokens))
            warm2 = wire.dump_response(cloud.search(tokens))
        with kernels_set(False):
            _, plain_cloud, _ = deploy(values, batches, workers, seed)
            plain = wire.dump_response(plain_cloud.search(tokens))
        assert cold == plain
        assert warm == plain
        assert warm2 == plain

    @given(values=value_lists, extra=st.lists(st.integers(0, 255), min_size=1, max_size=3))
    @settings(max_examples=6, deadline=None)
    def test_insert_then_research_matches_fresh_cold_oracle(self, values, extra):
        """The suffix splice after an insert: search (cache warms), insert
        into the same keyword, search again — only the new epoch is fresh,
        the rest is spliced, and the result must equal a never-cached cloud
        restored from the same state."""
        seed = (hash(tuple(values)) ^ hash(tuple(extra))) & 0xFFFF
        with kernels_set(True):
            kernels.clear_caches()
            owner, cloud, out = deploy(values, [], 1, seed)
            user = DataUser(PARAMS, out.user_package, default_rng(3))
            # Warm the suffix the post-insert walk will splice.
            cloud.search(user.make_tokens(Query.parse(values[0], "=")))

            add = Database(8)
            add.add("fresh", values[0])  # same keyword: its epoch advances
            for i, v in enumerate(extra):
                add.add(f"y{i}", v)
            out = owner.insert(add)
            cloud.install(out.cloud_package)
            user.refresh(out.user_package)

            tokens = user.make_tokens(Query.parse(values[0], "="))
            warm = wire.dump_response(cloud.search(tokens))
            oracle = CloudServer(PARAMS, KEYS.trapdoor.public)
            oracle.restore(cloud.snapshot())
            cold = wire.dump_response(oracle.search(tokens))
        assert warm == cold

    @given(values=value_lists, q=queries)
    @settings(max_examples=6, deadline=None)
    def test_decrypted_ids_stable_warm(self, values, q):
        seed = hash(tuple(values)) & 0xFFFF
        with kernels_set(True):
            kernels.clear_caches()
            _, cloud, out = deploy(values, [], 1, seed)
            user = DataUser(PARAMS, out.user_package, default_rng(5))
            tokens = user.make_tokens(Query(*q))
            ids_cold = user.decrypt_results(cloud.search(tokens))
            ids_warm = user.decrypt_results(cloud.search(tokens))
        assert ids_warm == ids_cold


class TestBatchEquivalence:
    @given(
        values=value_lists,
        qs=st.lists(queries, min_size=1, max_size=3),
        workers=worker_counts,
    )
    @settings(max_examples=8, deadline=None)
    def test_search_many_matches_per_query_search(self, values, qs, workers):
        seed = hash(tuple(values)) & 0xFFFF
        with kernels_set(True):
            kernels.clear_caches()
            _, cloud, out = deploy(values, [], workers, seed)
            user = DataUser(PARAMS, out.user_package, default_rng(3))
            # Duplicate the first query so cross-query dedup always engages.
            token_lists = [user.make_tokens(Query(*q)) for q in qs]
            token_lists.append(token_lists[0])
            batched = cloud.search_many(token_lists)
            singles = [cloud.search(tokens) for tokens in token_lists]
        assert [wire.dump_response(r) for r in batched] == [
            wire.dump_response(r) for r in singles
        ]

    @given(values=value_lists, qs=st.lists(queries, min_size=1, max_size=2))
    @settings(max_examples=5, deadline=None)
    def test_search_many_matches_kernels_off(self, values, qs):
        seed = hash(tuple(values)) & 0xFFFF
        with kernels_set(True):
            kernels.clear_caches()
            _, cloud, out = deploy(values, [], 1, seed)
            user = DataUser(PARAMS, out.user_package, default_rng(3))
            token_lists = [user.make_tokens(Query(*q)) for q in qs]
            batched = [wire.dump_response(r) for r in cloud.search_many(token_lists)]
        with kernels_set(False):
            _, plain_cloud, _ = deploy(values, [], 1, seed)
            plain = [
                wire.dump_response(plain_cloud.search(tokens))
                for tokens in token_lists
            ]
        assert batched == plain


class TestWorkerCountInvariance:
    @given(values=value_lists, batches=insert_batches, q=queries)
    @settings(max_examples=6, deadline=None)
    def test_cache_state_and_counters_identical_across_workers(
        self, values, batches, q
    ):
        """Serial and forked collection install the same nodes and count the
        same entry-cache events — the ``--exact-counters`` invariant."""
        from repro.common import perfstats

        seed = hash(tuple(values)) & 0xFFFF
        states = {}
        for workers in (1, 2):
            with kernels_set(True):
                kernels.clear_caches()
                _, cloud, out = deploy(values, batches, workers, seed)
                user = DataUser(PARAMS, out.user_package, default_rng(3))
                tokens = user.make_tokens(Query(*q))
                perfstats.reset("cloud.")
                dumps = [wire.dump_response(cloud.search(tokens)) for _ in range(2)]
                counters = {
                    k: v
                    for k, v in perfstats.snapshot().items()
                    if k.startswith(("cloud.entry_cache.", "cloud.collect."))
                }
                states[workers] = (dumps, counters, dict(cloud._entry_cache.nodes))
        assert states[1] == states[2]


class TestChaosParity:
    def test_fixed_seed_chaos_outcomes_cache_on_vs_off(self):
        """The same chaos seed replays the same fault schedule, outcomes and
        chaos/retry counters whether the entry cache is active or absent —
        repeated queries inside the scenario hit the cache when it's on."""
        from repro.chaos import ChaosTransport, FaultPlan, profile_named
        from repro.common import perfstats
        from repro.system import SlicerSystem

        scenario_queries = [
            Query.parse(7, "="),
            Query.parse(41, "<"),
            Query.parse(7, "="),  # repeat: warm when the cache is on
        ]

        def run(enabled: bool):
            with kernels_set(enabled):
                kernels.clear_caches()
                perfstats.reset()
                owner = DataOwner(PARAMS, keys=KEYS, rng=default_rng(7))
                transport = ChaosTransport(FaultPlan(profile_named("lossy"), seed=13))
                system = SlicerSystem(
                    PARAMS, rng=default_rng(5), owner=owner, transport=transport
                )
                db = Database(8)
                for i, v in enumerate([7, 7, 9, 41, 200]):
                    db.add(i, v)
                system.setup(db)
                outcomes = [system.search(q) for q in scenario_queries]
                add = Database(8)
                add.add("x", 7)
                system.insert(add)
                outcomes += [system.search(q) for q in scenario_queries]
                fingerprints = [
                    (
                        o.verified,
                        o.error,
                        sorted(o.record_ids),
                        None if o.response is None else wire.dump_response(o.response),
                    )
                    for o in outcomes
                ]
                chaos_counters = {
                    k: v
                    for k, v in perfstats.snapshot().items()
                    if k.startswith(("chaos.", "retry."))
                }
                return fingerprints, chaos_counters, list(transport.plan.history)

        assert run(True) == run(False)
