"""Property-based tests for the baseline schemes."""

from hypothesis import given, settings, strategies as st

from repro.baselines.ope import OpeScheme
from repro.baselines.ore_clww import ClwwOre
from repro.baselines.merkle_range import MerkleRangeIndex, verify_range_proof
from repro.common.bitstring import first_differing_bit

BITS = 12
values = st.integers(0, (1 << BITS) - 1)

OPE = OpeScheme(b"prop-ope-key-abc", BITS)
CLWW = ClwwOre(b"prop-clww-key-ab", BITS)


class TestOpeProperties:
    @given(x=values, y=values)
    @settings(max_examples=150, deadline=None)
    def test_order_preserved(self, x, y):
        cx, cy = OPE.encrypt(x), OPE.encrypt(y)
        if x < y:
            assert cx < cy
        elif x > y:
            assert cx > cy
        else:
            assert cx == cy


class TestClwwProperties:
    @given(x=values, y=values)
    @settings(max_examples=150, deadline=None)
    def test_compare_correct(self, x, y):
        assert ClwwOre.compare(CLWW.encrypt(x), CLWW.encrypt(y)) == (x > y) - (x < y)

    @given(x=values, y=values)
    @settings(max_examples=100, deadline=None)
    def test_leakage_is_first_differing_bit(self, x, y):
        leaked = ClwwOre.first_differing_bit(CLWW.encrypt(x), CLWW.encrypt(y))
        assert leaked == first_differing_bit(x, y, BITS)


class TestMerkleRangeProperties:
    @given(
        values_list=st.lists(st.integers(0, 63), min_size=1, max_size=30),
        lo=st.integers(0, 63),
        hi=st.integers(0, 63),
    )
    @settings(max_examples=60, deadline=None)
    def test_honest_proofs_verify_and_match_oracle(self, values_list, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        records = [(i.to_bytes(8, "big"), v) for i, v in enumerate(values_list)]
        index = MerkleRangeIndex(records)
        proof = index.query(lo, hi)
        assert verify_range_proof(index.root, lo, hi, proof, len(index))
        expected = [v for _, v in records if lo <= v <= hi]
        assert len(proof.matched) == len(expected)
