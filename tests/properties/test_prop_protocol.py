"""Property-based end-to-end protocol tests: random databases, random query
sequences, random insert batches — results must always match the plaintext
oracle and always verify."""

from hypothesis import given, settings, strategies as st

from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle, SlicerParams
from repro.core.query import MatchCondition, Query
from repro.core.records import Database
from repro.core.user import DataUser
from repro.core.verify import verify_response

PARAMS = SlicerParams.testing(value_bits=8)
KEYS = KeyBundle.generate(default_rng(777), trapdoor_bits=512)

value_lists = st.lists(st.integers(0, 255), min_size=1, max_size=25)
queries = st.tuples(
    st.integers(0, 255),
    st.sampled_from([MatchCondition.EQUAL, MatchCondition.GREATER, MatchCondition.LESS]),
)


def deploy(values: list[int]):
    owner = DataOwner(PARAMS, keys=KEYS, rng=default_rng(hash(tuple(values)) & 0xFFFF))
    db = Database(8)
    for i, v in enumerate(values):
        db.add(i, v)
    out = owner.build(db)
    cloud = CloudServer(PARAMS, KEYS.trapdoor.public)
    cloud.install(out.cloud_package)
    user = DataUser(PARAMS, out.user_package, default_rng(3))
    return owner, cloud, user, db


class TestSearchOracle:
    @given(values=value_lists, q=queries)
    @settings(max_examples=40, deadline=None)
    def test_search_matches_oracle_and_verifies(self, values, q):
        owner, cloud, user, db = deploy(values)
        query = Query(q[0], q[1])
        tokens = user.make_tokens(query)
        response = cloud.search(tokens)
        assert verify_response(PARAMS, cloud.ads_value, response).ok
        assert user.decrypt_results(response) == db.ids_matching(query.predicate())


class TestInsertOracle:
    @given(
        initial=value_lists,
        batches=st.lists(st.lists(st.integers(0, 255), min_size=1, max_size=6), max_size=3),
        q=queries,
    )
    @settings(max_examples=25, deadline=None)
    def test_search_after_inserts(self, initial, batches, q):
        owner, cloud, user, db = deploy(initial)
        next_id = len(initial)
        all_values = dict(enumerate(initial))
        out = None
        for batch in batches:
            add = Database(8)
            for v in batch:
                add.add(next_id, v)
                all_values[next_id] = v
                next_id += 1
            out = owner.insert(add)
            cloud.install(out.cloud_package)
        if out is not None:
            user.refresh(out.user_package)

        query = Query(q[0], q[1])
        tokens = user.make_tokens(query)
        response = cloud.search(tokens)
        assert verify_response(PARAMS, cloud.ads_value, response).ok

        from repro.core.records import encode_record_id

        predicate = query.predicate()
        expected = {encode_record_id(i) for i, v in all_values.items() if predicate(v)}
        assert user.decrypt_results(response) == expected
