"""Property: restoring a cloud from its own snapshot is a perfect no-op.

The cache-amnesia fix's contract, stated adversarially: for any query, a
cloud that just restored state identical to its live state must serve the
same bytes with the same deterministic counter deltas as a twin that never
restarted — including the cache hits.  Witnesses are a pure function of
``(X, Ac)`` and entry-cache nodes of the stored epochs, so a restore that
drops either shows up here as a counter divergence.
"""

import inspect
from functools import lru_cache

from hypothesis import given, settings, strategies as st

from repro.common import perfstats
from repro.common.rng import default_rng
from repro.core import wire
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle, SlicerParams
from repro.core.query import Query
from repro.core.records import make_database
from repro.core.user import DataUser
from repro.crypto import kernels
from repro.obs.metrics import MetricsRegistry

EXCLUDE = inspect.signature(MetricsRegistry.deterministic_snapshot).parameters[
    "exclude_prefixes"
].default


@lru_cache(maxsize=None)
def world():
    params = SlicerParams.testing(value_bits=8)
    keys = KeyBundle.generate(default_rng(1234), trapdoor_bits=512)
    owner = DataOwner(params, keys=keys, rng=default_rng(77))
    db = make_database([(f"r{i}", (i * 37) % 256) for i in range(12)], bits=8)
    out = owner.build(db)
    control = CloudServer(params, keys.trapdoor.public)
    control.install(out.cloud_package)
    restored = CloudServer(params, keys.trapdoor.public)
    restored.install(out.cloud_package)
    control.precompute_witnesses()
    restored.precompute_witnesses()
    user = DataUser(params, out.user_package, default_rng(3))
    return control, restored, user


def measured_search(cloud, tokens):
    kernels.clear_caches()  # both twins start each probe from cold memos
    base = perfstats.snapshot()
    blob = wire.dump_response(cloud.search(tokens))
    delta = {
        k: v
        for k, v in perfstats.delta_since(base).items()
        if not k.startswith(EXCLUDE)
    }
    return blob, delta


class TestRestoreIsNoOp:
    @given(
        value=st.integers(0, 255),
        op=st.sampled_from(["=", ">", "<"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_restore_from_own_snapshot_counter_identical(self, value, op):
        control, restored, user = world()
        tokens = user.make_tokens(Query.parse(value, op))

        before = perfstats.get("cloud.restore.caches_kept")
        restored.restore(restored.snapshot())
        assert perfstats.get("cloud.restore.caches_kept") == before + 1
        assert restored._witness_cache == control._witness_cache

        control_blob, control_delta = measured_search(control, tokens)
        restored_blob, restored_delta = measured_search(restored, tokens)
        assert restored_blob == control_blob
        assert restored_delta == control_delta
