"""Plan execution ≡ naive per-leg loop: the planner only removes waste.

The tentpole invariance for the range planner, pinned across the
execution-shape grid:

* **byte-identity** — running a plan batch through
  :meth:`SlicerSystem.search_plans` yields, leg for leg, the same
  verdicts, record IDs, wire responses, submit/settle gas and final
  balances as compiling the same expressions and feeding the flattened
  legs to :meth:`SlicerSystem.batch_search` directly (the planner-less
  client), at workers 0 and 2 and shards 1 and 4;
* **counters** — the deterministic snapshot matches the naive run exactly
  once the planner's own ``planner.*`` family is set aside (the naive
  path never compiles a plan, so it never ticks them), and the plan
  path's full snapshot — ``planner.*`` included — is identical across
  every shape: the counters are pure functions of the query stream;
* **modes** — sync and block settlement deliver the same plan verdicts,
  record IDs, responses and balances (settle receipts differ by design:
  per-escrow block settlement vs one amortised batch receipt);
* **oracle** — every verified plan's intersection equals the plaintext
  ground truth from the attributed database;
* **fairness** — a cloud that tampers with ONE leg's proof refunds
  exactly that leg: sibling legs and sibling plans in the same batch
  keep their verdicts and their pay.

Kernel memo caches are process-global, so every cell starts cold
(``kernels.clear_caches()`` + registry reset).
"""

import pytest

from repro.common.rng import default_rng
from repro.core import wire
from repro.core.cloud import CloudServer, SearchResponse, TokenResult
from repro.core.query import And, MatchCondition, Query, Range
from repro.core.records import AttributedDatabase
from repro.crypto import kernels
from repro.crypto.accumulator import MembershipWitness
from repro.obs.metrics import REGISTRY
from repro.planner import compile_plans
from repro.system import DEFAULT_PAYMENT, SlicerSystem

BITS = 8

ROWS = [
    {"lat": 7, "city": 1},
    {"lat": 20, "city": 3},
    {"lat": 40, "city": 3},
    {"lat": 45, "city": 1},
    {"lat": 60, "city": 3},
    {"lat": 100, "city": 1},
    {"lat": 130, "city": 3},
    {"lat": 200, "city": 1},
    {"lat": 42, "city": 3},
    {"lat": 255, "city": 1},
]

# Four plan shapes: open range, same-attribute merge (sharing one leg with
# the first plan — the cross-plan dedup case), point range, and a
# cross-attribute conjunction.
EXPRS = [
    Range(10, 50, "lat"),
    And(Range(10, 50, "lat"), Range(20, 80, "lat")),
    Range(42, 42, "lat"),
    And(Range(30, 120, "lat"), Query(3, MatchCondition.EQUAL, "city")),
]


def database():
    db = AttributedDatabase(BITS)
    for i, attrs in enumerate(ROWS):
        db.add(i, attrs)
    return db


def fresh_process_state():
    kernels.clear_caches()
    REGISTRY.reset()


def deploy(tparams, owner_factory, workers=0, shards=1, mode="sync", seed=11):
    params = tparams.with_workers(workers)
    system = SlicerSystem(
        params,
        rng=default_rng(seed),
        owner=owner_factory(params, seed=seed),
        shards=shards,
        settlement_mode=mode,
    )
    system.setup(database())
    return system


def leg_fingerprint(outcome):
    return (
        outcome.verified,
        sorted(outcome.record_ids),
        wire.dump_response(outcome.response),
        outcome.submit_receipt.gas_used,
        outcome.settle_receipt.gas_used,
    )


def strip_planner(snapshot):
    return {
        "counters": {
            k: v
            for k, v in snapshot["counters"].items()
            if not k.startswith("planner.")
        },
        "histograms": snapshot["histograms"],
    }


def planner_counters(snapshot):
    return {
        k: v for k, v in snapshot["counters"].items() if k.startswith("planner.")
    }


def drop_zero_counters(snapshot):
    """Normalise presence-vs-absence of zero counters across worker counts.

    A serial run creates a counter key even when it only ever adds 0 (e.g.
    ``cloud.entry_cache.spliced_entries`` on a cold cache); a fanned-out
    run never ships zero deltas home, so the key is absent.  Same work,
    different representation — the cross-shape comparison ignores it.
    """
    return {
        "counters": {k: v for k, v in snapshot["counters"].items() if v != 0},
        "histograms": snapshot["histograms"],
    }


def run_plan_path(tparams, owner_factory, workers=0, shards=1, mode="sync"):
    fresh_process_state()
    system = deploy(tparams, owner_factory, workers, shards, mode)
    outcomes = system.search_plans(EXPRS)
    return system, outcomes, REGISTRY.deterministic_snapshot()


@pytest.mark.parametrize("workers", [0, 2])
@pytest.mark.parametrize("shards", [1, 4])
class TestPlanEqualsNaive:
    def test_plan_path_is_byte_identical_to_naive_legs(
        self, tparams, owner_factory, workers, shards
    ):
        system, plan_outcomes, plan_snap = run_plan_path(
            tparams, owner_factory, workers, shards
        )
        plan_balances = system.balances()

        # The planner-less client: compile, flatten, loop the legs itself.
        fresh_process_state()
        naive_system = deploy(tparams, owner_factory, workers, shards)
        plans = compile_plans(EXPRS, BITS)
        flat_legs = [leg for plan in plans for leg in plan.legs]
        naive_outcomes = naive_system.batch_search(flat_legs)
        naive_snap = REGISTRY.deterministic_snapshot()

        plan_legs = [leg for out in plan_outcomes for leg in out.legs]
        assert [leg_fingerprint(o) for o in plan_legs] == [
            leg_fingerprint(o) for o in naive_outcomes
        ], "planned legs drifted from the naive per-leg loop"
        assert plan_balances == naive_system.balances()
        assert strip_planner(plan_snap) == naive_snap, (
            "the planner changed protocol work beyond its own counters"
        )

        # Client-side intersection over the naive legs reproduces the plan
        # answer exactly.
        cursor = 0
        for plan, outcome in zip(plans, plan_outcomes):
            legs = naive_outcomes[cursor : cursor + len(plan.legs)]
            cursor += len(plan.legs)
            naive_ids = set(legs[0].record_ids)
            for leg in legs[1:]:
                naive_ids &= leg.record_ids
            assert outcome.verified == all(leg.verified for leg in legs)
            assert outcome.record_ids == naive_ids

    def test_verified_plans_match_plaintext_oracle(
        self, tparams, owner_factory, workers, shards
    ):
        _, outcomes, snap = run_plan_path(tparams, owner_factory, workers, shards)
        db = database()
        for outcome in outcomes:
            assert outcome.verified
            assert outcome.record_ids == outcome.plan.oracle_ids(db)
        counters = planner_counters(snap)
        assert counters["planner.plans"] == len(EXPRS)
        assert counters["planner.legs"] == sum(
            len(o.plan.legs) for o in outcomes
        )
        # Plans 1 and 2 share the GREATER(51) leg, so the batch-wide token
        # union is strictly smaller than the summed per-leg token lists.
        assert counters["planner.dedup_saved"] > 0


class TestCrossShapeIdentity:
    def test_full_snapshot_identical_across_workers_and_shards(
        self, tparams, owner_factory
    ):
        """planner.* included: the counters are shape-independent."""
        baseline = None
        for workers in (0, 2):
            for shards in (1, 4):
                system, outcomes, snap = run_plan_path(
                    tparams, owner_factory, workers, shards
                )
                cell = (
                    [leg_fingerprint(o) for out in outcomes for o in out.legs],
                    [sorted(out.record_ids) for out in outcomes],
                    system.balances(),
                    drop_zero_counters(snap),
                )
                if baseline is None:
                    baseline = cell
                else:
                    assert cell == baseline, (
                        f"plan path drifted at workers={workers} shards={shards}"
                    )


class TestSettlementModes:
    def test_block_mode_plans_match_sync(self, tparams, owner_factory):
        runs = {}
        for mode in ("sync", "block"):
            system, outcomes, snap = run_plan_path(
                tparams, owner_factory, mode=mode
            )
            runs[mode] = (
                [
                    (
                        o.verified,
                        sorted(o.record_ids),
                        wire.dump_response(o.response),
                        o.submit_receipt.gas_used,
                    )
                    for out in outcomes
                    for o in out.legs
                ],
                [(out.verified, sorted(out.record_ids)) for out in outcomes],
                system.balances(),
                planner_counters(snap),
            )
        assert runs["block"] == runs["sync"]


class LegTamperCloud(CloudServer):
    """An adversary that corrupts the proofs of chosen batch positions.

    Unlike :class:`MaliciousCloud` (which tampers every query), this cloud
    serves the batch honestly and then replaces the witnesses of the
    selected query indices with ``w = 1`` — which cannot satisfy
    ``w^p == Ac`` — so exactly those legs fail verification.
    """

    def __init__(self, params, trapdoor_public, tampered):
        super().__init__(params, trapdoor_public)
        self._tampered = set(tampered)

    def search_many(self, token_lists, **hooks):
        honest = super().search_many(token_lists, **hooks)
        return [
            SearchResponse(
                [
                    TokenResult(r.token, r.entries, MembershipWitness(1))
                    for r in response.results
                ]
            )
            if qi in self._tampered
            else response
            for qi, response in enumerate(honest)
        ]


class TestTamperedLegFairness:
    def test_tampered_leg_refunds_only_its_own_escrow(
        self, tparams, owner_factory
    ):
        # Flattened leg layout for EXPRS:
        #   plan 0 -> legs 0,1   plan 1 -> legs 2,3
        #   plan 2 -> leg  4     plan 3 -> legs 5,6,7
        tampered_index = 4  # plan 2's single equality leg

        fresh_process_state()
        honest = deploy(tparams, owner_factory)
        honest_outcomes = honest.search_plans(EXPRS)
        honest_balances = honest.balances()

        fresh_process_state()
        params = tparams.with_workers(0)
        owner = owner_factory(params, seed=11)
        system = SlicerSystem(params, rng=default_rng(11), owner=owner)
        system.cloud = LegTamperCloud(
            params, owner.keys.trapdoor.public, {tampered_index}
        )
        system.setup(database())
        outcomes = system.search_plans(EXPRS)

        # Only plan 2 loses its verdict; its siblings keep theirs and
        # their answers.
        assert [out.verified for out in outcomes] == [True, True, False, True]
        assert outcomes[2].record_ids == set()
        for honest_out, out in zip(honest_outcomes, outcomes):
            if out.verified:
                assert out.record_ids == honest_out.record_ids

        # Leg-level: exactly the tampered flat index was refunded.
        flat = [leg for out in outcomes for leg in out.legs]
        assert [leg.verified for leg in flat] == [
            i != tampered_index for i in range(len(flat))
        ]

        # Escrow arithmetic: the cloud lost exactly one leg's payment to
        # the user, nothing else moved.
        balances = system.balances()
        assert (
            honest_balances["cloud"] - balances["cloud"] == DEFAULT_PAYMENT
        )
        assert balances["user"] - honest_balances["user"] == DEFAULT_PAYMENT
        assert balances["owner"] == honest_balances["owner"]
