"""Chaos ≡ direct (satellite property suite).

Two equivalences pin the chaos layer down:

* **transparency** — a fault-free (``clean`` profile) chaos run is
  byte-identical to the direct in-process path: same responses on the wire,
  same verdicts, same decrypted IDs, at ``workers`` 0 and 2 alike;
* **determinism** — the same chaos seed replays the identical fault
  schedule, outcomes, and ``chaos.*`` / ``retry.*`` counters, regardless of
  the worker count (the fault plan's RNG is independent of the protocol's).

Only ``chaos.*`` / ``retry.*`` counters are compared: kernel counters
(memo hits etc.) are process-warm, so their absolute values depend on what
ran earlier in the session.
"""

import pytest

from repro.chaos import ChaosTransport, FaultPlan, profile_named
from repro.common import perfstats
from repro.common.rng import default_rng
from repro.core import wire
from repro.core.query import Query
from repro.core.records import make_database
from repro.system import SlicerSystem

VALUES = [7, 7, 9, 40, 41, 64, 3, 200]
EXTRA = [7, 41]
QUERIES = [
    Query.parse(7, "="),
    Query.parse(40, ">"),
    Query.parse(41, "<"),
]


def database(values, start=0):
    return make_database(
        [(f"rec-{start + i}", v) for i, v in enumerate(values)], bits=8
    )


def build_system(tparams, owner_factory, workers, seed, transport=None):
    params = tparams.with_workers(workers)
    system = SlicerSystem(
        params,
        rng=default_rng(seed),
        owner=owner_factory(params, seed=seed),
        transport=transport,
    )
    system.setup(database(VALUES))
    return system


def run_scenario(system):
    """The fixed workload every equivalence run replays."""
    outcomes = [system.search(q) for q in QUERIES]
    system.insert(database(EXTRA, start=100))
    outcomes.extend(system.search(q) for q in QUERIES)
    return outcomes


def chaos_counters():
    return {
        k: v
        for k, v in perfstats.snapshot().items()
        if k.startswith(("chaos.", "retry."))
    }


def outcome_fingerprint(outcome):
    return (
        outcome.verified,
        outcome.error,
        outcome.query_id,
        sorted(outcome.record_ids),
        None if outcome.response is None else wire.dump_response(outcome.response),
    )


class TestCleanChaosTransparency:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_clean_chaos_byte_identical_to_direct(
        self, tparams, owner_factory, workers
    ):
        direct = run_scenario(build_system(tparams, owner_factory, workers, seed=7))
        transport = ChaosTransport(FaultPlan(profile_named("clean"), seed=1))
        chaos = run_scenario(
            build_system(tparams, owner_factory, workers, seed=7, transport=transport)
        )
        assert len(direct) == len(chaos)
        for d, c in zip(direct, chaos):
            assert d.verified and c.verified
            assert wire.dump_response(d.response) == wire.dump_response(c.response)
            assert d.record_ids == c.record_ids
            assert d.query_id == c.query_id

    def test_clean_chaos_injects_nothing(self, tparams, owner_factory):
        perfstats.reset()
        transport = ChaosTransport(FaultPlan(profile_named("clean"), seed=1))
        run_scenario(build_system(tparams, owner_factory, 0, seed=7, transport=transport))
        counters = chaos_counters()
        assert not any(k.startswith("chaos.injected.") for k in counters)
        assert counters.get("retry.gave_up", 0) == 0
        assert counters.get("retry.recovered", 0) == 0


class TestSeedDeterminism:
    @pytest.mark.parametrize("profile", ["lossy", "crash_restart"])
    def test_same_seed_same_outcomes_counters_and_schedule(
        self, tparams, owner_factory, profile
    ):
        runs = []
        for _ in range(2):
            perfstats.reset()
            transport = ChaosTransport(FaultPlan(profile_named(profile), seed=9))
            system = build_system(
                tparams, owner_factory, 0, seed=7, transport=transport
            )
            outcomes = run_scenario(system)
            runs.append(
                (
                    [outcome_fingerprint(o) for o in outcomes],
                    [o.attempts for o in outcomes],
                    chaos_counters(),
                    list(transport.plan.history),
                )
            )
        assert runs[0] == runs[1]

    def test_schedule_independent_of_worker_count(self, tparams, owner_factory):
        """Fault plan and counters must not see the execution knob."""
        runs = {}
        for workers in (0, 2):
            perfstats.reset()
            transport = ChaosTransport(FaultPlan(profile_named("lossy"), seed=9))
            system = build_system(
                tparams, owner_factory, workers, seed=7, transport=transport
            )
            outcomes = run_scenario(system)
            runs[workers] = (
                [outcome_fingerprint(o) for o in outcomes],
                chaos_counters(),
                list(transport.plan.history),
            )
        assert runs[0] == runs[2]

    def test_different_seeds_diverge(self, tparams, owner_factory):
        histories = []
        for seed in (9, 10):
            transport = ChaosTransport(FaultPlan(profile_named("lossy"), seed=seed))
            run_scenario(
                build_system(tparams, owner_factory, 0, seed=7, transport=transport)
            )
            histories.append(list(transport.plan.history))
        assert histories[0] != histories[1]
