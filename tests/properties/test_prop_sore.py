"""Property-based tests for SORE (Theorem 1 and the leakage bound)."""

from hypothesis import given, settings, strategies as st

from repro.common.bitstring import first_differing_bit
from repro.common.rng import default_rng
from repro.sore.leakage import (
    ciphertext_side_leakage,
    predicted_leakage,
    token_side_leakage,
)
from repro.sore.scheme import SoreScheme
from repro.sore.tuples import OrderCondition, ciphertext_tuples, common_tuples, token_tuples

BITS = 16
values = st.integers(min_value=0, max_value=(1 << BITS) - 1)
conditions = st.sampled_from([OrderCondition.GREATER, OrderCondition.LESS])


def scheme() -> SoreScheme:
    return SoreScheme(b"prop-key-0123456", BITS, rng=default_rng(1))


class TestTheorem1:
    @given(x=values, y=values, oc=conditions)
    @settings(max_examples=300, deadline=None)
    def test_compare_iff_order(self, x, y, oc):
        s = scheme()
        token = s.token(x, oc)
        ct = s.encrypt(y)
        assert SoreScheme.compare(ct, token) == oc.holds(x, y)

    @given(x=values, y=values, oc=conditions)
    @settings(max_examples=300, deadline=None)
    def test_at_most_one_common_tuple(self, x, y, oc):
        common = common_tuples(token_tuples(x, oc, BITS), ciphertext_tuples(y, BITS))
        assert len(common) <= 1

    @given(x=values, y=values, oc=conditions)
    @settings(max_examples=200, deadline=None)
    def test_match_position_is_first_differing_bit(self, x, y, oc):
        common = common_tuples(token_tuples(x, oc, BITS), ciphertext_tuples(y, BITS))
        if common:
            assert common[0].index == first_differing_bit(x, y, BITS)


class TestLeakageBound:
    @given(x=values, y=values, oc=conditions)
    @settings(max_examples=200, deadline=None)
    def test_token_side_leakage_formula(self, x, y, oc):
        assert token_side_leakage(x, y, oc, BITS) == predicted_leakage(x, y, BITS)

    @given(x=values, y=values)
    @settings(max_examples=200, deadline=None)
    def test_ciphertext_side_leakage_formula(self, x, y):
        assert ciphertext_side_leakage(x, y, BITS) == predicted_leakage(x, y, BITS)


class TestTransitivityConsequences:
    @given(x=values, y=values, z=values)
    @settings(max_examples=150, deadline=None)
    def test_comparisons_are_consistent_with_a_total_order(self, x, y, z):
        """Compare answers derived from SORE never contradict transitivity."""
        s = scheme()
        gt = OrderCondition.GREATER
        cxy = SoreScheme.compare(s.encrypt(y), s.token(x, gt))  # x > y?
        cyz = SoreScheme.compare(s.encrypt(z), s.token(y, gt))  # y > z?
        cxz = SoreScheme.compare(s.encrypt(z), s.token(x, gt))  # x > z?
        if cxy and cyz:
            assert cxz
