"""Property-based tests for the multiset hash (homomorphism, commutativity)."""

from hypothesis import given, settings, strategies as st

from repro.crypto.multiset_hash import MultisetHash

elements = st.binary(min_size=0, max_size=40)
multisets = st.lists(elements, max_size=20)


class TestHomomorphism:
    @given(m=multisets, n=multisets)
    @settings(max_examples=150, deadline=None)
    def test_union(self, m, n):
        assert MultisetHash.of(m) + MultisetHash.of(n) == MultisetHash.of(m + n)

    @given(m=multisets)
    @settings(max_examples=100, deadline=None)
    def test_permutation_invariance(self, m):
        assert MultisetHash.of(m) == MultisetHash.of(list(reversed(m)))

    @given(m=multisets, n=multisets)
    @settings(max_examples=100, deadline=None)
    def test_commutativity(self, m, n):
        a, b = MultisetHash.of(m), MultisetHash.of(n)
        assert a + b == b + a

    @given(m=multisets, n=multisets)
    @settings(max_examples=100, deadline=None)
    def test_difference_inverts_union(self, m, n):
        assert (MultisetHash.of(m) + MultisetHash.of(n)) - MultisetHash.of(n) == MultisetHash.of(m)


class TestIncrementalAgreement:
    @given(m=multisets)
    @settings(max_examples=100, deadline=None)
    def test_fold_equals_batch(self, m):
        h = MultisetHash.empty()
        for element in m:
            h = h.add(element)
        assert h == MultisetHash.of(m)


class TestCollisionSurface:
    @given(m=multisets, n=multisets)
    @settings(max_examples=150, deadline=None)
    def test_distinct_multisets_distinct_hashes(self, m, n):
        """Collision resistance can't be proven by testing, but random
        multisets must never collide in practice."""
        from collections import Counter

        if Counter(m) != Counter(n):
            assert MultisetHash.of(m) != MultisetHash.of(n)
