"""Property tests for the wire codec."""

from hypothesis import given, settings, strategies as st

from repro.core.cloud import SearchResponse, TokenResult
from repro.core.tokens import SearchToken
from repro.core.wire import dump_response, dump_tokens, load_response, load_tokens
from repro.crypto.accumulator import MembershipWitness

tokens_st = st.builds(
    SearchToken,
    trapdoor=st.binary(min_size=8, max_size=64),
    epoch=st.integers(0, 1000),
    g1=st.binary(min_size=16, max_size=16),
    g2=st.binary(min_size=16, max_size=16),
)

results_st = st.builds(
    TokenResult,
    token=tokens_st,
    entries=st.lists(st.binary(min_size=0, max_size=48), max_size=6),
    witness=st.builds(MembershipWitness, st.integers(1, 2**512)),
)


class TestWireProperties:
    @given(tokens=st.lists(tokens_st, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_token_round_trip(self, tokens):
        assert load_tokens(dump_tokens(tokens)) == tokens

    @given(results=st.lists(results_st, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_response_round_trip(self, results):
        response = SearchResponse(results)
        restored = load_response(dump_response(response))
        assert len(restored.results) == len(results)
        for a, b in zip(results, restored.results):
            assert a.token == b.token
            assert list(a.entries) == list(b.entries)
            assert a.witness.value == b.witness.value

    @given(results=st.lists(results_st, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_sizes_preserved(self, results):
        response = SearchResponse(results)
        restored = load_response(dump_response(response))
        assert restored.encrypted_result_bytes == response.encrypted_result_bytes
