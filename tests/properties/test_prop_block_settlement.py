"""Block settlement ≡ synchronous settlement: the mode is a delivery knob.

The tentpole invariance, asserted across the execution-shape grid:

* **outcomes** — verdicts, record IDs, wire responses, submit/settle gas
  and final balances are bit-identical between ``settlement_mode="sync"``
  and ``"block"``, at workers 0 and 2, at shards 1 and 4, through single
  searches, inserts and block-batched searches;
* **counters** — the deterministic counter snapshot is identical across
  modes: block production moves *when* a settlement lands, never how much
  protocol work or gas it takes (``mempool.*``/``blocks.*``/
  ``blockmode.*``/``light_client.*`` delivery machinery is excluded at the
  source, like ``parallel.*`` and ``shard.*`` before it);
* **fault determinism** — the same seed yields a bit-identical
  ``ChainFaultPlan.history`` run to run, and enabling chain faults leaves
  the *transport* fault schedule untouched (independent RNG streams);
* **provability** — every block-mode settlement is checkable by a light
  client from a header + settlement proof, across reorgs.

Kernel memo caches are process-global, so every leg starts cold
(``kernels.clear_caches()`` + registry reset) — otherwise the second run
inherits warm ``hash_to_prime`` memos and the comparison measures session
history, not the settlement mode.
"""

import pytest

from repro.chaos import ChainFaultPlan, ChaosTransport, FaultPlan, chain_profile_named, profile_named
from repro.common.rng import default_rng
from repro.core import wire
from repro.core.query import Query
from repro.core.records import make_database
from repro.crypto import kernels
from repro.obs.metrics import REGISTRY
from repro.system import SlicerSystem

VALUES = [7, 7, 9, 40, 41, 64, 3, 200, 128, 255]
EXTRA = [7, 41, 130]
QUERIES = [
    Query.parse(7, "="),
    Query.parse(40, ">"),
    Query.parse(41, "<"),
    Query.parse(200, "="),
]
BATCH = [Query.parse(9, "="), Query.parse(64, "<"), Query.parse(101, "=")]


def database(values, start=0):
    return make_database(
        [(f"rec-{start + i}", v) for i, v in enumerate(values)], bits=8
    )


def fresh_process_state():
    kernels.clear_caches()
    REGISTRY.reset()


def deploy(tparams, owner_factory, mode, workers=0, shards=1, chain_faults=None, seed=11):
    params = tparams.with_workers(workers)
    system = SlicerSystem(
        params,
        rng=default_rng(seed),
        owner=owner_factory(params, seed=seed),
        shards=shards,
        settlement_mode=mode,
        chain_faults=chain_faults,
    )
    system.setup(database(VALUES))
    return system


def run_scenario(system):
    """Searches -> insert -> searches (the byte-identity flow).

    ``batch_search`` is deliberately NOT part of the identity comparison:
    sync batches settle through one amortised ``batch_verify_and_settle``
    receipt, block batches settle per-escrow inside one block (trading the
    receipt-level identity for per-escrow header provability) — see
    :class:`TestBatchBlockSettlement` for that flow's own invariants.
    """
    outcomes = [system.search(q) for q in QUERIES]
    system.insert(database(EXTRA, start=100))
    outcomes.extend(system.search(q) for q in QUERIES)
    return outcomes


def fingerprint(outcome):
    return (
        outcome.verified,
        sorted(outcome.record_ids),
        wire.dump_response(outcome.response),
        outcome.submit_receipt.gas_used,
        outcome.settle_receipt.gas_used,
    )


@pytest.mark.parametrize("workers", [0, 2])
@pytest.mark.parametrize("shards", [1, 4])
class TestModeEquivalence:
    def test_block_equals_sync_everywhere(
        self, tparams, owner_factory, workers, shards
    ):
        runs = {}
        for mode in ("sync", "block"):
            fresh_process_state()
            system = deploy(tparams, owner_factory, mode, workers, shards)
            outcomes = run_scenario(system)
            runs[mode] = (
                [fingerprint(o) for o in outcomes],
                system.balances(),
                REGISTRY.deterministic_snapshot(),
                outcomes,
                system,
            )
        sync_fp, sync_bal, sync_snap, _, _ = runs["sync"]
        blk_fp, blk_bal, blk_snap, blk_outcomes, blk_system = runs["block"]
        assert blk_fp == sync_fp, "block-mode outcomes drifted from sync"
        assert blk_bal == sync_bal, "block-mode escrow arithmetic drifted"
        assert blk_snap == sync_snap, "deterministic counters drifted"
        # Every block-mode settlement is height-stamped and header-provable.
        from repro.blockchain import follow

        client = follow(blk_system.chain)
        for outcome in blk_outcomes:
            assert outcome.settle_height is not None
            assert client.check_settlement(blk_system.settlement_proof(outcome))


class TestBatchBlockSettlement:
    """Block-mode batches: one block settles every escrow, each provably.

    Verdicts, record IDs, responses and *submit* gas match the sync batch
    bit for bit; the settlement receipts intentionally differ (N per-escrow
    ``verify_and_settle`` transactions in one block vs. one amortised
    ``batch_verify_and_settle``), which is exactly what buys each escrow an
    individually provable leaf in the header's settlement root.
    """

    def test_batch_verdicts_balances_and_provability(self, tparams, owner_factory):
        runs = {}
        for mode in ("sync", "block"):
            fresh_process_state()
            system = deploy(tparams, owner_factory, mode)
            outcomes = system.batch_search(QUERIES + BATCH)
            runs[mode] = (system, outcomes)
        sync_system, sync_outcomes = runs["sync"]
        blk_system, blk_outcomes = runs["block"]
        assert [
            (o.verified, sorted(o.record_ids), wire.dump_response(o.response),
             o.submit_receipt.gas_used)
            for o in blk_outcomes
        ] == [
            (o.verified, sorted(o.record_ids), wire.dump_response(o.response),
             o.submit_receipt.gas_used)
            for o in sync_outcomes
        ]
        assert blk_system.balances() == sync_system.balances()
        # One block carried the whole round...
        heights = {o.settle_height for o in blk_outcomes}
        assert len(heights) == 1 and None not in heights
        # ...and every escrow in it is individually header-provable.
        from repro.blockchain import follow

        client = follow(blk_system.chain)
        for outcome in blk_outcomes:
            proof = blk_system.settlement_proof(outcome)
            assert client.check_settlement(proof)


class TestFaultDeterminism:
    def test_same_seed_same_chain_schedule(self, tparams, owner_factory):
        histories = []
        for _ in range(2):
            fresh_process_state()
            faults = ChainFaultPlan(chain_profile_named("reorgy"), seed=23)
            system = deploy(
                tparams, owner_factory, "block", chain_faults=faults
            )
            for q in QUERIES:
                assert system.search(q).settled
            histories.append(tuple(faults.history))
        assert histories[0] == histories[1]
        assert any(":" in out for _, _, out in histories[0]), (
            "the reorgy schedule must actually inject at this seed"
        )

    def test_chain_faults_leave_transport_schedule_untouched(
        self, tparams, owner_factory
    ):
        """ChainFaultPlan draws from its own RNG stream: enabling reorgs
        must not shift a single transport fault decision."""
        histories = {}
        for label, chain_faults in (
            ("without", None),
            ("with", ChainFaultPlan(chain_profile_named("reorgy"), seed=23)),
        ):
            fresh_process_state()
            params = tparams.with_workers(0)
            transport = ChaosTransport(FaultPlan(profile_named("lossy"), seed=17))
            system = SlicerSystem(
                params,
                rng=default_rng(11),
                owner=owner_factory(params, seed=11),
                transport=transport,
                settlement_mode="block",
                chain_faults=chain_faults,
            )
            system.setup(database(VALUES))
            outcomes = [system.search(q) for q in QUERIES]
            assert all(o.settled for o in outcomes)
            histories[label] = tuple(transport.plan.history)
        assert histories["with"] == histories["without"]

    def test_reorg_faults_preserve_mode_equivalence(self, tparams, owner_factory):
        """With reorgs enabled the verdicts and balances still match sync."""
        fresh_process_state()
        sync_system = deploy(tparams, owner_factory, "sync")
        sync_outcomes = run_scenario(sync_system)

        fresh_process_state()
        system = deploy(
            tparams,
            owner_factory,
            "block",
            chain_faults=ChainFaultPlan(chain_profile_named("reorgy"), seed=23),
        )
        outcomes = run_scenario(system)
        assert [(o.verified, sorted(o.record_ids)) for o in outcomes] == [
            (o.verified, sorted(o.record_ids)) for o in sync_outcomes
        ]
        assert system.balances() == sync_system.balances()
        assert system.builder.reorgs > 0, "the reorgy profile must fire"
        system.chain.verify_integrity()
