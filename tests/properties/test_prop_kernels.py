"""Kernels ≡ no kernels: the memo/precompute layer is an execution knob,
never a protocol input.  For any database, insert sequence and query, a
deployment with ``REPRO_KERNELS=1`` (warm or cold caches, serial or forked
workers) must produce byte-identical indexes, primes, accumulation values,
witnesses and search results to one with the layer disabled."""

import os
from contextlib import contextmanager

from hypothesis import given, settings, strategies as st

from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle, SlicerParams
from repro.core.query import MatchCondition, Query
from repro.core.records import Database
from repro.core.user import DataUser
from repro.core.verify import verify_response
from repro.crypto import kernels

PARAMS = SlicerParams.testing(value_bits=8)
KEYS = KeyBundle.generate(default_rng(777), trapdoor_bits=512)

value_lists = st.lists(st.integers(0, 255), min_size=1, max_size=10)
queries = st.tuples(
    st.integers(0, 255),
    st.sampled_from([MatchCondition.EQUAL, MatchCondition.GREATER, MatchCondition.LESS]),
)
worker_counts = st.sampled_from([1, 2])


@contextmanager
def kernels_off():
    """Disable the kernel layer for the duration (hypothesis-safe: no
    function-scoped monkeypatch fixture inside @given)."""
    old = os.environ.get(kernels.KERNELS_ENV)
    os.environ[kernels.KERNELS_ENV] = "0"
    try:
        yield
    finally:
        if old is None:
            del os.environ[kernels.KERNELS_ENV]
        else:
            os.environ[kernels.KERNELS_ENV] = old


def deploy(values: list[int], workers: int, seed: int):
    params = PARAMS.with_workers(workers)
    owner = DataOwner(params, keys=KEYS, rng=default_rng(seed))
    owner._executor.min_items = 1  # fan out even on tiny fixtures
    db = Database(8)
    for i, v in enumerate(values):
        db.add(i, v)
    out = owner.build(db)
    cloud = CloudServer(params, KEYS.trapdoor.public)
    cloud._executor.min_items = 1
    cloud.install(out.cloud_package)
    return owner, cloud, out


def assert_same_package(a, b) -> None:
    assert a.cloud_package.index.entries == b.cloud_package.index.entries
    assert a.cloud_package.primes == b.cloud_package.primes
    assert a.cloud_package.accumulation == b.cloud_package.accumulation
    assert a.chain_ads == b.chain_ads


class TestBuildEquivalence:
    @given(values=value_lists, workers=worker_counts)
    @settings(max_examples=8, deadline=None)
    def test_build_byte_identical(self, values, workers):
        seed = hash(tuple(values)) & 0xFFFF
        with kernels_off():
            _, _, plain = deploy(values, workers, seed)
        kernels.clear_caches()
        _, _, cold = deploy(values, workers, seed)  # kernels on, cold caches
        _, _, warm = deploy(values, workers, seed)  # kernels on, warm caches
        assert_same_package(plain, cold)
        assert_same_package(plain, warm)


class TestInsertEquivalence:
    @given(
        values=value_lists,
        extra=st.lists(st.integers(0, 255), min_size=1, max_size=5),
        workers=worker_counts,
    )
    @settings(max_examples=6, deadline=None)
    def test_insert_byte_identical(self, values, extra, workers):
        seed = (hash(tuple(values)) ^ hash(tuple(extra))) & 0xFFFF
        add = Database(8)
        for i, v in enumerate(extra):
            add.add(f"x{i}", v)
        with kernels_off():
            owner_plain, cloud_plain, _ = deploy(values, workers, seed)
            out_plain = owner_plain.insert(add)
            cloud_plain.install(out_plain.cloud_package)
        owner_k, cloud_k, _ = deploy(values, workers, seed)
        out_k = owner_k.insert(add)
        cloud_k.install(out_k.cloud_package)
        assert_same_package(out_plain, out_k)
        assert cloud_plain.ads_value == cloud_k.ads_value
        assert sorted(cloud_plain._primes) == sorted(cloud_k._primes)


class TestSearchEquivalence:
    @given(values=value_lists, q=queries, workers=worker_counts)
    @settings(max_examples=8, deadline=None)
    def test_search_results_and_witnesses_byte_identical(self, values, q, workers):
        seed = hash(tuple(values)) & 0xFFFF
        with kernels_off():
            _, cloud_plain, out_plain = deploy(values, workers, seed)
            user = DataUser(PARAMS, out_plain.user_package, default_rng(3))
            tokens = user.make_tokens(Query(*q))
            resp_plain = cloud_plain.search(tokens)
        kernels.clear_caches()
        _, cloud_k, _ = deploy(values, workers, seed)
        resp_cold = cloud_k.search(tokens)  # cold kernel caches
        resp_warm = cloud_k.search(tokens)  # repeat query: warm trapdoor
        # chain, H_prime memo and repeat-witness cache all hit
        for resp in (resp_cold, resp_warm):
            assert len(resp.results) == len(resp_plain.results)
            for a, b in zip(resp_plain.results, resp.results):
                assert a.entries == b.entries
                assert a.witness.value == b.witness.value
        report = verify_response(PARAMS, cloud_k.ads_value, resp_warm)
        assert report.ok

    @given(values=value_lists, q=queries)
    @settings(max_examples=6, deadline=None)
    def test_decrypted_result_sets_identical(self, values, q):
        seed = hash(tuple(values)) & 0xFFFF
        with kernels_off():
            _, cloud_plain, out = deploy(values, 1, seed)
            user = DataUser(PARAMS, out.user_package, default_rng(5))
            tokens = user.make_tokens(Query(*q))
            ids_plain = user.decrypt_results(cloud_plain.search(tokens))
        kernels.clear_caches()
        _, cloud_k, _ = deploy(values, 1, seed)
        assert user.decrypt_results(cloud_k.search(tokens)) == ids_plain


class TestPrimeAndCounterEquivalence:
    @given(values=value_lists)
    @settings(max_examples=6, deadline=None)
    def test_contract_gas_material_identical(self, values):
        """The (prime, candidate-count) pairs the contract charges gas for
        are identical with the memo cold, warm, or absent."""
        seed = hash(tuple(values)) & 0xFFFF
        _, _, out = deploy(values, 1, seed)
        payloads = [p.to_bytes(64, "big") for p in out.cloud_package.primes[:6]]
        with kernels_off():
            plain = [
                PARAMS.hash_to_prime().hash_to_prime_with_counter(d) for d in payloads
            ]
        kernels.clear_caches()
        cold = [PARAMS.hash_to_prime().hash_to_prime_with_counter(d) for d in payloads]
        warm = [PARAMS.hash_to_prime().hash_to_prime_with_counter(d) for d in payloads]
        assert cold == plain
        assert warm == plain
