"""Shard count ≡ 1: the serving-tier width is an execution knob, never a
protocol input.

Three invariances pin the sharded tier down:

* **responses** — a deployment serving through N shards produces
  byte-identical wire responses, verdicts, record IDs and settlement gas
  to the single-cloud deployment, for every query, before and after an
  insert, at ``workers`` 0 and 2 alike;
* **counters** — the deterministic counter snapshot (protocol work:
  collect walks, cache hit/miss, hash-to-prime, settlement) is identical
  at every shard count — N shards do exactly the single cloud's work,
  partitioned; topology-shaped ``shard.*`` bookkeeping is excluded at the
  source (see :meth:`MetricsRegistry.deterministic_snapshot`);
* **recovery** — one shard restored from its own ``state_io`` snapshot
  serves byte-identical responses again, while a killed shard degrades
  only the queries routed to it.

Kernel memo caches are process-global, so every leg starts from
``kernels.clear_caches()`` + a registry reset — otherwise the second run
inherits the first run's warm memos and the counter comparison measures
session history, not the tier.
"""

import pytest

from repro.common.rng import default_rng
from repro.core import wire
from repro.core.query import Query
from repro.core.records import make_database
from repro.crypto import kernels
from repro.obs.metrics import REGISTRY
from repro.system import SlicerSystem

VALUES = [7, 7, 9, 40, 41, 64, 3, 200, 128, 255]
EXTRA = [7, 41, 130]
QUERIES = [
    Query.parse(7, "="),
    Query.parse(40, ">"),
    Query.parse(41, "<"),
    Query.parse(200, "="),
]
SHARD_COUNTS = [1, 2, 4]


def database(values, start=0):
    return make_database(
        [(f"rec-{start + i}", v) for i, v in enumerate(values)], bits=8
    )


def fresh_process_state():
    """Cold kernel memos + cold registry: comparable counter baselines."""
    kernels.clear_caches()
    REGISTRY.reset()


def deploy(tparams, owner_factory, workers, shards, seed=11):
    params = tparams.with_workers(workers)
    system = SlicerSystem(
        params,
        rng=default_rng(seed),
        owner=owner_factory(params, seed=seed),
        shards=shards,
    )
    system.setup(database(VALUES))
    return system


def run_scenario(system):
    """Search -> precompute witnesses -> insert -> search again."""
    outcomes = [system.search(q) for q in QUERIES]
    system.cloud.precompute_witnesses()
    system.insert(database(EXTRA, start=100))
    outcomes.extend(system.search(q) for q in QUERIES)
    return outcomes


def fingerprint(outcome):
    return (
        outcome.verified,
        sorted(outcome.record_ids),
        wire.dump_response(outcome.response),
        outcome.settle_gas,
    )


@pytest.mark.parametrize("workers", [0, 2])
class TestShardCountInvariance:
    def test_outcomes_and_counters_identical_at_any_width(
        self, tparams, owner_factory, workers
    ):
        runs = {}
        for shards in SHARD_COUNTS:
            fresh_process_state()
            system = deploy(tparams, owner_factory, workers, shards)
            outcomes = run_scenario(system)
            runs[shards] = (
                [fingerprint(o) for o in outcomes],
                REGISTRY.deterministic_snapshot(),
            )
        ref_fingerprints, ref_snapshot = runs[1]
        assert all(f[0] for f in ref_fingerprints), "reference must settle paid"
        for shards in SHARD_COUNTS[1:]:
            fingerprints, snapshot = runs[shards]
            assert fingerprints == ref_fingerprints, (
                f"{shards}-shard outcomes drifted from the single cloud"
            )
            assert snapshot == ref_snapshot, (
                f"{shards}-shard deterministic counters drifted"
            )


class TestShardTierSnapshots:
    def test_tier_restore_roundtrip(self, tparams, owner_factory):
        fresh_process_state()
        system = deploy(tparams, owner_factory, 0, 4)
        frontend = system.cloud
        reference = [
            wire.dump_response(system.search(q).response) for q in QUERIES
        ]
        blob = frontend.snapshot()
        # Cold-restart the whole tier; searches must come back bit for bit.
        frontend.restore(blob)
        after = [wire.dump_response(system.search(q).response) for q in QUERIES]
        assert after == reference

    def test_shard_crash_recovery_from_own_snapshot(self, tparams, owner_factory):
        fresh_process_state()
        system = deploy(tparams, owner_factory, 0, 4)
        frontend = system.cloud
        reference = {
            q: wire.dump_response(system.search(q).response) for q in QUERIES
        }
        shards_of = {
            q: set(frontend.shards_for_tokens(system.user.make_tokens(q)))
            for q in QUERIES
        }
        # Pick a victim shard that some query touches and another avoids.
        victim = affected = spared = None
        for qa in QUERIES:
            for qb in QUERIES:
                only = shards_of[qa] - shards_of[qb]
                if only:
                    victim, affected, spared = next(iter(only)), qa, qb
                    break
            if victim is not None:
                break
        assert victim is not None, "fixture queries must span >1 shard"

        snap = frontend.snapshot_shard(victim)
        frontend.kill_shard(victim)
        down = system.search(affected)
        assert not down.verified, "queries on the dead shard must refund"
        assert down.record_ids == set()
        alive = system.search(spared)
        assert alive.verified, "queries avoiding the dead shard still settle"
        assert wire.dump_response(alive.response) == reference[spared]

        frontend.restore_shard(victim, snap)
        recovered = system.search(affected)
        assert recovered.verified
        assert wire.dump_response(recovered.response) == reference[affected]
