"""Parallel ≡ serial: the worker count is an execution knob, never a
protocol input.  For any database and any insert sequence, a deployment
running with ``workers=N`` must produce byte-identical indexes, prime
lists, accumulation values and witnesses to a ``workers=1`` deployment
fed the same RNG seed."""

from hypothesis import given, settings, strategies as st

from repro.common.rng import default_rng
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import KeyBundle, SlicerParams
from repro.core.query import MatchCondition, Query
from repro.core.records import Database
from repro.core.user import DataUser
from repro.core.verify import verify_response

PARAMS = SlicerParams.testing(value_bits=8)
KEYS = KeyBundle.generate(default_rng(777), trapdoor_bits=512)
WORKERS = 3

value_lists = st.lists(st.integers(0, 255), min_size=1, max_size=12)
queries = st.tuples(
    st.integers(0, 255),
    st.sampled_from([MatchCondition.EQUAL, MatchCondition.GREATER, MatchCondition.LESS]),
)


def deploy(values: list[int], workers: int, seed: int):
    params = PARAMS.with_workers(workers)
    owner = DataOwner(params, keys=KEYS, rng=default_rng(seed))
    owner._executor.min_items = 1  # fan out even on tiny fixtures
    db = Database(8)
    for i, v in enumerate(values):
        db.add(i, v)
    out = owner.build(db)
    cloud = CloudServer(params, KEYS.trapdoor.public)
    cloud._executor.min_items = 1
    cloud.install(out.cloud_package)
    return owner, cloud, out


def assert_same_package(a, b) -> None:
    assert a.cloud_package.index.entries == b.cloud_package.index.entries
    assert a.cloud_package.primes == b.cloud_package.primes
    assert a.cloud_package.accumulation == b.cloud_package.accumulation
    assert a.chain_ads == b.chain_ads


class TestBuildEquivalence:
    @given(values=value_lists)
    @settings(max_examples=12, deadline=None)
    def test_build_byte_identical(self, values):
        seed = hash(tuple(values)) & 0xFFFF
        _, _, serial = deploy(values, 1, seed)
        _, _, parallel = deploy(values, WORKERS, seed)
        assert_same_package(serial, parallel)


class TestInsertEquivalence:
    @given(values=value_lists, extra=st.lists(st.integers(0, 255), min_size=1, max_size=6))
    @settings(max_examples=8, deadline=None)
    def test_insert_byte_identical(self, values, extra):
        seed = (hash(tuple(values)) ^ hash(tuple(extra))) & 0xFFFF
        owner_s, cloud_s, _ = deploy(values, 1, seed)
        owner_p, cloud_p, _ = deploy(values, WORKERS, seed)
        add = Database(8)
        for i, v in enumerate(extra):
            add.add(f"x{i}", v)
        out_s = owner_s.insert(add)
        out_p = owner_p.insert(add)
        assert_same_package(out_s, out_p)
        cloud_s.install(out_s.cloud_package)
        cloud_p.install(out_p.cloud_package)
        assert cloud_s.ads_value == cloud_p.ads_value
        assert sorted(cloud_s._primes) == sorted(cloud_p._primes)


class TestSearchEquivalence:
    @given(values=value_lists, q=queries)
    @settings(max_examples=10, deadline=None)
    def test_search_and_witnesses_byte_identical(self, values, q):
        seed = hash(tuple(values)) & 0xFFFF
        _, cloud_s, out_s = deploy(values, 1, seed)
        _, cloud_p, out_p = deploy(values, WORKERS, seed)
        user = DataUser(PARAMS, out_s.user_package, default_rng(3))
        # The same token stream goes to both clouds (tokens are user state,
        # orthogonal to cloud-side parallelism).
        tokens = user.make_tokens(Query(*q))
        resp_s = cloud_s.search(tokens)
        resp_p = cloud_p.search(tokens)
        assert len(resp_s.results) == len(resp_p.results)
        for a, b in zip(resp_s.results, resp_p.results):
            assert a.entries == b.entries
            assert a.witness.value == b.witness.value
        report = verify_response(PARAMS, cloud_p.ads_value, resp_p)
        assert report.ok

    @given(values=value_lists)
    @settings(max_examples=6, deadline=None)
    def test_precomputed_caches_identical(self, values):
        seed = hash(tuple(values)) & 0xFFFF
        _, cloud_s, _ = deploy(values, 1, seed)
        _, cloud_p, _ = deploy(values, WORKERS, seed)
        assert cloud_s.precompute_witnesses() == cloud_p.precompute_witnesses()
        assert cloud_s._witness_cache == cloud_p._witness_cache
