"""Workload generation: shapes, domains, determinism."""

import pytest

from repro.common.errors import ParameterError
from repro.common.rng import default_rng
from repro.core.query import MatchCondition
from repro.workloads.generator import (
    QueryPopularity,
    ShardSkew,
    ValueDistribution,
    WorkloadGenerator,
    WorkloadSpec,
)


@pytest.fixture()
def gen():
    return WorkloadGenerator(default_rng(91))


class TestDatabaseGeneration:
    def test_count_and_domain(self, gen):
        db = gen.database(WorkloadSpec(100, 8))
        assert len(db) == 100
        assert all(0 <= v < 256 for v in db.values())

    def test_unique_ids(self, gen):
        db = gen.database(WorkloadSpec(50, 8))
        assert len({r.record_id for r in db}) == 50

    def test_id_offset_for_disjoint_batches(self, gen):
        a = gen.database(WorkloadSpec(10, 8))
        b = gen.database(WorkloadSpec(10, 8), id_offset=10)
        assert {r.record_id for r in a} & {r.record_id for r in b} == set()

    def test_deterministic_given_seed(self):
        a = WorkloadGenerator(default_rng(5)).database(WorkloadSpec(30, 16))
        b = WorkloadGenerator(default_rng(5)).database(WorkloadSpec(30, 16))
        assert a.values() == b.values()

    def test_zipf_skews_small(self, gen):
        db = gen.database(WorkloadSpec(2000, 16, ValueDistribution.ZIPF))
        values = db.values()
        small_fraction = sum(1 for v in values if v < 16) / len(values)
        # Under uniform sampling P(v < 16) = 16/65536 ≈ 0.00024; the zipf
        # head must be orders of magnitude heavier.
        assert small_fraction > 0.25

    def test_zipf_steeper_s_is_heavier(self):
        heavy = WorkloadGenerator(default_rng(5)).database(
            WorkloadSpec(2000, 16, ValueDistribution.ZIPF, zipf_s=2.0)
        )
        light = WorkloadGenerator(default_rng(5)).database(
            WorkloadSpec(2000, 16, ValueDistribution.ZIPF, zipf_s=1.2)
        )
        head = lambda db: sum(1 for v in db.values() if v < 16)
        assert head(heavy) > head(light)

    def test_clustered_in_domain(self, gen):
        db = gen.database(WorkloadSpec(500, 8, ValueDistribution.CLUSTERED))
        assert all(0 <= v < 256 for v in db.values())

    def test_invalid_spec(self):
        with pytest.raises(ParameterError):
            WorkloadSpec(-1, 8)
        with pytest.raises(ParameterError):
            WorkloadSpec(10, 0)


class TestAttributedGeneration:
    def test_all_attributes_present(self, gen):
        db = gen.attributed_database(
            20, {"age": WorkloadSpec(0, 8), "score": WorkloadSpec(0, 8)}
        )
        assert len(db) == 20
        for record in db:
            record.value_of("age")
            record.value_of("score")

    def test_mixed_widths_rejected(self, gen):
        with pytest.raises(ParameterError):
            gen.attributed_database(
                5, {"a": WorkloadSpec(0, 8), "b": WorkloadSpec(0, 16)}
            )


class TestQueryGeneration:
    def test_equality_queries(self, gen):
        qs = gen.equality_queries(20, 8)
        assert len(qs) == 20
        assert all(q.condition is MatchCondition.EQUAL for q in qs)
        assert all(0 <= q.value < 256 for q in qs)

    def test_order_queries(self, gen):
        qs = gen.order_queries(50, 8)
        assert all(q.condition.is_order for q in qs)
        symbols = {q.condition for q in qs}
        assert len(symbols) == 2  # both directions appear at 50 draws

    def test_mixed_fraction(self, gen):
        qs = gen.mixed_queries(10, 8, equality_fraction=0.3)
        eq = sum(1 for q in qs if q.condition is MatchCondition.EQUAL)
        assert eq == 3


class TestPopularQueries:
    def test_stream_drawn_from_pool(self, gen):
        pool = gen.mixed_queries(6, 8)
        stream = gen.popular_queries(40, 8, pool=pool)
        assert len(stream) == 40
        assert all(q in pool for q in stream)

    def test_deterministic_given_seed(self):
        a = WorkloadGenerator(default_rng(5)).popular_queries(30, 8)
        b = WorkloadGenerator(default_rng(5)).popular_queries(30, 8)
        assert a == b

    def test_zipf_repeats_more_than_uniform(self):
        """Skewed traffic concentrates on fewer distinct queries — the
        repeat-heavy regime the entry cache targets."""

        def distinct(popularity):
            gen = WorkloadGenerator(default_rng(5))
            pool = gen.mixed_queries(32, 8)
            stream = gen.popular_queries(64, 8, popularity=popularity, pool=pool)
            return len({(q.value, q.condition) for q in stream})

        assert distinct(QueryPopularity.ZIPF) < distinct(QueryPopularity.UNIFORM)

    def test_zipf_head_dominates(self, gen):
        pool = gen.mixed_queries(16, 8)
        stream = gen.popular_queries(200, 8, pool=pool, zipf_s=1.5)
        head_hits = sum(1 for q in stream if q == pool[0])
        # Rank 1 of Zipf(1.5, 16) carries far more than the uniform 1/16.
        assert head_hits / len(stream) > 0.25

    def test_invalid_pool(self, gen):
        with pytest.raises(ParameterError):
            gen.popular_queries(5, 8, pool_size=0)
        with pytest.raises(ParameterError):
            gen.popular_queries(5, 8, pool=[])


class TestShardSkew:
    """Hot-shard steering against an injectable route (no crypto needed)."""

    @staticmethod
    def route4(query):
        return query.value % 4

    def test_hot_fraction_concentrates_on_hot_shard(self, gen):
        skew = ShardSkew(shards=4, hot_shard=2, hot_fraction=0.8)
        stream = gen.sharded_queries(300, 8, skew, self.route4)
        hot = sum(1 for q in stream if self.route4(q) == 2)
        assert 0.7 < hot / len(stream) < 0.9  # ~hot_fraction, sampling noise

    def test_cold_shards_share_the_rest(self, gen):
        skew = ShardSkew(shards=4, hot_shard=0, hot_fraction=0.7)
        stream = gen.sharded_queries(400, 8, skew, self.route4)
        cold_hits = [
            sum(1 for q in stream if self.route4(q) == sid) for sid in (1, 2, 3)
        ]
        assert all(hits > 0 for hits in cold_hits)

    def test_single_shard_degenerates_to_plain_equality(self):
        a = WorkloadGenerator(default_rng(5)).sharded_queries(
            25, 8, ShardSkew(shards=1), lambda q: 0
        )
        b = WorkloadGenerator(default_rng(5)).equality_queries(25, 8)
        assert a == b

    def test_deterministic_given_seed(self):
        skew = ShardSkew(shards=4, hot_fraction=0.8)
        a = WorkloadGenerator(default_rng(5)).sharded_queries(
            30, 8, skew, self.route4
        )
        b = WorkloadGenerator(default_rng(5)).sharded_queries(
            30, 8, skew, self.route4
        )
        assert a == b

    def test_all_equality_in_domain(self, gen):
        stream = gen.sharded_queries(50, 8, ShardSkew(shards=4), self.route4)
        assert all(q.condition is MatchCondition.EQUAL for q in stream)
        assert all(0 <= q.value < 256 for q in stream)

    def test_exhausted_attempts_keep_last_draw(self):
        # No value ever routes to shard 3 under this route: the generator
        # must still emit `count` queries (approximate distribution).
        skew = ShardSkew(shards=4, hot_shard=3, hot_fraction=1.0, max_attempts=8)
        stream = WorkloadGenerator(default_rng(5)).sharded_queries(
            10, 8, skew, lambda q: q.value % 3
        )
        assert len(stream) == 10

    def test_validation(self):
        with pytest.raises(ParameterError):
            ShardSkew(shards=0)
        with pytest.raises(ParameterError):
            ShardSkew(shards=2, hot_shard=2)
        with pytest.raises(ParameterError):
            ShardSkew(shards=2, hot_fraction=1.5)
        with pytest.raises(ParameterError):
            ShardSkew(shards=2, max_attempts=0)
