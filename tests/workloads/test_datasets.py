"""Domain dataset generators: shapes, domains, determinism, protocol use."""

import pytest

from repro.common.rng import default_rng
from repro.workloads.datasets import medical_records, sensor_readings, transaction_ledger


class TestMedicalRecords:
    def test_count_and_attributes(self):
        db = medical_records(50, default_rng(1))
        assert len(db) == 50
        for record in db:
            for attr in ("age", "systolic", "heart_rate"):
                assert 0 <= record.value_of(attr) <= 255

    def test_age_systolic_correlation(self):
        db = medical_records(400, default_rng(2))
        young = [r.value_of("systolic") for r in db if r.value_of("age") < 40]
        old = [r.value_of("systolic") for r in db if r.value_of("age") > 65]
        assert sum(old) / len(old) > sum(young) / len(young)

    def test_deterministic(self):
        a = medical_records(20, default_rng(3))
        b = medical_records(20, default_rng(3))
        assert [r.attributes for r in a] == [r.attributes for r in b]

    def test_usable_in_protocol(self, tparams, owner_factory):
        from repro.core.cloud import CloudServer
        from repro.core.query import Query
        from repro.core.user import DataUser
        from repro.core.verify import verify_response

        owner = owner_factory(tparams, seed=241)
        db = medical_records(25, default_rng(4))
        out = owner.build(db)
        cloud = CloudServer(tparams, owner.keys.trapdoor.public)
        cloud.install(out.cloud_package)
        user = DataUser(tparams, out.user_package, default_rng(5))
        query = Query.parse(64, "<", attribute="age")
        response = cloud.search(user.make_tokens(query))
        assert verify_response(tparams, cloud.ads_value, response).ok
        assert user.decrypt_results(response) == db.ids_matching("age", query.predicate())


class TestTransactionLedger:
    def test_heavy_tail(self):
        db = transaction_ledger(800, default_rng(6))
        values = sorted(db.values())
        median = values[len(values) // 2]
        assert values[-1] > 10 * max(median, 1)  # rare large transactions

    def test_domain(self):
        db = transaction_ledger(100, default_rng(7), bits=16)
        assert all(0 <= v < 65536 for v in db.values())


class TestSensorReadings:
    def test_clustered_around_sinusoid(self):
        db = sensor_readings(576, default_rng(8))
        values = db.values()
        assert all(0 <= v < 65536 for v in values)
        # Values span the sinusoid's swing, not the full domain.
        assert max(values) - min(values) > 65536 // 4

    def test_unique_ids(self):
        db = sensor_readings(300, default_rng(9))
        assert len({r.record_id for r in db}) == 300
