"""Scale presets and the REPRO_SCALE switch."""

import pytest

from repro.workloads.scaling import current_scale, get_scale


class TestPresets:
    def test_known_presets(self):
        for name in ["smoke", "default", "paper"]:
            preset = get_scale(name)
            assert preset.name == name
            assert len(preset.record_counts) >= 3

    def test_paper_scale_matches_paper(self):
        paper = get_scale("paper")
        assert paper.record_counts == (10_000, 20_000, 40_000, 80_000, 160_000)
        assert paper.bit_settings == (8, 16, 24)

    def test_doubling_shape_preserved(self):
        default = get_scale("default")
        counts = default.record_counts
        assert all(b == 2 * a for a, b in zip(counts, counts[1:]))


class TestEnvSwitch:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "default"

    def test_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"

    def test_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(KeyError):
            current_scale()
