"""RangeWorkload: deterministic range/conjunctive plan streams."""

import pytest

from repro.common.errors import ParameterError
from repro.common.rng import default_rng
from repro.core.query import And, Range
from repro.planner import compile_plan
from repro.workloads import QueryPopularity, RangeWorkload, WorkloadGenerator

BITS = 8


def make_generator(seed=11):
    return WorkloadGenerator(default_rng(seed))


class TestValidation:
    @pytest.mark.parametrize("selectivity", [0.0, -0.1, 1.5])
    def test_selectivity_bounds(self, selectivity):
        with pytest.raises(ParameterError, match="selectivity"):
            RangeWorkload(selectivity=selectivity)

    @pytest.mark.parametrize("fan_in", [0, 4])
    def test_fan_in_bounds(self, fan_in):
        with pytest.raises(ParameterError, match="fan_in"):
            RangeWorkload(selectivity=0.01, fan_in=fan_in)

    def test_pool_size_positive(self):
        with pytest.raises(ParameterError, match="pool_size"):
            RangeWorkload(selectivity=0.01, pool_size=0)

    def test_fan_in_needs_enough_attributes(self):
        workload = RangeWorkload(selectivity=0.01, fan_in=2)
        with pytest.raises(ParameterError, match="fan_in"):
            make_generator().range_plans(4, BITS, workload)

    def test_full_domain_selectivity_rejected(self):
        workload = RangeWorkload(selectivity=1.0)
        with pytest.raises(ParameterError, match="whole domain"):
            make_generator().range_plans(4, BITS, workload)


class TestStreamShape:
    def test_deterministic_under_seed(self):
        workload = RangeWorkload(selectivity=0.05)
        first = make_generator(7).range_plans(20, BITS, workload)
        second = make_generator(7).range_plans(20, BITS, workload)
        assert first == second

    def test_width_tracks_selectivity(self):
        workload = RangeWorkload(selectivity=0.1)
        plans = make_generator().range_plans(10, BITS, workload)
        expected = round(0.1 * (1 << BITS))
        for plan in plans:
            assert isinstance(plan, Range)
            assert plan.hi - plan.lo + 1 == expected
            assert 0 <= plan.lo <= plan.hi < (1 << BITS)

    def test_tiny_selectivity_clamps_to_one_value(self):
        workload = RangeWorkload(selectivity=0.001)
        plans = make_generator().range_plans(5, BITS, workload)
        for plan in plans:
            assert plan.hi == plan.lo  # width 1 on an 8-bit domain

    def test_fan_in_conjoins_distinct_attributes(self):
        workload = RangeWorkload(selectivity=0.05, fan_in=3)
        plans = make_generator().range_plans(
            10, BITS, workload, attributes=["lat", "lon", "alt"]
        )
        for plan in plans:
            assert isinstance(plan, And)
            attrs = [term.attribute for term in plan.terms]
            assert len(attrs) == 3
            assert len(set(attrs)) == 3
            assert set(attrs) <= {"lat", "lon", "alt"}

    def test_all_plans_compile(self):
        workload = RangeWorkload(selectivity=0.05, fan_in=2)
        plans = make_generator().range_plans(
            12, BITS, workload, attributes=["lat", "lon"]
        )
        for plan in plans:
            compiled = compile_plan(plan, BITS)
            assert compiled.legs

    def test_zipf_stream_repeats_hot_plans(self):
        workload = RangeWorkload(selectivity=0.05, pool_size=8)
        plans = make_generator().range_plans(64, BITS, workload)
        distinct = {repr(plan) for plan in plans}
        # Zipf rank skew: far fewer distinct plans than draws.
        assert len(distinct) <= len(plans) // 2

    def test_uniform_popularity_draws_from_pool(self):
        workload = RangeWorkload(
            selectivity=0.05, popularity=QueryPopularity.UNIFORM, pool_size=4
        )
        plans = make_generator().range_plans(40, BITS, workload)
        assert len({repr(plan) for plan in plans}) <= 4
