"""Accounts and address derivation."""

import pytest

from repro.blockchain.accounts import (
    Account,
    address_from_label,
    contract_address,
    format_address,
)
from repro.common.errors import InsufficientFundsError


class TestAddresses:
    def test_deterministic(self):
        assert address_from_label("alice") == address_from_label("alice")

    def test_distinct_labels(self):
        assert address_from_label("alice") != address_from_label("bob")

    def test_length(self):
        assert len(address_from_label("alice")) == 20

    def test_contract_address_nonce_dependent(self):
        creator = address_from_label("alice")
        assert contract_address(creator, 0) != contract_address(creator, 1)

    def test_format(self):
        assert format_address(b"\x00" * 20) == "0x" + "00" * 20


class TestAccount:
    def test_credit_debit(self):
        acct = Account(balance=100)
        acct.debit(40)
        acct.credit(10)
        assert acct.balance == 70

    def test_overdraft_rejected(self):
        with pytest.raises(InsufficientFundsError):
            Account(balance=10).debit(11)

    def test_negative_amounts_rejected(self):
        acct = Account(balance=10)
        with pytest.raises(InsufficientFundsError):
            acct.debit(-1)
        with pytest.raises(InsufficientFundsError):
            acct.credit(-1)
