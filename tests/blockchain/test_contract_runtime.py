"""Metered contract runtime: storage pricing, revert rollback, out-of-gas."""

import pytest

from repro.blockchain.accounts import address_from_label
from repro.blockchain.chain import Blockchain
from repro.blockchain.contract import Contract, GasMeter
from repro.blockchain.gas import GasSchedule
from repro.common.errors import ContractRevert, OutOfGasError, StateError


class Vault(Contract):
    CODE_SIZE = 200

    def init(self) -> None:
        self._sstore_int("total", 0, 8)

    def deposit(self) -> int:
        self._require(self.call_value > 0, "no value")
        total = self._sload_int("total") + self.call_value
        self._sstore_int("total", total, 8)
        self._emit("Deposited", amount=self.call_value.to_bytes(8, "big"))
        return total

    def fail_after_write(self) -> None:
        self._sstore_int("total", 999_999, 8)
        self._require(False, "deliberate revert")

    def withdraw_to(self, to: bytes, amount: int) -> None:
        self._transfer(to, amount)

    def burn_gas(self) -> None:
        for i in range(10_000):
            self._keccak(b"x" * 32)


@pytest.fixture()
def world():
    chain = Blockchain()
    alice = chain.create_account("alice", 10_000)
    vault, _ = chain.deploy(alice, Vault)
    return chain, alice, vault


class TestStoragePricing:
    def test_first_write_is_set(self, world):
        chain, alice, vault = world
        receipt = chain.call(alice, vault, "deposit", value=10)
        schedule = GasSchedule()
        # total slot was initialised at deploy -> this is a reset, not a set.
        assert receipt.gas_breakdown["sstore"] == schedule.sstore_reset

    def test_warm_sload_cheaper(self):
        meter = GasMeter(10**6, GasSchedule())
        c = Vault()
        c._begin_call(meter, b"\x00" * 20, 0)
        c._sstore("x", b"\x01")
        cold_before = meter.breakdown.get("sload", 0)
        c._sload("x")  # warm: written this tx
        assert meter.breakdown["sload"] - cold_before == GasSchedule().sload_warm


class TestRevertSemantics:
    def test_storage_rolled_back(self, world):
        chain, alice, vault = world
        chain.call(alice, vault, "deposit", value=10)
        receipt = chain.call(alice, vault, "fail_after_write")
        assert not receipt.status
        assert receipt.revert_reason == "deliberate revert"
        # total still 10, not 999999
        ok = chain.call(alice, vault, "deposit", value=5)
        assert ok.return_value == 15

    def test_value_refunded_on_revert(self, world):
        chain, alice, vault = world
        before = chain.balance(alice)

        class Rejecting(Vault):
            def deposit(self) -> int:
                self._require(False, "closed")
                return 0

        rej, _ = chain.deploy(alice, Rejecting)
        receipt = chain.call(alice, rej, "deposit", value=100)
        assert not receipt.status
        assert chain.balance(alice) == before  # value returned
        assert chain.balance(rej.address) == 0

    def test_logs_dropped_on_revert(self, world):
        chain, alice, vault = world
        receipt = chain.call(alice, vault, "fail_after_write")
        assert receipt.logs == []

    def test_gas_still_consumed_on_revert(self, world):
        chain, alice, vault = world
        receipt = chain.call(alice, vault, "fail_after_write")
        assert receipt.gas_used > 21_000


class TestOutOfGas:
    def test_out_of_gas_reverts(self, world):
        chain, alice, vault = world
        receipt = chain.call(alice, vault, "burn_gas", gas_limit=50_000)
        assert not receipt.status
        assert receipt.gas_used == 50_000
        assert "gas limit" in receipt.revert_reason

    def test_meter_raises(self):
        meter = GasMeter(100, GasSchedule())
        with pytest.raises(OutOfGasError):
            meter.charge(101, "x")

    def test_negative_charge_rejected(self):
        meter = GasMeter(100, GasSchedule())
        with pytest.raises(StateError):
            meter.charge(-1, "x")


class TestTransfers:
    def test_contract_pays_out(self, world):
        chain, alice, vault = world
        bob = chain.create_account("bob", 0)
        chain.call(alice, vault, "deposit", value=100)
        chain.call(alice, vault, "withdraw_to", (bob, 60))
        assert chain.balance(bob) == 60
        assert chain.balance(vault.address) == 40


class TestEvents:
    def test_logs_recorded(self, world):
        chain, alice, vault = world
        receipt = chain.call(alice, vault, "deposit", value=10)
        assert len(receipt.logs) == 1
        event = receipt.logs[0]
        assert event.name == "Deposited"
        assert event.get("amount") == (10).to_bytes(8, "big")
        with pytest.raises(KeyError):
            event.get("missing")

    def test_meter_required_outside_call(self):
        with pytest.raises(StateError):
            Vault()._sload("total")
