"""Block builder: packing, journaled replay, reorgs, settlement proofs."""

import pytest

from repro.blockchain.block import settlement_leaves
from repro.blockchain.block_builder import BlockBuilder
from repro.blockchain.chain import Blockchain
from repro.blockchain.contract import Contract
from repro.blockchain.light_client import follow
from repro.blockchain.mempool import Mempool
from repro.blockchain.proofs import prove_settlement, verify_settlement
from repro.chaos import ChainFaultPlan, ChainFaultProfile
from repro.common.encoding import encode_uint
from repro.common.errors import BlockchainError


class Settler(Contract):
    """Minimal contract emitting the settlement event shape."""

    CODE_SIZE = 100

    def init(self) -> None:
        self._sstore_int("count", 0, 8)

    def bump(self) -> int:
        value = self._sload_int("count") + 1
        self._sstore_int("count", value, 8)
        return value

    def settle(self, query_id: int, verdict: bool) -> bool:
        self._sstore_int("count", self._sload_int("count") + 1, 8)
        self._emit(
            "QuerySettled",
            query_id=encode_uint(query_id),
            verified=b"\x01" if verdict else b"\x00",
        )
        return verdict

    def fail(self) -> None:
        self._require(False, "always reverts")


@pytest.fixture()
def setup():
    chain = Blockchain()
    alice = chain.create_account("alice", 10**9)
    contract, _ = chain.deploy(alice, Settler)
    chain.mine()
    builder = BlockBuilder(chain, Mempool(chain))
    return chain, builder, contract, alice


def reorg_every_block(depth: int = 1) -> ChainFaultPlan:
    """A plan whose every draw reorgs at exactly ``depth``."""
    profile = ChainFaultProfile(
        name="always", reorg=1000, reorg_depth_max=depth, force_clean_after=10**6
    )
    return ChainFaultPlan(profile, seed=5)


class TestSealing:
    def test_staged_call_lands_in_next_block(self, setup):
        chain, builder, contract, alice = setup
        builder.stage_settlement(
            alice, contract, "settle", (0, True), gas_limit=100_000, tx_id="s0"
        )
        block = builder.seal_block()
        assert len(block.transactions) == 1
        receipt, height = builder.receipts["s0"]
        assert receipt.status and receipt.return_value is True
        assert height == block.number

    def test_empty_block_seals_cleanly(self, setup):
        chain, builder, _, _ = setup
        before = chain.height
        block = builder.seal_block()
        assert block.transactions == []
        assert chain.height == before + 1

    def test_one_block_carries_many_settlements(self, setup):
        chain, builder, contract, alice = setup
        for i in range(5):
            builder.stage_settlement(
                alice, contract, "settle", (i, True), gas_limit=100_000, tx_id=f"s{i}"
            )
        block = builder.seal_block()
        assert len(block.transactions) == 5
        assert len({builder.receipts[f"s{i}"][1] for i in range(5)}) == 1

    def test_full_block_defers_overflow_to_next(self, setup):
        """Declared limits beyond the budget spill into the next block."""
        chain, builder, contract, alice = setup
        per_tx = chain.config.block_gas_limit // 2 + 1  # only one fits
        for i in range(2):
            builder.stage_settlement(
                alice, contract, "settle", (i, True), gas_limit=per_tx, tx_id=f"s{i}"
            )
        first = builder.seal_block()
        second = builder.seal_block()
        assert len(first.transactions) == 1
        assert len(second.transactions) == 1
        assert builder.receipts["s0"][1] == first.number
        assert builder.receipts["s1"][1] == second.number

    def test_immediate_calls_share_the_block(self, setup):
        chain, builder, contract, alice = setup
        builder.execute_now(alice, contract, "bump", tx_id="now")
        builder.stage_settlement(
            alice, contract, "settle", (0, True), gas_limit=100_000, tx_id="later"
        )
        block = builder.seal_block()
        assert len(block.transactions) == 2
        assert builder.receipts["now"][1] == builder.receipts["later"][1]

    def test_out_of_band_pending_tx_rejected(self, setup):
        """Block mode must own every transaction, or reorg replay breaks."""
        chain, builder, contract, alice = setup
        chain.call(alice, contract, "bump")  # behind the builder's back
        with pytest.raises(BlockchainError):
            builder.execute_now(alice, contract, "bump")


class TestSettlementRoot:
    def test_proof_roundtrip_against_header(self, setup):
        chain, builder, contract, alice = setup
        builder.stage_settlement(
            alice, contract, "settle", (7, True), gas_limit=100_000, tx_id="s"
        )
        block = builder.seal_block()
        proof = prove_settlement(block, encode_uint(7))
        assert verify_settlement(block.header.settlement_root, proof)
        client = follow(chain)
        assert client.check_settlement(proof)

    def test_tampered_verdict_rejected(self, setup):
        chain, builder, contract, alice = setup
        builder.stage_settlement(
            alice, contract, "settle", (7, False), gas_limit=100_000, tx_id="s"
        )
        block = builder.seal_block()
        proof = prove_settlement(block, encode_uint(7))
        assert proof.verified == b"\x00"
        flipped = type(proof)(
            proof.block_number, proof.index, proof.tx_hash, proof.query_id,
            b"\x01", proof.path,
        )
        assert not verify_settlement(block.header.settlement_root, flipped)
        assert not follow(chain).check_settlement(flipped)

    def test_wrong_header_rejected(self, setup):
        chain, builder, contract, alice = setup
        builder.stage_settlement(
            alice, contract, "settle", (7, True), gas_limit=100_000, tx_id="s"
        )
        block = builder.seal_block()
        other = builder.seal_block()  # empty: EMPTY_ROOT settlement root
        proof = prove_settlement(block, encode_uint(7))
        assert not verify_settlement(other.header.settlement_root, proof)

    def test_reverted_settlement_leaves_no_leaf(self, setup):
        chain, builder, contract, alice = setup
        builder.stage_settlement(
            alice, contract, "fail", (), gas_limit=100_000, tx_id="boom"
        )
        block = builder.seal_block()
        assert not builder.receipts["boom"][0].status
        assert settlement_leaves(block.receipts) == []
        with pytest.raises(BlockchainError):
            prove_settlement(block, encode_uint(0))


class TestReorg:
    def test_reorg_replays_identically(self, setup):
        chain, builder, contract, alice = setup
        builder.fault_plan = reorg_every_block(depth=1)
        builder.stage_settlement(
            alice, contract, "settle", (1, True), gas_limit=100_000, tx_id="s"
        )
        builder.seal_block()
        assert builder.reorgs == 1 and builder.orphaned == 1
        receipt, height = builder.receipts["s"]
        assert receipt.status and receipt.return_value is True
        # The replacement block carries the settlement at the same height.
        assert chain.blocks[height].transactions[0].hash() == receipt.tx_hash
        chain.verify_integrity()

    def test_replacement_blocks_hash_differently(self, setup):
        chain, builder, contract, alice = setup
        builder.execute_now(alice, contract, "bump")
        block = builder.seal_block()
        orphaned_hash = block.header.hash()
        builder.fault_plan = reorg_every_block(depth=2)
        builder.stage_settlement(
            alice, contract, "settle", (1, True), gas_limit=100_000, tx_id="s"
        )
        builder.seal_block()
        assert builder.orphaned == 2
        assert chain.blocks[block.number].header.hash() != orphaned_hash

    def test_depth_two_reorg_preserves_state(self, setup):
        chain, builder, contract, alice = setup
        r1 = builder.execute_now(alice, contract, "bump")
        builder.seal_block()
        balance_before = chain.balance(alice)
        builder.fault_plan = reorg_every_block(depth=2)
        r2 = builder.execute_now(alice, contract, "bump")
        builder.seal_block()
        assert builder.orphaned == 2
        assert (r1.return_value, r2.return_value) == (1, 2)
        # Post-reorg the counter reflects exactly two bumps, no more.
        assert chain.call(alice, contract, "bump").return_value == 3
        assert chain.balance(alice) == balance_before

    def test_light_client_follows_across_reorg(self, setup):
        chain, builder, contract, alice = setup
        builder.execute_now(alice, contract, "bump")
        builder.seal_block()
        client = follow(chain)
        tracked = client.height
        builder.fault_plan = reorg_every_block(depth=1)
        builder.stage_settlement(
            alice, contract, "settle", (3, True), gas_limit=100_000, tx_id="s"
        )
        block = builder.seal_block()
        client.sync(chain)
        assert client.orphaned == 0  # reorg happened above its tracked tip
        assert client.height == chain.height
        assert client.check_settlement(prove_settlement(block, encode_uint(3)))
        # Now reorg *below* a tracked tip: a depth-2 reorg orphans the block
        # this client already accepted, so sync must discard and re-accept.
        builder.fault_plan = reorg_every_block(depth=2)
        builder.stage_settlement(
            alice, contract, "settle", (4, True), gas_limit=100_000, tx_id="s2"
        )
        block2 = builder.seal_block()
        client.sync(chain)
        assert client.orphaned == 1
        assert client.height == chain.height
        assert client.check_settlement(prove_settlement(block2, encode_uint(4)))
        # The pre-reorg proof is re-provable against the replacement block.
        replay = prove_settlement(chain.blocks[block.number], encode_uint(3))
        assert client.check_settlement(replay)
