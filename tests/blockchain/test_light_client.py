"""Light client: header tracking, sealer policing, inclusion checks."""

import pytest

from repro.blockchain.block import BlockHeader
from repro.blockchain.chain import Blockchain, ChainConfig
from repro.blockchain.contract import Contract
from repro.blockchain.light_client import LightClient, follow
from repro.blockchain.proofs import prove_inclusion
from repro.common.errors import BlockchainError


class Pinger(Contract):
    CODE_SIZE = 64

    def ping(self) -> int:
        return 1


@pytest.fixture()
def chain():
    c = Blockchain()
    alice = c.create_account("alice", 10**6)
    contract, _ = c.deploy(alice, Pinger)
    c.mine()
    for _ in range(3):
        c.call(alice, contract, "ping")
        c.mine()
    return c


class TestHeaderSync:
    def test_follow_syncs_all_headers(self, chain):
        client = follow(chain)
        assert client.height == chain.height

    def test_incremental_sync(self, chain):
        client = follow(chain)
        chain.mine()
        assert client.sync(chain) == 1
        assert client.height == chain.height

    def test_gap_rejected(self, chain):
        client = LightClient(chain.config.sealers)
        with pytest.raises(BlockchainError):
            client.accept_header(chain.blocks[1].header)

    def test_wrong_parent_rejected(self, chain):
        client = LightClient(chain.config.sealers)
        client.accept_header(chain.blocks[0].header)
        forged = BlockHeader(
            number=1,
            parent_hash=b"\x00" * 32,
            tx_root=chain.blocks[1].header.tx_root,
            receipt_root=chain.blocks[1].header.receipt_root,
            sealer=chain.blocks[1].header.sealer,
            timestamp=chain.blocks[1].header.timestamp,
        )
        with pytest.raises(BlockchainError):
            client.accept_header(forged)

    def test_unauthorised_sealer_rejected(self, chain):
        client = LightClient(("nobody",))
        with pytest.raises(BlockchainError):
            client.accept_header(chain.blocks[0].header)


class TestInclusionChecks:
    def test_included_tx_accepted(self, chain):
        client = follow(chain)
        block = chain.blocks[1]
        proof = prove_inclusion(block, block.transactions[0].hash())
        assert client.check_inclusion(proof)

    def test_unknown_block_rejected(self, chain):
        client = follow(chain)
        block = chain.blocks[1]
        proof = prove_inclusion(block, block.transactions[0].hash())
        forged = type(proof)(99, proof.tx_index, proof.tx_hash, proof.path)
        assert not client.check_inclusion(forged)

    def test_user_freshness_flow(self, tparams):
        """End-to-end: a user light-client confirms the ADS update anchored."""
        from repro.common.rng import default_rng
        from repro.core.records import Database, make_database
        from repro.system import SlicerSystem

        system = SlicerSystem(tparams, rng=default_rng(161))
        system.setup(make_database([("a", 1)], bits=8))
        client = follow(system.chain)

        add = Database(8)
        add.add("b", 2)
        receipt = system.insert(add)
        client.sync(system.chain)

        block = system.chain.blocks[-1]
        proof = prove_inclusion(block, receipt.tx_hash)
        assert client.check_inclusion(proof)


class TestMultiBlockReplay:
    """The latent gap: nothing exercised a client across many blocks + reorgs.

    A client that tracked N blocks must keep working when later blocks — or
    blocks it already accepted — are orphaned and replaced.  The pre-fix
    ``sync`` sliced ``chain.blocks[len(headers):]`` and wedged on the first
    replacement header (parent-link mismatch) while silently keeping proofs
    against the orphaned header checking out.
    """

    def _mined_chain(self, blocks: int = 6):
        from repro.blockchain.accounts import address_from_label

        chain = Blockchain()
        alice = chain.create_account("alice", 10**9)
        contract, _ = chain.deploy(alice, Pinger)
        chain.mine()
        for _ in range(blocks - 1):
            chain.call(alice, contract, "ping")
            chain.mine()
        return chain, contract, alice

    def test_incremental_sync_over_many_blocks(self):
        chain, contract, alice = self._mined_chain()
        client = LightClient(chain.config.sealers)
        total = 0
        # Sync in uneven increments, mining between them.
        for extra in (0, 1, 3):
            for _ in range(extra):
                chain.call(alice, contract, "ping")
                chain.mine()
            total += client.sync(chain)
        assert total == client.height == chain.height
        for number in range(chain.height):
            assert client.headers[number].hash() == chain.blocks[number].hash()

    def test_sync_recovers_from_deep_reorg(self):
        from repro.blockchain.block_builder import BlockBuilder
        from repro.blockchain.mempool import Mempool
        from repro.chaos import ChainFaultPlan, ChainFaultProfile

        chain, contract, alice = self._mined_chain()
        builder = BlockBuilder(chain, Mempool(chain))
        builder.execute_now(alice, contract, "ping")
        builder.seal_block()
        builder.execute_now(alice, contract, "ping")
        builder.seal_block()
        client = follow(chain)
        tracked = [h.hash() for h in client.headers]

        profile = ChainFaultProfile(
            name="always", reorg=1000, reorg_depth_max=2, force_clean_after=10**6
        )
        builder.fault_plan = ChainFaultPlan(profile, seed=9)
        builder.execute_now(alice, contract, "ping")
        builder.seal_block()  # reorgs 2 deep: orphans one tracked header
        assert builder.orphaned == 2

        accepted = client.sync(chain)
        assert client.orphaned == 1
        assert accepted == 2  # replacement + the new block
        assert client.height == chain.height
        # The orphaned header is gone; every kept one matches the chain.
        for number in range(chain.height):
            assert client.headers[number].hash() == chain.blocks[number].hash()
        assert tracked[-1] not in {h.hash() for h in client.headers}

    def test_repeated_reorgs_never_wedge_sync(self):
        from repro.blockchain.block_builder import BlockBuilder
        from repro.blockchain.mempool import Mempool
        from repro.chaos import ChainFaultPlan, ChainFaultProfile

        chain, contract, alice = self._mined_chain(blocks=2)
        profile = ChainFaultProfile(
            name="churn", reorg=600, reorg_depth_max=2, force_clean_after=2
        )
        builder = BlockBuilder(
            chain, Mempool(chain), fault_plan=ChainFaultPlan(profile, seed=3)
        )
        client = follow(chain)
        for _ in range(8):
            builder.execute_now(alice, contract, "ping")
            builder.seal_block()
            client.sync(chain)
            assert client.height == chain.height
            assert client.headers[-1].hash() == chain.blocks[-1].hash()
        assert builder.reorgs > 0  # the churn profile actually fired
