"""Light client: header tracking, sealer policing, inclusion checks."""

import pytest

from repro.blockchain.block import BlockHeader
from repro.blockchain.chain import Blockchain, ChainConfig
from repro.blockchain.contract import Contract
from repro.blockchain.light_client import LightClient, follow
from repro.blockchain.proofs import prove_inclusion
from repro.common.errors import BlockchainError


class Pinger(Contract):
    CODE_SIZE = 64

    def ping(self) -> int:
        return 1


@pytest.fixture()
def chain():
    c = Blockchain()
    alice = c.create_account("alice", 10**6)
    contract, _ = c.deploy(alice, Pinger)
    c.mine()
    for _ in range(3):
        c.call(alice, contract, "ping")
        c.mine()
    return c


class TestHeaderSync:
    def test_follow_syncs_all_headers(self, chain):
        client = follow(chain)
        assert client.height == chain.height

    def test_incremental_sync(self, chain):
        client = follow(chain)
        chain.mine()
        assert client.sync(chain) == 1
        assert client.height == chain.height

    def test_gap_rejected(self, chain):
        client = LightClient(chain.config.sealers)
        with pytest.raises(BlockchainError):
            client.accept_header(chain.blocks[1].header)

    def test_wrong_parent_rejected(self, chain):
        client = LightClient(chain.config.sealers)
        client.accept_header(chain.blocks[0].header)
        forged = BlockHeader(
            number=1,
            parent_hash=b"\x00" * 32,
            tx_root=chain.blocks[1].header.tx_root,
            receipt_root=chain.blocks[1].header.receipt_root,
            sealer=chain.blocks[1].header.sealer,
            timestamp=chain.blocks[1].header.timestamp,
        )
        with pytest.raises(BlockchainError):
            client.accept_header(forged)

    def test_unauthorised_sealer_rejected(self, chain):
        client = LightClient(("nobody",))
        with pytest.raises(BlockchainError):
            client.accept_header(chain.blocks[0].header)


class TestInclusionChecks:
    def test_included_tx_accepted(self, chain):
        client = follow(chain)
        block = chain.blocks[1]
        proof = prove_inclusion(block, block.transactions[0].hash())
        assert client.check_inclusion(proof)

    def test_unknown_block_rejected(self, chain):
        client = follow(chain)
        block = chain.blocks[1]
        proof = prove_inclusion(block, block.transactions[0].hash())
        forged = type(proof)(99, proof.tx_index, proof.tx_hash, proof.path)
        assert not client.check_inclusion(forged)

    def test_user_freshness_flow(self, tparams):
        """End-to-end: a user light-client confirms the ADS update anchored."""
        from repro.common.rng import default_rng
        from repro.core.records import Database, make_database
        from repro.system import SlicerSystem

        system = SlicerSystem(tparams, rng=default_rng(161))
        system.setup(make_database([("a", 1)], bits=8))
        client = follow(system.chain)

        add = Database(8)
        add.add("b", 2)
        receipt = system.insert(add)
        client.sync(system.chain)

        block = system.chain.blocks[-1]
        proof = prove_inclusion(block, receipt.tx_hash)
        assert client.check_inclusion(proof)
