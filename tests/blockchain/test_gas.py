"""EVM gas schedule: calldata, keccak, EIP-2565 modexp pricing."""

from repro.blockchain.gas import GasSchedule


SCHEDULE = GasSchedule()


class TestCalldata:
    def test_zero_bytes_cheap(self):
        assert SCHEDULE.calldata_gas(b"\x00" * 10) == 40

    def test_nonzero_bytes(self):
        assert SCHEDULE.calldata_gas(b"\x01" * 10) == 160

    def test_mixed(self):
        assert SCHEDULE.calldata_gas(b"\x00\x01") == 4 + 16

    def test_empty(self):
        assert SCHEDULE.calldata_gas(b"") == 0


class TestKeccak:
    def test_base_cost(self):
        assert SCHEDULE.keccak_gas(0) == 30

    def test_word_rounding(self):
        assert SCHEDULE.keccak_gas(1) == 36
        assert SCHEDULE.keccak_gas(32) == 36
        assert SCHEDULE.keccak_gas(33) == 42


class TestModexp:
    def test_minimum_floor(self):
        assert SCHEDULE.modexp_gas(1, 3, 1) == 200

    def test_eip2565_vector_rsa2048(self):
        """2048-bit base/mod, 256-bit exponent: words=32, mult=1024,
        iterations=255 -> 1024*255//3 = 87040."""
        exponent = (1 << 255) | 1
        assert SCHEDULE.modexp_gas(256, exponent, 256) == 87_040

    def test_eip2565_vector_rsa1024(self):
        exponent = (1 << 255) | 1
        assert SCHEDULE.modexp_gas(128, exponent, 128) == 21_760

    def test_grows_with_exponent_bits(self):
        small = SCHEDULE.modexp_gas(128, 1 << 10, 128)
        large = SCHEDULE.modexp_gas(128, 1 << 200, 128)
        assert large > small

    def test_long_exponent_head_term(self):
        exponent = 1 << (8 * 40)  # 41-byte exponent
        gas = SCHEDULE.modexp_gas(32, exponent, 32)
        words = 4
        iteration = 8 * (41 - 32) + max((exponent >> 72).bit_length() - 1, 0)
        assert gas == max(200, words * words * iteration // 3)


class TestStorageWords:
    def test_rounding(self):
        assert SCHEDULE.storage_words(0) == 1
        assert SCHEDULE.storage_words(32) == 1
        assert SCHEDULE.storage_words(33) == 2
        assert SCHEDULE.storage_words(128) == 4


def test_log_gas():
    assert SCHEDULE.log_gas(1, 32) == 375 + 375 + 256
