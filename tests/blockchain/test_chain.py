"""Chain mechanics: blocks, integrity, value transfer, PoA sealing."""

import pytest

from repro.blockchain.block import make_block
from repro.blockchain.chain import Blockchain, ChainConfig
from repro.blockchain.contract import Contract
from repro.common.errors import BlockchainError, InsufficientFundsError


class Counter(Contract):
    """Minimal test contract."""

    CODE_SIZE = 100

    def init(self) -> None:
        self._sstore_int("count", 0, 8)

    def bump(self) -> int:
        value = self._sload_int("count") + 1
        self._sstore_int("count", value, 8)
        return value

    def pay_me(self) -> int:
        return self.call_value


@pytest.fixture()
def chain():
    c = Blockchain()
    c.create_account("alice", 1_000_000)
    c.create_account("bob", 0)
    return c


def alice():
    from repro.blockchain.accounts import address_from_label

    return address_from_label("alice")


class TestAccountsOnChain:
    def test_duplicate_account_rejected(self, chain):
        with pytest.raises(BlockchainError):
            chain.create_account("alice")

    def test_unknown_account_rejected(self, chain):
        with pytest.raises(BlockchainError):
            chain.balance(b"\x00" * 20)


class TestCalls:
    def test_deploy_and_call(self, chain):
        contract, receipt = chain.deploy(alice(), Counter)
        assert receipt.status and receipt.contract_address == contract.address
        r1 = chain.call(alice(), contract, "bump")
        r2 = chain.call(alice(), contract, "bump")
        assert (r1.return_value, r2.return_value) == (1, 2)

    def test_gas_charged(self, chain):
        contract, receipt = chain.deploy(alice(), Counter)
        assert receipt.gas_used > 21_000 + 32_000
        call_receipt = chain.call(alice(), contract, "bump")
        assert call_receipt.gas_used > 21_000
        assert "sstore" in call_receipt.gas_breakdown

    def test_value_attached_to_call(self, chain):
        contract, _ = chain.deploy(alice(), Counter)
        receipt = chain.call(alice(), contract, "pay_me", value=500)
        assert receipt.return_value == 500
        assert chain.balance(contract.address) == 500
        assert chain.balance(alice()) == 1_000_000 - 500

    def test_insufficient_value_rejected(self, chain):
        contract, _ = chain.deploy(alice(), Counter)
        with pytest.raises(InsufficientFundsError):
            chain.call(alice(), contract, "pay_me", value=10**9)

    def test_unknown_method_rejected(self, chain):
        contract, _ = chain.deploy(alice(), Counter)
        with pytest.raises(BlockchainError):
            chain.call(alice(), contract, "does_not_exist")

    def test_private_method_rejected(self, chain):
        contract, _ = chain.deploy(alice(), Counter)
        with pytest.raises(BlockchainError):
            chain.call(alice(), contract, "_sstore")

    def test_call_by_address(self, chain):
        contract, _ = chain.deploy(alice(), Counter)
        receipt = chain.call(alice(), contract.address, "bump")
        assert receipt.return_value == 1

    def test_nonce_increments(self, chain):
        chain.deploy(alice(), Counter)
        contract, _ = chain.deploy(alice(), Counter)
        assert chain.accounts[alice()].nonce == 2


class TestSealing:
    def test_mining_links_blocks(self, chain):
        contract, _ = chain.deploy(alice(), Counter)
        chain.mine()
        chain.call(alice(), contract, "bump")
        chain.mine()
        assert chain.height == 2
        assert chain.blocks[1].header.parent_hash == chain.blocks[0].hash()
        assert chain.verify_integrity()

    def test_round_robin_sealers(self):
        config = ChainConfig(sealers=("s0", "s1"))
        chain = Blockchain(config)
        for _ in range(4):
            chain.mine()
        sealers = [b.header.sealer for b in chain.blocks]
        assert sealers[0] == sealers[2] and sealers[1] == sealers[3]
        assert sealers[0] != sealers[1]

    def test_tamper_detected(self, chain):
        chain.deploy(alice(), Counter)
        chain.mine()
        chain.mine()
        # Replace a sealed block with a forged one carrying a different timestamp.
        original = chain.blocks[0]
        chain.blocks[0] = make_block(
            original.number,
            original.header.parent_hash,
            original.transactions,
            original.receipts,
            original.header.sealer,
            original.header.timestamp + 999,
        )
        assert not chain.verify_integrity()

    def test_mine_clears_pending(self, chain):
        chain.deploy(alice(), Counter)
        block = chain.mine()
        assert len(block.transactions) == 1
        assert len(chain.mine().transactions) == 0
