"""The Slicer contract: escrow lifecycle, access control, gas characteristics."""

import pytest

from repro.blockchain.slicer_contract import response_to_chain_args, tokens_digest_input
from repro.common.rng import default_rng
from repro.core.cloud import MaliciousCloud, Misbehavior
from repro.core.query import Query
from repro.core.records import Database, make_database
from repro.system import SlicerSystem


@pytest.fixture()
def system(tparams):
    s = SlicerSystem(tparams, rng=default_rng(81))
    s.setup(make_database([(f"r{i}", (i * 7) % 256) for i in range(15)], bits=8))
    return s


class TestEscrowLifecycle:
    def test_honest_flow_pays_cloud(self, system):
        user0 = system.chain.balance(system.user_address)
        cloud0 = system.chain.balance(system.cloud_address)
        outcome = system.search(Query.parse(50, ">"), payment=1000)
        assert outcome.verified
        assert system.chain.balance(system.user_address) == user0 - 1000
        assert system.chain.balance(system.cloud_address) == cloud0 + 1000
        assert system.chain.balance(system.contract.address) == 0

    def test_dishonest_flow_refunds_user(self, tparams):
        s = SlicerSystem(tparams, rng=default_rng(82))
        s.cloud = MaliciousCloud(
            tparams, s.owner.keys.trapdoor.public, Misbehavior.DROP_ENTRY, default_rng(1)
        )
        s.setup(make_database([(f"r{i}", i * 5 % 256) for i in range(15)], bits=8))
        user0 = s.chain.balance(s.user_address)
        cloud0 = s.chain.balance(s.cloud_address)
        outcome = s.search(Query.parse(50, ">"), payment=1000)
        assert not outcome.verified
        assert s.chain.balance(s.user_address) == user0  # refunded
        assert s.chain.balance(s.cloud_address) == cloud0

    def test_query_cannot_settle_twice(self, system):
        outcome = system.search(Query.parse(50, ">"))
        again = system.chain.call(
            system.cloud_address,
            system.contract,
            "verify_and_settle",
            (
                outcome.query_id,
                system.cloud.ads_value,
                response_to_chain_args(outcome.response),
            ),
        )
        assert not again.status
        assert "not open" in again.revert_reason

    def test_payment_required(self, system):
        receipt = system.chain.call(
            system.user_address, system.contract, "submit_query", (b"tokens",), value=0
        )
        assert not receipt.status


class TestAccessControl:
    def test_only_owner_updates_ads(self, system):
        receipt = system.chain.call(
            system.user_address, system.contract, "update_ads", (12345,)
        )
        assert not receipt.status
        assert "only owner" in receipt.revert_reason

    def test_only_cloud_settles(self, system):
        tokens = system.user.make_tokens(Query.parse(50, ">"))
        submit = system.chain.call(
            system.user_address,
            system.contract,
            "submit_query",
            (tokens_digest_input(tokens),),
            value=100,
        )
        response = system.cloud.search(tokens)
        receipt = system.chain.call(
            system.user_address,  # not the cloud!
            system.contract,
            "verify_and_settle",
            (submit.return_value, system.cloud.ads_value, response_to_chain_args(response)),
        )
        assert not receipt.status


class TestBindingAndFreshness:
    def test_response_must_match_submitted_tokens(self, system):
        q1 = system.user.make_tokens(Query.parse(50, ">"))
        q2 = system.user.make_tokens(Query.parse(7, "="))
        submit = system.chain.call(
            system.user_address,
            system.contract,
            "submit_query",
            (tokens_digest_input(q1),),
            value=100,
        )
        response = system.cloud.search(q2)  # answers the WRONG query
        receipt = system.chain.call(
            system.cloud_address,
            system.contract,
            "verify_and_settle",
            (submit.return_value, system.cloud.ads_value, response_to_chain_args(response)),
        )
        assert not receipt.status
        assert "does not match" in receipt.revert_reason

    def test_stale_ac_rejected(self, system):
        """After an insert refreshes the on-chain digest, settling against the
        old Ac value reverts — the data-freshness guarantee."""
        tokens = system.user.make_tokens(Query.parse(50, ">"))
        submit = system.chain.call(
            system.user_address,
            system.contract,
            "submit_query",
            (tokens_digest_input(tokens),),
            value=100,
        )
        old_ads = system.cloud.ads_value
        response = system.cloud.search(tokens)

        add = Database(8)
        add.add("new", 3)
        system.insert(add)  # owner pushes a new digest on chain

        receipt = system.chain.call(
            system.cloud_address,
            system.contract,
            "verify_and_settle",
            (submit.return_value, old_ads, response_to_chain_args(response)),
        )
        assert not receipt.status
        assert "stale" in receipt.revert_reason


class TestGasShape:
    def test_insert_gas_independent_of_batch_size(self, system):
        """Table II: ADS update cost does not grow with inserted records."""
        small = Database(8)
        small.add("s1", 1)
        r_small = system.insert(small)

        big = Database(8)
        for i in range(20):
            big.add(f"b{i}", (i * 3) % 256)
        r_big = system.insert(big)
        assert abs(r_small.gas_used - r_big.gas_used) < 200

    def test_cost_ordering_matches_table2(self, system):
        """deploy > verify > insert, as in the paper's Table II."""
        add = Database(8)
        add.add("x", 9)
        insert_gas = system.insert(add).gas_used
        outcome = system.search(Query.parse(7, "="))
        assert system.deploy_receipt.gas_used > outcome.settle_gas > insert_gas

    def test_gas_identical_with_memo_cold_or_warm(self, tparams):
        """The kernel H_prime memo must never change the bill: a settlement
        whose prime walks are served from a warm memo charges exactly the
        gas of a cold one (the memo stores the candidate count the contract
        meters keccak gas by)."""
        from repro.crypto import kernels

        def run_flow():
            s = SlicerSystem(tparams, rng=default_rng(84))
            s.setup(make_database([(f"r{i}", (i * 7) % 256) for i in range(10)], bits=8))
            return s.search(Query.parse(40, ">"), payment=500)

        kernels.clear_caches()
        cold = run_flow()  # every H_prime walk is a memo miss
        warm = run_flow()  # identical rng => identical bytes => memo hits
        assert cold.verified and warm.verified
        assert warm.settle_gas == cold.settle_gas
        assert warm.settle_receipt.gas_breakdown == cold.settle_receipt.gas_breakdown

    def test_modexp_dominates_verification_at_paper_scale(self):
        """With the paper's 2048-bit modulus the MODEXP precompile is the
        dominant verification cost (the O(λ) term the paper highlights)."""
        from repro.core.params import SlicerParams

        params = SlicerParams.paper(value_bits=8)
        s = SlicerSystem(params, rng=default_rng(83))
        s.setup(make_database([("a", 7), ("b", 9)], bits=8))
        outcome = s.search(Query.parse(7, "="))
        assert outcome.verified
        breakdown = outcome.settle_receipt.gas_breakdown
        assert breakdown["modexp"] > breakdown.get("sstore", 0)
        assert breakdown["modexp"] > breakdown.get("keccak", 0)
