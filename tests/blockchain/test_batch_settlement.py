"""Batched verification: n queries settle in one transaction, amortising gas."""

import pytest

from repro.common.rng import default_rng
from repro.core.cloud import MaliciousCloud, Misbehavior
from repro.core.query import Query
from repro.core.records import make_database
from repro.system import DEFAULT_FUNDING, SlicerSystem

QUERIES = [Query.parse(7, "="), Query.parse(100, ">"), Query.parse(100, "<")]


@pytest.fixture()
def system(tparams):
    s = SlicerSystem(tparams, rng=default_rng(151))
    s.setup(make_database([(f"r{i}", (i * 21) % 256) for i in range(18)], bits=8))
    return s


class TestBatchSearch:
    def test_all_verified_and_correct(self, system):
        outcomes = system.batch_search(QUERIES)
        assert len(outcomes) == 3
        for outcome in outcomes:
            assert outcome.verified
        # Results match the individual-search path.
        singles = [system.search(q) for q in QUERIES]
        for batch, single in zip(outcomes, singles):
            assert batch.record_ids == single.record_ids

    def test_batch_amortises_gas(self, system):
        outcomes = system.batch_search(QUERIES, payment=100)
        batch_settle_gas = outcomes[0].settle_receipt.gas_used
        singles = [system.search(q, payment=100) for q in QUERIES]
        individual_total = sum(o.settle_gas for o in singles)
        assert batch_settle_gas < individual_total
        # Amortisation saves at least one intrinsic tx cost.
        assert individual_total - batch_settle_gas > 21_000

    def test_payments_settle_per_query(self, system):
        cloud0 = system.chain.balance(system.cloud_address)
        system.batch_search(QUERIES, payment=500)
        assert system.chain.balance(system.cloud_address) == cloud0 + 3 * 500

    def test_malicious_cloud_refunds_whole_batch(self, tparams):
        s = SlicerSystem(tparams, rng=default_rng(152))
        s.cloud = MaliciousCloud(
            tparams, s.owner.keys.trapdoor.public, Misbehavior.TAMPER_ENTRY, default_rng(1)
        )
        s.setup(make_database([(f"r{i}", (i * 21) % 256) for i in range(18)], bits=8))
        # All three queries have non-empty result sets, so tampering hits all
        # of them (an empty-result query is answered honestly and would pay).
        with_results = [Query.parse(100, ">"), Query.parse(100, "<"), Query.parse(200, ">")]
        outcomes = s.batch_search(with_results, payment=500)
        assert all(not o.verified for o in outcomes)
        assert s.balances()["user"] == DEFAULT_FUNDING
        assert s.balances()["cloud"] == DEFAULT_FUNDING

    def test_batch_cannot_resettle(self, system):
        from repro.blockchain.slicer_contract import response_to_chain_args

        outcomes = system.batch_search(QUERIES[:1])
        again = system.chain.call(
            system.cloud_address,
            system.contract,
            "batch_verify_and_settle",
            (
                [outcomes[0].query_id],
                system.cloud.ads_value,
                [response_to_chain_args(outcomes[0].response)],
            ),
        )
        assert not again.status

    def test_length_mismatch_reverts(self, system):
        receipt = system.chain.call(
            system.cloud_address,
            system.contract,
            "batch_verify_and_settle",
            ([0, 1], system.cloud.ads_value, [[]]),
        )
        assert not receipt.status
        assert "mismatch" in receipt.revert_reason
