"""Calldata encoding: determinism, type coverage, gas pricing interaction."""

import pytest

from repro.blockchain.gas import GasSchedule
from repro.blockchain.transaction import Transaction, encode_calldata


class TestEncodeCalldata:
    def test_deterministic(self):
        assert encode_calldata("m", (1, b"x")) == encode_calldata("m", (1, b"x"))

    def test_method_name_matters(self):
        assert encode_calldata("a", ()) != encode_calldata("b", ())

    def test_int_encoding_minimal(self):
        short = encode_calldata("m", (1,))
        long = encode_calldata("m", (2**128,))
        assert len(long) > len(short)

    def test_bool_encoding(self):
        assert encode_calldata("m", (True,)) != encode_calldata("m", (False,))

    def test_nested_lists(self):
        blob = encode_calldata("m", ([b"a", [1, 2]], b"tail"))
        assert isinstance(blob, bytes) and len(blob) > 0

    def test_nested_structures_distinct(self):
        a = encode_calldata("m", ([b"a", b"b"],))
        b = encode_calldata("m", ([b"ab"],))
        assert a != b

    def test_bytearray_accepted(self):
        assert encode_calldata("m", (bytearray(b"xy"),)) == encode_calldata("m", (b"xy",))

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            encode_calldata("m", (3.14,))

    def test_gas_priced_per_byte_content(self):
        schedule = GasSchedule()
        zeros = encode_calldata("m", (b"\x00" * 64,))
        ones = encode_calldata("m", (b"\x01" * 64,))
        assert schedule.calldata_gas(ones) > schedule.calldata_gas(zeros)


class TestTransactionHash:
    def _tx(self, **overrides):
        fields = dict(
            sender=b"\x01" * 20,
            to=b"\x02" * 20,
            value=5,
            data=b"payload",
            gas_limit=100_000,
            nonce=0,
        )
        fields.update(overrides)
        return Transaction(**fields)

    def test_hash_stable(self):
        assert self._tx().hash() == self._tx().hash()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("sender", b"\x09" * 20),
            ("to", None),
            ("value", 6),
            ("data", b"other"),
            ("gas_limit", 1),
            ("nonce", 7),
        ],
    )
    def test_every_field_hashes(self, field, value):
        assert self._tx().hash() != self._tx(**{field: value}).hash()
