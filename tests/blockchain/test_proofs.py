"""Light-client transaction inclusion proofs."""

import pytest

from repro.blockchain.chain import Blockchain
from repro.blockchain.contract import Contract
from repro.blockchain.proofs import prove_inclusion, verify_inclusion
from repro.common.errors import BlockchainError


class Noop(Contract):
    CODE_SIZE = 64

    def ping(self) -> int:
        return 1


@pytest.fixture()
def chain_with_block():
    chain = Blockchain()
    alice = chain.create_account("alice", 10**6)
    contract, _ = chain.deploy(alice, Noop)
    receipts = [chain.call(alice, contract, "ping") for _ in range(5)]
    block = chain.mine()
    return chain, block, receipts


class TestInclusion:
    def test_every_tx_provable(self, chain_with_block):
        _, block, _ = chain_with_block
        for tx in block.transactions:
            proof = prove_inclusion(block, tx.hash())
            assert verify_inclusion(block.header.tx_root, proof)

    def test_foreign_tx_rejected(self, chain_with_block):
        _, block, _ = chain_with_block
        with pytest.raises(BlockchainError):
            prove_inclusion(block, b"\x00" * 32)

    def test_wrong_root_fails(self, chain_with_block):
        _, block, _ = chain_with_block
        proof = prove_inclusion(block, block.transactions[0].hash())
        assert not verify_inclusion(b"\xff" * 32, proof)

    def test_tampered_path_fails(self, chain_with_block):
        from repro.blockchain.proofs import InclusionProof

        _, block, _ = chain_with_block
        proof = prove_inclusion(block, block.transactions[2].hash())
        bad = InclusionProof(
            proof.block_number,
            proof.tx_index,
            proof.tx_hash,
            ((b"\x00" * 32, True),) + proof.path[1:],
        )
        assert not verify_inclusion(block.header.tx_root, bad)

    def test_proof_against_other_tx_hash_fails(self, chain_with_block):
        from repro.blockchain.proofs import InclusionProof

        _, block, _ = chain_with_block
        proof = prove_inclusion(block, block.transactions[0].hash())
        forged = InclusionProof(
            proof.block_number,
            proof.tx_index,
            block.transactions[1].hash(),
            proof.path,
        )
        assert not verify_inclusion(block.header.tx_root, forged)

    def test_single_tx_block(self):
        chain = Blockchain()
        alice = chain.create_account("alice", 10**6)
        contract, _ = chain.deploy(alice, Noop)
        block = chain.mine()
        proof = prove_inclusion(block, block.transactions[0].hash())
        assert verify_inclusion(block.header.tx_root, proof)

    def test_freshness_anchor_use_case(self, tparams):
        """The flow the paper implies: prove the ADS-update tx is on chain."""
        from repro.common.rng import default_rng
        from repro.core.records import Database, make_database
        from repro.system import SlicerSystem

        system = SlicerSystem(tparams, rng=default_rng(171))
        system.setup(make_database([("a", 5)], bits=8))
        add = Database(8)
        add.add("b", 9)
        receipt = system.insert(add)
        block = system.chain.blocks[-1]
        proof = prove_inclusion(block, receipt.tx_hash)
        assert verify_inclusion(block.header.tx_root, proof)
        assert system.chain.verify_integrity()
