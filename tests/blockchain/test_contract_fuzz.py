"""Adversarial inputs to the Slicer contract: malformed calldata must revert
cleanly (never crash the chain, never move funds)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.rng import default_rng
from repro.core.query import Query
from repro.core.records import make_database
from repro.system import DEFAULT_FUNDING, SlicerSystem


@pytest.fixture(scope="module")
def system(tparams):
    s = SlicerSystem(tparams, rng=default_rng(221))
    s.setup(make_database([(f"r{i}", (i * 17) % 256) for i in range(10)], bits=8))
    # One legitimate open query the fuzzed settlements can target.
    from repro.blockchain.slicer_contract import tokens_digest_input

    tokens = s.user.make_tokens(Query.parse(100, ">"))
    submit = s.chain.call(
        s.user_address, s.contract, "submit_query", (tokens_digest_input(tokens),), value=777
    )
    s._open_query_id = submit.return_value
    return s


# Negative integers never reach the chain: the client-side calldata encoder
# rejects them (covered by test_negative_int_rejected_client_side below).
garbage_result = st.lists(
    st.one_of(
        st.binary(max_size=40),
        st.integers(min_value=0, max_value=2**64),
        st.lists(st.binary(max_size=20), max_size=3),
    ),
    max_size=6,
)


class TestFuzzedSettlement:
    @given(response=st.lists(garbage_result, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_garbage_responses_revert_without_fund_movement(self, system, response):
        user_before = system.chain.balance(system.user_address)
        cloud_before = system.chain.balance(system.cloud_address)
        receipt = system.chain.call(
            system.cloud_address,
            system.contract,
            "verify_and_settle",
            (system._open_query_id, system.cloud.ads_value, response),
        )
        assert not receipt.status  # always a clean revert
        assert system.chain.balance(system.user_address) == user_before
        assert system.chain.balance(system.cloud_address) == cloud_before

    def test_negative_int_rejected_client_side(self, system):
        with pytest.raises(TypeError):
            system.chain.call(
                system.cloud_address,
                system.contract,
                "verify_and_settle",
                (system._open_query_id, system.cloud.ads_value, [[-1]]),
            )

    @given(query_id=st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_bogus_query_ids_revert(self, system, query_id):
        if query_id == system._open_query_id:
            return
        receipt = system.chain.call(
            system.cloud_address,
            system.contract,
            "verify_and_settle",
            (query_id, system.cloud.ads_value, []),
        )
        assert not receipt.status

    @given(ac=st.integers(min_value=0, max_value=2**128))
    @settings(max_examples=25, deadline=None)
    def test_bogus_ac_values_revert(self, system, ac):
        if ac == system.cloud.ads_value:
            return
        receipt = system.chain.call(
            system.cloud_address,
            system.contract,
            "verify_and_settle",
            (system._open_query_id, ac, []),
        )
        assert not receipt.status
        assert "stale" in receipt.revert_reason or "fault" in receipt.revert_reason

    def test_chain_intact_after_fuzzing(self, system):
        system.chain.mine()
        assert system.chain.verify_integrity()
        # The legitimate query is still open and can settle honestly.
        from repro.blockchain.slicer_contract import response_to_chain_args

        tokens = system.user.make_tokens(Query.parse(100, ">"))
        response = system.cloud.search(tokens)
        receipt = system.chain.call(
            system.cloud_address,
            system.contract,
            "verify_and_settle",
            (system._open_query_id, system.cloud.ads_value, response_to_chain_args(response)),
        )
        assert receipt.status and receipt.return_value is True