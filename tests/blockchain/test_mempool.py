"""Mempool: fee-priority ordering, nonce lanes, duplicate/oversize rejection."""

import pytest

from repro.blockchain.chain import Blockchain, DEFAULT_GAS_LIMIT
from repro.blockchain.contract import Contract
from repro.blockchain.mempool import Mempool
from repro.common.errors import MempoolError


class Counter(Contract):
    CODE_SIZE = 100

    def init(self) -> None:
        self._sstore_int("count", 0, 8)

    def bump(self) -> int:
        value = self._sload_int("count") + 1
        self._sstore_int("count", value, 8)
        return value


@pytest.fixture()
def setup():
    chain = Blockchain()
    alice = chain.create_account("alice", 10**9)
    bob = chain.create_account("bob", 10**9)
    contract, _ = chain.deploy(alice, Counter)
    chain.mine()
    return chain, Mempool(chain), contract, alice, bob


class TestOrdering:
    def test_price_priority_beats_arrival(self, setup):
        chain, pool, contract, alice, bob = setup
        cheap = pool.stage(alice, contract, "bump", gas_price=1, tx_id="cheap")
        rich = pool.stage(bob, contract, "bump", gas_price=9, tx_id="rich")
        assert pool.eligible(chain.height) == [rich, cheap]

    def test_equal_price_is_fifo(self, setup):
        chain, pool, contract, alice, bob = setup
        first = pool.stage(alice, contract, "bump", tx_id="first")
        second = pool.stage(bob, contract, "bump", tx_id="second")
        assert pool.eligible(chain.height) == [first, second]

    def test_sender_nonce_order_overrides_price(self, setup):
        """A sender's pricey later tx cannot jump its own earlier one."""
        chain, pool, contract, alice, _ = setup
        early = pool.stage(alice, contract, "bump", gas_price=1, tx_id="early")
        late = pool.stage(alice, contract, "bump", gas_price=100, tx_id="late")
        assert pool.eligible(chain.height) == [early, late]

    def test_other_senders_interleave_between_lanes(self, setup):
        chain, pool, contract, alice, bob = setup
        a1 = pool.stage(alice, contract, "bump", gas_price=1, tx_id="a1")
        a2 = pool.stage(alice, contract, "bump", gas_price=100, tx_id="a2")
        b1 = pool.stage(bob, contract, "bump", gas_price=50, tx_id="b1")
        # b1 outprices a1, a2 is lane-blocked behind a1 despite its price.
        assert pool.eligible(chain.height) == [b1, a1, a2]

    def test_ordering_is_deterministic(self, setup):
        chain, pool, contract, alice, bob = setup
        for i in range(6):
            pool.stage(
                alice if i % 2 else bob,
                contract,
                "bump",
                gas_price=(i * 7) % 5,
                tx_id=f"tx{i}",
            )
        first = [c.tx_id for c in pool.eligible(chain.height)]
        again = [c.tx_id for c in pool.eligible(chain.height)]
        assert first == again
        assert sorted(first) == [f"tx{i}" for i in range(6)]


class TestRejection:
    def test_duplicate_tx_id_rejected_while_pooled(self, setup):
        chain, pool, contract, alice, _ = setup
        pool.stage(alice, contract, "bump", tx_id="once")
        with pytest.raises(MempoolError):
            pool.stage(alice, contract, "bump", tx_id="once")

    def test_duplicate_tx_id_rejected_after_inclusion(self, setup):
        """The duplicate guard is permanent, not just while pooled."""
        chain, pool, contract, alice, _ = setup
        pool.stage(alice, contract, "bump", tx_id="settled")
        taken = pool.take(chain.height, DEFAULT_GAS_LIMIT)
        assert [c.tx_id for c in taken] == ["settled"]
        with pytest.raises(MempoolError):
            pool.stage(alice, contract, "bump", tx_id="settled")

    def test_default_tx_id_slots_by_sender_nonce(self, setup):
        chain, pool, contract, alice, bob = setup
        a = pool.stage(alice, contract, "bump")
        b = pool.stage(bob, contract, "bump")
        assert a.tx_id != b.tx_id
        assert a.tx_id == (bytes(alice), a.nonce)
        assert b.tx_id == (bytes(bob), b.nonce)

    def test_oversize_gas_limit_rejected(self, setup):
        chain, pool, contract, alice, _ = setup
        too_big = chain.config.block_gas_limit + 1
        with pytest.raises(MempoolError):
            pool.stage(alice, contract, "bump", gas_limit=too_big, tx_id="big")

    def test_next_nonce_counts_staged_calls(self, setup):
        chain, pool, contract, alice, _ = setup
        base = pool.next_nonce(alice)
        pool.stage(alice, contract, "bump", tx_id="n0")
        pool.stage(alice, contract, "bump", tx_id="n1")
        assert pool.next_nonce(alice) == base + 2


class TestTake:
    def test_take_pops_in_order_and_respects_budget(self, setup):
        chain, pool, contract, alice, bob = setup
        pool.stage(alice, contract, "bump", gas_limit=60_000, gas_price=5, tx_id="a")
        pool.stage(bob, contract, "bump", gas_limit=60_000, gas_price=1, tx_id="b")
        taken = pool.take(chain.height, 100_000)
        assert [c.tx_id for c in taken] == ["a"]
        assert "b" in pool  # skipped, not dropped
        assert [c.tx_id for c in pool.take(chain.height, 100_000)] == ["b"]

    def test_budget_skip_holds_the_whole_sender_lane(self, setup):
        """Skipping an oversized call must not let its successor jump it."""
        chain, pool, contract, alice, bob = setup
        pool.stage(alice, contract, "bump", gas_limit=90_000, tx_id="a-big")
        pool.stage(alice, contract, "bump", gas_limit=10_000, tx_id="a-small")
        pool.stage(bob, contract, "bump", gas_limit=10_000, tx_id="b")
        taken = pool.take(chain.height, 50_000)
        assert [c.tx_id for c in taken] == ["b"]
        assert "a-big" in pool and "a-small" in pool

    def test_empty_pool_takes_nothing(self, setup):
        chain, pool, _, _, _ = setup
        assert pool.take(chain.height, DEFAULT_GAS_LIMIT) == []

    def test_zero_budget_takes_nothing(self, setup):
        chain, pool, contract, alice, _ = setup
        pool.stage(alice, contract, "bump", tx_id="waiting")
        assert pool.take(chain.height, 0) == []
        assert "waiting" in pool


class TestHold:
    def test_held_call_invisible_until_height(self, setup):
        chain, pool, contract, alice, _ = setup
        ripe_at = chain.height + 2
        pool.stage(alice, contract, "bump", tx_id="late", hold_until=ripe_at)
        assert pool.eligible(chain.height) == []
        assert pool.take(chain.height, DEFAULT_GAS_LIMIT) == []
        assert [c.tx_id for c in pool.eligible(ripe_at)] == ["late"]

    def test_held_call_blocks_its_sender_lane(self, setup):
        """Nonce order survives a delay: the successor waits with it."""
        chain, pool, contract, alice, _ = setup
        pool.stage(alice, contract, "bump", tx_id="held", hold_until=chain.height + 3)
        pool.stage(alice, contract, "bump", tx_id="after")
        assert pool.eligible(chain.height) == []
        ripe = pool.eligible(chain.height + 3)
        assert [c.tx_id for c in ripe] == ["held", "after"]
