"""Unit tests for the fault vocabulary and the replayable schedule."""

import pytest

from repro.chaos import FaultKind, FaultPlan, FaultProfile, PROFILES, profile_named
from repro.chaos.faults import REPLY_FAULTS, REQUEST_FAULTS, WEIGHT_SCALE
from repro.common.errors import ParameterError


class TestFaultProfile:
    def test_named_profiles_resolve(self):
        for name in ("clean", "lossy", "crash_restart"):
            assert profile_named(name) is PROFILES[name]
            assert profile_named(name).name == name

    def test_unknown_profile_rejected(self):
        with pytest.raises(ParameterError, match="unknown fault profile"):
            profile_named("tsunami")

    def test_clean_profile_has_zero_weights(self):
        clean = profile_named("clean")
        assert all(w == 0 for _, w in clean.request_weights())
        assert all(w == 0 for _, w in clean.reply_weights())
        assert clean.duplicate == 0

    def test_overweight_request_rejected(self):
        with pytest.raises(ParameterError, match="request fault weights"):
            FaultProfile(name="bad", drop=600, crash=600)

    def test_overweight_reply_rejected(self):
        with pytest.raises(ParameterError, match="reply fault weights"):
            FaultProfile(name="bad", reply_drop=800, reply_stall=400)

    def test_force_clean_after_must_be_positive(self):
        with pytest.raises(ParameterError, match="force_clean_after"):
            FaultProfile(name="bad", force_clean_after=0)

    def test_weight_orders_match_fault_tuples(self):
        profile = profile_named("lossy")
        assert tuple(k for k, _ in profile.request_weights()) == REQUEST_FAULTS
        assert tuple(k for k, _ in profile.reply_weights()) == REPLY_FAULTS


class TestFaultPlan:
    def test_same_seed_replays_identical_schedule(self):
        def draw_many(plan):
            out = []
            for i in range(200):
                out.append(plan.draw_request("a"))
                out.append(plan.draw_reply("a"))
                out.append(plan.draw_duplicate("b"))
            return out

        p1 = FaultPlan(profile_named("lossy"), seed=42)
        p2 = FaultPlan(profile_named("lossy"), seed=42)
        assert draw_many(p1) == draw_many(p2)
        assert p1.history == p2.history

    def test_different_seeds_diverge(self):
        draws = []
        for seed in (1, 2):
            plan = FaultPlan(profile_named("lossy"), seed=seed)
            draws.append([plan.draw_request("a") for _ in range(200)])
        assert draws[0] != draws[1]

    def test_clean_profile_never_faults(self):
        plan = FaultPlan(profile_named("clean"), seed=7)
        for _ in range(100):
            assert plan.draw_request("x") is None
            assert plan.draw_reply("x") is None
            assert plan.draw_duplicate("x") is False

    def test_force_clean_bounds_streaks_per_leg(self):
        # drop=WEIGHT_SCALE makes every unforced draw a fault, so streaks
        # hit the bound exactly and a clean delivery is forced each time.
        profile = FaultProfile(name="always-drop", drop=WEIGHT_SCALE, force_clean_after=2)
        plan = FaultPlan(profile, seed=0)
        draws = [plan.draw_request("ch") for _ in range(9)]
        assert draws == [
            FaultKind.DROP, FaultKind.DROP, None,
            FaultKind.DROP, FaultKind.DROP, None,
            FaultKind.DROP, FaultKind.DROP, None,
        ]

    def test_streaks_tracked_independently_per_leg(self):
        profile = FaultProfile(name="always-drop", drop=WEIGHT_SCALE, force_clean_after=1)
        plan = FaultPlan(profile, seed=0)
        # Alternating channels: each leg keeps its own streak counter.
        assert plan.draw_request("a") is FaultKind.DROP
        assert plan.draw_request("b") is FaultKind.DROP
        assert plan.draw_request("a") is None  # a's streak hit the bound
        assert plan.draw_request("b") is None
        assert plan.draw_request("a") is FaultKind.DROP  # streak reset

    def test_reply_leg_is_a_distinct_streak(self):
        profile = FaultProfile(
            name="both", drop=WEIGHT_SCALE, reply_drop=WEIGHT_SCALE, force_clean_after=1
        )
        plan = FaultPlan(profile, seed=0)
        assert plan.draw_request("ch") is FaultKind.DROP
        assert plan.draw_reply("ch") is FaultKind.DROP  # not forced by request streak
        assert plan.draw_request("ch") is None
        assert plan.draw_reply("ch") is None

    def test_history_records_every_decision(self):
        plan = FaultPlan(profile_named("lossy"), seed=3)
        for _ in range(10):
            plan.draw_request("a")
            plan.draw_reply("a")
        steps = [step for step, _, _ in plan.history]
        assert steps == sorted(steps)
        legs = {leg for _, leg, _ in plan.history}
        assert legs <= {"a", "a:reply"}

    def test_corruption_bit_in_range(self):
        plan = FaultPlan(profile_named("lossy"), seed=5)
        for _ in range(50):
            assert 0 <= plan.corruption_bit(33) < 33 * 8
