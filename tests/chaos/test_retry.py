"""Unit tests for RetryPolicy: backoff math, retry semantics, counters."""

import pytest

from repro.chaos import ChaosTransport, FaultPlan, RetryPolicy, profile_named
from repro.common import perfstats
from repro.common.errors import (
    ParameterError,
    RetryExhausted,
    TransportTimeout,
    TransientChainError,
)


class TestBackoff:
    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(max_attempts=6, base_delay_s=0.05, multiplier=2.0, max_delay_s=0.3)
        assert policy.schedule() == pytest.approx([0.05, 0.1, 0.2, 0.3, 0.3])

    def test_schedule_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.schedule() == policy.schedule()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ParameterError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ParameterError):
            RetryPolicy(base_delay_s=-1.0)


class TestRun:
    def test_first_try_success_is_one_attempt(self):
        perfstats.reset()
        result = RetryPolicy().run(lambda attempt: attempt * 10)
        assert result == 10
        assert perfstats.get("retry.attempts") == 1
        assert perfstats.get("retry.recovered") == 0

    def test_recovers_after_transient_failures(self):
        perfstats.reset()

        def op(attempt):
            if attempt < 3:
                raise TransportTimeout("flaky")
            return "done"

        assert RetryPolicy().run(op) == "done"
        assert perfstats.get("retry.attempts") == 3
        assert perfstats.get("retry.recovered") == 1

    def test_transient_chain_error_is_retried(self):
        # e.g. "stale accumulation value" revert during a concurrent insert.
        def op(attempt):
            if attempt == 1:
                raise TransientChainError("settle reverted: stale accumulation value")
            return "settled"

        assert RetryPolicy().run(op) == "settled"

    def test_budget_exhaustion_raises_with_cause(self):
        perfstats.reset()
        policy = RetryPolicy(max_attempts=3)

        def op(attempt):
            raise TransportTimeout("永 down")

        with pytest.raises(RetryExhausted, match="failed after 3 attempts") as info:
            policy.run(op, label="submit_query")
        assert "submit_query" in str(info.value)
        assert isinstance(info.value.__cause__, TransportTimeout)
        assert perfstats.get("retry.attempts") == 3
        assert perfstats.get("retry.gave_up") == 1

    def test_non_transport_errors_propagate_immediately(self):
        calls = []

        def op(attempt):
            calls.append(attempt)
            raise ValueError("a bug, not delivery noise")

        with pytest.raises(ValueError):
            RetryPolicy().run(op)
        assert calls == [1]  # never retried

    def test_backoff_advances_virtual_clock_between_attempts(self):
        transport = ChaosTransport(FaultPlan(profile_named("clean"), seed=0))
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.1, multiplier=2.0, max_delay_s=10.0)

        def op(attempt):
            if attempt < 4:
                raise TransportTimeout("x")
            return "ok"

        start = transport.clock
        assert policy.run(op, transport=transport) == "ok"
        # Three failures -> backoffs 0.1 + 0.2 + 0.4 (no sleep after success).
        assert transport.clock - start == pytest.approx(0.7)

    def test_no_backoff_after_final_failure(self):
        transport = ChaosTransport(FaultPlan(profile_named("clean"), seed=0))
        policy = RetryPolicy(max_attempts=2, base_delay_s=1.0, multiplier=1.0, max_delay_s=1.0)

        def op(attempt):
            raise TransportTimeout("x")

        with pytest.raises(RetryExhausted):
            policy.run(op, transport=transport)
        assert transport.clock == pytest.approx(1.0)  # one inter-attempt gap only

    def test_liveness_against_worst_case_streaks(self):
        """The default policy always lands a message under bundled profiles.

        ``force_clean_after=2`` bounds consecutive faulty draws per leg, so
        request+reply legs can burn at most 5 deliveries before a clean
        pair — well under the 8-attempt default budget.
        """
        worst_streak = 2 + 1 + 2  # request streak + forced-clean + reply streak
        assert RetryPolicy().max_attempts > worst_streak
