"""Unit tests for ChaosTransport: framing, fault injection, idempotency."""

import pytest

from repro.chaos import ChaosTransport, FaultKind, FaultPlan, profile_named
from repro.chaos.faults import FaultProfile, WEIGHT_SCALE
from repro.chaos.transport import frame, unframe
from repro.common import perfstats
from repro.common.errors import (
    ParameterError,
    TransportCorruption,
    TransportTimeout,
)


def clean_transport(**kwargs) -> ChaosTransport:
    return ChaosTransport(FaultPlan(profile_named("clean"), seed=0), **kwargs)


def transport_for(profile: FaultProfile, seed: int = 0, **kwargs) -> ChaosTransport:
    return ChaosTransport(FaultPlan(profile, seed), **kwargs)


class TestFraming:
    def test_roundtrip(self):
        payload = b"the wire bytes"
        assert unframe(frame(payload)) == payload

    def test_any_single_bit_flip_is_detected(self):
        framed = frame(b"sensitive payload")
        for bit in range(0, len(framed) * 8, 7):  # sample every 7th bit
            blob = bytearray(framed)
            blob[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises(TransportCorruption):
                unframe(bytes(blob))

    def test_truncation_is_detected(self):
        framed = frame(b"payload")
        with pytest.raises(TransportCorruption):
            unframe(framed[: len(framed) // 2])


class TestCleanDelivery:
    def test_handler_sees_payload_and_reply_returns(self):
        t = clean_transport()
        reply = t.deliver("a->b", b"ping", lambda blob: blob + b"-pong")
        assert reply == b"ping-pong"

    def test_clock_advances_by_latency_only(self):
        t = clean_transport(latency_s=0.25)
        t.deliver("a->b", b"x", lambda blob: None)
        t.deliver("a->b", b"x", lambda blob: None)
        assert t.clock == pytest.approx(0.5)

    def test_no_counters_touched(self):
        perfstats.reset()
        t = clean_transport()
        t.deliver("a->b", b"x", lambda blob: None)
        assert not any(k.startswith("chaos.") for k in perfstats.snapshot())


class TestFaultInjection:
    def test_drop_times_out_without_running_handler(self):
        t = transport_for(FaultProfile(name="drop", drop=WEIGHT_SCALE))
        calls = []
        perfstats.reset()
        with pytest.raises(TransportTimeout, match="dropped"):
            t.deliver("a->b", b"x", calls.append)
        assert calls == []
        assert perfstats.get("chaos.injected.drop") == 1
        assert t.clock == pytest.approx(t.timeout_s)

    def test_corrupt_detected_and_handler_never_sees_bad_bytes(self):
        t = transport_for(FaultProfile(name="rot", corrupt=WEIGHT_SCALE))
        calls = []
        perfstats.reset()
        with pytest.raises(TransportCorruption):
            t.deliver("a->b", b"x" * 64, calls.append)
        assert calls == []
        assert perfstats.get("chaos.injected.corrupt") == 1
        assert perfstats.get("chaos.detected.corrupt") == 1

    def test_crash_invokes_hook_then_times_out(self):
        t = transport_for(FaultProfile(name="die", crash=WEIGHT_SCALE))
        events = []
        with pytest.raises(TransportTimeout, match="crashed"):
            t.deliver(
                "a->b", b"x", lambda blob: events.append("handled"),
                on_crash=lambda: events.append("restarted"),
            )
        assert events == ["restarted"]  # endpoint died before processing

    def test_reply_drop_runs_handler_but_raises(self):
        t = transport_for(FaultProfile(name="replyless", reply_drop=WEIGHT_SCALE))
        calls = []
        with pytest.raises(TransportTimeout, match="reply dropped"):
            t.deliver("a->b", b"x", lambda blob: calls.append(blob) or b"ok")
        assert calls == [b"x"]  # the receiver DID process it

    def test_reorder_held_then_delivered_stale(self):
        # Reorder exactly once, then clean (force_clean_after=1).
        t = transport_for(
            FaultProfile(name="late", reorder=WEIGHT_SCALE, force_clean_after=1)
        )
        seen = []
        perfstats.reset()
        with pytest.raises(TransportTimeout, match="reordered"):
            t.deliver("a->b", b"first", seen.append)
        assert seen == []
        t.deliver("a->b", b"second", lambda blob: seen.append(blob))
        # The held message landed before the newer one: stale, at-least-once.
        assert seen == [b"first", b"second"]
        assert perfstats.get("chaos.delivered.stale") == 1


class TestIdempotency:
    def test_duplicate_delivery_deduplicated(self):
        t = transport_for(
            FaultProfile(name="dup", duplicate=WEIGHT_SCALE, force_clean_after=1)
        )
        calls = []
        perfstats.reset()
        reply = t.deliver(
            "a->b", b"op", lambda blob: calls.append(blob) or b"done",
            idempotency_key=("op", 1),
        )
        assert reply == b"done"
        assert calls == [b"op"]  # handler ran once despite the duplicate
        assert perfstats.get("chaos.injected.duplicate") == 1
        assert perfstats.get("chaos.deduped") == 1

    def test_duplicate_without_key_reexecutes(self):
        t = transport_for(
            FaultProfile(name="dup", duplicate=WEIGHT_SCALE, force_clean_after=1)
        )
        calls = []
        t.deliver("a->b", b"op", lambda blob: calls.append(blob))
        assert calls == [b"op", b"op"]

    def test_resend_returns_cached_reply(self):
        t = clean_transport()
        counter = {"n": 0}

        def handler(blob):
            counter["n"] += 1
            return counter["n"]

        first = t.deliver("a->b", b"x", handler, idempotency_key="k")
        second = t.deliver("a->b", b"x", handler, idempotency_key="k")
        assert (first, second) == (1, 1)

    def test_cache_if_false_means_reexecution(self):
        t = clean_transport()
        counter = {"n": 0}

        def handler(blob):
            counter["n"] += 1
            return counter["n"]

        # Simulates a reverted receipt: not cached, so the retry re-executes.
        first = t.deliver("a->b", b"x", handler, idempotency_key="k", cache_if=lambda r: r > 1)
        second = t.deliver("a->b", b"x", handler, idempotency_key="k", cache_if=lambda r: r > 1)
        third = t.deliver("a->b", b"x", handler, idempotency_key="k", cache_if=lambda r: r > 1)
        assert (first, second, third) == (1, 2, 2)


class TestBuilders:
    def test_for_profile_and_seed(self):
        t = ChaosTransport.for_profile("lossy", seed=99)
        assert t.plan.profile.name == "lossy"
        assert t.plan.seed == 99

    def test_from_env_reads_profile_and_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_PROFILE", "crash_restart")
        monkeypatch.setenv("REPRO_CHAOS_SEED", "0x2a")
        t = ChaosTransport.from_env()
        assert t.plan.profile.name == "crash_restart"
        assert t.plan.seed == 42

    def test_from_env_rejects_garbage_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_SEED", "not-a-number")
        with pytest.raises(ParameterError, match="REPRO_CHAOS_SEED"):
            ChaosTransport.from_env()

    def test_same_seed_same_fault_sequence_through_transport(self):
        def run(seed):
            t = ChaosTransport(FaultPlan(profile_named("lossy"), seed))
            log = []
            for i in range(60):
                try:
                    t.deliver("a->b", b"msg%d" % i, lambda blob: b"ok")
                    log.append("ok")
                except TransportTimeout:
                    log.append("timeout")
                except TransportCorruption:
                    log.append("corrupt")
            return log, t.plan.history

        assert run(5) == run(5)
        assert run(5) != run(6)
