"""Unit tests for the bit-indexing convention the SORE scheme relies on."""

import pytest

from repro.common.bitstring import (
    bit_at,
    bytes_to_int,
    check_value_fits,
    first_differing_bit,
    from_bits,
    int_to_bytes,
    prefix_bits,
    to_bits,
    xor_bytes,
)
from repro.common.errors import ParameterError


class TestBitAt:
    def test_msb_is_index_one(self):
        # 0b1000 -> bit 1 is the MSB
        assert bit_at(0b1000, 1, 4) == 1
        assert bit_at(0b1000, 2, 4) == 0

    def test_lsb_is_index_b(self):
        assert bit_at(0b0001, 4, 4) == 1
        assert bit_at(0b0001, 3, 4) == 0

    def test_paper_example_five(self):
        # 5 = (0101) in the paper's Fig. 2
        assert [bit_at(5, i, 4) for i in range(1, 5)] == [0, 1, 0, 1]

    def test_paper_example_eight(self):
        # 8 = (1000)
        assert [bit_at(8, i, 4) for i in range(1, 5)] == [1, 0, 0, 0]

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ParameterError):
            bit_at(5, 0, 4)
        with pytest.raises(ParameterError):
            bit_at(5, 5, 4)


class TestPrefixBits:
    def test_first_prefix_is_empty(self):
        assert prefix_bits(0b1010, 1, 4) == ""

    def test_full_prefix(self):
        assert prefix_bits(0b1010, 4, 4) == "101"

    def test_prefix_of_five(self):
        assert prefix_bits(5, 3, 4) == "01"


class TestRoundTrips:
    def test_to_from_bits(self):
        for v in [0, 1, 5, 8, 255]:
            assert from_bits(to_bits(v, 8)) == v

    def test_to_bits_width(self):
        assert to_bits(5, 8) == "00000101"

    def test_from_bits_empty_is_zero(self):
        assert from_bits("") == 0

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ParameterError):
            from_bits("10201")

    def test_int_bytes_round_trip(self):
        for v in [0, 1, 255, 256, 2**64 - 1]:
            assert bytes_to_int(int_to_bytes(v)) == v

    def test_int_to_bytes_fixed_length(self):
        assert int_to_bytes(5, 4) == b"\x00\x00\x00\x05"

    def test_int_to_bytes_rejects_negative(self):
        with pytest.raises(ParameterError):
            int_to_bytes(-1)


class TestFirstDifferingBit:
    def test_equal_values_return_none(self):
        assert first_differing_bit(42, 42, 8) is None

    def test_msb_difference(self):
        assert first_differing_bit(0b10000000, 0, 8) == 1

    def test_lsb_difference(self):
        assert first_differing_bit(0b1, 0, 8) == 8

    def test_paper_pair(self):
        # 5=(0101) vs 8=(1000): differ at bit 1
        assert first_differing_bit(5, 8, 4) == 1
        # 5=(0101) vs 4=(0100): differ at bit 4
        assert first_differing_bit(5, 4, 4) == 4


class TestCheckValueFits:
    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            check_value_fits(-1, 8)

    def test_rejects_overflow(self):
        with pytest.raises(ParameterError):
            check_value_fits(256, 8)

    def test_accepts_bounds(self):
        check_value_fits(0, 8)
        check_value_fits(255, 8)

    def test_rejects_zero_width(self):
        with pytest.raises(ParameterError):
            check_value_fits(0, 0)


class TestXorBytes:
    def test_self_inverse(self):
        a, b = b"\x01\x02\x03", b"\xff\x00\x10"
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            xor_bytes(b"\x00", b"\x00\x00")
