"""Injectivity of the canonical encodings (the || operator must not collide)."""

import pytest

from repro.common.encoding import (
    decode_parts,
    decode_uint,
    encode_parts,
    encode_str,
    encode_uint,
    sizeof,
)
from repro.common.errors import ParameterError


class TestEncodeParts:
    def test_round_trip(self):
        parts = [b"", b"a", b"hello world", b"\x00" * 5]
        assert decode_parts(encode_parts(*parts)) == parts

    def test_injective_against_concatenation_shift(self):
        # Plain concatenation would collide ("ab"+"c" == "a"+"bc").
        assert encode_parts(b"ab", b"c") != encode_parts(b"a", b"bc")

    def test_empty_encoding(self):
        assert decode_parts(encode_parts()) == []

    def test_rejects_non_bytes(self):
        with pytest.raises(ParameterError):
            encode_parts("text")  # type: ignore[arg-type]

    def test_truncated_blob_rejected(self):
        blob = encode_parts(b"abcdef")
        with pytest.raises(ParameterError):
            decode_parts(blob[:-1])

    def test_truncated_length_prefix_rejected(self):
        with pytest.raises(ParameterError):
            decode_parts(b"\x00\x00")


class TestUintEncoding:
    def test_round_trip(self):
        for v in [0, 1, 255, 2**63]:
            assert decode_uint(encode_uint(v, 16)) == v

    def test_fixed_width(self):
        assert len(encode_uint(1, 4)) == 4

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            encode_uint(-1)


class TestSizeof:
    def test_bytes_and_iterables(self):
        assert sizeof(b"abc") == 3
        assert sizeof([b"ab", b"c"], b"d") == 4


def test_encode_str_utf8():
    assert encode_str("age>") == b"age>"
