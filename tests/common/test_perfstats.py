"""Perf counters: increment/snapshot/reset semantics and hit-rate math."""

import pytest

from repro.common import perfstats
from repro.common.perfstats import PerfStats


@pytest.fixture()
def stats():
    return PerfStats()


class TestCounters:
    def test_starts_at_zero(self, stats):
        assert stats.get("anything") == 0

    def test_incr_default_one(self, stats):
        stats.incr("a.b")
        stats.incr("a.b")
        assert stats.get("a.b") == 2

    def test_incr_amount(self, stats):
        stats.incr("a.candidates", 7)
        stats.incr("a.candidates", 3)
        assert stats.get("a.candidates") == 10

    def test_snapshot_is_a_copy(self, stats):
        stats.incr("x")
        snap = stats.snapshot()
        snap["x"] = 99
        assert stats.get("x") == 1

    def test_snapshot_prefix_filter(self, stats):
        stats.incr("cache.hit")
        stats.incr("cache.miss")
        stats.incr("other.op")
        assert stats.snapshot("cache.") == {"cache.hit": 1, "cache.miss": 1}

    def test_reset_all(self, stats):
        stats.incr("a")
        stats.incr("b")
        stats.reset()
        assert stats.snapshot() == {}

    def test_reset_prefix_only(self, stats):
        stats.incr("a.hit")
        stats.incr("b.hit")
        stats.reset("a.")
        assert stats.get("a.hit") == 0
        assert stats.get("b.hit") == 1


class TestHitRates:
    def test_hit_rate(self, stats):
        stats.incr("memo.hit", 3)
        stats.incr("memo.miss", 1)
        assert stats.hit_rate("memo") == pytest.approx(0.75)

    def test_unconsulted_cache_is_none(self, stats):
        # Never-consulted is a distinct signal from consulted-and-collapsed:
        # regression gates must not mistake a disabled cache for a 0% one.
        assert stats.hit_rate("never") is None

    def test_consulted_but_zero_hits_is_zero(self, stats):
        stats.incr("memo.miss", 4)
        assert stats.hit_rate("memo") == 0.0

    def test_all_hits(self, stats):
        stats.incr("memo.hit", 5)
        assert stats.hit_rate("memo") == 1.0

    def test_rates_enumerates_caches(self, stats):
        stats.incr("a.hit")
        stats.incr("b.miss")
        stats.incr("c.unrelated")
        assert stats.rates() == {"a": 1.0, "b": 0.0}


class TestDeltaMerge:
    """The two halves of the cross-process counter merge."""

    def test_delta_since_reports_only_changes(self, stats):
        stats.incr("a", 2)
        base = stats.snapshot()
        stats.incr("a", 3)
        stats.incr("b", 1)
        assert stats.delta_since(base) == {"a": 3, "b": 1}

    def test_delta_since_empty_when_idle(self, stats):
        stats.incr("a")
        assert stats.delta_since(stats.snapshot()) == {}

    def test_merge_folds_delta_in(self, stats):
        stats.incr("a", 2)
        stats.merge({"a": 3, "b": 1})
        assert stats.get("a") == 5
        assert stats.get("b") == 1

    def test_roundtrip_equals_serial(self):
        # parent + (worker delta) must equal the serial run's counters
        serial = PerfStats()
        for _ in range(5):
            serial.incr("memo.hit")
        serial.incr("memo.miss", 2)

        parent = PerfStats()
        parent.incr("memo.hit", 2)
        worker = PerfStats()
        worker.incr("memo.hit", 2)  # state inherited at "fork"
        base = worker.snapshot()
        worker.incr("memo.hit", 3)
        worker.incr("memo.miss", 2)
        parent.merge(worker.delta_since(base))
        assert parent.snapshot() == serial.snapshot()


class TestModuleRegistry:
    def test_delegates_share_global_registry(self):
        perfstats.reset("test_delegate.")
        perfstats.incr("test_delegate.hit", 2)
        perfstats.incr("test_delegate.miss", 2)
        assert perfstats.get("test_delegate.hit") == 2
        assert perfstats.hit_rate("test_delegate") == 0.5
        assert perfstats.STATS.get("test_delegate.hit") == 2
        perfstats.reset("test_delegate.")
        assert perfstats.snapshot("test_delegate.") == {}
