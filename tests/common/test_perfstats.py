"""Perf counters: increment/snapshot/reset semantics and hit-rate math."""

import pytest

from repro.common import perfstats
from repro.common.perfstats import PerfStats


@pytest.fixture()
def stats():
    return PerfStats()


class TestCounters:
    def test_starts_at_zero(self, stats):
        assert stats.get("anything") == 0

    def test_incr_default_one(self, stats):
        stats.incr("a.b")
        stats.incr("a.b")
        assert stats.get("a.b") == 2

    def test_incr_amount(self, stats):
        stats.incr("a.candidates", 7)
        stats.incr("a.candidates", 3)
        assert stats.get("a.candidates") == 10

    def test_snapshot_is_a_copy(self, stats):
        stats.incr("x")
        snap = stats.snapshot()
        snap["x"] = 99
        assert stats.get("x") == 1

    def test_snapshot_prefix_filter(self, stats):
        stats.incr("cache.hit")
        stats.incr("cache.miss")
        stats.incr("other.op")
        assert stats.snapshot("cache.") == {"cache.hit": 1, "cache.miss": 1}

    def test_reset_all(self, stats):
        stats.incr("a")
        stats.incr("b")
        stats.reset()
        assert stats.snapshot() == {}

    def test_reset_prefix_only(self, stats):
        stats.incr("a.hit")
        stats.incr("b.hit")
        stats.reset("a.")
        assert stats.get("a.hit") == 0
        assert stats.get("b.hit") == 1


class TestHitRates:
    def test_hit_rate(self, stats):
        stats.incr("memo.hit", 3)
        stats.incr("memo.miss", 1)
        assert stats.hit_rate("memo") == pytest.approx(0.75)

    def test_unconsulted_cache_is_zero(self, stats):
        assert stats.hit_rate("never") == 0.0

    def test_all_hits(self, stats):
        stats.incr("memo.hit", 5)
        assert stats.hit_rate("memo") == 1.0

    def test_rates_enumerates_caches(self, stats):
        stats.incr("a.hit")
        stats.incr("b.miss")
        stats.incr("c.unrelated")
        assert stats.rates() == {"a": 1.0, "b": 0.0}


class TestModuleRegistry:
    def test_delegates_share_global_registry(self):
        perfstats.reset("test_delegate.")
        perfstats.incr("test_delegate.hit", 2)
        perfstats.incr("test_delegate.miss", 2)
        assert perfstats.get("test_delegate.hit") == 2
        assert perfstats.hit_rate("test_delegate") == 0.5
        assert perfstats.STATS.get("test_delegate.hit") == 2
        perfstats.reset("test_delegate.")
        assert perfstats.snapshot("test_delegate.") == {}
