"""Determinism and shape of the RNG plumbing."""

from repro.common.rng import DeterministicRNG, default_rng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = DeterministicRNG(7), DeterministicRNG(7)
        assert a.token_bytes(32) == b.token_bytes(32)
        assert a.randbits(64) == b.randbits(64)

    def test_different_seeds_differ(self):
        assert DeterministicRNG(1).token_bytes(32) != DeterministicRNG(2).token_bytes(32)

    def test_spawn_is_stable(self):
        a, b = DeterministicRNG(7), DeterministicRNG(7)
        assert a.spawn().token_bytes(16) == b.spawn().token_bytes(16)

    def test_spawn_independent_of_parent_continuation(self):
        parent = DeterministicRNG(7)
        child = parent.spawn()
        first = child.token_bytes(8)
        parent.token_bytes(8)  # advancing the parent must not affect the child
        assert child.token_bytes(8) != first  # child stream continues, not repeats


class TestDraws:
    def test_token_bytes_length(self):
        rng = DeterministicRNG(1)
        for n in [0, 1, 16, 100]:
            assert len(rng.token_bytes(n)) == n

    def test_randint_below_bounds(self):
        rng = DeterministicRNG(1)
        assert all(0 <= rng.randint_below(10) < 10 for _ in range(200))

    def test_randrange_bounds(self):
        rng = DeterministicRNG(1)
        assert all(5 <= rng.randrange(5, 9) < 9 for _ in range(100))

    def test_shuffle_preserves_multiset(self):
        rng = DeterministicRNG(1)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_sample_unique(self):
        rng = DeterministicRNG(1)
        picked = rng.sample(list(range(50)), 10)
        assert len(set(picked)) == 10


def test_default_rng_unseeded_is_random():
    assert default_rng().token_bytes(16) != default_rng().token_bytes(16)
