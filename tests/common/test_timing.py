"""Stopwatch accumulation semantics."""

from repro.common.timing import Stopwatch, time_call


def test_measure_accumulates():
    watch = Stopwatch()
    with watch.measure("phase"):
        pass
    first = watch.get("phase")
    with watch.measure("phase"):
        pass
    assert watch.get("phase") >= first


def test_unknown_label_is_zero():
    assert Stopwatch().get("nope") == 0.0


def test_reset():
    watch = Stopwatch()
    with watch.measure("x"):
        pass
    watch.reset()
    assert watch.get("x") == 0.0


def test_time_call_returns_result():
    elapsed, result = time_call(lambda: 41 + 1)
    assert result == 42
    assert elapsed >= 0.0
