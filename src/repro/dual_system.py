"""On-chain dual-instance deployment: deletion/update with paid, publicly
verified searches on BOTH instances.

:class:`~repro.core.deletion.DualInstanceSlicer` runs the Section V.F
construction off chain (local verification).  This module lifts it onto the
blockchain: two full :class:`~repro.system.SlicerSystem` deployments share
one chain — one contract escrows/verifies the insert-instance search, the
other the delete-instance search — and the final answer is the verified set
difference.  A cheating cloud on *either* instance forfeits that instance's
payment.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .blockchain.chain import Blockchain
from .common.errors import ParameterError, StateError
from .common.rng import DeterministicRNG, default_rng
from .core.params import SlicerParams
from .core.query import Query
from .core.records import Database
from .chaos import RetryPolicy
from .system import DEFAULT_PAYMENT, SearchOutcome, SlicerSystem


@dataclass
class DualSearchOutcome:
    """Both instances' outcomes plus the combined verified answer."""

    insert_outcome: SearchOutcome
    delete_outcome: SearchOutcome

    @property
    def verified(self) -> bool:
        return self.insert_outcome.verified and self.delete_outcome.verified

    @property
    def record_ids(self) -> set[bytes]:
        if not self.verified:
            return set()
        return self.insert_outcome.record_ids - self.delete_outcome.record_ids


class DualSlicerSystem:
    """Two SlicerSystems (insert-/delete-instance) on one shared chain."""

    def __init__(
        self,
        params: SlicerParams,
        rng: DeterministicRNG | None = None,
        transport_factory=None,
        retry: RetryPolicy | None = None,
        shards: int = 1,
    ) -> None:
        self.params = params
        self.rng = rng or default_rng()
        self.chain = Blockchain()
        #: ``tag -> ChaosTransport | None``; each instance needs its *own*
        #: transport (fault schedules and idempotency caches are
        #: per-deployment state), so a factory rather than one shared object.
        self._transport_factory = transport_factory
        self._retry = retry
        self._shards = shards
        # Distinct account labels per instance (``account_tag``) let the two
        # deployments share one chain without address collisions.
        self.insert_system = self._make_system("ins")
        self.delete_system = self._make_system("del")
        self._live: dict[bytes, int] = {}
        self._deleted: set[bytes] = set()

    def _make_system(self, tag: str) -> SlicerSystem:
        transport = self._transport_factory(tag) if self._transport_factory else None
        return SlicerSystem(
            params=self.params,
            chain=self.chain,
            rng=self.rng.spawn(),
            transport=transport,
            retry=self._retry,
            shards=self._shards,
            account_tag=tag,
            # Without an explicit factory the dual oracle stays on the
            # direct path even under REPRO_CHAOS=1: its transport would be
            # per-instance state the env knob cannot scope correctly.
            env_transport=False,
        )

    # ------------------------------------------------------------ mutation

    def setup(self, database: Database) -> None:
        self.insert_system.setup(database)
        self.delete_system.setup(Database(self.params.value_bits, id_len=self.params.record_id_len))
        for record in database:
            self._live[record.record_id] = record.value

    def insert(self, record_id: bytes, value: int) -> None:
        if record_id in self._live:
            raise ParameterError("record ID already live")
        if record_id in self._deleted:
            raise ParameterError("record ID was deleted; IDs are single-use")
        batch = Database(self.params.value_bits, id_len=self.params.record_id_len)
        batch.add(record_id, value)
        self.insert_system.insert(batch)
        self._live[record_id] = value

    def delete(self, record_id: bytes) -> None:
        if record_id not in self._live:
            raise StateError("cannot delete a record that is not live")
        batch = Database(self.params.value_bits, id_len=self.params.record_id_len)
        batch.add(record_id, self._live.pop(record_id))
        self.delete_system.insert(batch)
        self._deleted.add(record_id)

    def update(self, record_id: bytes, new_value: int) -> bytes:
        """Delete + insert-under-version; returns the new physical ID."""
        self.delete(record_id)
        versioned = hashlib.sha256(b"version:" + record_id).digest()[: len(record_id)]
        self.insert(versioned, new_value)
        return versioned

    # -------------------------------------------------------------- search

    def search(self, query: Query, payment: int = DEFAULT_PAYMENT) -> DualSearchOutcome:
        """One paid, on-chain-verified search per instance; combined result."""
        return DualSearchOutcome(
            insert_outcome=self.insert_system.search(query, payment),
            delete_outcome=self.delete_system.search(query, payment),
        )

    # -------------------------------------------------------------- oracle

    def expected_ids(self, query: Query) -> set[bytes]:
        predicate = query.predicate()
        return {rid for rid, value in self._live.items() if predicate(value)}

    def balances(self) -> dict[str, dict[str, int]]:
        return {
            "insert": self.insert_system.balances(),
            "delete": self.delete_system.balances(),
        }
