"""Sharded multi-cloud serving tier: deterministic routing + scatter/gather.

The paper's CSP is one logical server; this package splits it into N
independent :class:`~repro.core.cloud.CloudServer` shards behind a
scatter/gather front door whose merged output is byte-identical to the
single-cloud path at any shard count.  See :mod:`repro.sharding.plan` for
the routing/replication rules, :mod:`repro.sharding.frontend` for the
in-process tier and :mod:`repro.sharding.net` for the real ``asyncio``
socket deployment.
"""

from .frontend import ShardedCloudFrontend
from .plan import (
    HashShardPlan,
    ShardPackage,
    ShardPlan,
    dump_shard_package,
    equality_route,
    load_shard_package,
    split_package,
)

__all__ = [
    "HashShardPlan",
    "ShardPackage",
    "ShardPlan",
    "ShardedCloudFrontend",
    "dump_shard_package",
    "equality_route",
    "load_shard_package",
    "split_package",
]
