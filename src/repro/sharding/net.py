"""Real ``asyncio`` socket deployment of the sharded serving tier.

The in-process :class:`~repro.sharding.frontend.ShardedCloudFrontend` is
what tests and benchmarks drive (deterministic, no event loop); this module
is the same scatter/gather over actual TCP sockets — one
:class:`ShardServer` process-equivalent per shard, one
:class:`ShardClient` fanning a query out with ``asyncio.gather`` and
merging the partial responses in token order.

The wire format reuses the protocol codecs end to end: every message is a
4-byte big-endian length prefix around a sha256-framed
(:func:`~repro.chaos.transport.frame`) ``codec.pack`` envelope, and the
payloads are exactly the :mod:`repro.core.wire` token/response encodings
plus :func:`~repro.sharding.plan.dump_shard_package` for installs — the
bytes on the socket are the bytes the chaos transport faults, so the two
execution paths exercise one serialization surface.

``examples/sharded_serving.py`` runs the whole thing on localhost.
"""

from __future__ import annotations

import asyncio

from ..common.errors import StateError
from ..chaos.transport import frame, unframe
from ..core import wire
from ..core.cloud import CloudServer, SearchResponse
from ..core.tokens import SearchToken
from ..storage import codec
from .plan import ShardPlan, dump_shard_package, load_shard_package

_KIND_REQUEST = b"shard-rpc-request"
_KIND_REPLY = b"shard-rpc-reply"

OP_INSTALL = b"install"
OP_SEARCH = b"search"
OP_PING = b"ping"

_STATUS_OK = b"ok"
_STATUS_ERROR = b"error"

_MAX_MESSAGE = 1 << 30


async def _read_message(reader: asyncio.StreamReader) -> bytes:
    header = await reader.readexactly(4)
    length = int.from_bytes(header, "big")
    if length > _MAX_MESSAGE:
        raise StateError(f"oversized shard-rpc message ({length} bytes)")
    return unframe(await reader.readexactly(length))


async def _write_message(writer: asyncio.StreamWriter, payload: bytes) -> None:
    framed = frame(payload)
    writer.write(len(framed).to_bytes(4, "big") + framed)
    await writer.drain()


class ShardServer:
    """One shard's network face: a :class:`CloudServer` behind a TCP port."""

    def __init__(self, shard_id: int, server: CloudServer) -> None:
        self.shard_id = shard_id
        self.server = server
        self._listener: asyncio.base_events.Server | None = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Listen; returns the bound ``(host, port)`` (port 0 = ephemeral)."""
        self._listener = await asyncio.start_server(self._handle, host, port)
        bound = self._listener.sockets[0].getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_message(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                op, body = codec.unpack(request, _KIND_REQUEST)
                try:
                    result = self._dispatch(op, body)
                    reply = codec.pack(_KIND_REPLY, _STATUS_OK, result)
                except Exception as exc:  # fault isolation: report, keep serving
                    reply = codec.pack(
                        _KIND_REPLY, _STATUS_ERROR, str(exc).encode("utf-8")
                    )
                await _write_message(writer, reply)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                # CancelledError: the listener is shutting down while this
                # connection drains — a clean teardown, not an error.
                pass

    def _dispatch(self, op: bytes, body: bytes) -> bytes:
        if op == OP_INSTALL:
            pkg = load_shard_package(body)
            if pkg.shard_id != self.shard_id:
                raise StateError(
                    f"shard {self.shard_id} received package for shard {pkg.shard_id}"
                )
            self.server.install(pkg.package, witness_primes=pkg.local_primes)
            return codec.encode_int(self.server.prime_count)
        if op == OP_SEARCH:
            tokens = wire.load_tokens(body)
            # The frontend-side observation convention applies on the wire
            # path too: the client observes the merged response once.
            response = self.server.search(tokens, _observe=False)
            return wire.dump_response(response)
        if op == OP_PING:
            return codec.encode_int(self.shard_id)
        raise StateError(f"unknown shard-rpc op {op!r}")


class ShardClient:
    """Scatter/gather client over N shard addresses (one connection each)."""

    def __init__(self, plan: ShardPlan, addresses: list[tuple[str, int]]) -> None:
        if len(addresses) != plan.shards:
            raise StateError(
                f"plan expects {plan.shards} shards, got {len(addresses)} addresses"
            )
        self.plan = plan
        self.addresses = list(addresses)
        self._streams: list[
            tuple[asyncio.StreamReader, asyncio.StreamWriter] | None
        ] = [None] * plan.shards
        #: One in-flight request per shard connection at a time.
        self._locks = [asyncio.Lock() for _ in addresses]

    async def _call(self, shard_id: int, op: bytes, body: bytes) -> bytes:
        async with self._locks[shard_id]:
            stream = self._streams[shard_id]
            if stream is None:
                host, port = self.addresses[shard_id]
                stream = await asyncio.open_connection(host, port)
                self._streams[shard_id] = stream
            reader, writer = stream
            await _write_message(writer, codec.pack(_KIND_REQUEST, op, body))
            status, payload = codec.unpack(await _read_message(reader), _KIND_REPLY)
        if status != _STATUS_OK:
            raise StateError(f"shard {shard_id} error: {payload.decode('utf-8')}")
        return payload

    async def install(self, shard_packages) -> None:
        """Push one Build/Insert delta to every shard concurrently."""
        await asyncio.gather(
            *(
                self._call(pkg.shard_id, OP_INSTALL, dump_shard_package(pkg))
                for pkg in shard_packages
            )
        )

    async def search(self, tokens: list[SearchToken]) -> SearchResponse:
        """The async scatter/gather: route, fan out, merge in token order.

        Same routing and merge rules as the in-process frontend, so the
        merged bytes equal the single-cloud response — the example asserts
        this against a local reference server.
        """
        groups: dict[int, list[int]] = {}
        for i, token in enumerate(tokens):
            groups.setdefault(self.plan.shard_of(token.g1), []).append(i)
        order = sorted(groups)
        payloads = await asyncio.gather(
            *(
                self._call(
                    sid, OP_SEARCH, wire.dump_tokens([tokens[i] for i in groups[sid]])
                )
                for sid in order
            )
        )
        results = [None] * len(tokens)
        for sid, payload in zip(order, payloads):
            partial = wire.load_response(payload)
            for i, result in zip(groups[sid], partial.results):
                results[i] = result
        return SearchResponse([r for r in results if r is not None])

    async def close(self) -> None:
        for stream in self._streams:
            if stream is not None:
                stream[1].close()
                try:
                    await stream[1].wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
        self._streams = [None] * self.plan.shards
