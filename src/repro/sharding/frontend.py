"""The scatter/gather front-end over N independent cloud shards.

:class:`ShardedCloudFrontend` duck-types the :class:`~repro.core.cloud.
CloudServer` surface :class:`~repro.system.SlicerSystem` consumes (install/
search/search_many/snapshot/restore/precompute_witnesses/ads_value), so the
system routes submit/search/settle through it untouched.  Internally every
search is

1. **scatter** — tokens are routed per shard by the plan (``G1`` hash);
2. **serve** — each shard runs the ordinary Algorithm 4 over its slice
   (its own trapdoor-chain walks, entry cache and witness cache);
3. **gather/merge** — partial responses are reassembled in the original
   token order.

Merging is a pure permutation: a token's entries come from the one shard
holding its keyword's chain, and its witness is computed over the *full*
replicated prime set, so the merged response is byte-identical to the
single-cloud response at any shard count (the property suite asserts this
bit for bit).

Two execution paths exist.  The **in-process simulation** (default) serves
shards sequentially in shard-id order — deterministic, used by tests and
benchmarks; with ``params.workers > 1`` entry collection fans out one job
per shard (see :func:`~repro.parallel.tasks.shard_collect_chunk`) instead
of the flat token-chunk pool.  With a ``transport`` the request legs cross
the fault-injecting :class:`~repro.chaos.ChaosTransport` on **per-shard
channels** (``contract->cloud#shardK``), each with its own retry budget and
crash-restart hook backed by a per-shard durable snapshot.  The real
``asyncio`` socket path lives in :mod:`repro.sharding.net`.

A shard marked dead (:meth:`kill_shard`, no snapshot to restart from)
degrades *detectably*: its tokens get empty results with an invalid
witness, so the contract refunds exactly the queries that touched it while
queries served entirely by honest live shards still settle paid.
"""

from __future__ import annotations

import pathlib

from ..chaos import CONTRACT_TO_CLOUD, RetryPolicy, shard_channel
from ..common import perfstats
from ..common.encoding import encode_parts, encode_uint
from ..common.errors import ParameterError, StateError
from ..crypto import kernels
from ..crypto.accumulator import MembershipWitness
from ..obs import metrics, trace
from ..parallel import ParallelExecutor
from ..parallel.tasks import CollectShared, TokenWork, shard_collect_chunk
from ..core import wire
from ..core.cloud import CloudServer, SearchResponse, TokenResult
from ..core.entry_cache import CollectResult
from ..core.params import SlicerParams
from ..core.tokens import SearchToken
from ..crypto.trapdoor import TrapdoorPublicKey
from ..storage import codec, state_io
from .plan import ShardPackage, ShardPlan

_KIND_TIER = b"shard-tier"


class ShardedCloudFrontend:
    """N cloud shards behind one deterministic scatter/gather front door."""

    def __init__(
        self,
        params: SlicerParams,
        trapdoor_public: TrapdoorPublicKey,
        plan: ShardPlan,
        shard_servers: list[CloudServer] | None = None,
        transport=None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.params = params.public()
        self.plan = plan
        if shard_servers is None:
            shard_servers = [
                CloudServer(params, trapdoor_public) for _ in range(plan.shards)
            ]
        if len(shard_servers) != plan.shards:
            raise ParameterError(
                f"plan expects {plan.shards} shards, got {len(shard_servers)} servers"
            )
        self.shard_servers = list(shard_servers)
        self.transport = transport
        self.retry = retry or RetryPolicy()
        #: Which accumulated primes each shard's keywords own (the set its
        #: witness cache covers); grows with every installed delta.
        self._local_primes: list[dict[int, None]] = [{} for _ in shard_servers]
        #: Per-shard durable snapshots for chaos crash-restart.
        self._snapshots: list[bytes | None] = [None] * len(shard_servers)
        #: Shards taken down hard (no restart): served as detectable failures.
        self._dead: set[int] = set()
        #: Root of the per-shard segment stores once :meth:`attach_store` ran.
        self._store_root: pathlib.Path | None = None
        self._executor = ParallelExecutor(params.workers)

    # ---------------------------------------------------------------- state

    @property
    def ads_value(self) -> int:
        """The accumulation value — replicated, so any shard's copy serves."""
        return self.shard_servers[0].ads_value

    @property
    def prime_count(self) -> int:
        return self.shard_servers[0].prime_count

    @property
    def _witness_cache(self):
        """Non-None iff any shard holds a precomputed witness cache.

        Only the system's ``is not None`` restart check reads this; the
        caches themselves stay shard-local.
        """
        caches = [server._witness_cache for server in self.shard_servers]
        return caches if any(c is not None for c in caches) else None

    def install_shards(self, shard_packages: list[ShardPackage]) -> None:
        """Install one Build/Insert delta, pre-split by the owner."""
        if len(shard_packages) != len(self.shard_servers):
            raise ParameterError(
                f"expected {len(self.shard_servers)} shard packages, "
                f"got {len(shard_packages)}"
            )
        for pkg in shard_packages:
            self.install_shard(pkg)

    def install_shard(self, pkg: ShardPackage) -> None:
        server = self.shard_servers[pkg.shard_id]
        server.install(pkg.package, witness_primes=pkg.local_primes)
        for prime in pkg.local_primes:
            self._local_primes[pkg.shard_id][prime] = None
        if self.transport is not None:
            # Durable per-shard snapshot, taken atomically with the install —
            # what a crash-restarted shard reloads.
            self._snapshots[pkg.shard_id] = server.snapshot()

    def precompute_witnesses(self) -> int:
        """Each shard precomputes witnesses for *its own* primes only.

        The per-shard subsets partition the accumulated set, so the total
        work (and the returned count) equals the single-cloud precompute —
        no witness is derived twice across the tier.
        """
        total = 0
        for sid, server in enumerate(self.shard_servers):
            total += server.precompute_witnesses(list(self._local_primes[sid]))
        return total

    # -------------------------------------------------------- segment stores

    def _shard_plan_tag(self, sid: int) -> bytes:
        """The plan fingerprint stamped into shard ``sid``'s store manifest.

        Binds the store to the routing function: reopening a shard directory
        under a different plan class, width or slot would silently misroute
        tokens, so the manifest's plan check turns that into a loud
        :class:`StateError` instead.
        """
        return encode_parts(
            type(self.plan).__name__.encode(),
            encode_uint(self.plan.shards),
            encode_uint(sid),
        )

    def attach_store(self, path) -> None:
        """Create one segment store per shard under ``path/shard-<sid>``."""
        root = pathlib.Path(path)
        for sid, server in enumerate(self.shard_servers):
            server.attach_store(root / f"shard-{sid}", plan_tag=self._shard_plan_tag(sid))
        self._store_root = root

    def reopen(self, path=None) -> None:
        """Restart the whole tier from its per-shard segment stores.

        Every shard replays its own segment chain and warm checkpoint; the
        frontend's routing bookkeeping (``_local_primes``) is rebuilt from
        the shard-local primes recorded in the replayed segments, so a
        restarted tier precomputes and routes exactly as the original did.
        """
        if path is None:
            if self._store_root is None:
                raise StateError("no segment stores attached; pass a path to reopen()")
            path = self._store_root
        root = pathlib.Path(path)
        for sid, server in enumerate(self.shard_servers):
            server.reopen(root / f"shard-{sid}", plan_tag=self._shard_plan_tag(sid))
            # Hydrate eagerly: the routing bookkeeping below needs the
            # replayed shard-local primes, so laziness buys nothing here.
            server._ensure_hydrated()
            self._local_primes[sid] = dict(server._store_local_primes)
        self._store_root = root
        self._dead.clear()

    # ------------------------------------------------- snapshots and crashes

    def snapshot(self) -> bytes:
        """Whole-tier snapshot: every shard's ``(I, X, Ac)`` plus bookkeeping."""
        parts = [codec.encode_int(len(self.shard_servers))]
        for server, local in zip(self.shard_servers, self._local_primes):
            parts.append(server.snapshot())
            parts.append(state_io.dump_primes(list(local)))
        return codec.pack(_KIND_TIER, *parts)

    def restore(self, snapshot: bytes) -> None:
        """Cold-restart the whole tier from a :meth:`snapshot` blob."""
        parts = codec.unpack(snapshot, _KIND_TIER)
        count = codec.decode_int(parts[0])
        if count != len(self.shard_servers) or len(parts) != 1 + 2 * count:
            raise ParameterError("tier snapshot does not match this frontend's shape")
        for sid in range(count):
            self.shard_servers[sid].restore(parts[1 + 2 * sid])
            self._local_primes[sid] = dict.fromkeys(
                state_io.load_primes(parts[2 + 2 * sid])
            )
        self._dead.clear()

    def snapshot_shard(self, shard_id: int) -> bytes:
        return self.shard_servers[shard_id].snapshot()

    def restore_shard(self, shard_id: int, snapshot: bytes) -> None:
        """Recover one crashed shard from its own state_io snapshot."""
        self.shard_servers[shard_id].restore(snapshot)
        self._dead.discard(shard_id)

    def kill_shard(self, shard_id: int) -> None:
        """Take a shard down hard: no restart, failures become detectable."""
        self._dead.add(shard_id)

    def _restart_shard(self, shard_id: int) -> None:
        """Chaos crash hook: restart the shard from its durable state.

        With a segment store attached the shard reopens from its own store
        directory (and may come back *warm* from its checkpoint); otherwise
        it reloads the per-install snapshot.  Either way the witness cache,
        if the shard had one and recovery didn't rehydrate it, is rebuilt
        over its local primes — the single-cloud restart semantics.
        """
        server = self.shard_servers[shard_id]
        has_store = server._store is not None
        snap = self._snapshots[shard_id]
        if snap is None and not has_store:
            return
        perfstats.incr("chaos.shard_restarts")
        had_cache = server._witness_cache is not None
        if has_store:
            server.reopen()
            server._ensure_hydrated()
            self._local_primes[shard_id] = dict(server._store_local_primes)
        else:
            server.restore(snap)
        if had_cache and server._witness_cache is None:
            server.precompute_witnesses(list(self._local_primes[shard_id]))

    # --------------------------------------------------------------- search

    def search(self, tokens: list[SearchToken]) -> SearchResponse:
        """Scatter, serve per shard, merge back into token order."""
        groups: dict[int, list[int]] = {}
        for i, token in enumerate(tokens):
            groups.setdefault(self.plan.shard_of(token.g1), []).append(i)
        perfstats.incr("shard.scatter")
        collected = self._precollect(tokens, groups)
        results: list[TokenResult | None] = [None] * len(tokens)
        for sid in sorted(groups):
            indices = groups[sid]
            shard_tokens = [tokens[i] for i in indices]
            perfstats.incr(f"shard.route.tokens.s{sid}", len(indices))
            with trace.span("shard.search", shard=sid, tokens=len(indices)):
                partial = self._shard_search(sid, shard_tokens, collected.get(sid))
            perfstats.incr(
                f"shard.route.entries.s{sid}",
                sum(len(r.entries) for r in partial.results),
            )
            for i, result in zip(indices, partial.results):
                results[i] = result
        response = SearchResponse([r for r in results if r is not None])
        self._observe_search(tokens, response)
        return response

    def search_many(self, token_lists: list[list[SearchToken]]) -> list[SearchResponse]:
        """Batched search: each shard sees the whole batch's slice at once.

        Cross-query token dedup happens *inside* each shard (dedup classes
        are shard-local because identical tokens share ``G1``), so the
        summed ``batch.*`` counters equal the single-cloud run and per-query
        responses stay byte-identical to sequential :meth:`search` calls.
        """
        routed = [
            [self.plan.shard_of(token.g1) for token in tokens] for tokens in token_lists
        ]
        shard_ids = sorted({sid for row in routed for sid in row})
        partials: dict[int, list[SearchResponse]] = {}
        for sid in shard_ids:
            shard_lists = [
                [t for t, s in zip(tokens, row) if s == sid]
                for tokens, row in zip(token_lists, routed)
            ]
            with trace.span(
                "shard.search", shard=sid, batch=len(shard_lists)
            ):
                partials[sid] = self._shard_search_many(sid, shard_lists)
        responses: list[SearchResponse] = []
        for qi, (tokens, row) in enumerate(zip(token_lists, routed)):
            cursors = {sid: iter(partials[sid][qi].results) for sid in set(row)}
            response = SearchResponse([next(cursors[sid]) for sid in row])
            self._observe_search(tokens, response)
            responses.append(response)
        return responses

    def search_plan(self, token_lists: list[list[SearchToken]]) -> list[SearchResponse]:
        """Serve a compiled plan's legs across the tier in one batch.

        The planner hands the *union* of all legs' token lists straight to
        the batched scatter: each shard sees its slice of the whole plan at
        once, so cross-leg token dedup happens inside every shard exactly
        as on a single cloud, and the gather/merge reassembles per-leg
        responses byte-identical to serving each leg alone.
        """
        return self.search_many(token_lists)

    def shards_for_tokens(self, tokens: list[SearchToken]) -> list[int]:
        """The sorted shard ids a token list touches (audit/metrics labels)."""
        return sorted({self.plan.shard_of(token.g1) for token in tokens})

    # ------------------------------------------------------------ internals

    def _shard_search(
        self,
        sid: int,
        shard_tokens: list[SearchToken],
        collected: dict[SearchToken, CollectResult] | None,
    ) -> SearchResponse:
        if sid in self._dead:
            return self._dead_response(sid, shard_tokens)
        server = self.shard_servers[sid]
        if self.transport is None:
            return server.search(shard_tokens, _collected=collected, _observe=False)

        # Chaos leg: this shard's scatter crosses the transport on its own
        # channel, retried independently; a crash fault restarts only this
        # shard from its durable snapshot.
        tokens_wire = wire.dump_tokens(shard_tokens)
        channel = shard_channel(CONTRACT_TO_CLOUD, sid)

        def scatter_op(attempt: int) -> bytes:
            return self.transport.deliver(
                channel,
                tokens_wire,
                lambda blob: wire.dump_response(
                    server.search(wire.load_tokens(blob), _observe=False)
                ),
                on_crash=lambda: self._restart_shard(sid),
            )

        response_wire = self.retry.run(
            scatter_op, transport=self.transport, label=f"shard{sid}.search"
        )
        return wire.load_response(response_wire)

    def _shard_search_many(
        self, sid: int, shard_lists: list[list[SearchToken]]
    ) -> list[SearchResponse]:
        if sid in self._dead:
            return [self._dead_response(sid, tokens) for tokens in shard_lists]
        # Batched settlement is a direct chain call even under chaos (see
        # SlicerSystem.batch_search), so the batch scatter stays in-process.
        return self.shard_servers[sid].search_many(shard_lists, _observe=False)

    def _dead_response(self, sid: int, shard_tokens: list[SearchToken]) -> SearchResponse:
        """A hard-down shard's share: empty results, witness that cannot verify.

        ``w = 1`` fails ``w^p == Ac`` for every prime, so the contract
        refunds exactly the queries whose tokens routed here — a crashed
        shard can degrade its own queries but never poison another shard's
        settlement.
        """
        perfstats.incr("shard.dead_served", len(shard_tokens))
        return SearchResponse(
            [TokenResult(t, [], MembershipWitness(1)) for t in shard_tokens]
        )

    def _precollect(
        self, tokens: list[SearchToken], groups: dict[int, list[int]]
    ) -> dict[int, dict[SearchToken, CollectResult]]:
        """Per-shard collection fan-out: one executor job per shard.

        Replaces the flat token-chunk pool for sharded serving: each worker
        walks one shard's *unique* tokens (first-occurrence order, exactly
        the dedup :meth:`CloudServer.search` applies) against that shard's
        fork-inherited index slice and entry cache.  Counter deltas and
        cache exports ride home through the executor machinery, so counters
        and cache state match the serial per-shard loop bit for bit.
        Returns ``{}`` (shards collect for themselves) when the fan-out
        would not pay or is unavailable; only applies to the direct path.
        """
        if self.transport is not None or not self._executor.parallel_available:
            return {}
        live = [sid for sid in sorted(groups) if sid not in self._dead]
        unique_by_shard: dict[int, list[SearchToken]] = {}
        for sid in live:
            seen: dict[SearchToken, None] = {}
            for i in groups[sid]:
                seen.setdefault(tokens[i], None)
            unique_by_shard[sid] = list(seen)
        total = sum(len(v) for v in unique_by_shard.values())
        if len(live) < 2 or total < max(2, self._executor.min_items):
            return {}
        kernels_on = kernels.kernels_enabled()
        shared = tuple(
            CollectShared(
                self.shard_servers[sid].index.entries,
                self.params.label_len,
                self.shard_servers[sid].trapdoor_public,
                self.shard_servers[sid]._entry_cache if kernels_on else None,
                self.params.multiset_field,
            )
            for sid in live
        )
        jobs = [
            (
                slot,
                tuple(
                    TokenWork(t.trapdoor, t.epoch, t.g1, t.g2)
                    for t in unique_by_shard[sid]
                ),
            )
            for slot, sid in enumerate(live)
        ]
        perfstats.incr("shard.fanout.dispatches")
        results = self._executor.run_jobs(shard_collect_chunk, jobs, shared=shared)
        return {
            sid: dict(zip(unique_by_shard[sid], per_shard))
            for sid, per_shard in zip(live, results)
        }

    def _observe_search(
        self, tokens: list[SearchToken], response: SearchResponse
    ) -> None:
        """The per-query observations the shards suppressed, made once.

        Shards are called with ``_observe=False`` so the merged response is
        observed exactly as the single-cloud path would — same histogram
        names, same values, one observation per query.
        """
        metrics.observe("cloud.search.tokens", len(tokens))
        metrics.observe(
            "cloud.search.entries", sum(len(r.entries) for r in response.results)
        )
        metrics.observe("cloud.search.result_bytes", response.encrypted_result_bytes)
        metrics.observe("cloud.search.witness_bytes", response.witness_bytes)
