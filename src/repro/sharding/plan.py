"""Deterministic keyword -> shard routing and the per-shard install unit.

The serving tier splits the encrypted index ``I`` across N independent
:class:`~repro.core.cloud.CloudServer` instances.  The routing key is the
keyword's PRF output ``G1``:

* **stable** — ``G1 = G(K, w||1)`` depends only on the PRF key and the
  keyword, never on the epoch, so a keyword's *entire* trapdoor chain lives
  on exactly one shard and epoch walks never cross shard boundaries;
* **available on both sides** — the owner sees ``G1`` while staging
  Build/Insert (:class:`~repro.parallel.tasks.KeywordJob`) and the serving
  tier sees it on every :class:`~repro.core.tokens.SearchToken`, so install
  and search route identically without extra state;
* **keyword-blind** — ``G1`` is pseudorandom, so the router learns nothing
  about the keyword beyond what the token already reveals.

What is sharded and what is replicated: the index slice (``O(postings)``)
is sharded; the prime list ``X`` and the accumulation value ``Ac``
(``O(keyword-epochs)`` small integers) are replicated to every shard, so
each shard can produce witnesses over the *full* product — witness values
``g^(prod(X)/p)`` do not depend on which shard computes them, which is what
keeps sharded responses byte-identical to the single-cloud path at any N.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..common.errors import ParameterError, StateError
from ..core.state import CloudPackage
from ..storage import codec, state_io

#: Domain separator for the routing hash — shard ids must not correlate
#: with any other hash of ``G1`` used elsewhere in the protocol.
_ROUTE_DOMAIN = b"repro.shard.route:"

_KIND_SHARD_PACKAGE = b"shard-package"


class ShardPlan:
    """Pluggable deterministic router: keyword ``G1`` -> shard id.

    Subclasses override :meth:`shard_of`; everything downstream (owner
    splitting, frontend scatter, fault channels) consumes the plan through
    this one method, so alternative placements (consistent hashing, pinned
    hot keywords) drop in without touching the protocol.
    """

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ParameterError("shard count must be >= 1")
        self.shards = shards

    def shard_of(self, g1: bytes) -> int:
        raise NotImplementedError


class HashShardPlan(ShardPlan):
    """The default router: ``sha256(domain || G1) mod N`` (stable hash)."""

    def shard_of(self, g1: bytes) -> int:
        digest = hashlib.sha256(_ROUTE_DOMAIN + g1).digest()
        return int.from_bytes(digest[:8], "big") % self.shards


@dataclass
class ShardPackage:
    """One shard's slice of a Build/Insert delta.

    ``package`` carries the shard-local index slice but the *full* delta
    prime list and the global ``Ac`` (see module docstring); ``local_primes``
    records which of those primes belong to keywords homed on this shard —
    the set the shard's witness cache covers.
    """

    shard_id: int
    package: CloudPackage
    local_primes: list[int]


def dump_shard_package(pkg: ShardPackage) -> bytes:
    """Wire/snapshot encoding: the owner->shard install message."""
    return codec.pack(
        _KIND_SHARD_PACKAGE,
        codec.encode_int(pkg.shard_id),
        state_io.dump_cloud_state(
            pkg.package.index, list(pkg.package.primes), pkg.package.accumulation
        ),
        state_io.dump_primes(list(pkg.local_primes)),
    )


def load_shard_package(blob: bytes) -> ShardPackage:
    try:
        sid_blob, state_blob, local_blob = codec.unpack(blob, _KIND_SHARD_PACKAGE)
    except (ParameterError, ValueError) as exc:
        raise StateError(f"cannot load shard package: {exc}") from exc
    index, primes, ads_value = state_io.load_cloud_state(state_blob)
    return ShardPackage(
        shard_id=codec.decode_int(sid_blob),
        package=CloudPackage(index, primes, ads_value),
        local_primes=state_io.load_primes(local_blob),
    )


def split_package(
    plan: ShardPlan,
    routed: list[tuple[int, list[tuple[bytes, bytes]], int]],
    all_primes: list[int],
    accumulation: int,
) -> list[ShardPackage]:
    """Assemble per-shard packages from routed per-keyword build output.

    ``routed`` holds one ``(shard_id, entries, prime)`` triple per keyword
    job, in job order — the owner computes the shard id while it still knows
    each entry's keyword (``G1`` is not recoverable from a PRF label).  Every
    shard receives the full ``all_primes`` delta; only the index entries and
    the ``local_primes`` bookkeeping are sharded.
    """
    from ..core.state import EncryptedIndex  # local: state imports nothing of ours

    slices = [EncryptedIndex() for _ in range(plan.shards)]
    locals_: list[list[int]] = [[] for _ in range(plan.shards)]
    for shard_id, entries, prime in routed:
        for label, payload in entries:
            slices[shard_id].put(label, payload)
        locals_[shard_id].append(prime)
    return [
        ShardPackage(
            shard_id=sid,
            package=CloudPackage(slices[sid], list(all_primes), accumulation),
            local_primes=locals_[sid],
        )
        for sid in range(plan.shards)
    ]


def equality_route(prf_key: bytes, value_bits: int, plan: ShardPlan):
    """``Query -> shard id`` for equality queries (test/benchmark side).

    Benchmarks and the :class:`~repro.workloads.generator.ShardSkew`
    machinery need to know where a query will land *before* tokens exist;
    an equality query maps to exactly one keyword, hence one shard.
    """
    from ..core.keywords import equality_keyword
    from ..core.tokens import derive_g1_g2

    def route(query) -> int:
        keyword = equality_keyword(query.value, value_bits, query.attribute)
        g1, _ = derive_g1_g2(prf_key, keyword)
        return plan.shard_of(g1)

    return route
