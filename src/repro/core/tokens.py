"""Search tokens (Algorithm 3) and their wire encoding.

A search token for one keyword is the tuple ``(t_j, j, G1, G2)``: the newest
trapdoor, its epoch, and the two derived PRF keys.  An equality query yields
at most one token; an order query yields up to *b* (one per SORE slice that
actually occurs in the trapdoor state — absent slices match no records and
are skipped, which is why Fig. 6a's token count varies with how full the
value space is).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.encoding import encode_parts, encode_uint, sizeof
from ..common.rng import DeterministicRNG, default_rng
from ..crypto.prf import derive_key
from .keywords import equality_keyword, order_keywords_for_query
from .query import Query
from .state import TrapdoorState


@dataclass(frozen=True)
class SearchToken:
    """One per-keyword token ``(t_j, j, G1, G2)``."""

    trapdoor: bytes
    epoch: int
    g1: bytes
    g2: bytes

    def encode(self) -> bytes:
        """Canonical wire encoding (sized by Fig. 6a, hashed by the contract)."""
        return encode_parts(self.trapdoor, encode_uint(self.epoch), self.g1, self.g2)

    @property
    def size_bytes(self) -> int:
        return len(self.encode())


def derive_g1_g2(prf_key: bytes, keyword: bytes) -> tuple[bytes, bytes]:
    """``G1 = G(K, w||1)``, ``G2 = G(K, w||2)``."""
    return derive_key(prf_key, keyword, b"1"), derive_key(prf_key, keyword, b"2")


def generate_search_tokens(
    prf_key: bytes,
    trapdoor_state: TrapdoorState,
    query: Query,
    bits: int,
    rng: DeterministicRNG | None = None,
) -> list[SearchToken]:
    """Algorithm 3 (User.Token): tokens for every live keyword of ``query``.

    The keyword list is shuffled for order queries (Algorithm 3 line 5) so
    the token order does not reveal slice bit-indices.
    """
    query.validate(bits)
    rng = rng or default_rng()
    if query.condition.is_order:
        keywords = order_keywords_for_query(
            query.value, query.condition.order_condition(), bits, query.attribute
        )
        # Identical keywords would yield identical tokens the cloud probes
        # twice for the same entries; emit each slice keyword once.  The
        # dedup happens AFTER the shuffle: shuffling the full list consumes
        # exactly the rng stream the pre-dedup code did, so token order and
        # every later draw from a shared rng stay reproducible across the
        # change (first occurrence in shuffled order wins).
        rng.shuffle(keywords)
        keywords = list(dict.fromkeys(keywords))
    else:
        keywords = [equality_keyword(query.value, bits, query.attribute)]

    tokens: list[SearchToken] = []
    for keyword in keywords:
        entry = trapdoor_state.find(keyword)
        if entry is None:
            continue  # slice never indexed: no record can match it
        g1, g2 = derive_g1_g2(prf_key, keyword)
        tokens.append(SearchToken(entry.trapdoor, entry.epoch, g1, g2))
    return tokens


def tokens_size_bytes(tokens: list[SearchToken]) -> int:
    """Total wire size of a token list (Fig. 6a measurement)."""
    return sizeof(*[t.encode() for t in tokens])
