"""Query model: a value plus a matching condition ``mc ∈ {"=", ">", "<"}``."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from ..common.bitstring import check_value_fits
from ..common.errors import ParameterError
from ..sore.tuples import OrderCondition


class MatchCondition(enum.Enum):
    """The paper's ``mc``: equality or one of the two order conditions."""

    EQUAL = "="
    GREATER = ">"
    LESS = "<"

    @property
    def is_order(self) -> bool:
        return self is not MatchCondition.EQUAL

    def order_condition(self) -> OrderCondition:
        if self is MatchCondition.GREATER:
            return OrderCondition.GREATER
        if self is MatchCondition.LESS:
            return OrderCondition.LESS
        raise ParameterError("equality queries carry no order condition")

    @classmethod
    def from_symbol(cls, symbol: str) -> "MatchCondition":
        for member in cls:
            if member.value == symbol:
                return member
        raise ParameterError(f"unknown matching condition {symbol!r}")


@dataclass(frozen=True)
class Query:
    """A single query ``(v, mc)`` over one attribute.

    The semantics follow the paper's Token algorithm: the query selects all
    stored values ``a`` with ``v mc a``.  So ``Query(6, ">")`` returns records
    whose value is *below* 6.
    """

    value: int
    condition: MatchCondition
    attribute: str = ""

    @classmethod
    def parse(cls, value: int, symbol: str, attribute: str = "") -> "Query":
        return cls(value, MatchCondition.from_symbol(symbol), attribute)

    def validate(self, bits: int) -> None:
        check_value_fits(self.value, bits)

    def predicate(self) -> Callable[[int], bool]:
        """Plaintext ground truth ``a -> (v mc a)`` for oracle checks."""
        v = self.value
        if self.condition is MatchCondition.EQUAL:
            return lambda a: a == v
        if self.condition is MatchCondition.GREATER:
            return lambda a: v > a
        return lambda a: v < a

    def describe(self) -> str:
        attr = f"{self.attribute} " if self.attribute else ""
        return f"{attr}{self.value} {self.condition.value} a"
