"""Query model: a value plus a matching condition ``mc ∈ {"=", ">", "<"}``.

Besides the paper's atomic ``(v, mc)`` query this module carries the plan
DSL the range planner compiles: :class:`Range` (a closed two-sided range
over one attribute) and :class:`And` (a conjunction of atoms).  The atoms
stay dumb data — decomposition into slice-query legs lives in
:mod:`repro.planner`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable

from ..common.bitstring import check_value_fits
from ..common.errors import ParameterError
from ..sore.tuples import OrderCondition


class MatchCondition(enum.Enum):
    """The paper's ``mc``: equality or one of the two order conditions."""

    EQUAL = "="
    GREATER = ">"
    LESS = "<"

    @property
    def is_order(self) -> bool:
        return self is not MatchCondition.EQUAL

    def order_condition(self) -> OrderCondition:
        if self is MatchCondition.GREATER:
            return OrderCondition.GREATER
        if self is MatchCondition.LESS:
            return OrderCondition.LESS
        raise ParameterError("equality queries carry no order condition")

    @classmethod
    def from_symbol(cls, symbol: str) -> "MatchCondition":
        for member in cls:
            if member.value == symbol:
                return member
        raise ParameterError(f"unknown matching condition {symbol!r}")


@dataclass(frozen=True)
class Query:
    """A single query ``(v, mc)`` over one attribute.

    The semantics follow the paper's Token algorithm: the query selects all
    stored values ``a`` with ``v mc a``.  So ``Query(6, ">")`` returns records
    whose value is *below* 6.
    """

    value: int
    condition: MatchCondition
    attribute: str = ""

    @classmethod
    def parse(
        cls,
        value: int,
        symbol: str,
        attribute: str = "",
        *,
        attributes: Iterable[str] | None = None,
    ) -> "Query":
        """Parse ``(v, symbol)`` into a query.

        ``attributes`` is the attribute-name set of the target index (the
        owner shares it through the user package).  When given, the query is
        checked against it immediately: a bare ``attribute=""`` against a
        multi-attribute index is rejected instead of silently querying the
        (nonexistent) unnamed attribute and verifying an empty result.
        """
        query = cls(value, MatchCondition.from_symbol(symbol), attribute)
        if attributes is not None:
            query.check_attribute(attributes)
        return query

    @classmethod
    def range(cls, lo: int, hi: int, attribute: str = "") -> "Range":
        """The closed range ``lo <= a <= hi`` as a plan-DSL atom."""
        return Range(lo, hi, attribute)

    def validate(self, bits: int) -> None:
        check_value_fits(self.value, bits)

    def check_attribute(self, attributes: Iterable[str]) -> None:
        """Validate this query's attribute against an index's attribute set."""
        known = set(attributes)
        if not known:
            return
        if not self.attribute and any(name for name in known):
            raise ParameterError(
                "query names no attribute but the index is multi-attribute; "
                f"pick one of {sorted(n for n in known if n)}"
            )
        if self.attribute and self.attribute not in known:
            raise ParameterError(
                f"unknown attribute {self.attribute!r}; "
                f"the index has {sorted(n for n in known if n) or ['(unnamed)']}"
            )

    def predicate(self) -> Callable[[int], bool]:
        """Plaintext ground truth ``a -> (v mc a)`` for oracle checks."""
        v = self.value
        if self.condition is MatchCondition.EQUAL:
            return lambda a: a == v
        if self.condition is MatchCondition.GREATER:
            return lambda a: v > a
        return lambda a: v < a

    def describe(self) -> str:
        attr = f"{self.attribute} " if self.attribute else ""
        return f"{attr}{self.value} {self.condition.value} a"


@dataclass(frozen=True)
class Range:
    """A closed two-sided range ``lo <= a <= hi`` over one attribute.

    The protocol natively answers single-sided order queries; a two-sided
    range is the intersection of one ``"<"`` and one ``">"`` leg (each
    independently verifiable against the accumulator).  Bounds at the
    domain edge drop the redundant side, and a point range (``lo == hi``)
    collapses to a single equality leg.
    """

    lo: int
    hi: int
    attribute: str = ""

    def validate(self, bits: int) -> None:
        if self.lo > self.hi:
            raise ParameterError(f"empty range [{self.lo}, {self.hi}]")
        if self.lo < 0 or self.hi >= (1 << bits):
            raise ParameterError("range bounds outside the value domain")

    def to_queries(self, bits: int) -> list[Query]:
        """The minimal slice-query legs whose intersection answers the range."""
        self.validate(bits)
        if self.lo == self.hi:
            return [Query(self.lo, MatchCondition.EQUAL, self.attribute)]
        queries = []
        if self.lo > 0:
            # a >= lo  <=>  (lo - 1) < a
            queries.append(Query(self.lo - 1, MatchCondition.LESS, self.attribute))
        if self.hi < (1 << bits) - 1:
            # a <= hi  <=>  (hi + 1) > a
            queries.append(Query(self.hi + 1, MatchCondition.GREATER, self.attribute))
        if not queries:
            raise ParameterError(
                "range covers the whole domain; fetch the dataset instead of searching"
            )
        return queries

    def predicate(self) -> Callable[[int], bool]:
        """Plaintext ground truth ``a -> lo <= a <= hi`` for oracle checks."""
        lo, hi = self.lo, self.hi
        return lambda a: lo <= a <= hi

    def describe(self) -> str:
        attr = f"{self.attribute} " if self.attribute else ""
        return f"{attr}{self.lo} <= a <= {self.hi}"


@dataclass(frozen=True, init=False)
class And:
    """A conjunction of plan atoms (:class:`Query` / :class:`Range`).

    Nested conjunctions flatten on construction, so ``And(a, And(b, c))``
    and ``And(a, b, c)`` are the same expression.  Semantics are set
    intersection: a record matches iff it matches every term.
    """

    terms: tuple

    def __init__(self, *terms) -> None:
        if not terms:
            raise ParameterError("And() needs at least one term")
        flat = []
        for term in terms:
            if isinstance(term, And):
                flat.extend(term.terms)
            elif isinstance(term, (Query, Range)):
                flat.append(term)
            else:
                raise ParameterError(
                    f"unsupported plan term {term!r}; expected Query, Range or And"
                )
        object.__setattr__(self, "terms", tuple(flat))

    def describe(self) -> str:
        return " AND ".join(f"({term.describe()})" for term in self.terms)
