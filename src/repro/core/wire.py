"""Wire serialization for protocol messages.

Tokens and search responses travel between four parties (and get archived
for later audits), so they need a canonical byte format independent of any
Python runtime.  Framing reuses the storage codec (magic + version +
length-prefixed parts); sizes produced here are what the Fig. 6 overhead
measurements count.
"""

from __future__ import annotations

from ..common.encoding import decode_parts, decode_uint, encode_parts, encode_uint
from ..crypto.accumulator import MembershipWitness
from ..storage import codec
from .cloud import SearchResponse, TokenResult
from .tokens import SearchToken

_KIND_TOKENS = b"wire-tokens"
_KIND_RESPONSE = b"wire-response"


def entry_wire_len(params) -> int:
    """Byte length of one encrypted result entry on the wire.

    Entries are ``SymmetricCipher`` ciphertexts of fixed-size record IDs:
    ``nonce || body`` with a CTR-mode body as long as the plaintext.  Anyone
    fabricating an entry (see ``MaliciousCloud.INJECT_ENTRY``) must match
    this exactly — deriving it here, from the cipher layout and
    ``params.record_id_len``, keeps forged sizes in lock-step if either
    ever changes, instead of hard-coding today's 16-byte nonce.
    """
    from ..crypto.symmetric import NONCE_LEN  # local: avoids import-order knots

    return NONCE_LEN + params.record_id_len


def dump_tokens(tokens: list[SearchToken]) -> bytes:
    """Serialize a token list (what the user posts to the chain)."""
    return codec.pack(_KIND_TOKENS, *[t.encode() for t in tokens])


def load_tokens(blob: bytes) -> list[SearchToken]:
    out = []
    for part in codec.unpack(blob, _KIND_TOKENS):
        trapdoor, epoch, g1, g2 = decode_parts(part)
        out.append(SearchToken(trapdoor, decode_uint(epoch), g1, g2))
    return out


def _dump_result(result: TokenResult) -> bytes:
    return encode_parts(
        result.token.encode(),
        encode_parts(*result.entries),
        codec.encode_int(result.witness.value),
    )


def _load_result(blob: bytes) -> TokenResult:
    token_blob, entries_blob, witness_blob = decode_parts(blob)
    trapdoor, epoch, g1, g2 = decode_parts(token_blob)
    return TokenResult(
        SearchToken(trapdoor, decode_uint(epoch), g1, g2),
        decode_parts(entries_blob),
        MembershipWitness(codec.decode_int(witness_blob)),
    )


def dump_response(response: SearchResponse) -> bytes:
    """Serialize a full response (what the cloud posts / an auditor archives)."""
    return codec.pack(_KIND_RESPONSE, *[_dump_result(r) for r in response.results])


def load_response(blob: bytes) -> SearchResponse:
    return SearchResponse([_load_result(p) for p in codec.unpack(blob, _KIND_RESPONSE)])
