"""The data user: token generation, result decryption, range composition.

Users are quasi-honest (Section IV.B): they hold the shared secret keys and
generate correct tokens, but may *deny* correct results to dodge search fees
— which is exactly why verification runs on chain instead of at the user.
This class still exposes :meth:`verify_locally` so the fairness comparison
(and older-scheme baselines) can be demonstrated.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import StateError
from ..common.rng import DeterministicRNG, default_rng
from ..crypto.symmetric import SymmetricCipher
from .cloud import SearchResponse
from .owner import UserPackage
from .params import SlicerParams
from .query import Query, Range
from .tokens import SearchToken, generate_search_tokens
from .verify import VerificationReport, verify_response


@dataclass(frozen=True)
class RangeQuery:
    """A closed two-sided range ``lo <= a <= hi`` over one attribute.

    The paper's protocol natively answers single-sided order queries; a
    two-sided range is the intersection of one ``">"`` and one ``"<"`` query
    (each independently verifiable).  Bounds at the domain edge drop the
    redundant side.
    """

    lo: int
    hi: int
    attribute: str = ""

    def to_queries(self, bits: int) -> list[Query]:
        # The decomposition now lives on the plan-DSL atom (the planner
        # compiles the same legs); this wrapper predates the DSL and stays
        # for its callers.
        return Range(self.lo, self.hi, self.attribute).to_queries(bits)


class DataUser:
    """An authorised searcher holding the owner-shared keys and state."""

    def __init__(
        self,
        params: SlicerParams,
        package: UserPackage,
        rng: DeterministicRNG | None = None,
    ) -> None:
        self.params = params
        self.rng = rng or default_rng()
        self._keys = package.keys
        self._trapdoor_state = package.trapdoor_state
        self._ads_value = package.ads_value
        self._attributes = package.attributes
        self._cipher = SymmetricCipher(self._keys.record_key, self.rng)

    def refresh(self, package: UserPackage) -> None:
        """Absorb the owner's post-insert state update (Algorithm 2 line 28)."""
        self._trapdoor_state = package.trapdoor_state
        self._ads_value = package.ads_value
        self._attributes = package.attributes

    @property
    def ads_value(self) -> int:
        """The accumulation value this user last saw from the owner."""
        return self._ads_value

    # --------------------------------------------------------------- tokens

    def make_tokens(self, query: Query) -> list[SearchToken]:
        """Algorithm 3: search tokens for one query.

        When the owner shared the index's attribute-name set, the query is
        checked against it first — a bare ``attribute=""`` query against a
        multi-attribute index would otherwise silently search a nonexistent
        unnamed attribute and pay to verify an empty result.
        """
        if self._attributes is not None:
            query.check_attribute(self._attributes)
        return generate_search_tokens(
            self._keys.prf_key, self._trapdoor_state, query, self.params.value_bits, self.rng
        )

    # -------------------------------------------------------------- results

    def decrypt_results(self, response: SearchResponse) -> set[bytes]:
        """Decrypt every returned ciphertext into a record-ID set."""
        out: set[bytes] = set()
        for blob in response.all_entries():
            plaintext = self._cipher.decrypt(blob)
            if len(plaintext) != self.params.record_id_len:
                raise StateError("decrypted record has unexpected length")
            out.add(plaintext)
        return out

    def verify_locally(self, response: SearchResponse) -> VerificationReport:
        """The legacy local-verification mode (no fairness guarantee)."""
        return verify_response(self.params, self._ads_value, response)

    # ---------------------------------------------------------------- range

    def range_tokens(self, range_query: RangeQuery) -> list[tuple[Query, list[SearchToken]]]:
        """Token lists for both sides of a two-sided range."""
        return [(q, self.make_tokens(q)) for q in range_query.to_queries(self.params.value_bits)]

    @staticmethod
    def intersect_range_results(side_results: list[set[bytes]]) -> set[bytes]:
        """Combine per-side decrypted ID sets into the range answer."""
        if not side_results:
            return set()
        out = set(side_results[0])
        for side in side_results[1:]:
            out &= side
        return out
