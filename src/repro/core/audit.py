"""Third-party auditing of settled searches (public verifiability, realised).

The paper's fairness argument requires that verification can run *anywhere*
from public data.  The contract is the canonical verifier; this module is
the off-chain counterpart: a :class:`ThirdPartyAuditor` that re-checks a
settled search from the public record — tokens, encrypted results, VOs and
the on-chain ``Ac`` — holding **no keys whatsoever**.

Use cases: dispute resolution after the fact, spot-checking the contract
implementation, and the Table I "public verifiability" column made into a
runnable artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..blockchain.slicer_contract import ChainTokenResult
from ..crypto.accumulator import MembershipWitness
from .cloud import SearchResponse, TokenResult
from .params import SlicerParams
from .tokens import SearchToken
from .verify import VerificationReport, verify_response


@dataclass(frozen=True)
class AuditRecord:
    """The public facts about one settled search."""

    chain_results: tuple[ChainTokenResult, ...]
    ads_value: int

    @classmethod
    def from_chain_args(cls, args: list, ads_value: int) -> "AuditRecord":
        return cls(
            tuple(
                ChainTokenResult(r[0], r[1], r[2], r[3], tuple(r[4]), r[5])
                for r in args
            ),
            ads_value,
        )

    @classmethod
    def from_response(cls, response: SearchResponse, ads_value: int) -> "AuditRecord":
        from ..blockchain.slicer_contract import response_to_chain_args

        return cls.from_chain_args(response_to_chain_args(response), ads_value)


class ThirdPartyAuditor:
    """Keyless re-verification of a settled search."""

    def __init__(self, params: SlicerParams) -> None:
        # Deliberately strip any trapdoor: the auditor is a stranger.
        self.params = params.public()

    def audit(self, record: AuditRecord) -> VerificationReport:
        """Re-run Algorithm 5 on the public record."""
        response = SearchResponse(
            [
                TokenResult(
                    SearchToken(r.trapdoor, r.epoch, r.g1, r.g2),
                    list(r.entries),
                    MembershipWitness(r.witness),
                )
                for r in record.chain_results
            ]
        )
        return verify_response(self.params, record.ads_value, response)

    def audit_agrees_with_settlement(
        self, record: AuditRecord, settled_ok: bool
    ) -> bool:
        """Does the independent audit reach the contract's verdict?"""
        return self.audit(record).ok == settled_ok
