"""Epoch-suffix result cache: repeat searches cost O(entries in new epochs).

Slicer's forward-secure index makes every epoch's entry list *immutable*
once written — an Insert advances a touched keyword's trapdoor via
``π_sk⁻¹``, so the epochs ``j..0`` below the new head never change.  The
honest cloud nevertheless re-walks the whole chain per search, re-deriving
every PRF label, index probe and pad stream.  This module caches the walk:

* **CacheNode** — keyed by ``(trapdoor, G1, G2)`` bytes, one per visited
  epoch: that epoch's decrypted entries (counter order), the running
  MSet-Mu-Hash *value* of the whole suffix ``epoch..0``, and a link to the
  next-older trapdoor (so following cached links costs zero ``π_pk``
  modexps).
* **collect_entries** — the one epoch walk shared by the serial cloud path
  and the fork-worker task: it descends from the token head only until it
  hits a cached node, collects just the fresh epochs, splices the cached
  suffix, and installs nodes for the fresh prefix on the way out.  The
  head node's suffix hash *is* the full result-multiset hash, so
  ``CloudServer._token_prime`` folds it incrementally instead of rehashing
  the full multiset.

Correct invalidation is the empty set: epochs are immutable and a search
never observes a half-written epoch (``install`` happens before tokens for
the new head exist), so ``CloudServer.install`` leaves the cache intact and
only ``restore`` (crash recovery — in-memory caches die with the process)
drops it.  The cache is **per cloud instance** — entries depend on that
cloud's index contents, never shared across deployments — size-bounded with
FIFO eviction (insertion order, which keeps the position-based export marks
below valid) and disabled alongside the other kernels by ``REPRO_KERNELS=0``.

Fork workers inherit the parent cloud's cache object through the executor's
shared payload and ship the nodes they installed home through the PR 4
``cache_mark`` / ``export_since`` / ``absorb_cache_export`` machinery: this
module registers itself as a kernel cache *family*, so the executor needs no
entry-cache-specific plumbing and counter snapshots plus warm behaviour stay
bit-identical at any worker count.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Callable, NamedTuple, Optional

from ..common import perfstats
from ..common.bitstring import xor_bytes
from ..common.encoding import encode_parts, encode_uint
from ..crypto import kernels
from ..crypto.multiset_hash import element_hash
from ..crypto.prf import PRF

#: Node cap per cache; beyond it the oldest nodes are evicted (FIFO via dict
#: insertion order — nodes install oldest-epoch-first, so eviction sheds the
#: deepest suffix first and the walk transparently re-probes the hole).
ENTRY_CACHE_MAX = 1 << 15


class CacheNode(NamedTuple):
    """One cached epoch of one keyword's chain.

    ``suffix_hash`` is the MSet-Mu-Hash field value over *all* entries in
    epochs ``epoch..0`` (not just this epoch's), so the node found at the
    walk's first hit closes the incremental fold in O(1).
    """

    entries: tuple[bytes, ...]  # this epoch's decrypted entries, counter order
    suffix_hash: int  # multiset-hash value of epochs epoch..0
    next_trapdoor: Optional[bytes]  # link to epoch-1's trapdoor (None at epoch 0)


class CollectResult(NamedTuple):
    """One token's collected entries plus what the cache knew about them."""

    entries: list[bytes]
    #: Full result-multiset hash value, or None when the cache was bypassed
    #: (kernels disabled / truncated walk) and the caller must hash from
    #: scratch.
    hash_value: Optional[int]
    #: Entries served from cache nodes instead of index probes.
    spliced: int


def node_key(trapdoor: bytes, g1: bytes, g2: bytes) -> bytes:
    """Content address of one epoch: injective over the walk state."""
    return encode_parts(trapdoor, g1, g2)


# Registry of live caches for the cross-process export machinery.  Weak so a
# discarded cloud (or a cache dropped by restore) never pins its nodes.
_IDS = itertools.count()
_REGISTRY: "weakref.WeakValueDictionary[int, EntryCache]" = weakref.WeakValueDictionary()


class EntryCache:
    """Bounded FIFO map ``node_key -> CacheNode`` for one cloud instance.

    ``installs`` / ``evictions`` count monotonically (never reset by
    :meth:`clear`): the export marks below compare them to decide what a
    worker added since the fork, which stays sound even when an evict+install
    pair leaves ``len()`` unchanged.
    """

    __slots__ = ("nodes", "max_nodes", "cache_id", "installs", "evictions", "__weakref__")

    def __init__(self, max_nodes: int = ENTRY_CACHE_MAX) -> None:
        self.nodes: dict[bytes, CacheNode] = {}
        self.max_nodes = max_nodes
        self.cache_id = next(_IDS)
        self.installs = 0
        self.evictions = 0
        _REGISTRY[self.cache_id] = self

    def get(self, key: bytes) -> Optional[CacheNode]:
        return self.nodes.get(key)

    def _evict_oldest(self) -> None:
        del self.nodes[next(iter(self.nodes))]
        self.evictions += 1

    def install(self, key: bytes, node: CacheNode) -> None:
        """Insert a node (first write wins; nodes for one key are identical)."""
        nodes = self.nodes
        if key in nodes:
            return
        if len(nodes) >= self.max_nodes:
            self._evict_oldest()
            perfstats.incr("cloud.entry_cache.evicted")
        nodes[key] = node
        self.installs += 1

    def absorb(self, items: list[tuple[bytes, CacheNode]]) -> None:
        """Fold a worker export in: first write wins, evictions silent.

        No *perf counters* move here — the worker already counted its own
        installs and evictions in the delta the executor merged back (same
        contract as :func:`repro.crypto.kernels.absorb_cache_export`); the
        export-mark bookkeeping still advances.
        """
        nodes = self.nodes
        for key, node in items:
            if key not in nodes:
                if len(nodes) >= self.max_nodes:
                    self._evict_oldest()
                nodes[key] = node
                self.installs += 1

    def clear(self) -> None:
        self.evictions += len(self.nodes)
        self.nodes.clear()

    def __len__(self) -> int:
        return len(self.nodes)


# ------------------------------------------------------------- the epoch walk


def collect_entries(
    cache: Optional[EntryCache],
    find: Callable[[bytes], Optional[bytes]],
    label_len: int,
    trapdoor_public,
    field: int,
    trapdoor: bytes,
    epoch: int,
    g1: bytes,
    g2: bytes,
    max_epochs: Optional[int] = None,
) -> CollectResult:
    """Algorithm 4's epoch walk ``j..0``, spliced through the suffix cache.

    The one walk both the serial cloud and the fork-worker chunk task run:
    descend from the head; at each epoch, a cache hit appends that node's
    entries and follows its link (zero PRF/index/modexp work), a miss scans
    counters exactly like the legacy loop.  Fresh epochs *above* the first
    hit are folded into suffix hashes bottom-up and installed oldest-first;
    fresh epochs *below* the first hit (an evicted hole being repaired) are
    already covered by the hit node's suffix hash and are not re-folded.

    ``max_epochs`` truncates the walk (the ``OMIT_OLD_EPOCHS`` misbehaviour);
    truncated walks bypass the cache entirely — their suffix is not the real
    suffix, so no node may be installed for them, and performance is beside
    the point on that path.  With the cache bypassed (or kernels disabled)
    the returned ``hash_value`` is None and output is byte-identical to the
    pre-cache loop.
    """
    epochs = epoch + 1
    truncated = max_epochs is not None and max_epochs < epochs
    if truncated:
        epochs = max_epochs  # type: ignore[assignment]
    use_kernels = kernels.kernels_enabled()
    chain = kernels.trapdoor_chain(trapdoor_public) if use_kernels else None
    label_prf = PRF(g1, label_len)
    pad_prf = PRF(g2)

    if cache is None or not use_kernels or truncated:
        entries: list[bytes] = []
        probes = prf_evals = 0
        t = trapdoor
        for e in range(epochs):
            counter = 0
            while True:
                label = label_prf.eval(t, encode_uint(counter))
                probes += 1
                prf_evals += 1
                payload = find(label)
                if payload is None:
                    break
                pad = pad_prf.eval_stream(len(payload), t, encode_uint(counter))
                prf_evals += 1
                entries.append(xor_bytes(pad, payload))
                counter += 1
            if e + 1 < epochs:
                t = chain.step(t) if chain is not None else trapdoor_public.apply(t)
        perfstats.incr("cloud.collect.index_probes", probes)
        perfstats.incr("cloud.collect.prf_evals", prf_evals)
        return CollectResult(entries, None, 0)

    entries = []
    #: Contiguous fresh prefix above the first hit: (trapdoor, epoch entries).
    fresh_prefix: list[tuple[bytes, list[bytes]]] = []
    hit_node: Optional[CacheNode] = None
    hit_trapdoor: Optional[bytes] = None
    probes = prf_evals = spliced = 0
    t = trapdoor
    for e in range(epochs):
        node = cache.get(node_key(t, g1, g2))
        if node is not None:
            if hit_node is None:
                hit_node, hit_trapdoor = node, t
            entries.extend(node.entries)
            spliced += len(node.entries)
            if e + 1 < epochs:
                # Cached link: the saved π_pk modexp.  A node can only lack a
                # link at epoch 0, where the loop ends; the step fallback
                # guards impossible-in-honest-use inconsistency.
                t = node.next_trapdoor if node.next_trapdoor is not None else chain.step(t)
            continue
        epoch_entries: list[bytes] = []
        counter = 0
        while True:
            label = label_prf.eval(t, encode_uint(counter))
            probes += 1
            prf_evals += 1
            payload = find(label)
            if payload is None:
                break
            pad = pad_prf.eval_stream(len(payload), t, encode_uint(counter))
            prf_evals += 1
            epoch_entries.append(xor_bytes(pad, payload))
            counter += 1
        entries.extend(epoch_entries)
        if hit_node is None:
            fresh_prefix.append((t, epoch_entries))
        if e + 1 < epochs:
            t = chain.step(t)

    # Fold the fresh prefix bottom-up onto the hit node's suffix hash and
    # install one node per fresh epoch.  The final fold value is the hash of
    # the *entire* result multiset: hole-repaired entries below the hit are
    # already inside ``hit_node.suffix_hash``, so they are not re-folded.
    if hit_node is not None:
        suffix_value = hit_node.suffix_hash
        next_trapdoor = hit_trapdoor
    else:
        suffix_value = 1  # H(φ)
        next_trapdoor = None
    for node_trapdoor, epoch_entries in reversed(fresh_prefix):
        for entry in epoch_entries:
            suffix_value = suffix_value * element_hash(entry, field) % field
        cache.install(
            node_key(node_trapdoor, g1, g2),
            CacheNode(tuple(epoch_entries), suffix_value, next_trapdoor),
        )
        next_trapdoor = node_trapdoor

    perfstats.incr("cloud.entry_cache.hit" if hit_node is not None else "cloud.entry_cache.miss")
    perfstats.incr("cloud.entry_cache.spliced_entries", spliced)
    perfstats.incr("cloud.collect.index_probes", probes)
    perfstats.incr("cloud.collect.prf_evals", prf_evals)
    return CollectResult(entries, suffix_value, spliced)


# --------------------------------------------- kernel cache-family integration


def _family_mark() -> dict:
    """Monotonic (installs, evictions) marks per live cache.

    Length alone cannot detect an evict+install pair (it leaves ``len()``
    unchanged), so the marks count installs and evictions separately — see
    ``kernels.cache_mark``.
    """
    return {
        cache_id: (cache.installs, cache.evictions)
        for cache_id, cache in _REGISTRY.items()
    }


def _family_export(mark: dict) -> dict:
    """Nodes installed since ``mark``, keyed by cache id (the worker half).

    With no evictions since the mark, the fresh nodes are exactly the dict's
    tail (FIFO insertion order); any eviction invalidates tail positions, so
    the whole cache ships — absorb is first-write-wins, so over-sending is
    merely redundant, never wrong.
    """
    export: dict = {}
    for cache_id, cache in _REGISTRY.items():
        installs_seen, evictions_seen = mark.get(cache_id, (0, 0))
        fresh = cache.installs - installs_seen
        if fresh <= 0:
            continue
        items = list(cache.nodes.items())
        if cache.evictions != evictions_seen:
            export[cache_id] = items  # positions rotated: send everything
        else:
            export[cache_id] = items[len(items) - fresh:]
    return export


def _family_absorb(export: dict) -> None:
    """Fold worker exports into the parent's caches (the parent half).

    A cache id the parent no longer holds (restore dropped it mid-flight)
    is skipped — the nodes belonged to an instance that no longer exists.
    """
    for cache_id, items in export.items():
        cache = _REGISTRY.get(cache_id)
        if cache is not None:
            cache.absorb(items)


def _family_clear() -> None:
    """Drop every live cache's nodes (the benchmarks' cold-path reset)."""
    for cache in list(_REGISTRY.values()):
        cache.clear()


def _family_size() -> int:
    return sum(len(cache) for cache in _REGISTRY.values())


kernels.register_cache_family(
    "entry",
    mark=_family_mark,
    export_since=_family_export,
    absorb=_family_absorb,
    clear=_family_clear,
    size=_family_size,
)
