"""Deletion and update via the dual-instance construction (Section V.F).

The base scheme is append-only, so Slicer follows Sophos: run **two**
protocol instances — one accumulating insertions, one accumulating
deletions — and define the final result as the set difference

    result = search(insert-instance) \\ search(delete-instance).

Both instances are independently verifiable on chain; an update of a record
is one deletion (of the old value) plus one insertion (of the new one).
Repeated insertion of the same record ID into the same instance is rejected,
matching the paper's uniqueness requirement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ParameterError, StateError
from ..common.rng import DeterministicRNG, default_rng
from .cloud import CloudServer, SearchResponse
from .owner import DataOwner, OwnerOutput
from .params import SlicerParams
from .query import Query
from .records import Database
from .tokens import SearchToken
from .user import DataUser
from .verify import VerificationReport, verify_response


@dataclass
class DualSearchResult:
    """Verified outputs of both instances plus the combined plaintext answer."""

    inserted_ids: set[bytes]
    deleted_ids: set[bytes]
    insert_report: VerificationReport
    delete_report: VerificationReport

    @property
    def ids(self) -> set[bytes]:
        return self.inserted_ids - self.deleted_ids

    @property
    def verified(self) -> bool:
        return self.insert_report.ok and self.delete_report.ok


class DualInstanceSlicer:
    """Owner+user+cloud façade running the insert- and delete-instances.

    This class wires both instances end to end *off chain* (local
    verification of both responses); the on-chain flow simply runs the
    fair-exchange orchestration once per instance.
    """

    def __init__(
        self,
        params: SlicerParams,
        rng: DeterministicRNG | None = None,
        trapdoor_bits: int = 1024,
    ) -> None:
        self.params = params
        self.rng = rng or default_rng()
        from .params import KeyBundle

        self.insert_owner = DataOwner(
            params, keys=KeyBundle.generate(self.rng.spawn(), trapdoor_bits), rng=self.rng.spawn()
        )
        self.delete_owner = DataOwner(
            params, keys=KeyBundle.generate(self.rng.spawn(), trapdoor_bits), rng=self.rng.spawn()
        )
        self.insert_cloud = CloudServer(params, self.insert_owner.keys.trapdoor.public)
        self.delete_cloud = CloudServer(params, self.delete_owner.keys.trapdoor.public)
        self._insert_user: DataUser | None = None
        self._delete_user: DataUser | None = None
        self._live_ids: set[bytes] = set()
        self._deleted_ids: set[bytes] = set()
        self._values: dict[bytes, int] = {}

    # ------------------------------------------------------------ mutation

    def build(self, database: Database) -> tuple[OwnerOutput, OwnerOutput]:
        """Initial build: all records go to the insert-instance."""
        out_ins = self.insert_owner.build(database)
        self.insert_cloud.install(out_ins.cloud_package)
        # The delete-instance starts empty but must still exist on chain.
        out_del = self.delete_owner.build(Database(self.params.value_bits, id_len=self.params.record_id_len))
        self.delete_cloud.install(out_del.cloud_package)
        for record in database:
            self._live_ids.add(record.record_id)
            self._values[record.record_id] = record.value
        self._refresh_users(out_ins, out_del)
        return out_ins, out_del

    def insert(self, record_id: bytes, value: int) -> OwnerOutput:
        """Add a record; re-adding a live or previously deleted ID is rejected."""
        if record_id in self._live_ids:
            raise ParameterError("record ID already live; delete it first")
        if record_id in self._deleted_ids:
            raise ParameterError(
                "record ID was deleted; the dual-instance construction forbids reuse"
            )
        additions = Database(self.params.value_bits, id_len=self.params.record_id_len)
        additions.add(record_id, value)
        out = self.insert_owner.insert(additions)
        self.insert_cloud.install(out.cloud_package)
        self._live_ids.add(record_id)
        self._values[record_id] = value
        self._refresh_users(out, None)
        return out

    def delete(self, record_id: bytes) -> OwnerOutput:
        """Remove a record by inserting it into the delete-instance."""
        if record_id not in self._live_ids:
            raise StateError("cannot delete a record that is not live")
        removals = Database(self.params.value_bits, id_len=self.params.record_id_len)
        removals.add(record_id, self._values[record_id])
        out = self.delete_owner.insert(removals)
        self.delete_cloud.install(out.cloud_package)
        self._live_ids.discard(record_id)
        self._deleted_ids.add(record_id)
        self._refresh_users(None, out)
        return out

    def update(self, record_id: bytes, new_value: int) -> tuple[OwnerOutput, OwnerOutput]:
        """Update = delete(old) + insert-as-new.

        The paper forbids re-inserting the *same* ID, so updates mint a new
        physical ID version internally; callers address records by the
        original ID via the returned alias.
        """
        out_del = self.delete(record_id)
        versioned = self._next_version(record_id)
        out_ins = self.insert(versioned, new_value)
        return out_del, out_ins

    def _next_version(self, record_id: bytes) -> bytes:
        import hashlib

        return hashlib.sha256(b"version:" + record_id).digest()[: len(record_id)]

    # -------------------------------------------------------------- search

    def search(self, query: Query) -> DualSearchResult:
        """Run the query on both instances and combine."""
        if self._insert_user is None or self._delete_user is None:
            raise StateError("build() must run before search()")
        ins_ids, ins_report = self._run_side(self._insert_user, self.insert_cloud, query)
        del_ids, del_report = self._run_side(self._delete_user, self.delete_cloud, query)
        return DualSearchResult(ins_ids, del_ids, ins_report, del_report)

    def _run_side(
        self, user: DataUser, cloud: CloudServer, query: Query
    ) -> tuple[set[bytes], VerificationReport]:
        tokens: list[SearchToken] = user.make_tokens(query)
        response: SearchResponse = cloud.search(tokens)
        report = verify_response(self.params, cloud.ads_value, response)
        return user.decrypt_results(response), report

    def _refresh_users(self, out_ins: OwnerOutput | None, out_del: OwnerOutput | None) -> None:
        if out_ins is not None:
            if self._insert_user is None:
                self._insert_user = DataUser(self.params, out_ins.user_package, self.rng.spawn())
            else:
                self._insert_user.refresh(out_ins.user_package)
        if out_del is not None:
            if self._delete_user is None:
                self._delete_user = DataUser(self.params, out_del.user_package, self.rng.spawn())
            else:
                self._delete_user.refresh(out_del.user_package)

    # ------------------------------------------------------------- oracle

    def expected_ids(self, query: Query) -> set[bytes]:
        """Plaintext ground truth over the *live* records."""
        predicate = query.predicate()
        return {
            rid
            for rid in self._live_ids
            if predicate(self._values[rid])
        }
