"""Record and database types.

The paper's database is ``DB = {(R, v)}``: a unique record ID ``R`` and a
numerical value ``v``.  The multi-attribute extension (Section V.F) widens a
record to ``(R, {(a, v)})``.  Record IDs travel through the protocol as
fixed-width byte strings so every index payload has identical length (a
structural requirement: the payload pad ``F(G2, t||c)`` must cover the whole
record ciphertext, and uniform sizes are also what the leakage function
``L^build`` promises).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.bitstring import check_value_fits
from ..common.errors import ParameterError

RECORD_ID_LEN = 8


def encode_record_id(record_id: int | str | bytes, length: int = RECORD_ID_LEN) -> bytes:
    """Normalise a record ID to exactly ``length`` bytes."""
    if isinstance(record_id, int):
        if record_id < 0:
            raise ParameterError("integer record IDs must be non-negative")
        try:
            return record_id.to_bytes(length, "big")
        except OverflowError as exc:
            raise ParameterError(f"record ID {record_id} exceeds {length} bytes") from exc
    if isinstance(record_id, str):
        raw = record_id.encode("utf-8")
    else:
        raw = bytes(record_id)
    if len(raw) > length:
        raise ParameterError(f"record ID {raw!r} exceeds {length} bytes")
    return raw.rjust(length, b"\x00")


@dataclass(frozen=True)
class Record:
    """A single key-value record ``(R, v)``."""

    record_id: bytes
    value: int

    def __post_init__(self) -> None:
        if not isinstance(self.record_id, bytes):
            raise ParameterError("record_id must be bytes; use encode_record_id()")
        if self.value < 0:
            raise ParameterError("values must be non-negative integers")


@dataclass(frozen=True)
class AttributedRecord:
    """Multi-attribute record ``(R, {(a, v)})`` from the Section V.F extension."""

    record_id: bytes
    attributes: tuple[tuple[str, int], ...]

    def __post_init__(self) -> None:
        names = [a for a, _ in self.attributes]
        if len(names) != len(set(names)):
            raise ParameterError("attribute names must be unique within a record")
        for _, v in self.attributes:
            if v < 0:
                raise ParameterError("attribute values must be non-negative")

    def value_of(self, attribute: str) -> int:
        for a, v in self.attributes:
            if a == attribute:
                return v
        raise KeyError(attribute)


@dataclass
class Database:
    """An in-memory plaintext database the owner encrypts and outsources.

    ``id_len`` must match the protocol's ``SlicerParams.record_id_len`` —
    all record IDs are padded to that width so index payloads are uniform.
    """

    bits: int
    records: list[Record] = field(default_factory=list)
    id_len: int = RECORD_ID_LEN

    def __post_init__(self) -> None:
        seen: set[bytes] = set()
        for record in self.records:
            self._check(record, seen)

    def _check(self, record: Record, seen: set[bytes]) -> None:
        check_value_fits(record.value, self.bits)
        if record.record_id in seen:
            raise ParameterError(f"duplicate record ID {record.record_id!r}")
        seen.add(record.record_id)

    def add(self, record_id: int | str | bytes, value: int) -> Record:
        record = Record(encode_record_id(record_id, self.id_len), value)
        check_value_fits(value, self.bits)
        if any(r.record_id == record.record_id for r in self.records):
            raise ParameterError(f"duplicate record ID {record.record_id!r}")
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def values(self) -> list[int]:
        return [r.value for r in self.records]

    def ids_matching(self, predicate) -> set[bytes]:
        """Ground-truth query evaluation (the oracle the tests compare against)."""
        return {r.record_id for r in self.records if predicate(r.value)}


@dataclass
class AttributedDatabase:
    """Database of multi-attribute records (Section V.F extension)."""

    bits: int
    records: list[AttributedRecord] = field(default_factory=list)
    id_len: int = RECORD_ID_LEN

    def add(
        self, record_id: int | str | bytes, attributes: dict[str, int] | list[tuple[str, int]]
    ) -> AttributedRecord:
        pairs = tuple(attributes.items() if isinstance(attributes, dict) else attributes)
        for _, value in pairs:
            check_value_fits(value, self.bits)
        record = AttributedRecord(encode_record_id(record_id, self.id_len), pairs)
        if any(r.record_id == record.record_id for r in self.records):
            raise ParameterError(f"duplicate record ID {record.record_id!r}")
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def ids_matching(self, attribute: str, predicate) -> set[bytes]:
        """Ground-truth evaluation of a single-attribute predicate."""
        out = set()
        for record in self.records:
            try:
                value = record.value_of(attribute)
            except KeyError:
                continue
            if predicate(value):
                out.add(record.record_id)
        return out


def make_database(
    pairs: list[tuple[int | str | bytes, int]], bits: int, id_len: int = RECORD_ID_LEN
) -> Database:
    """Build a :class:`Database` from ``(record_id, value)`` pairs."""
    db = Database(bits, id_len=id_len)
    for record_id, value in pairs:
        db.add(record_id, value)
    return db
