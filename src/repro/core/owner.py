"""The data owner: Build (Algorithm 1) and forward-secure Insert (Algorithm 2).

The owner is the only fully-trusted party with secrets.  It

1. derives the keyword set ``{v} ∪ {ct_i}`` for every record,
2. writes PRF-labelled index entries ``(l, d)`` per keyword posting,
3. folds each record ciphertext into the keyword's running multiset hash,
4. maps every ``(trapdoor, epoch, G1, G2, hash)`` state to a prime
   representative and accumulates all primes into ``Ac``, and
5. on insertion, advances the keyword's trapdoor with ``π_sk^{-1}`` so the
   new entries are unlinkable to previously released search tokens
   (forward security).

Build is the degenerate case of Insert on empty state — the two algorithms
in the paper differ only in the trapdoor-advance branch — so both public
methods share :meth:`DataOwner._index_batch`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.encoding import encode_parts
from ..common.errors import StateError
from ..common.rng import DeterministicRNG, default_rng
from ..common.timing import Stopwatch
from ..crypto.accumulator import Accumulator
from ..crypto.multiset_hash import MultisetHash
from ..obs import metrics, trace
from ..crypto.symmetric import NONCE_LEN, SymmetricCipher
from ..parallel import ParallelExecutor
from ..parallel.tasks import (
    IndexShared,
    KeywordJob,
    hash_to_prime_chunk,
    index_keyword_chunk,
)
from .keywords import keywords_for_record
from .params import KeyBundle, SlicerParams, UserKeys
from .records import AttributedDatabase, AttributedRecord, Database, Record
from .state import (
    CloudPackage,
    EncryptedIndex,
    SetHashState,
    TrapdoorState,
    set_hash_key,
)
from .tokens import derive_g1_g2


@dataclass
class UserPackage:
    """What the owner shares with an authorised user: keys + trapdoor state.

    ``attributes`` is the index's attribute-name set (``("",)`` for a plain
    single-value database) so users can reject malformed queries — e.g. a
    bare ``attribute=""`` query against a multi-attribute index — before
    paying to search.  ``None`` means the owner has indexed nothing yet.
    """

    keys: UserKeys
    trapdoor_state: TrapdoorState
    ads_value: int
    attributes: tuple[str, ...] | None = None


@dataclass
class OwnerOutput:
    """The three outbound messages after Build or Insert (Algorithm 1 lines
    21-23 / Algorithm 2 lines 26-28): a package for the cloud, the bare
    accumulation value for the blockchain, and the refreshed user package.

    With a sharded serving tier the owner additionally pre-splits the delta
    (``shard_packages``, one per shard): routing needs ``G1``, which only
    the owner sees next to each index entry — PRF labels are one-way, so
    the tier cannot split a flat package itself.
    """

    cloud_package: CloudPackage
    chain_ads: int
    user_package: UserPackage
    shard_packages: list | None = None


class DataOwner:
    """Holds all secrets; drives Build and Insert."""

    def __init__(
        self,
        params: SlicerParams,
        keys: KeyBundle | None = None,
        rng: DeterministicRNG | None = None,
        shard_plan=None,
    ) -> None:
        self.params = params
        self.rng = rng or default_rng()
        #: Optional :class:`~repro.sharding.plan.ShardPlan`; when set, every
        #: Build/Insert output also carries per-shard packages.  Routing does
        #: not touch the flat package, so setting a plan never changes the
        #: single-cloud bytes.
        self.shard_plan = shard_plan
        self.keys = keys or KeyBundle.generate(self.rng)
        self.trapdoor_state = TrapdoorState()
        self.set_hash_state = SetHashState()
        self.accumulator = Accumulator(params.accumulator)
        self._cipher = SymmetricCipher(self.keys.record_key, self.rng)
        self._hash_to_prime = params.hash_to_prime()
        self._executor = ParallelExecutor(params.workers)
        self._built = False
        #: Attribute names seen across every indexed record (shared with
        #: users so they can validate queries before paying to search).
        self._attributes: set[str] = set()
        #: Phase timings ("index" / "ads") for the Fig. 3 and Fig. 7 benches.
        self.stopwatch = Stopwatch()

    # ------------------------------------------------------------------ API

    def build(self, database: Database | AttributedDatabase) -> OwnerOutput:
        """Algorithm 1: build encrypted index and ADS from scratch."""
        if self._built:
            raise StateError("Build may run once; use insert() for updates")
        if database.bits != self.params.value_bits:
            raise StateError(
                f"database bit width {database.bits} != params {self.params.value_bits}"
            )
        self._built = True
        return self._index_batch(list(database))

    def insert(self, additions: Database | AttributedDatabase) -> OwnerOutput:
        """Algorithm 2: forward-secure insertion of new records."""
        if not self._built:
            raise StateError("call build() before insert()")
        if additions.bits != self.params.value_bits:
            raise StateError(
                f"insert bit width {additions.bits} != params {self.params.value_bits}"
            )
        return self._index_batch(list(additions))

    def user_package(self) -> UserPackage:
        """Keys + current trapdoor state for an authorised data user."""
        return UserPackage(
            keys=self.keys.user_view(),
            trapdoor_state=self.trapdoor_state.snapshot(),
            ads_value=self.accumulator.value,
            attributes=tuple(sorted(self._attributes)) if self._attributes else None,
        )

    # ------------------------------------------------------------ internals

    def _postings(self, records: list[Record | AttributedRecord]) -> dict[bytes, list[bytes]]:
        """Group record IDs by every keyword they are indexed under."""
        bits = self.params.value_bits
        postings: dict[bytes, list[bytes]] = {}
        for record in records:
            if isinstance(record, AttributedRecord):
                pairs = record.attributes
            else:
                pairs = (("", record.value),)
            for attribute, value in pairs:
                self._attributes.add(attribute)
                for keyword in keywords_for_record(value, bits, attribute):
                    postings.setdefault(keyword, []).append(record.record_id)
        return postings

    def _stage_keywords(self, records: list[Record | AttributedRecord]) -> list[KeywordJob]:
        """The *serial* half of Build/Insert: every state transition that
        consumes the owner's RNG or mutates ``T``/``S``.

        Trapdoor sampling, the π_sk^{-1} advance and the per-record nonce
        draws happen here, in postings order, so the RNG stream is identical
        whether the heavy half below runs on one worker or many.
        """
        field = self.params.multiset_field
        jobs: list[KeywordJob] = []
        for keyword, record_ids in self._postings(records).items():
            g1, g2 = derive_g1_g2(self.keys.prf_key, keyword)
            entry = self.trapdoor_state.find(keyword)
            if entry is None:
                # First sighting: fresh trapdoor, epoch 0, empty hash H(φ).
                trapdoor = self.keys.trapdoor.sample_trapdoor(self.rng)
                epoch = 0
                running = MultisetHash.empty(field)
            else:
                # Known keyword: pop its running hash and advance the
                # trapdoor via π_sk^{-1} (the forward-security step).
                trapdoor, epoch = entry.trapdoor, entry.epoch
                running = self.set_hash_state.pop(set_hash_key(trapdoor, epoch, g1, g2))
                trapdoor = self.keys.trapdoor.invert(trapdoor)
                epoch += 1
            self.trapdoor_state.put(keyword, trapdoor, epoch)
            postings = tuple(
                (record_id, self.rng.token_bytes(NONCE_LEN)) for record_id in record_ids
            )
            jobs.append(KeywordJob(trapdoor, epoch, g1, g2, running.value, postings))
        return jobs

    def _index_batch(self, records: list[Record | AttributedRecord]) -> OwnerOutput:
        """The shared core of Build and Insert: one epoch per touched keyword.

        Phase 1 ("index"): serial staging (see :meth:`_stage_keywords`), then
        the pure PRF/encrypt/multiset-fold work fanned out per keyword chunk.
        Phase 2 ("ads"): ``H_prime`` derivation fanned out, then the single
        accumulator fold.  Output is byte-identical for any worker count.
        """
        new_index = EncryptedIndex()
        field = self.params.multiset_field

        with self.stopwatch.measure("index"), trace.span("owner.index"):
            jobs = self._stage_keywords(records)
            metrics.observe("owner.batch.records", len(records))
            metrics.observe("owner.batch.keywords", len(jobs))
            shared = IndexShared(self.keys.record_key, self.params.label_len, field)
            folded = self._executor.map_chunks(index_keyword_chunk, jobs, shared=shared)
            for entries, _ in folded:
                for label, payload in entries:
                    new_index.put(label, payload)

        with self.stopwatch.measure("ads"), trace.span("owner.ads"):
            payloads: list[bytes] = []
            for job, (_, running_value) in zip(jobs, folded):
                state_key = set_hash_key(job.trapdoor, job.epoch, job.g1, job.g2)
                running = MultisetHash(running_value, field)
                self.set_hash_state.put(state_key, running)
                payloads.append(encode_parts(state_key, running.to_bytes()))
            new_primes = self._executor.map_chunks(
                hash_to_prime_chunk, payloads, shared=(self.params.prime_bits,)
            )
            self.accumulator.add_many(new_primes)
        package = CloudPackage(new_index, new_primes, self.accumulator.value)
        return self._finish(package, jobs, folded)

    def _finish(self, package: CloudPackage, jobs, folded) -> OwnerOutput:
        return OwnerOutput(
            cloud_package=package,
            chain_ads=self.accumulator.value,
            user_package=self.user_package(),
            shard_packages=self._split_for_shards(package, jobs, folded),
        )

    def _split_for_shards(self, package: CloudPackage, jobs, folded):
        """Route each keyword job's entries/prime to its home shard.

        Jobs, folded entry lists and ``package.primes`` are parallel arrays
        in job order, so the split is a pure regrouping of the exact bytes
        the flat package carries — shard slices merged back together equal
        the flat index, and every shard still receives the full delta prime
        list (see :mod:`repro.sharding.plan`).
        """
        if self.shard_plan is None:
            return None
        from ..sharding.plan import split_package  # local: sharding builds on core

        routed = [
            (self.shard_plan.shard_of(job.g1), entries, prime)
            for job, (entries, _), prime in zip(jobs, folded, package.primes)
        ]
        return split_package(
            self.shard_plan, routed, list(package.primes), package.accumulation
        )
