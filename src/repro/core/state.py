"""Protocol state containers: the index ``I`` and the dictionaries ``T``, ``S``.

* :class:`EncryptedIndex` (``I``) — the history-independent label->payload
  map stored at the cloud.  Lookups reveal nothing about insertion order,
  which is what erases SORE's ciphertext-side leakage (Section VI.A).
* :class:`TrapdoorState` (``T``) — per-keyword ``(trapdoor, epoch)`` pairs,
  held by the owner and mirrored to authorised users.
* :class:`SetHashState` (``S``) — per-(keyword, epoch) running multiset
  hashes, held only by the owner; feeds the prime representatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.encoding import encode_parts, encode_uint
from ..common.errors import IndexCorruptionError, StateError
from ..crypto.multiset_hash import MultisetHash


class EncryptedIndex:
    """The encrypted index ``I``: an opaque dictionary of fixed-size entries."""

    def __init__(self) -> None:
        self._entries: dict[bytes, bytes] = {}

    def put(self, label: bytes, payload: bytes) -> None:
        if label in self._entries:
            raise IndexCorruptionError("index label collision (PRF labels must be unique)")
        self._entries[label] = payload

    def find(self, label: bytes) -> bytes | None:
        """``I.find``/``I.get`` fused: payload or None (the paper's ⊥)."""
        return self._entries.get(label)

    @property
    def entries(self) -> dict[bytes, bytes]:
        """Read-only view of the label->payload map.

        Exposed so the parallel search engine can hand the dictionary to
        forked workers without a copy; callers must not mutate it.
        """
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, label: bytes) -> bool:
        return label in self._entries

    @property
    def size_bytes(self) -> int:
        """Total stored bytes (labels + payloads) — drives Fig. 4a."""
        return sum(len(l) + len(d) for l, d in self._entries.items())

    def merge(self, other: "EncryptedIndex") -> None:
        """Absorb a freshly built update package (cloud side of Insert)."""
        for label, payload in other._entries.items():
            self.put(label, payload)


@dataclass(frozen=True)
class TrapdoorEntry:
    """One ``T`` entry: current trapdoor ``t`` and update epoch ``j``."""

    trapdoor: bytes
    epoch: int


class TrapdoorState:
    """The dictionary ``T``: keyword -> (trapdoor, epoch)."""

    def __init__(self) -> None:
        self._entries: dict[bytes, TrapdoorEntry] = {}

    def find(self, keyword: bytes) -> TrapdoorEntry | None:
        return self._entries.get(keyword)

    def put(self, keyword: bytes, trapdoor: bytes, epoch: int) -> None:
        self._entries[keyword] = TrapdoorEntry(trapdoor, epoch)

    def get(self, keyword: bytes) -> TrapdoorEntry:
        entry = self._entries.get(keyword)
        if entry is None:
            raise StateError("keyword has no trapdoor state")
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, keyword: bytes) -> bool:
        return keyword in self._entries

    def keywords(self) -> list[bytes]:
        return list(self._entries)

    def snapshot(self) -> "TrapdoorState":
        """An independent copy — what the owner sends to the data user."""
        copy = TrapdoorState()
        copy._entries = dict(self._entries)
        return copy


def set_hash_key(trapdoor: bytes, epoch: int, g1: bytes, g2: bytes) -> bytes:
    """The ``S`` dictionary key ``t || j || G1 || G2`` (injectively encoded)."""
    return encode_parts(trapdoor, encode_uint(epoch), g1, g2)


class SetHashState:
    """The dictionary ``S``: (trapdoor, epoch, G1, G2) -> running multiset hash."""

    def __init__(self) -> None:
        self._entries: dict[bytes, MultisetHash] = {}

    def put(self, key: bytes, value: MultisetHash) -> None:
        self._entries[key] = value

    def pop(self, key: bytes) -> MultisetHash:
        if key not in self._entries:
            raise StateError("no set-hash entry for this keyword epoch")
        return self._entries.pop(key)

    def get(self, key: bytes) -> MultisetHash | None:
        return self._entries.get(key)

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> list[tuple[bytes, MultisetHash]]:
        return list(self._entries.items())


@dataclass
class CloudPackage:
    """What the owner ships to the cloud after Build or Insert.

    ``index`` carries the (new) entries, ``primes`` the (new) prime
    representatives, ``accumulation`` the fresh ``Ac`` so the cloud can sanity
    check; only ``accumulation`` goes to the blockchain.
    """

    index: EncryptedIndex
    primes: list[int] = field(default_factory=list)
    accumulation: int = 0

    @property
    def prime_bytes(self) -> int:
        """Serialized size of the prime list — drives Fig. 4b."""
        return sum((p.bit_length() + 7) // 8 for p in self.primes)
