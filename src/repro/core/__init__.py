"""The Slicer protocol core: Build, Insert, Search, Verify and the parties."""

from .audit import AuditRecord, ThirdPartyAuditor
from .cloud import (
    CloudServer,
    MaliciousCloud,
    Misbehavior,
    SearchResponse,
    TokenResult,
)
from .deletion import DualInstanceSlicer, DualSearchResult
from .keywords import (
    equality_keyword,
    keywords_for_record,
    order_keywords_for_query,
    order_keywords_for_value,
)
from .owner import DataOwner, OwnerOutput, UserPackage
from .params import KeyBundle, SlicerParams, UserKeys
from .query import And, MatchCondition, Query, Range
from .records import (
    AttributedDatabase,
    AttributedRecord,
    Database,
    Record,
    encode_record_id,
    make_database,
)
from .state import CloudPackage, EncryptedIndex, SetHashState, TrapdoorState, set_hash_key
from .tokens import SearchToken, derive_g1_g2, generate_search_tokens, tokens_size_bytes
from .user import DataUser, RangeQuery
from .verify import VerificationReport, verify_response, verify_token_result
from .wire import dump_response, dump_tokens, load_response, load_tokens

__all__ = [
    "And",
    "AttributedDatabase",
    "AttributedRecord",
    "AuditRecord",
    "ThirdPartyAuditor",
    "dump_response",
    "dump_tokens",
    "load_response",
    "load_tokens",
    "CloudPackage",
    "CloudServer",
    "Database",
    "DataOwner",
    "DataUser",
    "DualInstanceSlicer",
    "DualSearchResult",
    "EncryptedIndex",
    "KeyBundle",
    "MaliciousCloud",
    "MatchCondition",
    "Misbehavior",
    "OwnerOutput",
    "Query",
    "Range",
    "RangeQuery",
    "Record",
    "SearchResponse",
    "SearchToken",
    "SetHashState",
    "SlicerParams",
    "TokenResult",
    "TrapdoorState",
    "UserKeys",
    "UserPackage",
    "VerificationReport",
    "derive_g1_g2",
    "encode_record_id",
    "equality_keyword",
    "generate_search_tokens",
    "keywords_for_record",
    "make_database",
    "order_keywords_for_query",
    "order_keywords_for_value",
    "set_hash_key",
    "tokens_size_bytes",
    "verify_response",
    "verify_token_result",
]
