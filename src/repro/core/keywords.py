"""Keyword derivation — where SORE plugs into the SSE layer.

Algorithm 1 indexes every record under the keyword set
``{v} ∪ {ct_i}``: the plain value ``v`` (serving equality search) plus each
SORE ciphertext tuple (serving order search).  A query then maps to either
the single equality keyword or the *b* SORE token tuples, and by Theorem 1 a
record matches an order query iff exactly one of the query's keywords was
indexed for it.

Keywords are canonical byte strings; all secrecy comes from the PRF ``G``
applied on top (``G1 = G(K, w||1)``), exactly as in the paper.  Domain tags
keep the equality and order namespaces disjoint even for colliding byte
patterns, and the attribute name rides inside the tuple per Section V.F.
"""

from __future__ import annotations

from ..common.bitstring import check_value_fits
from ..common.encoding import encode_parts, encode_str, encode_uint
from ..sore.tuples import OrderCondition, ciphertext_tuples, token_tuples

_EQ_TAG = b"eq"
_ORD_TAG = b"ord"


def equality_keyword(value: int, bits: int, attribute: str = "") -> bytes:
    """The keyword indexing records whose value equals ``value``."""
    check_value_fits(value, bits)
    return encode_parts(_EQ_TAG, encode_str(attribute), encode_uint(value))


def order_keywords_for_value(value: int, bits: int, attribute: str = "") -> list[bytes]:
    """Keywords a *stored* value is indexed under (its SORE ciphertext slices)."""
    return [
        encode_parts(_ORD_TAG, t.encode())
        for t in ciphertext_tuples(value, bits, attribute)
    ]


def order_keywords_for_query(
    value: int, oc: OrderCondition, bits: int, attribute: str = ""
) -> list[bytes]:
    """Keywords an order *query* probes (its SORE token slices)."""
    return [
        encode_parts(_ORD_TAG, t.encode())
        for t in token_tuples(value, oc, bits, attribute)
    ]


def keywords_for_record(value: int, bits: int, attribute: str = "") -> list[bytes]:
    """The full keyword set ``{v} ∪ {ct_i}`` a record is indexed under."""
    return [equality_keyword(value, bits, attribute)] + order_keywords_for_value(
        value, bits, attribute
    )
