"""Protocol parameter bundles.

One :class:`SlicerParams` object fixes every size in the system — value bit
width, record-ID length, PRF label length, accumulator modulus, trapdoor
modulus, prime-representative size — so all parties derive consistent wire
formats from a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import ParameterError
from ..common.rng import DeterministicRNG, default_rng
from ..crypto import kernels
from ..crypto.accumulator import AccumulatorParams
from ..crypto.hash_to_prime import DEFAULT_PRIME_BITS, HashToPrime
from ..crypto.multiset_hash import DEFAULT_FIELD_PRIME
from ..crypto.trapdoor import TrapdoorKeyPair
from .records import RECORD_ID_LEN


@dataclass(frozen=True)
class SlicerParams:
    """Public protocol parameters shared by owner, user, cloud and chain."""

    value_bits: int = 16
    record_id_len: int = RECORD_ID_LEN
    label_len: int = 16
    prime_bits: int = DEFAULT_PRIME_BITS
    multiset_field: int = DEFAULT_FIELD_PRIME
    accumulator: AccumulatorParams = field(
        default_factory=lambda: AccumulatorParams.demo(1024)
    )
    #: Worker processes for the parallel hot-path engine: ``0`` = auto
    #: (consult ``REPRO_WORKERS``, default serial), ``1`` = always serial,
    #: ``N`` = fan Build/Insert/Search/witness work out over N processes.
    #: Purely an execution knob — protocol output is identical for any value.
    workers: int = 0

    def __post_init__(self) -> None:
        if self.value_bits <= 0:
            raise ParameterError("value_bits must be positive")
        if self.record_id_len <= 0:
            raise ParameterError("record_id_len must be positive")
        if not 8 <= self.label_len <= 32:
            raise ParameterError("label_len must be within [8, 32] bytes")
        if self.workers < 0:
            raise ParameterError("workers must be >= 0 (0 = auto via REPRO_WORKERS)")

    def hash_to_prime(self) -> HashToPrime:
        """The shared ``H_prime`` instance (domain-separated per parameters).

        With the kernel layer enabled (default) this is the memoized variant
        backed by one process-wide memo per prime size, so owner, cloud,
        verifier and the gas-metering contract share hits; outputs —
        including the candidate counter the contract charges gas for — are
        identical to the cold walk.  ``REPRO_KERNELS=0`` restores the
        uncached instance.
        """
        if kernels.kernels_enabled():
            return kernels.memoized_hash_to_prime(self.prime_bits)
        return HashToPrime(self.prime_bits)

    def public(self) -> "SlicerParams":
        """Parameters with the accumulator trapdoor stripped (cloud/chain view)."""
        return SlicerParams(
            value_bits=self.value_bits,
            record_id_len=self.record_id_len,
            label_len=self.label_len,
            prime_bits=self.prime_bits,
            multiset_field=self.multiset_field,
            accumulator=self.accumulator.public(),
            workers=self.workers,
        )

    def with_workers(self, workers: int) -> "SlicerParams":
        """A copy pinned to a specific worker count (benchmark sweeps)."""
        return SlicerParams(
            value_bits=self.value_bits,
            record_id_len=self.record_id_len,
            label_len=self.label_len,
            prime_bits=self.prime_bits,
            multiset_field=self.multiset_field,
            accumulator=self.accumulator,
            workers=workers,
        )

    @classmethod
    def testing(
        cls,
        value_bits: int = 8,
        seed: int = 7,
        record_id_len: int = RECORD_ID_LEN,
        workers: int = 0,
    ) -> "SlicerParams":
        """Small, fast, deterministic parameters for unit tests."""
        return cls(
            value_bits=value_bits,
            record_id_len=record_id_len,
            prime_bits=64,
            accumulator=AccumulatorParams.demo(512, default_rng(seed)),
            workers=workers,
        )

    @classmethod
    def paper(cls, value_bits: int = 16, workers: int = 0) -> "SlicerParams":
        """Paper-faithful sizes: 2048-bit accumulator, 256-bit primes."""
        return cls(
            value_bits=value_bits,
            accumulator=AccumulatorParams.demo(2048),
            workers=workers,
        )


@dataclass(frozen=True)
class KeyBundle:
    """The data owner's secret material.

    ``prf_key`` is the paper's master PRF key ``K`` (feeds ``G``), ``sore_key``
    the SORE key ``k``, ``record_key`` the symmetric key ``K_R``, and
    ``trapdoor`` the RSA trapdoor-permutation key pair ``(pk, sk)``.
    """

    prf_key: bytes
    sore_key: bytes
    record_key: bytes
    trapdoor: TrapdoorKeyPair

    @classmethod
    def generate(
        cls,
        rng: DeterministicRNG | None = None,
        trapdoor_bits: int = 1024,
    ) -> "KeyBundle":
        rng = rng or default_rng()
        return cls(
            prf_key=rng.token_bytes(16),
            sore_key=rng.token_bytes(16),
            record_key=rng.token_bytes(16),
            trapdoor=TrapdoorKeyPair.generate(trapdoor_bits, rng),
        )

    def user_view(self) -> "UserKeys":
        """What the owner hands an authorised data user (no trapdoor ``sk``)."""
        return UserKeys(
            prf_key=self.prf_key,
            sore_key=self.sore_key,
            record_key=self.record_key,
            trapdoor_public=self.trapdoor.public,
        )


@dataclass(frozen=True)
class UserKeys:
    """Secret keys shared with authorised data users (Algorithm 1 line 23)."""

    prf_key: bytes
    sore_key: bytes
    record_key: bytes
    trapdoor_public: object
