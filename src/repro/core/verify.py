"""Result verification (Algorithm 5) — the computation the contract runs.

Verification is deliberately *public*: it touches only the search tokens,
the encrypted results, the verification objects and the on-chain ``Ac``.
No secret key, no plaintext.  Per token it

1. recomputes the multiset hash of the returned ciphertexts,
2. recomputes the prime representative from ``t_j || j || G1 || G2 || h``, and
3. checks the RSA-accumulator membership witness against ``Ac``.

Any incorrect *or incomplete* result changes the multiset hash, hence the
prime, and by strong-RSA no valid witness exists for the forged prime
(Theorem 3).  The same function backs both the smart contract and the
"local verification" mode older schemes use, so the two can be benchmarked
against each other.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.encoding import encode_parts
from ..crypto.accumulator import verify_membership, verify_membership_batch
from ..crypto.multiset_hash import MultisetHash
from .cloud import SearchResponse, TokenResult
from .params import SlicerParams
from .state import set_hash_key


@dataclass(frozen=True)
class VerificationReport:
    """Per-token outcomes plus the overall verdict the escrow settles on."""

    token_results: tuple[bool, ...]

    @property
    def ok(self) -> bool:
        return all(self.token_results)

    @property
    def failed_tokens(self) -> list[int]:
        return [i for i, ok in enumerate(self.token_results) if not ok]


def _result_prime(params: SlicerParams, result: TokenResult) -> int:
    """Recompute the prime representative Algorithm 5 binds the VO to."""
    result_hash = MultisetHash.of(result.entries, params.multiset_field)
    state_key = set_hash_key(
        result.token.trapdoor, result.token.epoch, result.token.g1, result.token.g2
    )
    return params.hash_to_prime()(encode_parts(state_key, result_hash.to_bytes()))


def verify_token_result(
    params: SlicerParams, ads_value: int, result: TokenResult
) -> bool:
    """Algorithm 5, single token: recompute ``h`` and ``x``, check the VO."""
    prime = _result_prime(params, result)
    return verify_membership(params.accumulator, ads_value, prime, result.witness)


def verify_response(
    params: SlicerParams, ads_value: int, response: SearchResponse
) -> VerificationReport:
    """Algorithm 5 over the full response; vr = AND of per-token checks.

    Every witness is checked individually.  This path faces the
    dishonest-cloud threat model, and the batched multi-exponentiation
    shortcut is unsound there: in ``Z_n*`` a malicious cloud can negate an
    even number of witnesses (``w → n−w``) and pass any random-linear-
    combination aggregate while every per-token ``VerifyMem`` rejects
    (order-2 subgroup ``{±1}``).  The batch kernel is reserved for trusted
    self-checks — see ``verify_membership_batch(trusted=True)``.
    """
    items = [
        (_result_prime(params, result), result.witness) for result in response.results
    ]
    return VerificationReport(
        tuple(verify_membership_batch(params.accumulator, ads_value, items))
    )
