"""The cloud server: storage, Cloud.Search (Algorithm 4), and adversaries.

The honest cloud stores the encrypted index ``I`` and the prime list ``X``.
Given a search token ``(t_j, j, G1, G2)`` it walks epochs ``j`` down to 0 —
deriving each older trapdoor with the *public* permutation ``π_pk`` — and
inside each epoch scans counters until the PRF label misses.  It then hashes
the collected result multiset, recomputes the prime representative, and
produces the RSA-accumulator membership witness (the verification object).

:class:`MaliciousCloud` wraps the honest search with the paper's threat-model
behaviours (return incorrect or incomplete results) so the tests and the
fairness example can demonstrate that every such deviation is caught by
public verification (Theorem 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..common.encoding import encode_parts, sizeof
from ..common.rng import DeterministicRNG, default_rng
from ..common import perfstats
from ..common.timing import Stopwatch
from ..common.errors import AccumulatorError, ParameterError, StateError
from ..crypto import kernels
from ..crypto.accumulator import MembershipWitness, verify_membership_batch
from ..obs import metrics, trace
from ..crypto.modmath import ProductTree, powmod, product
from ..crypto.multiset_hash import MultisetHash
from ..crypto.trapdoor import TrapdoorPublicKey
from ..parallel import ParallelExecutor
from ..parallel.tasks import (
    CollectShared,
    TokenWork,
    collect_entries_chunk,
    pow_chunk,
    witness_map,
)
from .entry_cache import CacheNode, CollectResult, EntryCache, collect_entries
from .params import SlicerParams
from .state import CloudPackage, EncryptedIndex, set_hash_key
from .tokens import SearchToken


@dataclass
class TokenResult:
    """One token's share of the response: encrypted results + its VO."""

    token: SearchToken
    entries: list[bytes]
    witness: MembershipWitness

    @property
    def result_bytes(self) -> int:
        return sizeof(self.entries)

    @property
    def witness_bytes(self) -> int:
        return (self.witness.value.bit_length() + 7) // 8


@dataclass
class SearchResponse:
    """Everything the cloud posts to the blockchain for one query.

    Locally-produced responses additionally carry a ``membership_items``
    attribute — the (prime, witness) pairs behind the VOs — set dynamically
    so it never enters the wire format or dataclass equality.  Block-mode
    settlement folds them through the trusted batch-verify kernel as the
    cloud's self-check; responses that crossed the wire (or a merging
    frontend) may lack it, and consumers must treat it as optional.
    """

    results: list[TokenResult] = field(default_factory=list)

    @property
    def encrypted_result_bytes(self) -> int:
        """Total ``er`` size — Fig. 6b/6c measurement."""
        return sum(r.result_bytes for r in self.results)

    @property
    def witness_bytes(self) -> int:
        """Total VO size — Fig. 6d measurement."""
        return sum(r.witness_bytes for r in self.results)

    def all_entries(self) -> list[bytes]:
        return [entry for result in self.results for entry in result.entries]


class CloudServer:
    """Honest-but-curious (and possibly dishonest) storage/search provider."""

    def __init__(self, params: SlicerParams, trapdoor_public: TrapdoorPublicKey) -> None:
        self.params = params.public()
        self.trapdoor_public = trapdoor_public
        self.index = EncryptedIndex()
        #: Accumulated primes in installation order (dict used as an ordered set).
        self._primes: dict[int, None] = {}
        #: Cached balanced product over ``_primes`` — witness generation
        #: reads ``prod(X)`` per query; the tree keeps it incremental.
        self._product_tree = ProductTree()
        self.ads_value = 0
        self._hash_to_prime = params.hash_to_prime()
        self._witness_cache: dict[int, int] | None = None
        #: Repeat-search witness memo: token-subset tuple -> witness map.
        #: Valid only for the current prime set, so :meth:`install` clears it.
        self._repeat_witness_cache: dict[tuple[int, ...], dict[int, int]] = {}
        #: Epoch-suffix result cache: needs no invalidation (epochs are
        #: immutable, :meth:`install` leaves it intact); :meth:`restore`
        #: keeps it only when the incoming snapshot provably matches it.
        self._entry_cache = EntryCache()
        self._executor = ParallelExecutor(params.workers)
        #: Durable epoch-segment store (attach_store/reopen); None keeps the
        #: cloud purely in-memory, exactly as before the store existed.
        self._store = None
        #: False between reopen() and the first state access: segments are
        #: replayed lazily so a restarted-but-idle cloud costs nothing.
        self._hydrated = True
        #: Shard-local witness primes recovered from replayed segments —
        #: what a sharded frontend rebuilds its routing bookkeeping from.
        self._store_local_primes: dict[int, None] = {}
        #: Phase timings ("results" / "vo") for the Fig. 5 benches.
        self.stopwatch = Stopwatch()

    # ---------------------------------------------------------------- setup

    def install(self, package: CloudPackage, witness_primes: list[int] | None = None) -> None:
        """Receive ``(I, X, Ac)`` from the owner (Build or Insert delta).

        If a witness cache exists it is *updated incrementally* rather than
        nuked: every cached witness is raised to the product of the delta
        primes and witnesses for the new primes are batch-derived from the
        pre-update ``Ac`` — ``O(|X|)`` exponentiations with a small exponent
        on the delta instead of an ``O(|X| log |X|)`` full rebuild.

        ``witness_primes`` restricts which of the delta's primes this server
        caches witnesses for (a shard caches its *local* keywords' primes
        only); the full delta still enters ``X`` and the product tree, so
        witness *values* are unchanged — only coverage shrinks.

        With a segment store attached the delta is also committed as one
        immutable segment *before* any cache refresh — a crash mid-refresh
        loses only in-memory acceleration, never the installed epoch.
        """
        self._ensure_hydrated()
        previous_ads = self.ads_value
        had_primes = bool(self._primes)
        self.index.merge(package.index)
        fresh = [p for p in package.primes if p not in self._primes]
        for prime in fresh:
            self._primes[prime] = None
        self._product_tree.extend(fresh)
        self.ads_value = package.accumulation
        if self._store is not None:
            self._store.append(
                dict(package.index.entries),
                list(package.primes),
                package.accumulation,
                local_primes=witness_primes,
            )
            if witness_primes is not None:
                for prime in witness_primes:
                    self._store_local_primes[prime] = None
        if fresh:
            # The prime set changed; per-query witness maps are stale.
            self._repeat_witness_cache.clear()
        if self._witness_cache is not None and fresh:
            base = previous_ads if had_primes else (
                self.params.accumulator.generator % self.params.accumulator.modulus
            )
            self._refresh_witness_cache(base, fresh, witness_primes)

    def _refresh_witness_cache(
        self,
        previous_ads: int,
        fresh: list[int],
        witness_primes: list[int] | None = None,
    ) -> None:
        """Incremental cache maintenance for an insert delta.

        For a cached prime ``p``: ``w' = w^{prod(Δ)}`` (the old witness
        raised to the delta product).  For a new prime ``p ∈ Δ``:
        ``w = Ac_old^{prod(Δ \\ p)}``, derived for the whole delta at once by
        root-factor recursion from the pre-update accumulation value.

        With ``witness_primes`` only the delta primes in that set join the
        cache; their bases are first raised by the product of the *skipped*
        delta primes, so cached values remain exact full-product witnesses.
        """
        assert self._witness_cache is not None
        n = self.params.accumulator.modulus
        delta = product(fresh)
        cached = list(self._witness_cache.items())
        raised = self._executor.map_chunks(
            pow_chunk, [w for _, w in cached], shared=(delta, n)
        )
        cache = {p: w for (p, _), w in zip(cached, raised)}
        if witness_primes is None:
            local = fresh
        else:
            wanted = set(witness_primes)
            local = [p for p in fresh if p in wanted]
        base = previous_ads
        if len(local) < len(fresh):
            skipped = [p for p in fresh if p not in set(local)]
            base = powmod(previous_ads, product(skipped), n)
        cache.update(witness_map(base, local, n, self._executor))
        self._witness_cache = cache
        self._check_witness_cache()

    def precompute_witnesses(self, primes: list[int] | None = None) -> int:
        """Precompute the witness for every accumulated prime.

        Trades install-time work (root-factor batch, ``O(|X| log |X|)``
        exponentiations, split across workers when ``params.workers > 1``)
        for near-zero VO-generation latency per query — the trade a
        production cloud serving many queries per update cycle would take.
        Later :meth:`install` calls keep the cache fresh incrementally.
        Returns the number of cached witnesses.

        ``primes`` restricts the cache to a subset of the accumulated set (a
        shard precomputes its local keywords only).  The subset's witnesses
        are still full-product values — the base is first raised to
        ``prod(X \\ subset)`` — so per-shard precomputes across a tier
        partition the single-cloud precompute exactly.
        """
        self._ensure_hydrated()
        acc = self.params.accumulator
        g = acc.generator % acc.modulus
        if primes is None:
            subset = list(self._primes)
        else:
            subset = [p for p in primes if p in self._primes]
        if len(subset) == len(self._primes):
            base = g
        else:
            base = kernels.fixed_base_pow(
                g, acc.modulus, self._product_tree.root // product(subset)
            )
        self._witness_cache = witness_map(base, subset, acc.modulus, self._executor)
        self._check_witness_cache()
        return len(self._witness_cache)

    def _check_witness_cache(self) -> None:
        """Batch self-check of the locally computed witness cache.

        One trusted-batch multi-exponentiation asserts ``w_p^p == Ac`` over
        the whole cache.  The witnesses are the cloud's own output, so the
        batch kernel's trusted-input precondition holds (there is no
        adversary choosing them); a reject means an implementation bug —
        e.g. a stale incremental refresh — and is raised, never served.
        """
        if self._witness_cache is None or not kernels.kernels_enabled():
            return
        items = [(p, MembershipWitness(w)) for p, w in self._witness_cache.items()]
        verdicts = verify_membership_batch(
            self.params.accumulator, self.ads_value, items, trusted=True
        )
        if not all(verdicts):
            raise AccumulatorError("witness cache failed accumulator self-check")
        perfstats.incr("cloud.witness_cache.selfcheck")

    def snapshot(self) -> bytes:
        """Serialize the full working state ``(I, X, Ac)`` for crash recovery."""
        from ..storage import state_io  # local: storage depends on core

        self._ensure_hydrated()
        return state_io.dump_cloud_state(
            self.index, list(self._primes), self.ads_value
        )

    def restore(self, snapshot: bytes) -> None:
        """Snapshot-based recovery, keeping caches the snapshot cannot stale.

        Reloads a :meth:`snapshot` blob.  The snapshot is integrity-checked
        before anything is mutated, so a corrupt file raises
        :class:`~repro.common.errors.StateError` and leaves the current
        state untouched.

        Caches whose validity is provable against the incoming state are
        *kept* rather than nuked: when the snapshot's accumulation value and
        prime-set digest equal the live ones, every cached witness is still
        exact (witnesses are a pure function of ``(X, Ac)``), and when the
        index entries also match, the entry cache's nodes still describe the
        stored epochs.  Restoring a cloud from its own snapshot is therefore
        counter-identical to not restarting at all — the property test
        asserts this — while restoring *older* state still drops every cache
        that could have gone stale.

        A cloud with a segment store attached restarts through
        :meth:`reopen` instead (the store is the durable source of truth);
        mixing the two would fork the history, so this raises.
        """
        from ..storage import segment_store, state_io  # local: storage depends on core

        if self._store is not None:
            raise StateError(
                "snapshot restore unavailable with a segment store attached; "
                "use reopen()"
            )
        index, primes, ads_value = state_io.load_cloud_state(snapshot)
        keep_witness = (
            ads_value == self.ads_value
            and segment_store.primes_digest(primes)
            == segment_store.primes_digest(self._primes)
        )
        keep_entries = keep_witness and index.entries == self.index.entries
        witness_cache = self._witness_cache if keep_witness else None
        repeat_cache = self._repeat_witness_cache if keep_witness else {}
        entry_cache = self._entry_cache if keep_entries else EntryCache()
        self.index = EncryptedIndex()
        self._primes = {}
        self._product_tree = ProductTree()
        self.ads_value = 0
        self._witness_cache = None
        self._repeat_witness_cache = {}
        self._entry_cache = entry_cache
        self.install(CloudPackage(index, list(primes), ads_value))
        # install() treats every snapshot prime as fresh and clears the
        # repeat memo; reassign the validated caches after it ran.
        self._witness_cache = witness_cache
        self._repeat_witness_cache = repeat_cache
        if witness_cache is not None:
            self._check_witness_cache()
        perfstats.incr(
            "cloud.restore.caches_kept" if keep_witness else "cloud.restore.caches_dropped"
        )

    # -------------------------------------------------------- segment store

    def attach_store(self, path, plan_tag: bytes | None = None) -> None:
        """Create a durable epoch-segment store at ``path`` and write through.

        Every subsequent :meth:`install` appends one immutable segment; a
        cloud that already holds state bootstraps the store with one
        full-state segment so the on-disk chain is complete from segment 0.
        """
        from ..storage import segment_store  # local: storage depends on core

        if self._store is not None:
            raise StateError("a segment store is already attached")
        self._ensure_hydrated()
        store = segment_store.SegmentStore.create(
            path, plan=plan_tag if plan_tag is not None else segment_store.SINGLE_PLAN
        )
        if self._primes or len(self.index):
            store.append(dict(self.index.entries), list(self._primes), self.ads_value)
        self._store = store

    def reopen(self, path=None, plan_tag: bytes | None = None) -> None:
        """Restart this cloud from a segment store (the durable truth).

        Models a crashed process coming back up over its store directory:
        all in-memory state dies, the manifest is validated (torn tail
        truncated, interior corruption refused, plan mismatch refused) and
        ``Ac`` is immediately served from it; segments replay **lazily** on
        the first state access, and the warm checkpoint — when its stamps
        match the replayed state — rehydrates the entry cache, witness
        cache, repeat-witness memo and kernel memos, so the first repeat
        query runs at cache speed with byte-identical output.

        With no ``path`` the currently attached store's directory is reused
        (the chaos layer's in-place crash-restart hook).
        """
        from ..storage import segment_store  # local: storage depends on core

        if path is None:
            if self._store is None:
                raise StateError("no segment store attached; pass a path to reopen()")
            path = self._store.root
            if plan_tag is None:
                plan_tag = self._store.plan
        elif plan_tag is None:
            plan_tag = segment_store.SINGLE_PLAN
        store = segment_store.SegmentStore.open(path, plan=plan_tag)
        self.index = EncryptedIndex()
        self._primes = {}
        self._product_tree = ProductTree()
        self._witness_cache = None
        self._repeat_witness_cache = {}
        self._entry_cache = EntryCache()
        self._store_local_primes = {}
        self.ads_value = store.ads_value
        self._store = store
        self._hydrated = False
        perfstats.incr("segstore.reopens")

    def checkpoint(self) -> None:
        """Persist the warm-restart checkpoint (caches + kernel memo slices).

        Purely an accelerator: the next :meth:`reopen` serves repeat
        queries warm from it, and a checkpoint that went stale (state moved
        on after it was written) is detected by its stamps and ignored.
        """
        from ..storage import segment_store  # local: storage depends on core

        if self._store is None:
            raise StateError("no segment store attached; call attach_store() first")
        self._ensure_hydrated()
        blob = segment_store.pack_warm_state(
            self.ads_value,
            segment_store.primes_digest(self._primes),
            segment_store.index_digest(self.index.entries),
            [
                (key, (node.entries, node.suffix_hash, node.next_trapdoor))
                for key, node in self._entry_cache.nodes.items()
            ],
            self._witness_cache,
            self._repeat_witness_cache,
            kernels.trapdoor_chain_items(self.trapdoor_public),
            kernels.hash_memo_items(self.params.prime_bits),
        )
        self._store.write_warm(blob)
        perfstats.incr("segstore.checkpoints")

    def _ensure_hydrated(self) -> None:
        """Replay committed segments into memory on the first state access."""
        if self._hydrated:
            return
        self._hydrated = True
        store = self._store
        assert store is not None
        with self.stopwatch.measure("rehydrate"), trace.span("cloud.rehydrate"):
            for segment in store.replay():
                for label, payload in segment.entries.items():
                    self.index.put(label, payload)
                fresh = [p for p in segment.primes if p not in self._primes]
                for prime in fresh:
                    self._primes[prime] = None
                self._product_tree.extend(fresh)
                self.ads_value = segment.ads_value
                if segment.local_primes is not None:
                    for prime in segment.local_primes:
                        self._store_local_primes[prime] = None
            self._load_warm()
        perfstats.incr("segstore.rehydrations")

    def _load_warm(self) -> None:
        """Rehydrate caches from the warm checkpoint, when its stamps hold."""
        from ..storage import segment_store  # local: storage depends on core

        assert self._store is not None
        payload = self._store.read_warm()
        if payload is None:
            return
        try:
            warm = segment_store.unpack_warm_state(payload)
        except (ParameterError, ValueError):
            perfstats.incr("segstore.warm.invalid")
            return
        if (
            warm.ads_value != self.ads_value
            or warm.primes_digest != segment_store.primes_digest(self._primes)
        ):
            # The checkpoint predates later installs: witnesses (and the
            # repeat memo) would be stale.  Cold rebuild, correct answers.
            perfstats.incr("segstore.warm.stale")
            return
        if warm.witness_cache is not None:
            self._witness_cache = dict(warm.witness_cache)
            self._check_witness_cache()
        self._repeat_witness_cache = dict(warm.repeat_cache)
        if warm.index_digest == segment_store.index_digest(self.index.entries):
            for key, (entries, suffix_hash, next_trapdoor) in warm.entry_nodes:
                self._entry_cache.install(
                    key, CacheNode(entries, suffix_hash, next_trapdoor)
                )
        else:
            perfstats.incr("segstore.warm.stale_entries")
        kernels.absorb_cache_export(
            {
                "hash": {
                    (self.params.prime_bits, b"H_prime"): warm.hash_items,
                },
                "trapdoor": {
                    (
                        self.trapdoor_public.modulus,
                        self.trapdoor_public.exponent,
                    ): warm.trapdoor_items,
                },
            }
        )
        perfstats.incr("segstore.warm.loaded")

    @property
    def prime_count(self) -> int:
        self._ensure_hydrated()
        return len(self._primes)

    # --------------------------------------------------------------- search

    def search(
        self,
        tokens: list[SearchToken],
        *,
        _collected: dict[SearchToken, CollectResult] | None = None,
        _observe: bool = True,
    ) -> SearchResponse:
        """Algorithm 4 (Cloud.Search) over a token list.

        Identical tokens are probed once: the *b* boundary tokens of a range
        query can repeat (shared slice prefixes), and duplicate tokens walk
        the same epochs to the same entries, so the index walk runs per
        *unique* token and the results fan back out — the response still
        carries one ``TokenResult`` per submitted token, byte-identical to
        the undeduplicated walk.

        Witness generation is batched: all tokens of one query share the
        ``g^{prod(X \\ subset)}`` base and the per-token witnesses are filled
        in by root-factor recursion over the (small) subset.  One query costs
        one full-product exponentiation instead of one per token, which is
        what keeps order-search VO generation (paper Fig. 5d) tractable.

        The keyword-only hooks serve the sharded frontend: ``_collected``
        supplies walk results its per-shard fan-out already produced (keyed
        by token; must cover every unique token), and ``_observe=False``
        suppresses the per-query metric observations so the frontend can
        observe the *merged* response exactly once.
        """
        self._ensure_hydrated()
        with self.stopwatch.measure("results"), trace.span("cloud.results"):
            unique: dict[SearchToken, int] = {}
            slots = [unique.setdefault(token, len(unique)) for token in tokens]
            perfstats.incr("cloud.token_dedup.saved", len(tokens) - len(unique))
            if _collected is None:
                collected = self._collect_all(list(unique))
            else:
                collected = [_collected[token] for token in unique]
            partials = [(token, collected[slot]) for token, slot in zip(tokens, slots)]
        with self.stopwatch.measure("vo"), trace.span("cloud.vo"):
            witnesses = self._batch_witnesses(partials)
        response = SearchResponse(
            [TokenResult(t, c.entries, w) for (t, c), w in zip(partials, witnesses)]
        )
        response.membership_items = list(self.last_membership_items)
        if _observe:
            self._observe_search(tokens, partials, response)
        return response

    def search_many(
        self, token_lists: list[list[SearchToken]], *, _observe: bool = True
    ) -> list[SearchResponse]:
        """One batch of queries, collected over the batch-wide token union.

        The cross-query extension of :meth:`search`'s per-query dedup:
        identical tokens across the staged queries (hot boundary keywords
        under skewed traffic) walk the index once, and one
        :meth:`_collect_all` dispatch covers the whole batch — the parallel
        fan-out sees the union, not ``n`` small lists.  Responses are
        byte-identical to ``[search(tokens) for tokens in token_lists]``:
        collection is a pure function per unique token, and witness values
        ``g^(prod(X)/p)`` do not depend on how queries group the primes.
        """
        self._ensure_hydrated()
        unique: dict[SearchToken, int] = {}
        slot_lists = [
            [unique.setdefault(token, len(unique)) for token in tokens]
            for tokens in token_lists
        ]
        total = sum(len(tokens) for tokens in token_lists)
        perfstats.incr("batch.unique_tokens", len(unique))
        perfstats.incr("batch.dedup_saved", total - len(unique))
        with self.stopwatch.measure("results"), trace.span("cloud.results", batch=len(token_lists)):
            collected = self._collect_all(list(unique))
        responses: list[SearchResponse] = []
        for tokens, slots in zip(token_lists, slot_lists):
            perfstats.incr("cloud.token_dedup.saved", len(tokens) - len(set(slots)))
            partials = [(token, collected[slot]) for token, slot in zip(tokens, slots)]
            with self.stopwatch.measure("vo"), trace.span("cloud.vo"):
                witnesses = self._batch_witnesses(partials)
            response = SearchResponse(
                [TokenResult(t, c.entries, w) for (t, c), w in zip(partials, witnesses)]
            )
            response.membership_items = list(self.last_membership_items)
            if _observe:
                self._observe_search(tokens, partials, response)
            responses.append(response)
        return responses

    def search_plan(
        self, token_lists: list[list[SearchToken]], *, _observe: bool = True
    ) -> list[SearchResponse]:
        """Serve a compiled plan's legs: one batched collection, per-leg VOs.

        The planner's server-side entry point — an alias of
        :meth:`search_many`, named for what a plan needs from the cloud:
        every leg's tokens collected over ONE batch-wide union (shared
        trapdoor-chain walks and PRF labels across legs are paid once)
        while the responses stay per leg, because each leg settles as its
        own escrow against the accumulator.  Record-ID intersection cannot
        happen here: index payloads are nonce-blinded per (keyword,
        record) posting, so the same record's ciphertexts are unlinkable
        across legs — only the key-holding user can intersect.
        """
        return self.search_many(token_lists, _observe=_observe)

    def _observe_search(
        self,
        tokens: list[SearchToken],
        partials: list[tuple[SearchToken, CollectResult]],
        response: SearchResponse,
    ) -> None:
        metrics.observe("cloud.search.tokens", len(tokens))
        metrics.observe("cloud.search.entries", sum(len(c.entries) for _, c in partials))
        metrics.observe("cloud.search.result_bytes", response.encrypted_result_bytes)
        metrics.observe("cloud.search.witness_bytes", response.witness_bytes)

    def _search_token(self, token: SearchToken) -> TokenResult:
        collected = self._collect(token)
        witness = self._batch_witnesses([(token, collected)])[0]
        return TokenResult(token, collected.entries, witness)

    def _collect_all(self, tokens: list[SearchToken]) -> list[CollectResult]:
        """Entry collection for every token, fanned out across workers.

        The index dictionary *and the entry cache* reach workers by fork
        inheritance (zero copy); each worker runs the same cache-aware epoch
        walk as the serial path, ships installed nodes home through the
        kernel cache-export machinery, and distinct keywords have disjoint
        trapdoor chains — so results, counters and cache state are byte-
        identical to the serial loop at any worker count.
        """
        if not self._executor.parallel_available or len(tokens) < max(
            2, self._executor.min_items
        ):
            return [self._collect(token) for token in tokens]
        shared = CollectShared(
            self.index.entries,
            self.params.label_len,
            self.trapdoor_public,
            self._entry_cache if kernels.kernels_enabled() else None,
            self.params.multiset_field,
        )
        work = [TokenWork(t.trapdoor, t.epoch, t.g1, t.g2) for t in tokens]
        return self._executor.map_chunks(collect_entries_chunk, work, shared=shared)

    def _collect(self, token: SearchToken, max_epochs: int | None = None) -> CollectResult:
        """The cache-aware epoch walk for one token (serial path).

        Delegates to :func:`repro.core.entry_cache.collect_entries` — the
        same function the fork workers run — against this cloud's own
        suffix cache.  Truncated walks (``max_epochs``) and
        ``REPRO_KERNELS=0`` bypass the cache and reproduce the legacy loop
        byte for byte.
        """
        cache = self._entry_cache if kernels.kernels_enabled() else None
        return collect_entries(
            cache,
            self.index.find,
            self.params.label_len,
            self.trapdoor_public,
            self.params.multiset_field,
            token.trapdoor,
            token.epoch,
            token.g1,
            token.g2,
            max_epochs,
        )

    def _collect_entries(self, token: SearchToken, max_epochs: int | None = None) -> list[bytes]:
        """Walk epochs j..0 via π_pk; plain entry list (no cache metadata)."""
        return self._collect(token, max_epochs).entries

    def _token_prime(self, token: SearchToken, collected: CollectResult) -> int:
        """The prime representative of (token state, result multiset hash).

        A warm walk already knows the full multiset-hash value — the head
        cache node's suffix hash — so the fold is free; a bypassed walk
        (``hash_value is None``) hashes the multiset from scratch, exactly
        as before the cache existed.
        """
        if collected.hash_value is not None:
            result_hash = MultisetHash(collected.hash_value, self.params.multiset_field)
        else:
            result_hash = MultisetHash.of(collected.entries, self.params.multiset_field)
        state_key = set_hash_key(token.trapdoor, token.epoch, token.g1, token.g2)
        return self._hash_to_prime(encode_parts(state_key, result_hash.to_bytes()))

    def _batch_witnesses(
        self, partials: list[tuple[SearchToken, CollectResult]]
    ) -> list[MembershipWitness]:
        """``MemWit`` for every token of one query, sharing the big base pow.

        If a derived prime is not in the stored set — which happens when the
        cloud's index is out of sync with the owner's updates (a "lazy"
        cloud) — no valid witness exists.  A real cloud would still have to
        submit *something* to the contract, so those tokens get a best-effort
        (and necessarily invalid) witness over the full product; verification
        rejects it and the payment is refunded.
        """
        acc = self.params.accumulator
        n, g = acc.modulus, acc.generator
        primes = [self._token_prime(token, collected) for token, collected in partials]
        if self._witness_cache is not None:
            witness_by_prime = self._witness_cache
        else:
            subset = sorted({p for p in primes if p in self._primes})
            witness_by_prime = self._subset_witnesses(tuple(subset))

        fallback: int | None = None
        out: list[MembershipWitness] = []
        for prime in primes:
            if prime in witness_by_prime:
                out.append(MembershipWitness(witness_by_prime[prime]))
            else:
                if fallback is None:
                    fallback = kernels.fixed_base_pow(g, n, self._product_tree.root)
                out.append(MembershipWitness(fallback))
        # Remember this query's (prime, witness) pairs: block-mode settlement
        # folds a whole block's worth through the trusted batch-verify kernel
        # as the cloud's self-check, and capturing them here avoids re-deriving
        # the primes (which would drift the gated hash_to_prime.* counters).
        self.last_membership_items = [(p, w.value) for p, w in zip(primes, out)]
        return out

    def _subset_witnesses(self, subset: tuple[int, ...]) -> dict[int, int]:
        """Witness map for one query's prime subset, memoized per prime set.

        A repeat search derives the same primes, hence the same subset, so
        its (dominant) full-product base exponentiation and root-factor
        recursion are served from the memo; :meth:`install` clears it when
        the prime set changes.  Cold entries use the fixed-base kernel for
        the ``g^{prod(X)/prod(subset)}`` base.
        """
        if not subset:
            return {}
        cached = self._repeat_witness_cache.get(subset)
        if cached is not None:
            perfstats.incr("cloud.repeat_witness.hit")
            return cached
        perfstats.incr("cloud.repeat_witness.miss")
        acc = self.params.accumulator
        n, g = acc.modulus, acc.generator
        # prod(X) comes from the incrementally maintained product tree;
        # only the (small) subset product is computed fresh.
        base = kernels.fixed_base_pow(g, n, self._product_tree.root // product(list(subset)))
        witnesses = witness_map(base, list(subset), n, self._executor)
        if kernels.kernels_enabled():
            if len(self._repeat_witness_cache) >= 256:
                del self._repeat_witness_cache[next(iter(self._repeat_witness_cache))]
            self._repeat_witness_cache[subset] = witnesses
        return witnesses


class Misbehavior(enum.Enum):
    """The dishonest-cloud behaviours from the threat model (Section IV.B)."""

    DROP_ENTRY = "drop_entry"  # incomplete results: omit one matching record
    INJECT_ENTRY = "inject_entry"  # incorrect results: add a non-matching record
    TAMPER_ENTRY = "tamper_entry"  # flip bits inside a returned ciphertext
    OMIT_OLD_EPOCHS = "omit_old_epochs"  # return only the newest epoch's entries
    FORGE_WITNESS = "forge_witness"  # random verification object
    STALE_WITNESS = "stale_witness"  # honest witness but for tampered results
    EMPTY_RESULT = "empty_result"  # claim nothing matched


class MaliciousCloud(CloudServer):
    """A cloud that applies one :class:`Misbehavior` to otherwise honest output.

    Witness handling mirrors what a real cheater can do: it cannot *forge* a
    witness for results it did not store (strong-RSA), so except for
    ``FORGE_WITNESS`` it returns the witness for the honest result set and
    hopes the verifier will not notice the result tampering.
    """

    def __init__(
        self,
        params: SlicerParams,
        trapdoor_public: TrapdoorPublicKey,
        misbehavior: Misbehavior,
        rng: DeterministicRNG | None = None,
    ) -> None:
        super().__init__(params, trapdoor_public)
        self.misbehavior = misbehavior
        self.rng = rng or default_rng()

    def search(self, tokens: list[SearchToken], **hooks) -> SearchResponse:
        honest = super().search(tokens, **hooks)
        tampered = [self._tamper(result) for result in honest.results]
        return SearchResponse(tampered)

    def search_many(
        self, token_lists: list[list[SearchToken]], **hooks
    ) -> list[SearchResponse]:
        """Batched search with the same per-result tampering as :meth:`search`.

        Tampering happens per query in order, so the rng draws match a
        per-query ``search`` loop — the batched and unbatched malicious
        clouds misbehave identically (and both get caught identically,
        warm or cold; the conformance matrix asserts this).
        """
        honest = super().search_many(token_lists, **hooks)
        return [
            SearchResponse([self._tamper(result) for result in response.results])
            for response in honest
        ]

    def _tamper(self, result: TokenResult) -> TokenResult:
        kind = self.misbehavior
        entries = list(result.entries)
        witness = result.witness
        if kind is Misbehavior.DROP_ENTRY and entries:
            entries.pop(self.rng.randint_below(len(entries)))
        elif kind is Misbehavior.INJECT_ENTRY:
            from .wire import entry_wire_len  # local: wire imports this module

            # A forged entry must be indistinguishable *in size* from a real
            # one even when the honest result set is empty, so the guessed
            # length comes from the wire codec, not a hand-copied constant
            # that would drift if the cipher overhead ever changed.
            size = len(entries[0]) if entries else entry_wire_len(self.params)
            entries.append(self.rng.token_bytes(size))
        elif kind is Misbehavior.TAMPER_ENTRY and entries:
            victim = self.rng.randint_below(len(entries))
            blob = bytearray(entries[victim])
            blob[self.rng.randint_below(len(blob))] ^= 0xFF
            entries[victim] = bytes(blob)
        elif kind is Misbehavior.OMIT_OLD_EPOCHS and result.token.epoch > 0:
            entries = self._collect_entries(result.token, max_epochs=1)
        elif kind is Misbehavior.FORGE_WITNESS:
            witness = MembershipWitness(
                self.rng.randrange(2, self.params.accumulator.modulus - 1)
            )
        elif kind is Misbehavior.EMPTY_RESULT:
            entries = []
        # STALE_WITNESS keeps the honest witness with honest entries when no
        # tampering applied; combined with any entry change above it is the
        # default because we never recompute the witness over tampered data.
        return TokenResult(result.token, entries, witness)
