"""``python -m repro report`` — render JSONL trace and audit artifacts.

The observability layer emits two kinds of append-only JSONL files: span
records from :mod:`repro.obs.trace` and settlement records from
:mod:`repro.obs.audit`.  This module turns them back into something a
human (or a CI log reader) can audit:

* ``repro report --audit AUDIT.jsonl`` — the settlement ledger as a table
  plus verdict/gas/escrow totals, with ``--verdict`` filtering;
* ``repro report --trace TRACE.jsonl`` — span trees, one per trace id,
  children indented under parents with durations and fault/retry events;
* ``repro report --metrics BENCH.json`` — cache effectiveness from a saved
  counter snapshot (a ``BENCH_*.json`` report or a raw counter dict): hit
  rates per cache family ("n/a" when never consulted), epoch-suffix splice
  savings, and cross-query batch dedup.

Both accept multiple files and can be combined in one invocation; replay
validates audit-sequence contiguity, so a truncated ledger fails loudly
instead of rendering as a shorter, plausible one.
"""

from __future__ import annotations

import json
from typing import Iterable

from .audit import SettlementAuditLog


def _fmt_duration(span: dict) -> str:
    start, end = span.get("start_s"), span.get("end_s")
    if start is None or end is None:
        return "?"
    return f"{end - start:.6f}s"


def load_spans(path: str) -> list[dict]:
    """Span records from a JSONL trace file (non-span lines are skipped)."""
    spans: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if data.get("type") == "span":
                spans.append(data)
    return spans


def trace_trees(spans: Iterable[dict]) -> dict[str, list[dict]]:
    """Group spans by trace id, each list in emission (finish) order."""
    trees: dict[str, list[dict]] = {}
    for span in spans:
        trees.setdefault(span["trace_id"], []).append(span)
    return trees


def render_trace(spans: list[dict]) -> list[str]:
    """Indented span trees, children under parents, events inline."""
    lines: list[str] = []
    by_parent: dict[str | None, list[dict]] = {}
    by_id = {s["span_id"]: s for s in spans}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None  # orphan (parent span in another file): treat as root
        by_parent.setdefault(parent, []).append(span)

    def walk(span: dict, depth: int) -> None:
        indent = "  " * depth
        status = span.get("status", "ok")
        flag = "" if status == "ok" else f"  [{status}]"
        lines.append(f"{indent}{span['name']}  ({_fmt_duration(span)}){flag}")
        for event in span.get("events", ()):
            detail = ", ".join(
                f"{k}={v}" for k, v in sorted(event.items()) if k != "event"
            )
            suffix = f": {detail}" if detail else ""
            lines.append(f"{indent}  · {event['event']}{suffix}")
        for child in by_parent.get(span["span_id"], ()):
            walk(child, depth + 1)

    for trace_id, tree in sorted(trace_trees(spans).items()):
        lines.append(f"trace {trace_id}  ({len(tree)} spans)")
        roots = [s for s in by_parent.get(None, ()) if s["trace_id"] == trace_id]
        # Roots finish last in emission order; show them first-started first.
        for root in sorted(roots, key=lambda s: s.get("start_s") or 0.0):
            walk(root, 1)
        lines.append("")
    return lines


def render_audit(log: SettlementAuditLog, verdict: str | None = None) -> list[str]:
    """The settlement ledger as an aligned table plus totals."""
    records = log.records(verdict)
    lines: list[str] = []
    header = f"{'seq':>4}  {'query_id':<14} {'verdict':<9} {'tokens':>6} {'results':>7} {'gas':>8} {'amount':>7}  detail"
    lines.append(header)
    lines.append("-" * len(header))
    for r in records:
        lines.append(
            f"{r.seq:>4}  {r.query_id:<14} {r.verdict:<9} {r.tokens_posted:>6} "
            f"{r.result_count:>7} {r.gas:>8} {r.amount:>7}  {r.detail or ''}"
        )
    totals = log.totals()
    lines.append("")
    lines.append(
        "totals: {records} records — paid {paid}, refunded {refunded}, degraded "
        "{degraded}; gas {gas_total}, escrow paid out {paid_out}, escrow "
        "refunded {refunded_amt}".format(
            records=totals["records"],
            paid=totals["verdicts"]["paid"],
            refunded=totals["verdicts"]["refunded"],
            degraded=totals["verdicts"]["degraded"],
            gas_total=totals["gas_total"],
            paid_out=totals["paid_out"],
            refunded_amt=totals["refunded"],
        )
    )
    lines.extend(render_block_settlements(records))
    return lines


def render_block_settlements(records) -> list[str]:
    """Per-block settlement table for block-mode ledgers.

    Block-settled records carry the height they landed at in
    ``extra["block"]``; grouping them shows the batching the mempool
    actually achieved (settlements per block, verdict split, gas).  Ledgers
    from synchronous runs have no height-stamped records and get no
    section — the table never renders empty.
    """
    by_block: dict[int, list] = {}
    for r in records:
        height = r.extra.get("block")
        if height is not None:
            by_block.setdefault(int(height), []).append(r)
    if not by_block:
        return []
    lines = ["", "settlements by block:"]
    header = f"{'block':>6} {'settled':>8} {'paid':>5} {'refunded':>9} {'gas':>9}  seqs"
    lines.append(header)
    lines.append("-" * len(header))
    for height in sorted(by_block):
        group = by_block[height]
        paid = sum(1 for r in group if r.verdict == "paid")
        refunded = sum(1 for r in group if r.verdict == "refunded")
        seqs = ",".join(str(r.seq) for r in group)
        lines.append(
            f"{height:>6} {len(group):>8} {paid:>5} {refunded:>9} "
            f"{sum(r.gas for r in group):>9}  {seqs}"
        )
    return lines


#: Cache families always listed in the metrics section, even at zero
#: consultations — a hot path that *never asked* its cache is itself a
#: finding ("n/a" hit rate), invisible if rows only appear on activity.
KNOWN_CACHES = (
    "cloud.entry_cache",
    "cloud.repeat_witness",
    "hash_to_prime",
    "trapdoor_chain",
)


def load_counters(path: str) -> dict[str, int]:
    """Counter snapshot from a saved report.

    Accepts either a ``BENCH_*.json`` twin (counters under a ``"counters"``
    key) or a raw ``{counter_name: value}`` dict.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    counters = data.get("counters", data) if isinstance(data, dict) else None
    if not isinstance(counters, dict) or not all(
        isinstance(v, int) for v in counters.values()
    ):
        raise ValueError(f"{path}: not a counter snapshot")
    return counters


def cache_stats(counters: dict[str, int]) -> dict[str, dict]:
    """Per-family hit/miss/eviction stats from a counter snapshot.

    Families are every ``<prefix>.hit`` / ``<prefix>.miss`` pair present,
    plus :data:`KNOWN_CACHES`.  ``hit_rate`` is ``None`` when the cache was
    never consulted (rendered as "n/a"), distinct from a measured 0.0.
    """
    families = set(KNOWN_CACHES)
    for key in counters:
        for suffix in (".hit", ".miss"):
            if key.endswith(suffix):
                families.add(key[: -len(suffix)])
    stats: dict[str, dict] = {}
    for family in sorted(families):
        hits = counters.get(f"{family}.hit", 0)
        misses = counters.get(f"{family}.miss", 0)
        consulted = hits + misses
        stats[family] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / consulted if consulted else None,
            "evicted": counters.get(f"{family}.evicted", 0),
        }
    return stats


def render_cache_stats(counters: dict[str, int]) -> list[str]:
    """The cache-effectiveness section: hit rates plus splice/dedup savings."""
    stats = cache_stats(counters)
    header = f"{'cache':<24} {'hits':>8} {'misses':>8} {'rate':>6} {'evicted':>8}"
    lines = [header, "-" * len(header)]
    for family, s in stats.items():
        rate = "n/a" if s["hit_rate"] is None else f"{s['hit_rate']:.2f}"
        lines.append(
            f"{family:<24} {s['hits']:>8} {s['misses']:>8} {rate:>6} {s['evicted']:>8}"
        )
    spliced = counters.get("cloud.entry_cache.spliced_entries", 0)
    probes = counters.get("cloud.collect.index_probes", 0)
    lines.append("")
    lines.append(
        f"entry cache spliced {spliced} entries from cached epoch suffixes "
        f"({probes} index probes paid for fresh epochs)"
    )
    unique = counters.get("batch.unique_tokens", 0)
    saved = counters.get("batch.dedup_saved", 0)
    if unique or saved:
        lines.append(
            f"batched search: {unique} unique tokens collected, "
            f"{saved} duplicate collections saved by cross-query dedup"
        )
    return lines


def render_primality_stats(counters: dict[str, int]) -> list[str]:
    """The backend/primality section: ``H_prime`` pipeline cost accounting.

    The ``hprime.*`` counters are value-deterministic (functions of the
    candidate integers, identical on every modmath backend), so this section
    reads the same from a pure-python or a gmpy2 run — only wall-clock
    differs between backends.
    """
    from ..crypto.modmath import backend_info

    candidates = counters.get("hprime.candidates", 0)
    lines: list[str] = []
    info = backend_info()
    backend_line = f"modmath backend: {info['active']} (available: {info['available']})"
    if info["fallback_reason"]:
        backend_line += f" — requested {info['requested']!r}, {info['fallback_reason']}"
    lines.append(backend_line)
    if not candidates:
        lines.append("no H_prime pipeline activity in this snapshot")
        return lines
    fast = counters.get("hprime.fast_rejects", 0)
    mr = counters.get("hprime.mr_rounds", 0)
    lucas = counters.get("hprime.lucas_tests", 0)
    lines.append(
        f"H_prime pipeline: {candidates} candidates, {fast} fast-rejected "
        f"({fast / candidates:.0%} before the witness schedule)"
    )
    lines.append(
        f"  {mr} Miller-Rabin rounds ({mr / candidates:.2f} per candidate), "
        f"{lucas} strong Lucas tests (Baillie-PSW completions)"
    )
    wnaf = counters.get("wnaf.pow", 0)
    if wnaf:
        lines.append(
            f"wNAF witness exponentiations: {wnaf} "
            f"({counters.get('wnaf.table_builds', 0)} table builds)"
        )
    return lines


def run_report(
    audit_paths: list[str],
    trace_paths: list[str],
    metrics_paths: list[str] | None = None,
    verdict: str | None = None,
    as_json: bool = False,
) -> str:
    """The ``repro report`` entry point; returns the rendered text."""
    sections: list[str] = []
    for path in audit_paths:
        log = SettlementAuditLog.load(path)
        if as_json:
            sections.append(json.dumps(log.totals(), sort_keys=True, indent=2))
        else:
            sections.append(f"== settlement audit: {path} ==")
            sections.extend(render_audit(log, verdict))
            sections.append("")
    for path in trace_paths:
        spans = load_spans(path)
        if as_json:
            summary = {
                "spans": len(spans),
                "traces": len(trace_trees(spans)),
                "errors": sum(1 for s in spans if s.get("status") != "ok"),
            }
            sections.append(json.dumps(summary, sort_keys=True, indent=2))
        else:
            sections.append(f"== trace: {path} ==")
            sections.extend(render_trace(spans))
    for path in metrics_paths or []:
        counters = load_counters(path)
        if as_json:
            sections.append(json.dumps(cache_stats(counters), sort_keys=True, indent=2))
        else:
            sections.append(f"== cache effectiveness: {path} ==")
            sections.extend(render_cache_stats(counters))
            sections.append("")
            sections.append(f"== backend / primality: {path} ==")
            sections.extend(render_primality_stats(counters))
            sections.append("")
    if not sections:
        return "nothing to report (pass --audit, --trace and/or --metrics)"
    return "\n".join(sections).rstrip() + "\n"
