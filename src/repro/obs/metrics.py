"""The metrics registry: counters + histograms + gauges, merge-friendly.

This subsumes :mod:`repro.common.perfstats`: the registry's counter section
*is* the perfstats store (same dict, same names), so every existing
``perfstats.incr`` call site reports here without churn, and the new
cross-process delta merge in :mod:`repro.parallel.executor` fixes both at
once.  On top of counters the registry adds

* **histograms** — fixed-bound bucket distributions for per-phase latency,
  result-set sizes and gas.  Bounds are explicit and deterministic, so two
  runs of the same workload produce byte-identical bucket counts for any
  value-deterministic metric (sizes, gas, attempts); only wall-clock
  histograms (named ``*_s`` by convention) vary between runs;
* **gauges** — last-write-wins point-in-time values (cache sizes, primes).

Cross-process contract: worker tasks return a **counter delta** (computed
against a per-task baseline snapshot) alongside their results, and the
executor merges the deltas back in chunk order — counters are therefore
identical at ``workers=0`` and ``workers=2``.  Histograms and gauges are
parent-side only: every protocol-level observation (gas, result sizes,
span durations) happens in the coordinating process.

``REPRO_OBS=0`` disables histograms and gauges (observe/set become no-ops);
counters are exempt from the kill switch — they are one dict op each and
the regression gates rely on them.
"""

from __future__ import annotations

import bisect
import os

from ..common import perfstats
from ..common.perfstats import PerfStats

#: Environment kill switch: any of ``0/false/off/no`` disables the
#: observability layer (histograms, gauges, spans, audit appends).
OBS_ENV = "REPRO_OBS"

_DISABLED_VALUES = {"0", "false", "off", "no"}

#: Test/CLI override: ``True``/``False`` force the switch, ``None`` defers
#: to the environment.
_enabled_override: bool | None = None


def obs_enabled() -> bool:
    """Whether the observability layer is active (default: yes)."""
    if _enabled_override is not None:
        return _enabled_override
    return os.environ.get(OBS_ENV, "1").strip().lower() not in _DISABLED_VALUES


def set_obs_enabled(value: bool | None) -> None:
    """Force the kill switch on/off (``None`` restores env-driven behaviour)."""
    global _enabled_override
    _enabled_override = value


#: Default histogram bounds: a 1-2-5 decade ladder wide enough for bytes,
#: entry counts, gas and (fractional) seconds alike.  Explicit bounds make
#: bucket counts machine-independent for value-deterministic metrics.
DEFAULT_BOUNDS: tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-6, 10) for m in (1, 2, 5)
)


class Histogram:
    """Fixed-bound bucket histogram with count and sum.

    Bucket ``i`` counts observations ``<= bounds[i]``; the final overflow
    bucket counts everything above the last bound.  Bounds never change
    after construction, so snapshots from different processes or runs are
    mergeable bucket-by-bucket.
    """

    __slots__ = ("bounds", "buckets", "count", "total")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        if list(bounds) != sorted(bounds) or not bounds:
            raise ValueError("histogram bounds must be non-empty and ascending")
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Approximate quantile: the upper bound of the bucket holding it."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return None
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= rank and n:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")

    def snapshot(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.total,
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another process/run's snapshot in (bounds must match)."""
        if list(snap["bounds"]) != list(self.bounds):
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(snap["buckets"]):
            self.buckets[i] += n
        self.count += snap["count"]
        self.total += snap["sum"]


class MetricsRegistry:
    """Counters + histograms + gauges under dotted ``area.event`` names."""

    def __init__(self, counters: PerfStats | None = None) -> None:
        #: The counter store.  The global registry shares
        #: :data:`repro.common.perfstats.STATS` so both APIs see one truth.
        self.counters = counters if counters is not None else PerfStats()
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, float] = {}

    # ------------------------------------------------------------- counters

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters.incr(name, amount)

    def get(self, name: str) -> int:
        return self.counters.get(name)

    def merge_counter_delta(self, delta: dict[str, int]) -> None:
        """Fold a worker task's counter delta back in (cross-process merge)."""
        self.counters.merge(delta)

    # ----------------------------------------------------------- histograms

    def observe(self, name: str, value: float, bounds: tuple[float, ...] | None = None) -> None:
        """Record one observation (no-op when the layer is disabled)."""
        if not obs_enabled():
            return
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(bounds or DEFAULT_BOUNDS)
        hist.observe(value)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    # --------------------------------------------------------------- gauges

    def set_gauge(self, name: str, value: float) -> None:
        if not obs_enabled():
            return
        self._gauges[name] = value

    def gauge(self, name: str) -> float | None:
        return self._gauges.get(name)

    # ------------------------------------------------------------ lifecycle

    def snapshot(self) -> dict:
        """Everything, JSON-shaped: counters, histogram buckets, gauges."""
        return {
            "counters": self.counters.snapshot(),
            "histograms": {
                name: hist.snapshot() for name, hist in sorted(self._histograms.items())
            },
            "gauges": dict(sorted(self._gauges.items())),
        }

    def deterministic_snapshot(
        self,
        exclude_prefixes: tuple[str, ...] = (
            "parallel.",
            "modmath.backend.",
            "wnaf.",
            "shard.",
            "cloud.repeat_witness.",
            "cloud.witness_cache.selfcheck",
            "fixed_base.",
            "multi_exp.",
            "batch_verify.",
            "mempool.",
            "blocks.",
            "blockmode.",
            "light_client.",
            "segstore.",
            "cloud.restore.",
        ),
    ) -> dict:
        """The machine-independent slice of :meth:`snapshot`.

        Drops wall-clock histograms (names ending ``_s``) and
        execution-shape counters: ``parallel.*`` (dispatch counts differ
        between serial and fanned-out runs by construction),
        ``modmath.backend.*`` (records *which* bignum backend resolved, not
        what was computed) and ``wnaf.*`` (the wNAF kernel only engages on
        the pure-python backend, so its activity is backend-shaped too).
        Topology-shaped counters are excluded the same way: ``shard.*``
        (routing/scatter bookkeeping only exists on a sharded tier),
        ``cloud.repeat_witness.*``, the witness-cache self-check,
        ``fixed_base.*`` and the whole ``multi_exp.*`` /
        ``batch_verify.*`` families all count *per-serving-instance* events —
        N shards each derive their own witness bases and self-check their
        own caches, and block-mode settlement runs extra trusted batch
        folds — so these scale with the deployment shape, not with
        protocol work.  Settlement-delivery machinery is excluded the same
        way: ``mempool.*``, ``blocks.*``, ``blockmode.*`` and
        ``light_client.*`` only tick in block-settlement deployments,
        while the *outcomes* they deliver (contract settle counts, gas
        histograms, audit counts) stay in and must equal the synchronous
        path bit for bit.  Durability machinery is deployment-shaped too:
        ``segstore.*`` (segment appends/replays/checkpoints only tick when
        a store is attached) and ``cloud.restore.*`` (restart-recovery
        bookkeeping) are excluded, while the protocol work a recovered
        cloud performs stays in and must match the never-crashed run.  The protocol-work counters stay in
        (``cloud.collect.*``, entry-cache hits, dedup savings,
        ``hash_to_prime.*``, settlement/audit counts): summed across
        shards they equal the single-cloud run exactly.  What remains must
        be byte-identical at any worker count, on any backend, at any
        shard count, and in either settlement mode; the cross-worker/
        cross-shard/cross-mode property tests and the CI counter gates
        compare exactly this.
        """
        return {
            "counters": {
                k: v
                for k, v in self.counters.snapshot().items()
                if not k.startswith(exclude_prefixes)
            },
            "histograms": {
                name: hist.snapshot()
                for name, hist in sorted(self._histograms.items())
                if not name.endswith("_s")
            },
        }

    def reset(self) -> None:
        self.counters.reset()
        self._histograms.clear()
        self._gauges.clear()


#: The process-wide registry.  Its counter section IS the perfstats store,
#: so ``perfstats.incr`` and ``REGISTRY.incr`` are the same counter space.
REGISTRY = MetricsRegistry(counters=perfstats.STATS)


def incr(name: str, amount: int = 1) -> None:
    REGISTRY.incr(name, amount)


def observe(name: str, value: float, bounds: tuple[float, ...] | None = None) -> None:
    REGISTRY.observe(name, value, bounds)


def set_gauge(name: str, value: float) -> None:
    REGISTRY.set_gauge(name, value)
