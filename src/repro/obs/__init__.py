"""Observability layer: metrics, tracing, and the settlement audit log.

Slicer's fairness story is an *audit* story — who was paid, who was
refunded, what evidence the contract saw — so the reproduction carries a
first-class observability substrate:

* :mod:`repro.obs.metrics` — a registry of counters (the
  :mod:`repro.common.perfstats` store, now merged across worker processes
  by the parallel executor), histograms (latencies, result sizes, gas) and
  gauges, with explicit cross-process aggregation;
* :mod:`repro.obs.trace` — lightweight structured spans with ids/parents
  covering submit → search → verify → settle and install/ADS-update,
  emitted as JSONL; chaos-transport fault injections and retries attach as
  span events, so a failed search is diagnosable from its trace alone;
* :mod:`repro.obs.audit` — an append-only settlement audit log: one record
  per search with tokens posted, the accumulator value checked, the
  verdict, payment/refund routing and gas;
* :mod:`repro.obs.report` — the ``python -m repro report`` CLI over the
  JSONL artifacts.

``REPRO_OBS=0`` is the kill switch: histograms, gauges, spans, events and
audit appends all become no-ops (counters stay on — the kernels and the
regression gates predate this layer and cost one dict op per increment).
"""

from .audit import (
    AUDIT_LOG,
    VERDICT_DEGRADED,
    VERDICT_PAID,
    VERDICT_REFUNDED,
    SettlementAuditLog,
    SettlementRecord,
)
from .metrics import REGISTRY, Histogram, MetricsRegistry, obs_enabled, set_obs_enabled
from .trace import TRACER, Span, Tracer

__all__ = [
    "AUDIT_LOG",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "SettlementAuditLog",
    "SettlementRecord",
    "Span",
    "TRACER",
    "Tracer",
    "VERDICT_DEGRADED",
    "VERDICT_PAID",
    "VERDICT_REFUNDED",
    "obs_enabled",
    "set_obs_enabled",
]
