"""Structured tracing: spans with ids/parents, events, JSONL emission.

One search is five party boundaries; when it degrades under chaos the only
honest answer to "what happened?" is an execution trail.  The tracer keeps
it deliberately small:

* a **span** covers one protocol step (``search`` → ``submit`` /
  ``cloud.search`` / ``verify_settle``; ``insert`` → ``install`` /
  ``update_ads``) and carries a ``trace_id`` shared by the whole operation,
  its own ``span_id``, and its parent's id — enough to reconstruct the tree;
* **events** attach point-in-time facts to the innermost open span: every
  chaos-transport fault injection (with its
  :class:`~repro.chaos.faults.FaultPlan` history index), every retry
  attempt and backoff, every idempotent dedup;
* finished spans are appended to an in-memory buffer and — when a sink is
  set via :meth:`Tracer.set_sink` or ``REPRO_TRACE_FILE`` — emitted as one
  JSON line each, append-only, so a crashed run still leaves its trail.

Span ids are sequence numbers, not random: traces are replayable artifacts
and two runs of the same seed produce the same tree.  Durations are also
folded into the metrics registry as ``span.<name>_s`` histograms (the
``_s`` suffix marks them wall-clock, i.e. excluded from determinism
comparisons).  Everything is a no-op under ``REPRO_OBS=0``.

Tracing is single-process by design: spans cover party boundaries, which
all run in the coordinating process.  Forked workers do pure chunk math and
report through counters, not spans.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from . import metrics

#: Environment sink: path to append JSONL span records to.
TRACE_FILE_ENV = "REPRO_TRACE_FILE"


@dataclass
class Span:
    """One traced protocol step; mutable while open, frozen into JSON on end."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start_s: float
    attrs: dict = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    end_s: float | None = None
    status: str = "ok"

    @property
    def duration_s(self) -> float | None:
        return None if self.end_s is None else self.end_s - self.start_s

    def to_record(self) -> dict:
        return {
            "type": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "status": self.status,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": dict(self.attrs),
            "events": list(self.events),
        }


class Tracer:
    """Span stack + finished-span buffer + optional JSONL sink.

    The protocol is single-threaded per system, so the "current span" is a
    plain stack.  ``clock`` is injectable: chaos systems pin it to the
    transport's virtual clock so trace timings line up with the fault
    schedule instead of wall time.
    """

    def __init__(self, clock=None) -> None:
        self.clock = clock or time.perf_counter
        self._stack: list[Span] = []
        self._finished: list[dict] = []
        self._sink_path: str | None = None
        self._next_id = 1

    # ----------------------------------------------------------------- ids

    def _new_id(self) -> str:
        value = self._next_id
        self._next_id += 1
        return f"{value:08x}"

    # --------------------------------------------------------------- spans

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span | None]:
        """Open a child of the current span (or a new root); yields the span.

        Yields ``None`` when the layer is disabled — callers must go through
        :meth:`set_attr`/:meth:`event` rather than poking the yielded object
        if they want kill-switch safety.
        """
        if not metrics.obs_enabled():
            yield None
            return
        parent = self._stack[-1] if self._stack else None
        span = Span(
            trace_id=parent.trace_id if parent else self._new_id(),
            span_id=self._new_id(),
            parent_id=parent.span_id if parent else None,
            name=name,
            start_s=self.clock(),
            attrs=dict(attrs),
        )
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = f"error:{type(exc).__name__}"
            raise
        finally:
            self._stack.pop()
            span.end_s = self.clock()
            self._finish(span)

    def event(self, name: str, **attrs) -> None:
        """Attach an event to the innermost open span (dropped if none)."""
        if not metrics.obs_enabled() or not self._stack:
            return
        self._stack[-1].events.append({"event": name, **attrs})

    def set_attr(self, key: str, value) -> None:
        """Set an attribute on the innermost open span (no-op if none)."""
        if not metrics.obs_enabled() or not self._stack:
            return
        self._stack[-1].attrs[key] = value

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def current_trace_id(self) -> str | None:
        return self._stack[-1].trace_id if self._stack else None

    # ------------------------------------------------------------ emission

    def _finish(self, span: Span) -> None:
        record = span.to_record()
        self._finished.append(record)
        metrics.observe(f"span.{span.name}_s", span.duration_s or 0.0)
        path = self._sink_path or os.environ.get(TRACE_FILE_ENV)
        if path:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    def set_sink(self, path: str | None) -> None:
        """Append finished spans to ``path`` as JSONL (``None`` disables)."""
        self._sink_path = path

    def export(self) -> list[dict]:
        """Finished spans, oldest first (children before their parents)."""
        return list(self._finished)

    def reset(self) -> None:
        """Drop buffered spans and restart ids (sink path is kept)."""
        self._stack.clear()
        self._finished.clear()
        self._next_id = 1


#: The process-wide tracer the protocol layers report to.
TRACER = Tracer()


def span(name: str, **attrs):
    return TRACER.span(name, **attrs)


def event(name: str, **attrs) -> None:
    TRACER.event(name, **attrs)


def set_attr(key: str, value) -> None:
    TRACER.set_attr(key, value)


def current_trace_id() -> str | None:
    return TRACER.current_trace_id()
