"""Settlement audit log: one append-only record per search settlement.

Slicer's fairness claim is that the blockchain arbitrates payment: the user
escrows, the cloud posts search tokens and a VO, the contract re-derives
the accumulator check and routes the escrow.  That story is only auditable
if someone keeps the ledger — this module is that ledger for the
reproduction.  Every settled (or degraded) search appends exactly one
:class:`SettlementRecord` capturing

* what the contract saw: how many tokens were posted, the accumulator
  value it checked (hex, truncated for the log), the gas consumed;
* what it decided: the verdict (``paid`` / ``refunded`` / ``degraded``)
  and where the escrow went;
* how to correlate: the query id, the trace id of the search's span tree,
  and the attempt count under chaos.

Records are frozen and sequence-numbered by the log; with a sink set (via
:meth:`SettlementAuditLog.set_sink` or ``REPRO_AUDIT_FILE``) each append
also writes one JSON line, and :meth:`SettlementAuditLog.replay` loads a
JSONL file back, refusing gaps in the sequence — an audit log you can
truncate unnoticed is not an audit log.  ``python -m repro report``
(:mod:`repro.obs.report`) renders these files.

Appends are no-ops under ``REPRO_OBS=0``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Iterable

from . import metrics

#: Environment sink: path to append JSONL settlement records to.
AUDIT_FILE_ENV = "REPRO_AUDIT_FILE"

#: The contract verified the VO and released the escrow to the cloud.
VERDICT_PAID = "paid"
#: The contract rejected the evidence and refunded the user.
VERDICT_REFUNDED = "refunded"
#: The search never reached settlement (retries exhausted under chaos).
VERDICT_DEGRADED = "degraded"

_VERDICTS = (VERDICT_PAID, VERDICT_REFUNDED, VERDICT_DEGRADED)


@dataclass(frozen=True)
class SettlementRecord:
    """One search's settlement, as the contract (or its absence) decided it."""

    seq: int
    query_id: str
    verdict: str
    tokens_posted: int
    result_count: int
    accumulator: str | None
    paid_to: str | None
    amount: int
    gas: int
    attempts: int
    trace_id: str | None
    detail: str | None = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.verdict not in _VERDICTS:
            raise ValueError(f"unknown verdict {self.verdict!r} (want one of {_VERDICTS})")

    def to_json(self) -> str:
        return json.dumps({"type": "settlement", **asdict(self)}, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "SettlementRecord":
        fields = {k: v for k, v in data.items() if k != "type"}
        return cls(**fields)


class SettlementAuditLog:
    """Append-only, sequence-numbered settlement ledger with a JSONL sink."""

    def __init__(self) -> None:
        self._records: list[SettlementRecord] = []
        self._sink_path: str | None = None

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    # --------------------------------------------------------------- append

    def append(
        self,
        *,
        query_id: str,
        verdict: str,
        tokens_posted: int = 0,
        result_count: int = 0,
        accumulator: int | str | None = None,
        paid_to: str | None = None,
        amount: int = 0,
        gas: int = 0,
        attempts: int = 1,
        trace_id: str | None = None,
        detail: str | None = None,
        **extra,
    ) -> SettlementRecord | None:
        """Record one settlement; returns the record (``None`` if disabled).

        ``accumulator`` may be the raw integer the contract checked; it is
        stored as a truncated hex digest — the log correlates evidence, the
        chain stores it.
        """
        if not metrics.obs_enabled():
            return None
        if isinstance(accumulator, int):
            accumulator = format(accumulator, "x")[:32]
        record = SettlementRecord(
            seq=len(self._records),
            query_id=query_id,
            verdict=verdict,
            tokens_posted=tokens_posted,
            result_count=result_count,
            accumulator=accumulator,
            paid_to=paid_to,
            amount=amount,
            gas=gas,
            attempts=attempts,
            trace_id=trace_id,
            detail=detail,
            extra=dict(extra),
        )
        self._records.append(record)
        metrics.incr(f"audit.settlement.{verdict}")
        path = self._sink_path or os.environ.get(AUDIT_FILE_ENV)
        if path:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(record.to_json() + "\n")
        return record

    # ---------------------------------------------------------------- query

    def records(self, verdict: str | None = None) -> list[SettlementRecord]:
        if verdict is None:
            return list(self._records)
        return [r for r in self._records if r.verdict == verdict]

    def totals(self) -> dict:
        """Aggregate view: verdict counts, gas and escrow flow."""
        by_verdict = {v: 0 for v in _VERDICTS}
        gas = 0
        paid_out = 0
        refunded = 0
        for r in self._records:
            by_verdict[r.verdict] += 1
            gas += r.gas
            if r.verdict == VERDICT_PAID:
                paid_out += r.amount
            elif r.verdict == VERDICT_REFUNDED:
                refunded += r.amount
        return {
            "records": len(self._records),
            "verdicts": by_verdict,
            "gas_total": gas,
            "paid_out": paid_out,
            "refunded": refunded,
        }

    # ------------------------------------------------------------ lifecycle

    def set_sink(self, path: str | None) -> None:
        """Append future records to ``path`` as JSONL (``None`` disables)."""
        self._sink_path = path

    def reset(self) -> None:
        self._records.clear()

    @classmethod
    def replay(cls, lines: Iterable[str]) -> "SettlementAuditLog":
        """Rebuild a log from JSONL lines, enforcing sequence contiguity."""
        log = cls()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if data.get("type") != "settlement":
                continue
            record = SettlementRecord.from_dict(data)
            if record.seq != len(log._records):
                raise ValueError(
                    f"audit log gap: expected seq {len(log._records)}, got {record.seq}"
                )
            log._records.append(record)
        return log

    @classmethod
    def load(cls, path: str) -> "SettlementAuditLog":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.replay(handle)


#: The process-wide settlement ledger the system appends to.
AUDIT_LOG = SettlementAuditLog()
