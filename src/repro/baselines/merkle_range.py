"""Merkle-tree-verified range search baseline (the ADS alternative).

The paper's preliminaries weigh the RSA accumulator against the Merkle Hash
Tree: MHT proofs are ``O(log n)`` per element and reveal neighbourhood
structure, while accumulator witnesses are constant-size.  This baseline is
a *plaintext-order* MHT range index (values sorted, leaves = value||id):
completeness is proven by returning the contiguous leaf run covering the
range plus its two boundary leaves, each with an authentication path.

It is NOT privacy-preserving (the server sees plaintext order) — it exists
so the ADS ablation can compare proof sizes and verification costs on equal
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.encoding import encode_parts, encode_uint, decode_parts, decode_uint
from ..common.errors import ParameterError
from ..crypto.merkle import MerkleProof, MerkleTree, verify_merkle


@dataclass(frozen=True)
class RangeProof:
    """Matched leaves + boundary leaves, each with its Merkle path."""

    matched: tuple[tuple[bytes, MerkleProof], ...]
    left_boundary: tuple[bytes, MerkleProof] | None
    right_boundary: tuple[bytes, MerkleProof] | None

    @property
    def size_bytes(self) -> int:
        total = 0
        for leaf, proof in self.matched:
            total += len(leaf) + proof.size_bytes
        for boundary in (self.left_boundary, self.right_boundary):
            if boundary is not None:
                total += len(boundary[0]) + boundary[1].size_bytes
        return total


def _leaf(value: int, record_id: bytes) -> bytes:
    return encode_parts(encode_uint(value), record_id)


def _leaf_value(leaf: bytes) -> int:
    return decode_uint(decode_parts(leaf)[0])


class MerkleRangeIndex:
    """Static sorted-order MHT over (value, record_id) pairs."""

    def __init__(self, records: list[tuple[bytes, int]]) -> None:
        if not records:
            raise ParameterError("Merkle range index needs at least one record")
        ordered = sorted(records, key=lambda rv: (rv[1], rv[0]))
        self._leaves = [_leaf(value, rid) for rid, value in ordered]
        self._values = [value for _, value in ordered]
        self.tree = MerkleTree(self._leaves)

    @property
    def root(self) -> bytes:
        return self.tree.root

    def __len__(self) -> int:
        return len(self._leaves)

    def query(self, lo: int, hi: int) -> RangeProof:
        """Prove the contiguous run of leaves with ``lo <= value <= hi``."""
        if lo > hi:
            raise ParameterError("empty range")
        import bisect

        start = bisect.bisect_left(self._values, lo)
        end = bisect.bisect_right(self._values, hi)
        matched = tuple(
            (self._leaves[i], self.tree.prove(i)) for i in range(start, end)
        )
        left = (self._leaves[start - 1], self.tree.prove(start - 1)) if start > 0 else None
        right = (self._leaves[end], self.tree.prove(end)) if end < len(self._leaves) else None
        return RangeProof(matched, left, right)


def verify_range_proof(root: bytes, lo: int, hi: int, proof: RangeProof, total_leaves: int) -> bool:
    """Check membership of every returned leaf *and* completeness.

    Completeness: the matched leaves occupy contiguous indices, the left
    boundary (if any) sits immediately before with value < lo, the right
    boundary immediately after with value > hi, and absent boundaries imply
    the run touches the tree edge.
    """
    indices = [p.leaf_index for _, p in proof.matched]
    for leaf, path in proof.matched:
        if not verify_merkle(root, leaf, path):
            return False
        if not lo <= _leaf_value(leaf) <= hi:
            return False
    if indices != sorted(indices) or any(
        b - a != 1 for a, b in zip(indices, indices[1:])
    ):
        return False

    start = indices[0] if indices else None
    end = indices[-1] + 1 if indices else None

    if proof.left_boundary is not None:
        leaf, path = proof.left_boundary
        if not verify_merkle(root, leaf, path) or _leaf_value(leaf) >= lo:
            return False
        if start is not None and path.leaf_index != start - 1:
            return False
        if start is None:
            start = path.leaf_index + 1
    elif start not in (None, 0):
        return False

    if proof.right_boundary is not None:
        leaf, path = proof.right_boundary
        if not verify_merkle(root, leaf, path) or _leaf_value(leaf) <= hi:
            return False
        if end is not None and path.leaf_index != end:
            return False
        if end is None:
            end = path.leaf_index
    elif end is not None and end != total_leaves:
        return False

    if start is None and end is None:
        # Empty result with no boundaries: only valid for an empty tree,
        # which the index forbids — reject.
        return False
    if indices == [] and proof.left_boundary and proof.right_boundary:
        left_idx = proof.left_boundary[1].leaf_index
        right_idx = proof.right_boundary[1].leaf_index
        if right_idx - left_idx != 1:
            return False
    return True
