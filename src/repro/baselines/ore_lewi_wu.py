"""Lewi-Wu small-domain left/right ORE baseline (CCS 2016).

The left/right framework the paper's SORE builds on: a *left* ciphertext
(for the query side) and a *right* ciphertext (for the stored side) can be
compared, but two right ciphertexts reveal **nothing** about their order —
the semantically-secure half.  The cost is that a right ciphertext carries
one masked comparison symbol for every domain element, so it only works for
small domains (the paper's Section II.B: "two new ORE constructions for
small domains and large domains").

Comparison semantics: ``compare(left(x), right(y))`` returns -1/0/+1 for
x<y / x=y / x>y.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.encoding import encode_parts, encode_uint
from ..common.errors import ParameterError
from ..common.rng import DeterministicRNG, default_rng
from ..crypto.prf import PRF


@dataclass(frozen=True)
class LeftCiphertext:
    """Query-side: the PRF key for x plus its permuted slot index."""

    key_x: bytes
    slot: int

    @property
    def size_bytes(self) -> int:
        return len(self.key_x) + 4


@dataclass(frozen=True)
class RightCiphertext:
    """Stored-side: a nonce plus one masked comparison symbol per slot."""

    nonce: bytes
    symbols: tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        return len(self.nonce) + (2 * len(self.symbols) + 7) // 8


class LewiWuOre:
    """Small-domain left/right ORE over ``[0, 2**bits)``."""

    def __init__(self, key: bytes, bits: int, rng: DeterministicRNG | None = None) -> None:
        if bits > 12:
            raise ParameterError(
                "small-domain Lewi-Wu right ciphertexts carry 2^bits symbols; "
                "use block composition for wider values"
            )
        self.bits = bits
        self.domain = 1 << bits
        self._prf = PRF(key)
        self._perm_prf = PRF(key, output_len=16)
        self._rng = rng or default_rng()
        self._permutation = self._derive_permutation()
        self._inverse = [0] * self.domain
        for slot, plain in enumerate(self._permutation):
            self._inverse[plain] = slot

    def _derive_permutation(self) -> list[int]:
        """Key-derived pseudorandom permutation of the domain."""
        scored = sorted(
            range(self.domain),
            key=lambda v: self._perm_prf.eval(b"perm", encode_uint(v)),
        )
        return scored

    def _slot_key(self, slot: int) -> bytes:
        return self._prf.eval(b"slotkey", encode_uint(slot))

    def encrypt_left(self, value: int) -> LeftCiphertext:
        if not 0 <= value < self.domain:
            raise ParameterError("value outside domain")
        slot = self._inverse[value]
        return LeftCiphertext(self._slot_key(slot), slot)

    def encrypt_right(self, value: int) -> RightCiphertext:
        if not 0 <= value < self.domain:
            raise ParameterError("value outside domain")
        nonce = self._rng.token_bytes(16)
        symbols = []
        for slot in range(self.domain):
            plain = self._permutation[slot]
            cmp_val = (plain > value) - (plain < value)  # cmp(x_slot, y)
            mask = PRF(self._slot_key(slot)).eval_int(b"mask", nonce)
            symbols.append((cmp_val + mask) % 3)
        return RightCiphertext(nonce, tuple(symbols))

    @staticmethod
    def compare(left: LeftCiphertext, right: RightCiphertext) -> int:
        """-1/0/+1 for x<y / x=y / x>y; needs no secret key."""
        mask = PRF(left.key_x).eval_int(b"mask", right.nonce)
        symbol = (right.symbols[left.slot] - mask) % 3
        return -1 if symbol == 2 else symbol
