"""Naive linear-scan baseline: download, decrypt, filter.

The trivially-correct, trivially-private strawman: the cloud stores opaque
AES blobs and ships *everything* on every query; the user decrypts and
filters locally.  Zero server leakage, zero server compute — but bandwidth
and client time scale with the whole database, and the cloud can still
silently drop records (no verifiability).  It doubles as the ground-truth
oracle in integration tests.
"""

from __future__ import annotations

from ..common.encoding import decode_parts, encode_parts, encode_uint, decode_uint
from ..common.rng import DeterministicRNG, default_rng
from ..crypto.symmetric import SymmetricCipher
from ..core.query import Query


class LinearScanStore:
    """Encrypted blob store with client-side filtering."""

    def __init__(self, rng: DeterministicRNG | None = None) -> None:
        self.rng = rng or default_rng()
        self.cipher = SymmetricCipher.generate(self.rng)
        self._blobs: list[bytes] = []

    def insert(self, record_id: bytes, value: int) -> None:
        plaintext = encode_parts(record_id, encode_uint(value))
        self._blobs.append(self.cipher.encrypt(plaintext))

    def insert_many(self, records: list[tuple[bytes, int]]) -> None:
        for record_id, value in records:
            self.insert(record_id, value)

    def download_all(self) -> list[bytes]:
        """What the server ships per query: the entire store."""
        return list(self._blobs)

    def query(self, query: Query) -> set[bytes]:
        """Client-side: decrypt everything, apply the predicate."""
        predicate = query.predicate()
        out: set[bytes] = set()
        for blob in self.download_all():
            record_id, value_bytes = decode_parts(self.cipher.decrypt(blob))
            if predicate(decode_uint(value_bytes)):
                out.add(record_id)
        return out

    @property
    def transfer_bytes(self) -> int:
        """Bandwidth cost of one query = size of the whole store."""
        return sum(len(b) for b in self._blobs)

    def __len__(self) -> int:
        return len(self._blobs)
