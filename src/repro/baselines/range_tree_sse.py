"""Range-covering keyword SSE baseline (Demertzis et al., SIGMOD 2016 style).

"Practical private range search" builds range support on *plain keyword
SSE* by indexing every value under the ``O(b)`` dyadic intervals that
contain it; an arbitrary range ``[lo, hi]`` then decomposes into at most
``2b`` canonical dyadic intervals, each one keyword query.

This is the strongest keyword-SSE-based comparator for Slicer's order
search: token count is ``O(b)`` like SORE (versus the naive enumeration's
``O(range width)``), but the scheme

* multiplies index size by the tree height (every record appears under
  ``b+1`` interval keywords, same order as Slicer — measured in the
  ablation), and
* leaks the *hierarchy* of accessed intervals (structurally richer than
  Slicer's flat slice accesses), and
* provides **no verifiability** — which is the gap Slicer fills.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.bitstring import check_value_fits
from ..common.encoding import encode_uint
from ..common.errors import ParameterError
from ..common.rng import DeterministicRNG, default_rng
from .keyword_sse import KeywordSse


@dataclass(frozen=True)
class DyadicInterval:
    """The dyadic interval of height ``level`` containing ``prefix``.

    ``level`` 0 is a leaf (single value); level ``b`` is the whole domain.
    The interval covers ``[prefix << level, ((prefix + 1) << level) - 1]``.
    """

    level: int
    prefix: int

    @property
    def lo(self) -> int:
        return self.prefix << self.level

    @property
    def hi(self) -> int:
        return ((self.prefix + 1) << self.level) - 1

    def keyword(self) -> bytes:
        return b"dyadic:" + encode_uint(self.level, 1) + encode_uint(self.prefix)


def intervals_containing(value: int, bits: int) -> list[DyadicInterval]:
    """The ``b+1`` dyadic intervals that contain ``value`` (leaf to root)."""
    check_value_fits(value, bits)
    return [DyadicInterval(level, value >> level) for level in range(bits + 1)]


def canonical_cover(lo: int, hi: int, bits: int) -> list[DyadicInterval]:
    """Minimal dyadic cover of ``[lo, hi]`` — at most ``2b`` intervals.

    Standard greedy construction: repeatedly take the largest dyadic
    interval that starts at ``lo`` and fits inside the range.
    """
    if lo > hi:
        raise ParameterError("empty range")
    check_value_fits(lo, bits)
    check_value_fits(hi, bits)
    cover: list[DyadicInterval] = []
    cursor = lo
    while cursor <= hi:
        level = 0
        # Grow while the interval stays aligned and inside [cursor, hi].
        while level < bits:
            size = 1 << (level + 1)
            if cursor % size == 0 and cursor + size - 1 <= hi:
                level += 1
            else:
                break
        cover.append(DyadicInterval(level, cursor >> level))
        cursor += 1 << level
    return cover


class RangeTreeSse:
    """Keyword SSE + dyadic decomposition = logarithmic range search."""

    def __init__(
        self, bits: int, rng: DeterministicRNG | None = None, trapdoor_bits: int = 512
    ) -> None:
        self.bits = bits
        self.sse = KeywordSse(rng or default_rng(), trapdoor_bits)
        self._indexed = 0

    def insert_values(self, records: list[tuple[bytes, int]]) -> None:
        """Index each record under all its containing dyadic intervals."""
        by_keyword: dict[bytes, list[bytes]] = {}
        for record_id, value in records:
            for interval in intervals_containing(value, self.bits):
                by_keyword.setdefault(interval.keyword(), []).append(record_id)
        for keyword, ids in by_keyword.items():
            self.sse.insert(keyword, ids)
        self._indexed += len(records)

    def range_search(self, lo: int, hi: int) -> tuple[set[bytes], int]:
        """Return (matching record IDs, number of tokens issued)."""
        results: set[bytes] = set()
        tokens = 0
        for interval in canonical_cover(lo, hi, self.bits):
            token = self.sse.token(interval.keyword())
            if token is None:
                continue
            tokens += 1
            results |= {
                self.sse.cipher.decrypt(blob) for blob in self.sse.server_search(token)
            }
        return results, tokens

    @property
    def index_entries(self) -> int:
        """Total index entries — ``(b+1)`` per record, like Slicer's ``1+b``."""
        return self.sse.index_size
