"""Forward-secure keyword-file SSE baseline (Sophos-style, Bost CCS 2016).

This is what "most existing SSE designs" in the paper's introduction can do:
exact keyword lookups with forward security, **no numeric comparison**.  The
only way it can answer a range query is to enumerate every value in the
range and run one keyword search each — the strawman the paper calls
"totally infeasible".  The ablation benchmark quantifies exactly that: token
count and work scale with the *range width* here versus the *bit width*
under SORE.

The index machinery intentionally mirrors the Slicer core (PRF labels,
trapdoor-permutation epochs) minus SORE slices and minus the ADS, so the
comparison isolates the cost of numeric search support.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.bitstring import xor_bytes
from ..common.encoding import encode_uint
from ..common.rng import DeterministicRNG, default_rng
from ..crypto.prf import PRF, derive_key
from ..crypto.symmetric import SymmetricCipher
from ..crypto.trapdoor import TrapdoorKeyPair


@dataclass(frozen=True)
class KeywordToken:
    trapdoor: bytes
    epoch: int
    g1: bytes
    g2: bytes


class KeywordSse:
    """Single-party façade: owner-side state plus the server index.

    Kept single-object (rather than the full four-party split) because the
    baseline exists purely for cost comparison.
    """

    def __init__(self, rng: DeterministicRNG | None = None, trapdoor_bits: int = 1024) -> None:
        self.rng = rng or default_rng()
        self.master_key = self.rng.token_bytes(16)
        self.cipher = SymmetricCipher(self.rng.token_bytes(16), self.rng)
        self.trapdoor_keys = TrapdoorKeyPair.generate(trapdoor_bits, self.rng)
        self._state: dict[bytes, tuple[bytes, int]] = {}
        self._server_index: dict[bytes, bytes] = {}

    # ------------------------------------------------------------- updates

    def insert(self, keyword: bytes, document_ids: list[bytes]) -> int:
        """Add documents under a keyword; returns new index entries written."""
        g1 = derive_key(self.master_key, keyword, b"1")
        g2 = derive_key(self.master_key, keyword, b"2")
        entry = self._state.get(keyword)
        if entry is None:
            trapdoor, epoch = self.trapdoor_keys.sample_trapdoor(self.rng), 0
        else:
            trapdoor, epoch = entry
            trapdoor = self.trapdoor_keys.invert(trapdoor)
            epoch += 1
        self._state[keyword] = (trapdoor, epoch)

        label_prf = PRF(g1)
        pad_prf = PRF(g2)
        for counter, doc_id in enumerate(document_ids):
            blob = self.cipher.encrypt(doc_id)
            label = label_prf.eval(trapdoor, encode_uint(counter))
            self._server_index[label] = xor_bytes(
                pad_prf.eval_stream(len(blob), trapdoor, encode_uint(counter)), blob
            )
        return len(document_ids)

    # -------------------------------------------------------------- search

    def token(self, keyword: bytes) -> KeywordToken | None:
        entry = self._state.get(keyword)
        if entry is None:
            return None
        return KeywordToken(
            entry[0],
            entry[1],
            derive_key(self.master_key, keyword, b"1"),
            derive_key(self.master_key, keyword, b"2"),
        )

    def server_search(self, token: KeywordToken) -> list[bytes]:
        """Server-side trapdoor walk; returns encrypted document IDs."""
        label_prf = PRF(token.g1)
        pad_prf = PRF(token.g2)
        results = []
        trapdoor = token.trapdoor
        for _ in range(token.epoch, -1, -1):
            counter = 0
            while True:
                label = label_prf.eval(trapdoor, encode_uint(counter))
                payload = self._server_index.get(label)
                if payload is None:
                    break
                results.append(
                    xor_bytes(
                        pad_prf.eval_stream(len(payload), trapdoor, encode_uint(counter)),
                        payload,
                    )
                )
                counter += 1
            trapdoor = self.trapdoor_keys.public.apply(trapdoor)
        return results

    def search(self, keyword: bytes) -> set[bytes]:
        token = self.token(keyword)
        if token is None:
            return set()
        return {self.cipher.decrypt(blob) for blob in self.server_search(token)}

    # ------------------------------------------------- the range strawman

    @staticmethod
    def value_keyword(value: int) -> bytes:
        return b"value:" + encode_uint(value)

    def insert_values(self, records: list[tuple[bytes, int]]) -> None:
        """Index numeric records the only way keyword SSE can: one keyword per value."""
        by_value: dict[int, list[bytes]] = {}
        for record_id, value in records:
            by_value.setdefault(value, []).append(record_id)
        for value, ids in by_value.items():
            self.insert(self.value_keyword(value), ids)

    def range_search_by_enumeration(self, lo: int, hi: int) -> tuple[set[bytes], int]:
        """Answer ``lo <= a <= hi`` by querying every value in the range.

        Returns (result IDs, number of tokens issued) — the cost the paper's
        introduction calls infeasible for wide ranges.
        """
        results: set[bytes] = set()
        tokens_issued = 0
        for value in range(lo, hi + 1):
            token = self.token(self.value_keyword(value))
            if token is None:
                continue
            tokens_issued += 1
            results |= {self.cipher.decrypt(b) for b in self.server_search(token)}
        return results, tokens_issued

    @property
    def index_size(self) -> int:
        return len(self._server_index)
