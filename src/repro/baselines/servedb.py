"""ServeDB-style verifiable range index (Wu et al., ICDE 2019), simplified.

ServeDB is the paper's closest prior work for *verifiable* range queries: a
hierarchical cube-encoded tree over encrypted data, authenticated with
Merkle hashing.  Its decisive limitation (paper Section I): verification
needs the plaintext — either the verifier decrypts the results (so it must
hold the key), or it checks positions in a value-ordered structure (so the
plaintext values leak through the structure).  Either way it violates the
paper's rule 1 for public verification ("cannot reveal any privacy of
original data"), which is the gap Slicer's multiset-hash + accumulator
pipeline closes.

Implementation: a dyadic segment tree whose leaves are value buckets holding
the encrypted records with that value; inner digests commit to children with
per-level empty-subtree constants.  A range query returns the canonical
cover nodes, each with its occupied-leaf payloads and an authentication path
to the root.  ``verify`` recomputes each canonical subtree digest from the
returned payload placement and folds it up the path — sound and complete,
but the placement (leaf index = plaintext value) is exactly the privacy
leak described above, and the tests assert it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..common.encoding import encode_parts, encode_uint
from ..common.errors import ParameterError
from ..common.rng import DeterministicRNG, default_rng
from ..crypto.symmetric import SymmetricCipher
from .range_tree_sse import DyadicInterval, canonical_cover


def _leaf_digest(payload_hashes: tuple[bytes, ...]) -> bytes:
    return hashlib.sha256(encode_parts(b"leaf", *payload_hashes)).digest()


def _node_digest(level: int, left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(encode_parts(b"node", encode_uint(level, 1), left, right)).digest()


def _empty_digests(bits: int) -> list[bytes]:
    """digest of an entirely-empty subtree, per level."""
    out = [_leaf_digest(())]
    for level in range(1, bits + 1):
        out.append(_node_digest(level, out[-1], out[-1]))
    return out


@dataclass(frozen=True)
class NodeProof:
    """One canonical cover node.

    ``leaves`` maps occupied leaf values inside this node's range to their
    encrypted records — note the keys are PLAINTEXT VALUES: that is the
    structural privacy leak this baseline exists to demonstrate.
    """

    interval: DyadicInterval
    leaves: tuple[tuple[int, tuple[bytes, ...]], ...]
    path: tuple[tuple[bytes, bool], ...]  # (sibling digest, sibling-is-right)

    @property
    def vo_bytes(self) -> int:
        return sum(len(s) + 1 for s, _ in self.path) + 8

    @property
    def ciphertexts(self) -> list[bytes]:
        return [blob for _, blobs in self.leaves for blob in blobs]


@dataclass(frozen=True)
class ServeDbResponse:
    nodes: tuple[NodeProof, ...]

    @property
    def vo_bytes(self) -> int:
        return sum(n.vo_bytes for n in self.nodes)

    @property
    def ciphertext_bytes(self) -> int:
        return sum(len(c) for n in self.nodes for c in n.ciphertexts)

    @property
    def revealed_values(self) -> set[int]:
        """The plaintext values a keyless verifier learns from the proof."""
        return {value for node in self.nodes for value, _ in node.leaves}


class ServeDbIndex:
    """Static authenticated dyadic tree over (record id, value) pairs."""

    def __init__(
        self,
        records: list[tuple[bytes, int]],
        bits: int,
        rng: DeterministicRNG | None = None,
    ) -> None:
        if not records:
            raise ParameterError("ServeDB index needs at least one record")
        self.bits = bits
        self.rng = rng or default_rng()
        self.cipher = SymmetricCipher.generate(self.rng)
        self._empty = _empty_digests(bits)

        self._leaves: dict[int, list[bytes]] = {}
        for record_id, value in records:
            if not 0 <= value < (1 << bits):
                raise ParameterError(f"value {value} outside the domain")
            self._leaves.setdefault(value, []).append(self.cipher.encrypt(record_id))

        # Sparse digest cache: only subtrees containing records are stored.
        self._digests: dict[tuple[int, int], bytes] = {}
        for value, blobs in self._leaves.items():
            self._digests[(0, value)] = _leaf_digest(
                tuple(hashlib.sha256(b).digest() for b in blobs)
            )
        for level in range(1, bits + 1):
            parents = {p >> 1 for (l, p) in self._digests if l == level - 1}
            for prefix in parents:
                self._digests[(level, prefix)] = _node_digest(
                    level,
                    self._digest_at(level - 1, prefix * 2),
                    self._digest_at(level - 1, prefix * 2 + 1),
                )
        self.root = self._digest_at(bits, 0)

    def _digest_at(self, level: int, prefix: int) -> bytes:
        return self._digests.get((level, prefix), self._empty[level])

    # --------------------------------------------------------------- query

    def query(self, lo: int, hi: int) -> ServeDbResponse:
        nodes = []
        for interval in canonical_cover(lo, hi, self.bits):
            leaves = tuple(
                (value, tuple(blobs))
                for value, blobs in sorted(self._leaves.items())
                if interval.lo <= value <= interval.hi
            )
            path = []
            level, prefix = interval.level, interval.prefix
            while level < self.bits:
                sibling = prefix ^ 1
                path.append((self._digest_at(level, sibling), sibling > prefix))
                level += 1
                prefix >>= 1
            nodes.append(NodeProof(interval, leaves, tuple(path)))
        return ServeDbResponse(tuple(nodes))


class ServeDbVerifier:
    """Verification against the published root (no key needed — see leak)."""

    def __init__(self, root: bytes, bits: int) -> None:
        self.root = root
        self.bits = bits
        self._empty = _empty_digests(bits)

    def _subtree_digest(
        self, level: int, prefix: int, leaves: dict[int, tuple[bytes, ...]]
    ) -> bytes:
        lo, hi = prefix << level, ((prefix + 1) << level) - 1
        if not any(lo <= v <= hi for v in leaves):
            return self._empty[level]
        if level == 0:
            blobs = leaves.get(lo, ())
            return _leaf_digest(tuple(hashlib.sha256(b).digest() for b in blobs))
        return _node_digest(
            level,
            self._subtree_digest(level - 1, prefix * 2, leaves),
            self._subtree_digest(level - 1, prefix * 2 + 1, leaves),
        )

    def verify(self, lo: int, hi: int, response: ServeDbResponse) -> bool:
        """Sound + complete range verification — using plaintext positions."""
        expected = [
            (i.level, i.prefix) for i in canonical_cover(lo, hi, self.bits)
        ]
        got = [(n.interval.level, n.interval.prefix) for n in response.nodes]
        if expected != got:
            return False

        for node in response.nodes:
            leaves = dict(node.leaves)
            if any(not node.interval.lo <= v <= node.interval.hi for v in leaves):
                return False
            digest = self._subtree_digest(node.interval.level, node.interval.prefix, leaves)
            level, prefix = node.interval.level, node.interval.prefix
            for sibling, sibling_is_right in node.path:
                if sibling_is_right:
                    digest = _node_digest(level + 1, digest, sibling)
                else:
                    digest = _node_digest(level + 1, sibling, digest)
                level += 1
                prefix >>= 1
            if digest != self.root:
                return False
        return True
