"""CLWW practical ORE baseline (Chenette-Lewi-Weis-Wu, FSE 2016).

The first efficient order-revealing encryption: each bit position ``i``
produces ``u_i = F_k(i, prefix) + b_i  (mod 3)``; comparing two ciphertexts
finds the first differing position and reads the order from the mod-3
difference.  Leakage: the index of the first differing bit of *any* pair of
ciphertexts — the same quantity SORE leaks token-side, but CLWW leaks it
*ciphertext-side and publicly*, with no SSE layer to hide it.  This is the
construction the paper's SORE is "inspired by" (Section VI.A), so the
ablation bench compares them head to head.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.bitstring import bit_at, check_value_fits, prefix_bits
from ..common.encoding import encode_parts, encode_str, encode_uint
from ..crypto.prf import PRF


@dataclass(frozen=True)
class ClwwCiphertext:
    """One mod-3 symbol per bit position."""

    symbols: tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        """2 bits per symbol, rounded up — the scheme's succinct encoding."""
        return (2 * len(self.symbols) + 7) // 8


class ClwwOre:
    """CLWW ORE over ``bits``-bit values."""

    def __init__(self, key: bytes, bits: int) -> None:
        self.bits = bits
        self._prf = PRF(key)

    def encrypt(self, value: int) -> ClwwCiphertext:
        check_value_fits(value, self.bits)
        symbols = []
        for i in range(1, self.bits + 1):
            mask = self._prf.eval_int(
                encode_parts(encode_uint(i), encode_str(prefix_bits(value, i, self.bits)))
            )
            symbols.append((mask + bit_at(value, i, self.bits)) % 3)
        return ClwwCiphertext(tuple(symbols))

    @staticmethod
    def compare(ct_x: ClwwCiphertext, ct_y: ClwwCiphertext) -> int:
        """-1 if x < y, 0 if equal, +1 if x > y — public computation."""
        for sx, sy in zip(ct_x.symbols, ct_y.symbols):
            if sx != sy:
                # At the first differing position the prefixes (hence the PRF
                # masks) are equal, so the mod-3 gap is exactly b_y - b_x.
                return -1 if (sy - sx) % 3 == 1 else 1
        return 0

    @staticmethod
    def first_differing_bit(ct_x: ClwwCiphertext, ct_y: ClwwCiphertext) -> int | None:
        """The leakage: 1-based index of the first differing symbol."""
        for i, (sx, sy) in enumerate(zip(ct_x.symbols, ct_y.symbols), start=1):
            if sx != sy:
                return i
        return None
