"""Baseline comparators the paper positions Slicer against."""

from .keyword_sse import KeywordSse, KeywordToken
from .linear_scan import LinearScanStore
from .merkle_range import MerkleRangeIndex, RangeProof, verify_range_proof
from .ope import OpeScheme
from .ore_clww import ClwwCiphertext, ClwwOre
from .ore_lewi_wu import LeftCiphertext, LewiWuOre, RightCiphertext
from .range_tree_sse import (
    DyadicInterval,
    RangeTreeSse,
    canonical_cover,
    intervals_containing,
)
from .servedb import ServeDbIndex, ServeDbResponse, ServeDbVerifier

__all__ = [
    "ClwwCiphertext",
    "ClwwOre",
    "DyadicInterval",
    "KeywordSse",
    "KeywordToken",
    "LeftCiphertext",
    "LewiWuOre",
    "LinearScanStore",
    "MerkleRangeIndex",
    "OpeScheme",
    "RangeProof",
    "RangeTreeSse",
    "RightCiphertext",
    "ServeDbIndex",
    "ServeDbResponse",
    "ServeDbVerifier",
    "canonical_cover",
    "intervals_containing",
    "verify_range_proof",
]
