"""Order-Preserving Encryption baseline (Boldyreva et al., EUROCRYPT 2009).

OPE maps plaintexts into a larger ciphertext space such that
``x < y  =>  Enc(x) < Enc(y)``, so an untrusted server can answer range
queries with plain integer comparisons.  The paper's related work (Section
II.B) cites OPE as the historical starting point and rejects it because the
ciphertexts leak the *full order* (and approximate magnitude) of the data —
SORE's per-comparison leakage is strictly smaller.

This implementation follows the BCLO recursive binary-descent construction
with the hypergeometric split approximated by its normal limit (exact
hypergeometric sampling is unnecessary for a performance/leakage
comparison; monotonicity — the correctness property — is preserved exactly
because every node's split point is deterministic in the PRF tape).
"""

from __future__ import annotations

import math
import random

from ..common.errors import ParameterError
from ..crypto.prf import PRF


class OpeScheme:
    """Deterministic order-preserving encryption over ``bits``-bit values."""

    def __init__(self, key: bytes, bits: int, expansion: int = 16) -> None:
        if bits <= 0 or expansion <= 0:
            raise ParameterError("bits and expansion must be positive")
        self.bits = bits
        self.range_bits = bits + expansion
        self._prf = PRF(key)

    def _coins(self, *context: int) -> random.Random:
        seed_material = self._prf.eval(
            *[c.to_bytes(16, "big", signed=True) for c in context]
        )
        return random.Random(int.from_bytes(seed_material, "big"))

    def encrypt(self, value: int) -> int:
        """Binary descent: split domain/range until the domain is a point."""
        if not 0 <= value < (1 << self.bits):
            raise ParameterError(f"value {value} outside the {self.bits}-bit domain")
        d_lo, d_hi = 0, (1 << self.bits) - 1
        r_lo, r_hi = 0, (1 << self.range_bits) - 1
        while d_hi > d_lo:
            domain = d_hi - d_lo + 1
            rng_size = r_hi - r_lo + 1
            r_mid = r_lo + rng_size // 2 - 1
            # Hypergeometric(M=domain, N=rng_size, k=r_mid-r_lo+1) ~ Normal.
            k = r_mid - r_lo + 1
            mean = domain * k / rng_size
            var = domain * k * (rng_size - k) * (rng_size - domain) / (
                rng_size * rng_size * max(rng_size - 1, 1)
            )
            coins = self._coins(d_lo, d_hi, r_lo, r_hi)
            draw = coins.gauss(mean, math.sqrt(max(var, 1e-9)))
            split = min(max(int(round(draw)), 1), domain - 1)
            d_mid = d_lo + split - 1
            if value <= d_mid:
                d_hi, r_hi = d_mid, r_mid
            else:
                d_lo, r_lo = d_mid + 1, r_mid + 1
        # Domain is a single plaintext: place it pseudorandomly in its gap.
        coins = self._coins(d_lo, -1, r_lo, r_hi)
        return r_lo + coins.randrange(r_hi - r_lo + 1)

    @staticmethod
    def compare(ct_x: int, ct_y: int) -> int:
        """-1/0/+1 — a plain integer comparison, OPE's whole selling point."""
        return (ct_x > ct_y) - (ct_x < ct_y)

    def leaked_order(self, ciphertexts: list[int]) -> list[int]:
        """The full plaintext order an adversary reads off the ciphertexts."""
        return sorted(range(len(ciphertexts)), key=lambda i: ciphertexts[i])
