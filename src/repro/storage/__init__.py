"""Persistence for protocol state (binary, versioned)."""

from .state_io import (
    dump_cloud_state,
    dump_index,
    dump_primes,
    dump_set_hash_state,
    dump_trapdoor_state,
    load,
    load_cloud_state,
    load_index,
    load_primes,
    load_set_hash_state,
    load_trapdoor_state,
    save,
)

__all__ = [
    "dump_cloud_state",
    "dump_index",
    "dump_primes",
    "dump_set_hash_state",
    "dump_trapdoor_state",
    "load",
    "load_cloud_state",
    "load_index",
    "load_primes",
    "load_set_hash_state",
    "load_trapdoor_state",
    "save",
]
