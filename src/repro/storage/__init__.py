"""Persistence for protocol state (binary, versioned)."""

from .segment_store import SegmentStore
from .state_io import (
    dump_cloud_state,
    dump_index,
    dump_primes,
    dump_set_hash_state,
    dump_trapdoor_state,
    fsync_dir,
    load,
    load_cloud_state,
    load_index,
    load_primes,
    load_set_hash_state,
    load_trapdoor_state,
    save,
)

__all__ = [
    "SegmentStore",
    "dump_cloud_state",
    "dump_index",
    "dump_primes",
    "dump_set_hash_state",
    "dump_trapdoor_state",
    "fsync_dir",
    "load",
    "load_cloud_state",
    "load_index",
    "load_primes",
    "load_set_hash_state",
    "load_trapdoor_state",
    "save",
]
