"""Serialization of protocol state: index, trapdoor state, ADS, user package.

What gets persisted and by whom:

* **cloud** — the encrypted index ``I`` and prime list ``X`` (its whole
  working state; rebuilding them requires the owner).
* **owner** — trapdoor state ``T`` and set-hash state ``S`` (losing S makes
  future inserts impossible; losing T strands users).
* **user** — the trapdoor-state snapshot plus the last seen ``Ac``.

Secret keys are intentionally *not* serialized here — key management is a
deployment concern; see :class:`repro.core.params.KeyBundle`.
"""

from __future__ import annotations

import pathlib

from ..common.encoding import encode_parts, decode_parts, encode_uint, decode_uint
from ..core.state import EncryptedIndex, SetHashState, TrapdoorState
from ..crypto.multiset_hash import MultisetHash
from . import codec

_KIND_INDEX = b"index"
_KIND_TRAPDOORS = b"trapdoors"
_KIND_SETHASH = b"sethash"
_KIND_PRIMES = b"primes"


# ----------------------------------------------------------------- index

def dump_index(index: EncryptedIndex) -> bytes:
    return codec.pack(_KIND_INDEX, codec.encode_mapping(index._entries))


def load_index(blob: bytes) -> EncryptedIndex:
    (mapping,) = codec.unpack(blob, _KIND_INDEX)
    index = EncryptedIndex()
    for label, payload in codec.decode_mapping(mapping).items():
        index.put(label, payload)
    return index


# ------------------------------------------------------------- trapdoors

def dump_trapdoor_state(state: TrapdoorState) -> bytes:
    entries: dict[bytes, bytes] = {}
    for keyword in state.keywords():
        entry = state.get(keyword)
        entries[keyword] = encode_parts(entry.trapdoor, encode_uint(entry.epoch))
    return codec.pack(_KIND_TRAPDOORS, codec.encode_mapping(entries))


def load_trapdoor_state(blob: bytes) -> TrapdoorState:
    (mapping,) = codec.unpack(blob, _KIND_TRAPDOORS)
    state = TrapdoorState()
    for keyword, packed in codec.decode_mapping(mapping).items():
        trapdoor, epoch = decode_parts(packed)
        state.put(keyword, trapdoor, decode_uint(epoch))
    return state


# -------------------------------------------------------------- set hash

def dump_set_hash_state(state: SetHashState, field: int) -> bytes:
    entries = {key: value.to_bytes() for key, value in state.items()}
    return codec.pack(
        _KIND_SETHASH, codec.encode_int(field), codec.encode_mapping(entries)
    )


def load_set_hash_state(blob: bytes) -> SetHashState:
    field_blob, mapping = codec.unpack(blob, _KIND_SETHASH)
    field = codec.decode_int(field_blob)
    state = SetHashState()
    for key, value in codec.decode_mapping(mapping).items():
        state.put(key, MultisetHash(int.from_bytes(value, "big"), field))
    return state


# ----------------------------------------------------------------- primes

def dump_primes(primes: list[int]) -> bytes:
    return codec.pack(_KIND_PRIMES, *[codec.encode_int(p) for p in primes])


def load_primes(blob: bytes) -> list[int]:
    return [codec.decode_int(p) for p in codec.unpack(blob, _KIND_PRIMES)]


# ------------------------------------------------------------ file helpers

def save(path: str | pathlib.Path, blob: bytes) -> None:
    pathlib.Path(path).write_bytes(blob)


def load(path: str | pathlib.Path) -> bytes:
    return pathlib.Path(path).read_bytes()
