"""Serialization of protocol state: index, trapdoor state, ADS, user package.

What gets persisted and by whom:

* **cloud** — the encrypted index ``I`` and prime list ``X`` (its whole
  working state; rebuilding them requires the owner).  The combined
  :func:`dump_cloud_state` snapshot is what the chaos layer's crash-restart
  recovery reloads.
* **owner** — trapdoor state ``T`` and set-hash state ``S`` (losing S makes
  future inserts impossible; losing T strands users).
* **user** — the trapdoor-state snapshot plus the last seen ``Ac``.

Secret keys are intentionally *not* serialized here — key management is a
deployment concern; see :class:`repro.core.params.KeyBundle`.

Robustness contract: every ``load_*`` here either returns fully decoded
state or raises a :class:`~repro.common.errors.StateError` — never a
partially populated object.  Truncation and bit rot are caught by the
codec's content digest (v2 framing); :func:`save` writes atomically
(tmp file + rename) so a crash mid-write leaves the previous snapshot
intact instead of a torn file.
"""

from __future__ import annotations

import contextlib
import os
import pathlib

from ..common.encoding import encode_parts, decode_parts, encode_uint, decode_uint
from ..common.errors import ParameterError, StateError
from ..core.state import EncryptedIndex, SetHashState, TrapdoorState
from ..crypto.multiset_hash import MultisetHash
from . import codec

_KIND_INDEX = b"index"
_KIND_TRAPDOORS = b"trapdoors"
_KIND_SETHASH = b"sethash"
_KIND_PRIMES = b"primes"
_KIND_CLOUD = b"cloud-state"


@contextlib.contextmanager
def _loading(what: str):
    """Convert codec/structure errors into one clear ``StateError``."""
    try:
        yield
    except StateError:
        raise
    except (ParameterError, ValueError) as exc:
        raise StateError(f"cannot load {what}: {exc}") from exc


# ----------------------------------------------------------------- index

def dump_index(index: EncryptedIndex) -> bytes:
    return codec.pack(_KIND_INDEX, codec.encode_mapping(index._entries))


def load_index(blob: bytes) -> EncryptedIndex:
    with _loading("encrypted index"):
        (mapping,) = codec.unpack(blob, _KIND_INDEX)
        index = EncryptedIndex()
        for label, payload in codec.decode_mapping(mapping).items():
            index.put(label, payload)
        return index


# ------------------------------------------------------------- trapdoors

def dump_trapdoor_state(state: TrapdoorState) -> bytes:
    entries: dict[bytes, bytes] = {}
    for keyword in state.keywords():
        entry = state.get(keyword)
        entries[keyword] = encode_parts(entry.trapdoor, encode_uint(entry.epoch))
    return codec.pack(_KIND_TRAPDOORS, codec.encode_mapping(entries))


def load_trapdoor_state(blob: bytes) -> TrapdoorState:
    with _loading("trapdoor state"):
        (mapping,) = codec.unpack(blob, _KIND_TRAPDOORS)
        state = TrapdoorState()
        for keyword, packed in codec.decode_mapping(mapping).items():
            trapdoor, epoch = decode_parts(packed)
            state.put(keyword, trapdoor, decode_uint(epoch))
        return state


# -------------------------------------------------------------- set hash

def dump_set_hash_state(state: SetHashState, field: int) -> bytes:
    entries = {key: value.to_bytes() for key, value in state.items()}
    return codec.pack(
        _KIND_SETHASH, codec.encode_int(field), codec.encode_mapping(entries)
    )


def load_set_hash_state(blob: bytes) -> SetHashState:
    with _loading("set-hash state"):
        field_blob, mapping = codec.unpack(blob, _KIND_SETHASH)
        field = codec.decode_int(field_blob)
        state = SetHashState()
        for key, value in codec.decode_mapping(mapping).items():
            state.put(key, MultisetHash(int.from_bytes(value, "big"), field))
        return state


# ----------------------------------------------------------------- primes

def dump_primes(primes: list[int]) -> bytes:
    return codec.pack(_KIND_PRIMES, *[codec.encode_int(p) for p in primes])


def load_primes(blob: bytes) -> list[int]:
    with _loading("prime list"):
        return [codec.decode_int(p) for p in codec.unpack(blob, _KIND_PRIMES)]


# ------------------------------------------------------------ cloud state

def dump_cloud_state(index: EncryptedIndex, primes: list[int], ads_value: int) -> bytes:
    """One self-contained cloud snapshot: ``(I, X, Ac)``.

    This is both the owner's Build/Insert package on the wire and the
    snapshot a crashed cloud restarts from — one format, one integrity
    check, exercised by both paths.
    """
    return codec.pack(
        _KIND_CLOUD,
        dump_index(index),
        dump_primes(primes),
        codec.encode_int(ads_value),
    )


def load_cloud_state(blob: bytes) -> tuple[EncryptedIndex, list[int], int]:
    with _loading("cloud state snapshot"):
        index_blob, primes_blob, ads_blob = codec.unpack(blob, _KIND_CLOUD)
        return (
            load_index(index_blob),
            load_primes(primes_blob),
            codec.decode_int(ads_blob),
        )


# ------------------------------------------------------------ file helpers

def fsync_dir(path: str | pathlib.Path) -> None:
    """fsync a directory so a just-renamed/created entry survives power loss.

    ``os.replace`` makes a rename atomic but not durable: the new directory
    entry lives in the page cache until the *directory* inode is synced, so
    a crash after the rename can resurrect the old file — or, for a freshly
    created file, lose it entirely.  Platforms whose filesystems refuse
    ``open(dir, O_RDONLY)`` (some network mounts, Windows) degrade to the
    rename-only guarantee rather than failing the write.
    """
    try:
        fd = os.open(pathlib.Path(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def save(path: str | pathlib.Path, blob: bytes) -> None:
    """Durably persist a state blob: write-temp, fsync, rename, fsync dir.

    A crash at any point leaves either the old file or the new one — never
    a torn mix — which is the property the chaos layer's crash-restart
    recovery depends on.  The final directory fsync makes the rename itself
    durable; without it a post-rename crash could roll the directory entry
    back to the old snapshot.  The segment store's manifest swap rides on
    this same helper, so both persistence paths share one durability
    contract.
    """
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)


def load(path: str | pathlib.Path) -> bytes:
    """Read a state blob; missing/unreadable files raise :class:`StateError`.

    The module's robustness contract covers the filesystem too: callers on
    the crash-recovery path handle exactly one exception type, so a missing
    snapshot (never written, or lost with its directory) and an unreadable
    one (permissions, I/O errors) must not leak raw ``FileNotFoundError`` /
    ``OSError`` past this boundary.
    """
    path = pathlib.Path(path)
    try:
        return path.read_bytes()
    except FileNotFoundError as exc:
        raise StateError(f"state file missing: {path}") from exc
    except OSError as exc:
        raise StateError(f"cannot read state file {path}: {exc}") from exc
