"""Binary codec for protocol state (versioned, length-prefixed).

Persistence uses the same injective ``encode_parts`` framing as the wire
protocol, wrapped with a magic header and format version so stale files fail
loudly instead of deserialising garbage.  JSON is deliberately avoided: the
state is dominated by raw byte strings and big integers, which JSON inflates
and corrupts (no bytes type).
"""

from __future__ import annotations

from ..common.encoding import decode_parts, decode_uint, encode_parts, encode_uint
from ..common.errors import ParameterError

MAGIC = b"SLCR"
VERSION = 1


def pack(kind: bytes, *parts: bytes) -> bytes:
    """Frame a record of ``kind`` with magic + version."""
    return encode_parts(MAGIC, encode_uint(VERSION, 2), kind, encode_parts(*parts))


def unpack(blob: bytes, expected_kind: bytes) -> list[bytes]:
    """Inverse of :func:`pack`; validates magic, version and kind."""
    try:
        magic, version, kind, body = decode_parts(blob)
    except (ParameterError, ValueError) as exc:
        raise ParameterError(f"not a Slicer state blob: {exc}") from exc
    if magic != MAGIC:
        raise ParameterError("bad magic; not a Slicer state file")
    if decode_uint(version) != VERSION:
        raise ParameterError(
            f"unsupported state version {decode_uint(version)} (expected {VERSION})"
        )
    if kind != expected_kind:
        raise ParameterError(
            f"state kind mismatch: file holds {kind!r}, expected {expected_kind!r}"
        )
    return decode_parts(body)


def encode_int(value: int) -> bytes:
    """Variable-length non-negative integer encoding."""
    if value < 0:
        raise ParameterError("cannot encode negative integers")
    width = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(width, "big")


def decode_int(data: bytes) -> int:
    return int.from_bytes(data, "big")


def encode_mapping(entries: dict[bytes, bytes]) -> bytes:
    """Deterministic (sorted) encoding of a bytes->bytes mapping."""
    parts: list[bytes] = []
    for key in sorted(entries):
        parts.append(key)
        parts.append(entries[key])
    return encode_parts(*parts)


def decode_mapping(blob: bytes) -> dict[bytes, bytes]:
    flat = decode_parts(blob)
    if len(flat) % 2:
        raise ParameterError("corrupt mapping: odd element count")
    return {flat[i]: flat[i + 1] for i in range(0, len(flat), 2)}
